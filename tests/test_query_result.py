"""QueryResult + the compute_* → compute_with_plan shim collapse.

Contracts under test (see :mod:`repro.engine.result` and part 1/2 of the
serving-API redesign in :mod:`repro.engine.executor`):

* every execution entry point returns a :class:`QueryResult` that *is*
  its payload for pre-existing consumers (iteration, ``len``, indexing,
  equality, attribute delegation) while exposing typed ``.relation`` /
  ``.outputs`` accessors, the executed plan, phase timings and per-tuple
  verdicts;
* all four legacy ``compute_*`` engine methods — now including
  ``compute_parallel`` — are deprecation-warning shims producing results
  identical to the equivalent ``ExecutionPlan``;
* verdict classification follows the certain/possible/excluded anytime
  vocabulary against the engine's (ε, δ) requirement;
* an engine-default plan applies to query-built operators when neither
  ``plan=`` nor legacy knobs were given (the ``Session.submit`` seam).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.engine import (
    VERDICT_CERTAIN,
    VERDICT_EXCLUDED,
    VERDICT_POSSIBLE,
    ComputedOutput,
    ExecutionPlan,
    Query,
    QueryResult,
    TupleVerdict,
    UDFExecutionEngine,
    classify_outputs,
    generate_galaxy_relation,
)
from repro.engine.result import classify_output
from repro.exceptions import QueryError
from repro.udf.synthetic import async_service_udf
from repro.workloads.generators import input_stream, workload_for_udf

REQUIREMENT = AccuracyRequirement(epsilon=0.15, delta=0.05)


def _fixture(n_tuples=4, seed=31, stream_seed=4):
    udf = async_service_udf("F4", latency=0.0)
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=seed, n_samples=120
    )
    dists = list(
        input_stream(
            workload_for_udf(udf), n_tuples,
            random_state=np.random.default_rng(stream_seed),
        )
    )
    return udf, engine, dists


def _assert_identical(a_outputs, b_outputs):
    assert len(a_outputs) == len(b_outputs)
    for i, (a, b) in enumerate(zip(a_outputs, b_outputs)):
        assert np.array_equal(a.distribution.samples, b.distribution.samples), i
        assert a.error_bound == b.error_bound, i


def _output(
    error_bound=0.1, existence=1.0, dropped=False, with_distribution=True
) -> ComputedOutput:
    udf, engine, dists = _fixture(n_tuples=1)
    distribution = (
        engine.compute_with_plan(udf, dists).outputs[0].distribution
        if with_distribution
        else None
    )
    return ComputedOutput(
        distribution=distribution,
        error_bound=error_bound,
        existence_probability=existence,
        dropped=dropped,
        udf_calls=1,
        charged_time=0.0,
    )


# ---------------------------------------------------------------------------
# QueryResult payload protocol (back-compat with bare returns)
# ---------------------------------------------------------------------------

def test_query_result_delegates_list_protocol():
    udf, engine, dists = _fixture()
    result = engine.compute_with_plan(udf, dists)
    assert isinstance(result, QueryResult)
    assert len(result) == len(dists)
    assert list(result) == result.outputs
    assert result[0] is result.outputs[0]
    assert result.outputs[0] in result
    assert result == result.outputs  # equality against the bare payload


def test_query_result_delegates_relation_protocol():
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=7, n_samples=120
    )
    relation = generate_galaxy_relation(3, random_state=5)
    result = Query(relation).project(["objID"]).run(engine)
    # Attribute access falls through to the wrapped Relation.
    assert result.name == "result"
    assert result.schema == result.relation.schema
    assert len(result.tuples) == 3
    assert [row["objID"] for row in result] == [0, 1, 2]


def test_typed_accessors_raise_on_wrong_payload_kind():
    udf, engine, dists = _fixture(n_tuples=2)
    outputs_result = engine.compute_with_plan(udf, dists)
    with pytest.raises(QueryError, match="use .outputs"):
        outputs_result.relation
    relation_result = Query(generate_galaxy_relation(2, random_state=5)).run(
        UDFExecutionEngine(strategy="gp", requirement=REQUIREMENT, random_state=7)
    )
    with pytest.raises(QueryError, match="use .relation"):
        relation_result.outputs


def test_query_result_carries_plan_timings_and_verdicts():
    udf, engine, dists = _fixture()
    plan = ExecutionPlan(batch_size=2)
    result = engine.compute_with_plan(udf, dists, plan)
    assert result.plan is plan
    assert result.timings.get("execute") > 0.0
    assert len(result.verdicts) == len(dists)
    assert all(isinstance(v, TupleVerdict) for v in result.verdicts)
    assert len(result.certain()) + len(result.possible()) <= len(dists)


def test_operator_execute_wraps_relation_with_record():
    udf, engine, dists = _fixture()
    relation = generate_galaxy_relation(3, random_state=5)
    plan = ExecutionPlan(batch_size=2)
    svc = async_service_udf("F4", latency=0.0)
    result = (
        Query(relation)
        .apply_udf(svc, ["ra_offset", "dec_offset"], alias="f", plan=plan)
        .run(engine)
    )
    assert isinstance(result, QueryResult)
    assert result.plan == plan
    assert result.timings.get("execute") > 0.0
    assert len(result.verdicts) == len(result.relation.tuples)


# ---------------------------------------------------------------------------
# Verdict classification
# ---------------------------------------------------------------------------

def test_classify_certain_when_bound_within_epsilon():
    verdict = classify_output(_output(error_bound=0.1), epsilon=0.15,
                              tuple_id=3, version=5)
    assert verdict == TupleVerdict(3, VERDICT_CERTAIN, 0.1, 5)


def test_classify_possible_when_bound_open_or_existence_uncertain():
    assert (
        classify_output(_output(error_bound=0.5), 0.15, 0, 0).verdict
        == VERDICT_POSSIBLE
    )
    assert (
        classify_output(_output(existence=0.6), 0.15, 0, 0).verdict
        == VERDICT_POSSIBLE
    )
    # A plain-MC NaN bound makes no closed claim.
    assert (
        classify_output(_output(error_bound=math.nan), 0.15, 0, 0).verdict
        == VERDICT_POSSIBLE
    )


def test_classify_excluded_when_dropped():
    out = _output(dropped=True, with_distribution=False)
    assert classify_output(out, 0.15, 0, 0).verdict == VERDICT_EXCLUDED


def test_classify_outputs_versions_follow_tuple_order():
    outputs = [_output(), _output(), _output()]
    verdicts = classify_outputs(outputs, epsilon=0.15)
    assert [v.tuple_id for v in verdicts] == [0, 1, 2]
    assert [v.version for v in verdicts] == [0, 1, 2]


# ---------------------------------------------------------------------------
# Deprecated shims: all four compute_* warn and match the plan path
# ---------------------------------------------------------------------------

def test_compute_batch_shim_warns_and_matches_plan():
    udf, engine, dists = _fixture()
    with pytest.warns(DeprecationWarning, match="legacy shim"):
        legacy = engine.compute_batch(udf, dists, batch_size=2)
    udf2, engine2, dists2 = _fixture()
    plan = engine2.compute_with_plan(udf2, dists2, ExecutionPlan(batch_size=2))
    _assert_identical(legacy.outputs, plan.outputs)


def test_compute_async_shim_warns_and_matches_plan():
    udf, engine, dists = _fixture()
    with pytest.warns(DeprecationWarning, match="legacy shim"):
        legacy = engine.compute_async(udf, dists, inflight=1)
    udf2, engine2, dists2 = _fixture()
    plan = engine2.compute_with_plan(udf2, dists2, ExecutionPlan(async_inflight=1))
    _assert_identical(legacy.outputs, plan.outputs)


def test_compute_pipelined_shim_warns_and_matches_plan():
    udf, engine, dists = _fixture()
    with pytest.warns(DeprecationWarning, match="legacy shim"):
        legacy = engine.compute_pipelined(udf, dists, lookahead=1)
    udf2, engine2, dists2 = _fixture()
    plan = engine2.compute_with_plan(
        udf2, dists2, ExecutionPlan(pipeline_lookahead=1)
    )
    _assert_identical(legacy.outputs, plan.outputs)


def test_compute_parallel_shim_warns_and_matches_plan():
    udf, engine, dists = _fixture()
    with pytest.warns(DeprecationWarning, match="legacy shim"):
        legacy = engine.compute_parallel(udf, dists, workers=1, seed=123)
    udf2, engine2, dists2 = _fixture()
    plan = engine2.compute_with_plan(
        udf2, dists2, ExecutionPlan(workers=1, parallel_seed=123)
    )
    _assert_identical(legacy.outputs, plan.outputs)


def test_shims_return_query_results():
    udf, engine, dists = _fixture(n_tuples=2)
    with pytest.warns(DeprecationWarning):
        result = engine.compute_batch(udf, dists)
    assert isinstance(result, QueryResult)
    assert result.plan is not None


# ---------------------------------------------------------------------------
# Engine-default plan fallback (the Session.submit seam)
# ---------------------------------------------------------------------------

def test_engine_default_plan_applies_to_unconfigured_query():
    relation = generate_galaxy_relation(3, random_state=5)
    svc = async_service_udf("F4", latency=0.0)
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=7, n_samples=120,
        plan=ExecutionPlan(batch_size=2),
    )
    result = Query(relation).apply_udf(svc, ["ra_offset", "dec_offset"], alias="f").run(engine)
    assert result.plan == ExecutionPlan(batch_size=2)


def test_explicit_plan_beats_engine_default():
    relation = generate_galaxy_relation(3, random_state=5)
    svc = async_service_udf("F4", latency=0.0)
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=7, n_samples=120,
        plan=ExecutionPlan(batch_size=2),
    )
    result = (
        Query(relation)
        .apply_udf(svc, ["ra_offset", "dec_offset"], alias="f", plan=ExecutionPlan(batch_size=4))
        .run(engine)
    )
    assert result.plan == ExecutionPlan(batch_size=4)


def test_legacy_query_kwargs_beat_engine_default_and_warn():
    relation = generate_galaxy_relation(3, random_state=5)
    svc = async_service_udf("F4", latency=0.0)
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=7, n_samples=120,
        plan=ExecutionPlan(batch_size=2),
    )
    with pytest.warns(DeprecationWarning, match="legacy"):
        query = Query(relation).apply_udf(
            svc, ["ra_offset", "dec_offset"], alias="f", batch_size=4
        )
    assert query.run(engine).plan == ExecutionPlan(batch_size=4)
