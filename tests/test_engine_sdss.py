"""Unit tests for the synthetic SDSS-like Galaxy relation generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions.base import Distribution
from repro.engine.sdss import galaxy_schema, generate_galaxy_relation
from repro.udf.astro import REDSHIFT_RANGE


class TestGalaxySchema:
    def test_expected_attributes(self):
        schema = galaxy_schema()
        assert set(schema.names()) == {"objID", "redshift", "ra_offset", "dec_offset", "mag_r"}
        assert set(schema.uncertain_names()) == {"redshift", "ra_offset", "dec_offset"}


class TestGenerateGalaxyRelation:
    def test_size_and_ids(self):
        relation = generate_galaxy_relation(20, random_state=0)
        assert len(relation) == 20
        assert [row["objID"] for row in relation] == list(range(20))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_galaxy_relation(0)

    def test_uncertain_attributes_are_distributions(self):
        relation = generate_galaxy_relation(5, random_state=1)
        for row in relation:
            assert isinstance(row["redshift"], Distribution)
            assert isinstance(row["ra_offset"], Distribution)
            assert isinstance(row["dec_offset"], Distribution)
            assert isinstance(row["mag_r"], float)

    def test_redshift_means_in_survey_range(self):
        relation = generate_galaxy_relation(100, random_state=2)
        means = np.array([float(row["redshift"].mean()[0]) for row in relation])
        assert means.min() >= REDSHIFT_RANGE[0]
        assert means.max() <= REDSHIFT_RANGE[1] * 1.2

    def test_fainter_objects_have_larger_redshift_errors(self):
        relation = generate_galaxy_relation(300, random_state=3)
        means = np.array([float(row["redshift"].mean()[0]) for row in relation])
        stds = np.array([row["redshift"].std() for row in relation])
        # Relative error grows with redshift by construction; check the trend.
        low = stds[means < np.median(means)].mean()
        high = stds[means >= np.median(means)].mean()
        assert high > low

    def test_reproducible_with_seed(self):
        a = generate_galaxy_relation(5, random_state=42)
        b = generate_galaxy_relation(5, random_state=42)
        for row_a, row_b in zip(a, b):
            assert float(row_a["redshift"].mean()[0]) == pytest.approx(
                float(row_b["redshift"].mean()[0])
            )

    def test_redshift_samples_positive(self):
        relation = generate_galaxy_relation(10, random_state=4)
        for row in relation:
            samples = row["redshift"].sample(200, random_state=0)
            assert np.all(samples > 0)
