"""Asynchronous overlapped refinement: determinism, identity, thread safety.

Contracts under test (see :mod:`repro.engine.async_exec`):

* ``async_inflight=1`` is bit-identical to the serial batched path under
  the same seed — outputs, error bounds and UDF call counts;
* completion-order permutations of in-flight UDF results (forced through
  point-dependent latency) yield identical GP state and identical query
  output at ``async_inflight > 1``;
* UDF charge accounting is exact under concurrent evaluation, and the
  in-flight gauge proves calls genuinely overlapped;
* the emulator's snapshot fence rejects absorbs against a mutated model;
* the ``async_inflight`` knob plumbs through the engine, the operators,
  the query builder and the per-shard parallel workers.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.core.filtering import SelectionPredicate
from repro.engine import (
    AsyncRefinementExecutor,
    BatchExecutor,
    ParallelExecutor,
    Query,
    UDFExecutionEngine,
    generate_galaxy_relation,
)
from repro.engine.async_exec import chunk_schedule
from repro.engine.parallel import _emulator_of
from repro.exceptions import GPError, QueryError
from repro.udf.synthetic import reference_function
from repro.workloads.generators import input_stream, workload_for_udf

REQUIREMENT = AccuracyRequirement(epsilon=0.15, delta=0.05)

PREDICATE = SelectionPredicate(low=0.0, high=1.5, threshold=0.1)


def _fixture(
    n_tuples=6,
    seed=31,
    stream_seed=4,
    real_eval_time=0.0,
    real_eval_jitter=0.0,
    **engine_kwargs,
):
    """Fresh (udf, engine, distributions) triple with deterministic seeds."""
    udf = reference_function(
        "F4", real_eval_time=real_eval_time, real_eval_jitter=real_eval_jitter
    )
    kwargs = dict(engine_kwargs)
    kwargs.setdefault("n_samples", 150)
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=seed, **kwargs
    )
    dists = list(
        input_stream(
            workload_for_udf(udf), n_tuples, random_state=np.random.default_rng(stream_seed)
        )
    )
    return udf, engine, dists


def _assert_identical_outputs(a_outputs, b_outputs):
    assert len(a_outputs) == len(b_outputs)
    for i, (a, b) in enumerate(zip(a_outputs, b_outputs)):
        assert a.dropped == b.dropped, i
        if a.distribution is not None:
            assert np.array_equal(a.distribution.samples, b.distribution.samples), i
            assert a.error_bound == b.error_bound, i


def _gp_state(engine, udf):
    emulator = _emulator_of(engine, udf)
    gp = emulator.gp
    return gp.X_train, gp.y_train, np.asarray(gp.kernel.theta)


# ---------------------------------------------------------------------------
# Chunk schedule
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "window,expected",
    [
        (1, [(0, 1)]),
        (2, [(0, 1), (1, 2)]),
        (3, [(0, 1), (1, 2), (2, 3)]),
        (5, [(0, 1), (1, 2), (2, 4), (4, 5)]),
        (8, [(0, 1), (1, 2), (2, 4), (4, 8)]),
    ],
)
def test_chunk_schedule_is_deterministic_and_covers_the_window(window, expected):
    chunks = list(chunk_schedule(window))
    assert chunks == expected
    # Exact cover, in order, no overlap.
    flat = [i for start, stop in chunks for i in range(start, stop)]
    assert flat == list(range(window))


# ---------------------------------------------------------------------------
# inflight=1: identity with the serial batched path
# ---------------------------------------------------------------------------

def test_inflight_1_is_bit_identical_to_serial_batched():
    udf_a, engine_a, dists_a = _fixture()
    serial = BatchExecutor(engine_a, batch_size=4).compute_batch(udf_a, dists_a)
    udf_b, engine_b, dists_b = _fixture()
    overlapped = AsyncRefinementExecutor(engine_b, inflight=1, batch_size=4).compute_batch(
        udf_b, dists_b
    )
    _assert_identical_outputs(serial, overlapped)
    assert udf_a.call_count == udf_b.call_count
    a_X, a_y, a_theta = _gp_state(engine_a, udf_a)
    b_X, b_y, b_theta = _gp_state(engine_b, udf_b)
    assert np.array_equal(a_X, b_X)
    assert np.array_equal(a_y, b_y)
    assert np.array_equal(a_theta, b_theta)


def test_inflight_1_predicate_path_matches_serial():
    udf_a, engine_a, dists_a = _fixture(stream_seed=9)
    serial = BatchExecutor(engine_a, batch_size=3).compute_batch_with_predicate(
        udf_a, dists_a, PREDICATE
    )
    udf_b, engine_b, dists_b = _fixture(stream_seed=9)
    overlapped = AsyncRefinementExecutor(
        engine_b, inflight=1, batch_size=3
    ).compute_batch_with_predicate(udf_b, dists_b, PREDICATE)
    _assert_identical_outputs(serial, overlapped)


def test_mc_strategy_delegates_to_the_batched_path():
    def run(inflight):
        udf = reference_function("F4")
        engine = UDFExecutionEngine(strategy="mc", requirement=REQUIREMENT, random_state=3)
        dists = list(
            input_stream(workload_for_udf(udf), 4, random_state=np.random.default_rng(5))
        )
        if inflight is None:
            return BatchExecutor(engine, batch_size=4).compute_batch(udf, dists)
        executor = AsyncRefinementExecutor(engine, inflight=inflight, batch_size=4)
        return executor.compute_batch(udf, dists)

    _assert_identical_outputs(run(None), run(8))


# ---------------------------------------------------------------------------
# inflight > 1: determinism under completion-order permutations
# ---------------------------------------------------------------------------

def test_out_of_order_completions_yield_identical_state_and_output():
    """Different per-point latency schedules permute the completion order of
    the in-flight window; GP state and query output must not move."""
    runs = {}
    for jitter in (0.0, 0.5, 0.95):
        udf, engine, dists = _fixture(
            real_eval_time=2e-3, real_eval_jitter=jitter, n_tuples=4
        )
        outputs = AsyncRefinementExecutor(engine, inflight=4, batch_size=4).compute_batch(
            udf, dists
        )
        runs[jitter] = (outputs, _gp_state(engine, udf), udf.call_count)
    reference_outputs, reference_state, reference_calls = runs[0.0]
    for jitter in (0.5, 0.95):
        outputs, state, calls = runs[jitter]
        _assert_identical_outputs(reference_outputs, outputs)
        assert calls == reference_calls, jitter
        for ref_arr, arr in zip(reference_state, state):
            assert np.array_equal(ref_arr, arr), jitter


def test_async_run_is_repeatable_under_a_fixed_seed():
    def run():
        udf, engine, dists = _fixture(real_eval_time=1e-3)
        outputs = AsyncRefinementExecutor(engine, inflight=4, batch_size=4).compute_batch(
            udf, dists
        )
        return outputs, udf.call_count

    a_outputs, a_calls = run()
    b_outputs, b_calls = run()
    _assert_identical_outputs(a_outputs, b_outputs)
    assert a_calls == b_calls


def test_async_calls_genuinely_overlap():
    udf, engine, dists = _fixture(real_eval_time=1e-3, n_tuples=4)
    AsyncRefinementExecutor(engine, inflight=4, batch_size=4).compute_batch(udf, dists)
    assert udf.max_in_flight > 1
    assert udf.in_flight == 0


# ---------------------------------------------------------------------------
# UDF thread safety and concurrent evaluation helpers
# ---------------------------------------------------------------------------

def test_concurrent_charging_is_exact():
    udf = reference_function("F4")
    points = np.random.default_rng(0).uniform(1.0, 9.0, size=(64, 2))
    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = udf.submit_rows(pool, points)
        values = np.array([future.result() for future in futures])
    assert udf.call_count == 64
    assert udf.in_flight == 0
    assert np.all(np.isfinite(values))


def test_evaluate_many_matches_evaluate_batch():
    udf_serial = reference_function("F4")
    udf_async = reference_function("F4")
    points = np.random.default_rng(1).uniform(1.0, 9.0, size=(16, 2))
    serial = udf_serial.evaluate_batch(points)
    overlapped = udf_async.evaluate_many(points, max_inflight=4)
    assert np.array_equal(serial, overlapped)
    assert udf_serial.call_count == udf_async.call_count == 16


def test_evaluate_many_with_inflight_1_short_circuits_to_batch():
    udf = reference_function("F4")
    points = np.random.default_rng(2).uniform(1.0, 9.0, size=(4, 2))
    values = udf.evaluate_many(points, max_inflight=1)
    assert values.shape == (4,)
    assert udf.max_in_flight == 0  # never went through the thread path


def test_evaluate_many_bounds_inflight_even_on_a_shared_executor():
    # A shared pool far wider than the caller's bound: the concurrency
    # gauge must respect max_inflight, not the pool size.
    udf = reference_function("F4", real_eval_time=2e-3)
    points = np.random.default_rng(3).uniform(1.0, 9.0, size=(12, 2))
    with ThreadPoolExecutor(max_workers=16) as pool:
        values = udf.evaluate_many(points, executor=pool, max_inflight=2)
    assert values.shape == (12,)
    assert udf.call_count == 12
    assert 1 < udf.max_in_flight <= 2
    # max_inflight=1 stays serial even when a pool is offered.
    udf2 = reference_function("F4")
    with ThreadPoolExecutor(max_workers=16) as pool:
        udf2.evaluate_many(points, executor=pool, max_inflight=1)
    assert udf2.max_in_flight == 0


# ---------------------------------------------------------------------------
# Snapshot fencing
# ---------------------------------------------------------------------------

def test_absorb_with_stale_fence_raises():
    udf, engine, dists = _fixture(n_tuples=1)
    BatchExecutor(engine, batch_size=1).compute_batch(udf, dists)
    emulator = _emulator_of(engine, udf)
    fence = emulator.snapshot()
    x = np.array([[5.0, 5.0]])
    y = np.array([float(udf(x[0]))])
    # Mutate the model between the snapshot and the absorb.
    emulator.add_training_point(np.array([2.5, 7.5]))
    with pytest.raises(GPError, match="stale snapshot fence"):
        emulator.absorb_observations(x, y, fence=fence)


def test_absorb_with_current_fence_succeeds():
    udf, engine, dists = _fixture(n_tuples=1)
    BatchExecutor(engine, batch_size=1).compute_batch(udf, dists)
    emulator = _emulator_of(engine, udf)
    fence = emulator.snapshot()
    x = np.array([[5.0, 5.0]])
    y = np.array([float(udf(x[0]))])
    # The UDF call does not touch the GP, so the fence is still current —
    # note udf() happened after snapshot() above, exactly like in-flight
    # evaluations completing while the snapshot is live.
    n_before = emulator.n_training
    emulator.absorb_observations(x, y, fence=fence)
    assert emulator.n_training == n_before + 1


def test_restore_moves_the_version_forward():
    udf, engine, dists = _fixture(n_tuples=1)
    BatchExecutor(engine, batch_size=1).compute_batch(udf, dists)
    emulator = _emulator_of(engine, udf)
    fence = emulator.snapshot()
    version_at_snapshot = emulator.gp.version
    emulator.restore(fence)
    assert emulator.gp.version > version_at_snapshot


# ---------------------------------------------------------------------------
# Knob plumbing: query builder, operators, parallel shards
# ---------------------------------------------------------------------------

def _query_run(async_inflight, workers=None, n_rows=6):
    relation = generate_galaxy_relation(n_rows, random_state=21)
    udf = reference_function("F1", real_eval_time=5e-4)
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=13, n_samples=150
    )
    return (
        Query(relation)
        .apply_udf(udf, ["ra_offset", "dec_offset"], alias="f",
                   batch_size=3, workers=workers, parallel_seed=17,
                   merge="discard" if workers else "union",
                   async_inflight=async_inflight)
        .run(engine)
    )


def test_query_async_inflight_1_matches_batched():
    plain = _query_run(None)
    overlapped = _query_run(1)
    assert len(plain) == len(overlapped)
    for a, b in zip(plain, overlapped):
        assert np.array_equal(a["f"].samples, b["f"].samples)


def test_query_async_inflight_is_deterministic():
    a = _query_run(4)
    b = _query_run(4)
    assert len(a) == len(b)
    for row_a, row_b in zip(a, b):
        assert np.array_equal(row_a["f"].samples, row_b["f"].samples)


def test_parallel_shards_honor_async_inflight():
    def sharded(workers):
        udf, engine, dists = _fixture(real_eval_time=1e-3, n_tuples=8)
        executor = ParallelExecutor(
            engine, workers=workers, batch_size=4, merge="discard", seed=99,
            async_inflight=4,
        )
        return executor.compute_batch(udf, dists)

    # Worker-count invariance survives the async per-shard trajectory.
    _assert_identical_outputs(sharded(2), sharded(3))


def test_parallel_workers_1_with_async_matches_async_executor():
    udf_a, engine_a, dists_a = _fixture(real_eval_time=1e-3)
    direct = AsyncRefinementExecutor(engine_a, inflight=4, batch_size=4).compute_batch(
        udf_a, dists_a
    )
    udf_b, engine_b, dists_b = _fixture(real_eval_time=1e-3)
    serial_path = ParallelExecutor(
        engine_b, workers=1, batch_size=4, async_inflight=4
    ).compute_batch(udf_b, dists_b)
    _assert_identical_outputs(direct, serial_path)


def test_configuration_validation():
    _, engine, _ = _fixture(n_tuples=1)
    with pytest.raises(QueryError):
        AsyncRefinementExecutor(engine, inflight=0)
    with pytest.raises(QueryError):
        AsyncRefinementExecutor(engine, inflight=4, batch_size=0)
    with pytest.raises(QueryError):
        ParallelExecutor(engine, async_inflight=0)
    with pytest.raises(QueryError):
        ParallelExecutor(engine, oversubscribe=0.5)


def test_oversubscribe_scales_the_default_worker_count():
    import os

    _, engine, _ = _fixture(n_tuples=1)
    base = ParallelExecutor(engine).workers
    doubled = ParallelExecutor(engine, oversubscribe=2.0).workers
    assert doubled == max(1, round((os.cpu_count() or 1) * 2.0))
    assert doubled >= base
    # Explicit workers wins over oversubscription.
    assert ParallelExecutor(engine, workers=3, oversubscribe=2.0).workers == 3
