"""Unit tests for the continuous univariate distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions.continuous import (
    Exponential,
    Gamma,
    Gaussian,
    GaussianMixture1D,
    TruncatedGaussian,
    Uniform,
)
from repro.exceptions import DistributionError


class TestGaussian:
    def test_sample_shape(self, rng):
        samples = Gaussian(0.0, 1.0).sample(100, random_state=rng)
        assert samples.shape == (100, 1)

    def test_sample_statistics(self, rng):
        dist = Gaussian(3.0, 0.5)
        samples = dist.sample(50000, random_state=rng)
        assert np.mean(samples) == pytest.approx(3.0, abs=0.02)
        assert np.std(samples) == pytest.approx(0.5, abs=0.02)

    def test_pdf_integrates_to_one(self):
        dist = Gaussian(1.0, 2.0)
        grid = np.linspace(-20, 20, 4001)
        assert np.trapezoid(dist.pdf(grid), grid) == pytest.approx(1.0, abs=1e-6)

    def test_cdf_monotone_and_bounded(self):
        dist = Gaussian(0.0, 1.0)
        grid = np.linspace(-5, 5, 101)
        cdf = dist.cdf(grid)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[0] == pytest.approx(0.0, abs=1e-5)
        assert cdf[-1] == pytest.approx(1.0, abs=1e-5)

    def test_ppf_inverts_cdf(self):
        dist = Gaussian(2.0, 3.0)
        for q in (0.1, 0.5, 0.9):
            assert dist.cdf(dist.ppf(np.asarray(q))) == pytest.approx(q, abs=1e-9)

    def test_mean_and_variance(self):
        dist = Gaussian(-1.5, 0.7)
        assert dist.mean()[0] == pytest.approx(-1.5)
        assert dist.variance() == pytest.approx(0.49)

    def test_interval_probability(self):
        dist = Gaussian(0.0, 1.0)
        assert dist.interval_probability(-1.0, 1.0) == pytest.approx(0.6827, abs=1e-3)

    def test_invalid_sigma_rejected(self):
        with pytest.raises(DistributionError):
            Gaussian(0.0, 0.0)
        with pytest.raises(DistributionError):
            Gaussian(0.0, -1.0)

    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            Gaussian(0.0, 1.0).sample(0)

    def test_support_box_covers_bulk(self):
        lo, hi = Gaussian(5.0, 1.0).support_box(coverage=0.99)
        assert lo[0] < 3.0 and hi[0] > 7.0


class TestUniform:
    def test_bounds_validation(self):
        with pytest.raises(DistributionError):
            Uniform(1.0, 1.0)

    def test_samples_within_bounds(self, rng):
        samples = Uniform(2.0, 5.0).sample(1000, random_state=rng)
        assert samples.min() >= 2.0 and samples.max() <= 5.0

    def test_moments(self):
        dist = Uniform(0.0, 6.0)
        assert dist.mean()[0] == pytest.approx(3.0)
        assert dist.variance() == pytest.approx(3.0)

    def test_cdf_is_linear(self):
        dist = Uniform(0.0, 10.0)
        assert dist.cdf(np.asarray(2.5)) == pytest.approx(0.25)
        assert dist.ppf(np.asarray(0.75)) == pytest.approx(7.5)


class TestExponential:
    def test_rate_validation(self):
        with pytest.raises(DistributionError):
            Exponential(0.0)

    def test_mean_includes_shift(self):
        dist = Exponential(rate=2.0, shift=1.0)
        assert dist.mean()[0] == pytest.approx(1.5)

    def test_cdf_at_shift_is_zero(self):
        dist = Exponential(rate=1.0, shift=2.0)
        assert dist.cdf(np.asarray(2.0)) == pytest.approx(0.0)
        assert dist.cdf(np.asarray(1.0)) == pytest.approx(0.0)

    def test_sample_statistics(self, rng):
        dist = Exponential(rate=0.5)
        samples = dist.sample(50000, random_state=rng)
        assert np.mean(samples) == pytest.approx(2.0, rel=0.05)

    def test_ppf_matches_cdf(self):
        dist = Exponential(rate=1.5, shift=0.5)
        x = dist.ppf(np.asarray(0.3))
        assert dist.cdf(x) == pytest.approx(0.3, abs=1e-9)


class TestGamma:
    def test_parameter_validation(self):
        with pytest.raises(DistributionError):
            Gamma(shape=-1.0, scale=1.0)
        with pytest.raises(DistributionError):
            Gamma(shape=1.0, scale=0.0)

    def test_moments(self):
        dist = Gamma(shape=3.0, scale=2.0, shift=1.0)
        assert dist.mean()[0] == pytest.approx(7.0)
        assert dist.variance() == pytest.approx(12.0)

    def test_sample_statistics(self, rng):
        dist = Gamma(shape=2.0, scale=1.5)
        samples = dist.sample(50000, random_state=rng)
        assert np.mean(samples) == pytest.approx(3.0, rel=0.05)


class TestTruncatedGaussian:
    def test_samples_respect_bounds(self, rng):
        dist = TruncatedGaussian(mu=0.0, sigma=2.0, low=-1.0, high=1.0)
        samples = dist.sample(2000, random_state=rng)
        assert samples.min() >= -1.0 and samples.max() <= 1.0

    def test_invalid_bounds(self):
        with pytest.raises(DistributionError):
            TruncatedGaussian(0.0, 1.0, low=2.0, high=1.0)

    def test_cdf_at_bounds(self):
        dist = TruncatedGaussian(mu=0.5, sigma=1.0, low=0.0, high=1.0)
        assert dist.cdf(np.asarray(0.0)) == pytest.approx(0.0, abs=1e-9)
        assert dist.cdf(np.asarray(1.0)) == pytest.approx(1.0, abs=1e-9)


class TestGaussianMixture1D:
    def test_weights_normalised(self):
        dist = GaussianMixture1D([0.0, 5.0], [1.0, 1.0], weights=[2.0, 2.0])
        assert np.allclose(dist.weights, [0.5, 0.5])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DistributionError):
            GaussianMixture1D([0.0, 1.0], [1.0])

    def test_mean_is_weighted_average(self):
        dist = GaussianMixture1D([0.0, 10.0], [1.0, 1.0], weights=[0.25, 0.75])
        assert dist.mean()[0] == pytest.approx(7.5)

    def test_pdf_integrates_to_one(self):
        dist = GaussianMixture1D([0.0, 4.0], [0.5, 1.0])
        grid = np.linspace(-10, 15, 5001)
        assert np.trapezoid(dist.pdf(grid), grid) == pytest.approx(1.0, abs=1e-5)

    def test_bimodal_sampling(self, rng):
        dist = GaussianMixture1D([0.0, 10.0], [0.5, 0.5])
        samples = dist.sample(20000, random_state=rng).ravel()
        near_zero = np.mean(np.abs(samples) < 2.0)
        near_ten = np.mean(np.abs(samples - 10.0) < 2.0)
        assert near_zero == pytest.approx(0.5, abs=0.03)
        assert near_ten == pytest.approx(0.5, abs=0.03)

    def test_ppf_monotone(self):
        dist = GaussianMixture1D([0.0, 5.0], [1.0, 1.0])
        values = dist.ppf(np.array([0.1, 0.5, 0.9]))
        assert values[0] < values[1] < values[2]
