"""Unit tests for the online retraining policies (§5.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.retraining import (
    EagerRetrain,
    NeverRetrain,
    ThresholdRetrain,
    make_policy,
)
from repro.exceptions import GPError
from repro.gp.kernels import SquaredExponential
from repro.gp.regression import GaussianProcess
from repro.gp.training import fit_hyperparameters


def fitted_gp(n=30, seed=0, lengthscale=1.0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, size=(n, 1))
    y = np.sin(X).ravel()
    gp = GaussianProcess(kernel=SquaredExponential(signal_std=1.0, lengthscale=lengthscale))
    gp.fit(X, y)
    return gp


class TestSimplePolicies:
    def test_never_retrain(self):
        policy = NeverRetrain()
        assert not policy.decide(fitted_gp(), points_added=100).should_retrain

    def test_eager_retrain_only_when_points_added(self):
        policy = EagerRetrain()
        gp = fitted_gp()
        assert policy.decide(gp, points_added=1).should_retrain
        assert not policy.decide(gp, points_added=0).should_retrain

    def test_retrain_improves_likelihood(self):
        gp = fitted_gp(lengthscale=0.05)  # badly mis-specified
        before = gp.log_marginal_likelihood()
        EagerRetrain().retrain(gp)
        assert gp.log_marginal_likelihood() > before

    def test_retrain_requires_data(self):
        with pytest.raises(GPError):
            EagerRetrain().retrain(GaussianProcess())


class TestThresholdRetrain:
    def test_validation(self):
        with pytest.raises(GPError):
            ThresholdRetrain(threshold=0.0)
        with pytest.raises(GPError):
            ThresholdRetrain(probe="bfgs")

    def test_no_retrain_without_new_points(self):
        policy = ThresholdRetrain(threshold=0.05)
        decision = policy.decide(fitted_gp(), points_added=0)
        assert not decision.should_retrain

    def test_no_retrain_near_optimum(self):
        gp = fitted_gp(n=40, seed=1)
        fit_hyperparameters(gp)
        policy = ThresholdRetrain(threshold=0.5)
        decision = policy.decide(gp, points_added=3)
        assert decision.step_norm < 0.5
        assert not decision.should_retrain

    def test_retrains_with_misfit_hyperparameters(self):
        gp = fitted_gp(n=40, seed=2, lengthscale=0.02)  # far from the optimum
        policy = ThresholdRetrain(threshold=0.05)
        decision = policy.decide(gp, points_added=2)
        assert decision.step_norm > 0.05
        assert decision.should_retrain

    def test_smaller_threshold_retrains_more(self):
        gp = fitted_gp(n=40, seed=3, lengthscale=0.4)
        decision = ThresholdRetrain(threshold=1e-6).decide(gp, points_added=1)
        eager_like = decision.should_retrain
        decision_large = ThresholdRetrain(threshold=100.0).decide(gp, points_added=1)
        assert eager_like or decision.step_norm == 0.0
        assert not decision_large.should_retrain

    def test_gradient_probe_smaller_than_newton(self):
        # The paper notes gradient descent "does not move far enough" in one
        # step compared with Newton's method when hyperparameters are off.
        gp = fitted_gp(n=40, seed=4, lengthscale=0.05)
        newton = ThresholdRetrain(threshold=0.05, probe="newton").decide(gp, points_added=1)
        gradient = ThresholdRetrain(threshold=0.05, probe="gradient", learning_rate=0.01).decide(
            gp, points_added=1
        )
        assert newton.step_norm > gradient.step_norm

    def test_decision_does_not_change_hyperparameters(self):
        gp = fitted_gp(n=25, seed=5, lengthscale=0.3)
        theta_before = gp.kernel.theta.copy()
        ThresholdRetrain(threshold=0.05).decide(gp, points_added=1)
        assert np.allclose(gp.kernel.theta, theta_before)


class TestFactory:
    def test_make_by_name(self):
        assert isinstance(make_policy("never"), NeverRetrain)
        assert isinstance(make_policy("eager"), EagerRetrain)
        policy = make_policy("threshold", threshold=0.2)
        assert isinstance(policy, ThresholdRetrain)
        assert policy.threshold == 0.2

    def test_unknown_name(self):
        with pytest.raises(GPError):
            make_policy("periodic")
