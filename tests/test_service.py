"""QueryService / Session: the always-on concurrent serving layer.

Contracts under test (see :mod:`repro.engine.service`):

* each served query's final result is **bit-identical** to running the
  same query with the same seed directly — including with 16 queries,
  distinct seeds, concurrently in flight;
* admission control rejects past ``queue_limit`` with a typed
  :class:`~repro.exceptions.ServiceOverloadError` (and counts it);
* cancellation mid-refinement and service shutdown leave **no leaked
  threads or event loops** — the transport close-on-every-exit-path
  contract extended to the serving layer;
* per-query timeouts and client-side ``result(timeout=)`` waits raise
  :class:`~repro.exceptions.QueryTimeoutError`;
* the anytime event stream yields in-order ``(tuple_id, verdict, bound,
  version)`` events matching the final result's verdicts;
* the opt-in ``share_models`` mode warm-starts later queries (fewer UDF
  calls), isolated per region — and routes concurrent same-``(udf,
  region)`` queries through one live
  :class:`~repro.core.shared_model.SharedEmulatorStore`, so neither
  learner retrains blind to the other (the pre-store loan cache let the
  race's loser train fully cold);
* served results surface the shared-model cost under the
  ``model_refresh`` / ``model_append`` timing phases.
"""

from __future__ import annotations

import re
import threading
import time

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.engine import (
    VERDICT_CERTAIN,
    VERDICT_POSSIBLE,
    ExecutionPlan,
    Query,
    QueryEvent,
    QueryService,
    Session,
    UDFExecutionEngine,
    generate_galaxy_relation,
)
from repro.exceptions import (
    QueryCancelledError,
    QueryTimeoutError,
    ServiceError,
    ServiceOverloadError,
)
from repro.udf.base import UDF

REQUIREMENT = AccuracyRequirement(epsilon=0.15, delta=0.05)
RELATION = generate_galaxy_relation(4, random_state=11)

#: Service threads that must not outlive a closed service (the loop
#: thread, the row-evaluation pool, and any transport worker threads).
SERVICE_THREAD_PREFIXES = ("repro-query-service", "repro-serve", "repro-")


def _fast_udf(name: str = "fast") -> UDF:
    """A cheap vectorised 1-d function of the redshift attribute."""
    return UDF(
        lambda X: np.sin(3.0 * np.atleast_2d(X)[:, 0]),
        dimension=1, name=name, vectorized=True,
    )


def _slow_udf(per_call: float = 0.02, name: str = "slow") -> UDF:
    """Like :func:`_fast_udf` but sleeping ``per_call`` per evaluation.

    OLGAPRO issues ~13 vectorised calls per tuple at these settings, so a
    4-tuple query takes ~1s — long enough to cancel/overload/time out
    mid-refinement, short enough for the suite.
    """

    def f(X: np.ndarray) -> np.ndarray:
        time.sleep(per_call)
        return np.sin(3.0 * np.atleast_2d(X)[:, 0])

    return UDF(f, dimension=1, name=name, vectorized=True)


def _engine(seed: int = 7) -> UDFExecutionEngine:
    return UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=seed, n_samples=120
    )


def _query(udf: UDF) -> Query:
    return Query(RELATION).apply_udf(udf, ["redshift"], alias="out")


def _comparable_annotations(row) -> dict:
    """The row's annotations minus wall-clock (``*_charged_time``) entries."""
    return {
        key: value
        for key, value in row.annotations.items()
        if not key.endswith("_charged_time")
    }


def _assert_relations_identical(a, b, alias: str = "out") -> None:
    assert len(a) == len(b)
    for i, (ra, rb) in enumerate(zip(a.relation.tuples, b.relation.tuples)):
        assert np.array_equal(ra[alias].samples, rb[alias].samples), i
        assert _comparable_annotations(ra) == _comparable_annotations(rb), i


def _no_service_threads_left() -> list[str]:
    """Names of surviving service/transport threads (should be empty)."""
    return [
        t.name
        for t in threading.enumerate()
        if t.name.startswith(SERVICE_THREAD_PREFIXES)
    ]


# ---------------------------------------------------------------------------
# Bit-identity with the serial path
# ---------------------------------------------------------------------------

def test_single_served_query_matches_direct_run():
    # The serial reference runs the SAME plan the session installs: the
    # service's identity contract is same-seed-same-plan, and the batched
    # and per-tuple GP refinement paths can differ at the last ulp.
    plan = ExecutionPlan(batch_size=2)
    udf = _fast_udf()
    serial = Query(RELATION).apply_udf(udf, ["redshift"], alias="out", plan=plan).run(
        _engine(seed=7)
    )
    with Session(lambda: _engine(seed=7), plan=plan) as s:
        served = s.run(_query(udf))
    _assert_relations_identical(served, serial)
    assert [v.verdict for v in served.verdicts] == [
        v.verdict for v in serial.verdicts
    ]


def test_sixteen_concurrent_queries_each_bit_identical():
    # One UDF instance per query: the call-count instrumentation lives on
    # the (mutable) UDF object, so sharing one across concurrent queries
    # would cross-talk the udf_calls annotation (the values would still be
    # bit-identical — only the accounting mixes).
    plan = ExecutionPlan(batch_size=2)
    seeds = list(range(16))
    serial = {
        seed: Query(RELATION)
        .apply_udf(_fast_udf(), ["redshift"], alias="out", plan=plan)
        .run(_engine(seed=seed))
        for seed in seeds
    }
    with QueryService(worker_budget=4, queue_limit=32) as service:
        handles = {
            seed: service.submit(
                _query(_fast_udf()), _engine(seed=seed),
                plan=plan, name=f"seed-{seed}",
            )
            for seed in seeds
        }
        for seed, handle in handles.items():
            _assert_relations_identical(handle.result(timeout=120), serial[seed])
        assert service.stats["completed"] == 16
    assert _no_service_threads_left() == []


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

def test_overload_rejects_with_typed_error():
    udf = _slow_udf()
    with QueryService(worker_budget=1, queue_limit=2) as service:
        h1 = service.submit(_query(udf), _engine())
        h2 = service.submit(_query(udf), _engine())
        with pytest.raises(ServiceOverloadError, match="queue_limit=2"):
            service.submit(_query(udf), _engine())
        assert service.stats["rejected"] == 1
        assert service.active_count() == 2
        h1.cancel()
        h2.cancel()
    assert _no_service_threads_left() == []


def test_overload_error_is_a_service_error():
    assert issubclass(ServiceOverloadError, ServiceError)


# ---------------------------------------------------------------------------
# Cancellation / timeout: typed errors, no leaked resources
# ---------------------------------------------------------------------------

def test_cancellation_mid_refinement_leaves_no_leaked_threads():
    udf = _slow_udf()
    service = QueryService(worker_budget=2)
    handle = service.submit(
        _query(udf), _engine(), plan=ExecutionPlan(batch_size=1)
    )
    # Wait until the first row settled, so the cancel lands mid-refinement.
    first = next(iter(handle.stream()))
    assert isinstance(first, QueryEvent)
    assert handle.cancel() is True
    with pytest.raises(QueryCancelledError):
        handle.result(timeout=60)
    assert handle.cancelled() and handle.done()
    assert service.stats["cancelled"] == 1
    service.close()
    assert _no_service_threads_left() == []


def test_cancel_after_completion_returns_false():
    udf = _fast_udf()
    with QueryService() as service:
        handle = service.submit(_query(udf), _engine())
        handle.result(timeout=60)
        assert handle.cancel() is False
        assert not handle.cancelled()


def test_server_side_timeout_raises_query_timeout_error():
    # The full message is pinned: a server-side expiry must say the *query*
    # exceeded *its* timeout (the deadline killed the work), which is a
    # different statement from the client-side wait expiring below.
    udf = _slow_udf()
    with QueryService(worker_budget=2) as service:
        handle = service.submit(_query(udf), _engine(), timeout=0.2, name="q-srv")
        expected = re.escape("query 'q-srv' exceeded its 0.2s timeout")
        with pytest.raises(QueryTimeoutError, match=f"^{expected}$"):
            handle.result(timeout=60)
        assert service.stats["timed_out"] == 1
    assert _no_service_threads_left() == []


def test_client_side_result_wait_timeout_leaves_query_running():
    # Full message pinned: a client-side expiry must say only the result()
    # *wait* ran out and the query itself is still running — callers decide
    # between re-waiting and cancelling based on exactly this distinction.
    udf = _slow_udf()
    with QueryService(worker_budget=2) as service:
        handle = service.submit(_query(udf), _engine(), name="q-cli")
        expected = re.escape(
            "query 'q-cli' did not finish within the 0.05s result() wait "
            "(the query itself is still running)"
        )
        with pytest.raises(QueryTimeoutError, match=f"^{expected}$"):
            handle.result(timeout=0.05)
        assert not handle.done()
        handle.cancel()
    assert _no_service_threads_left() == []


def test_close_force_finishes_pending_handles():
    udf = _slow_udf()
    service = QueryService(worker_budget=2)
    handle = service.submit(_query(udf), _engine())
    service.close()
    with pytest.raises(QueryCancelledError):
        handle.result(timeout=10)
    assert _no_service_threads_left() == []


def test_submit_after_close_raises_service_error():
    service = QueryService()
    service.close()
    with pytest.raises(ServiceError, match="closed"):
        service.submit(_query(_fast_udf()), _engine())
    service.close()  # idempotent


# ---------------------------------------------------------------------------
# Anytime event stream
# ---------------------------------------------------------------------------

def test_event_stream_yields_ordered_verdicts_matching_result():
    udf = _fast_udf()
    with QueryService() as service:
        handle = service.submit(
            _query(udf), _engine(), plan=ExecutionPlan(batch_size=1)
        )
        events = list(handle.stream())
        result = handle.result(timeout=60)
    assert [e.tuple_id for e in events] == list(range(len(RELATION)))
    assert [e.version for e in events] == list(range(len(RELATION)))
    assert all(e.verdict in (VERDICT_CERTAIN, VERDICT_POSSIBLE) for e in events)
    assert [e.as_verdict() for e in events] == list(result.verdicts)
    # The stream stays drainable after the fact (second consumer sees EOF).
    assert list(handle.stream()) == []


# ---------------------------------------------------------------------------
# Session facade
# ---------------------------------------------------------------------------

def test_session_owns_and_closes_its_service():
    session = Session(lambda: _engine(), plan=ExecutionPlan(batch_size=2))
    session.run(_query(_fast_udf()))
    session.close()
    with pytest.raises(ServiceError, match="closed"):
        session.submit(_query(_fast_udf()))
    assert _no_service_threads_left() == []


def test_session_shares_external_service_without_closing_it():
    with QueryService() as service:
        with Session(lambda: _engine(), service=service) as session:
            session.run(_query(_fast_udf()))
        # Exiting the session must not close the shared service.
        handle = service.submit(_query(_fast_udf()), _engine())
        handle.result(timeout=60)
    assert _no_service_threads_left() == []


def test_session_per_query_plan_overrides_default():
    with Session(lambda: _engine(), plan=ExecutionPlan(batch_size=2)) as session:
        handle = session.submit(_query(_fast_udf()), plan=ExecutionPlan(batch_size=1))
        assert handle.result(timeout=60).plan.batch_size == 1


# ---------------------------------------------------------------------------
# Cross-query caches
# ---------------------------------------------------------------------------

def test_share_models_warm_starts_within_a_region():
    calls = {"n": 0}

    def f(X: np.ndarray) -> np.ndarray:
        calls["n"] += 1
        return np.sin(3.0 * np.atleast_2d(X)[:, 0])

    udf = UDF(f, dimension=1, name="counted", vectorized=True)
    with QueryService(share_models=True) as service:
        service.submit(_query(udf), _engine(), region="r1").result(timeout=60)
        cold = calls["n"]
        service.submit(_query(udf), _engine(), region="r1").result(timeout=60)
        warm = calls["n"] - cold
        service.submit(_query(udf), _engine(), region="r2").result(timeout=60)
        other_region = calls["n"] - cold - warm
    assert warm < cold  # trained emulator was reused
    assert other_region == cold  # regions are isolated


def _counted_udf(per_call: float = 0.003):
    """A ``counted`` UDF with a thread-safe call counter and a real cost.

    The sleep releases the GIL so two served queries genuinely overlap;
    each test builds its own instance because the counter is mutable
    state on the UDF object.
    """
    calls = {"n": 0}
    lock = threading.Lock()

    def f(X: np.ndarray) -> np.ndarray:
        with lock:
            calls["n"] += 1
        time.sleep(per_call)
        return np.sin(3.0 * np.atleast_2d(X)[:, 0])

    return UDF(f, dimension=1, name="counted", vectorized=True), calls


def test_concurrent_same_region_queries_share_one_live_store():
    """Two in-flight queries on one ``(udf, region)`` both warm-start.

    Regression guard for the loaned-emulator race: the pre-store
    ``share_models`` cache checked one model out to the first query, so a
    concurrent second query found the slot empty and retrained fully
    cold.  The store has no checkout — both engines must bind to the
    *same* live store and each must absorb training rows the other paid
    for, mid-stream.
    """
    udf_a, calls_a = _counted_udf()
    udf_b, calls_b = _counted_udf()
    engine_a, engine_b = _engine(), _engine()
    with QueryService(share_models=True, worker_budget=4) as service:
        handle_a = service.submit(_query(udf_a), engine_a, region="r1")
        handle_b = service.submit(_query(udf_b), engine_b, region="r1")
        handle_a.result(timeout=60)
        handle_b.result(timeout=60)
        store = service._model_stores["r1"]["counted"]
    sync_a = engine_a._processor_for(udf_a).model_sync
    sync_b = engine_b._processor_for(udf_b).model_sync
    # One store, not a loan: both engines bound to the same object.
    assert sync_a.store is store
    assert sync_b.store is store
    # Both warm-started: each absorbed rows the *other* query evaluated
    # (absorption never calls the UDF, so these rows came for free) ...
    assert sync_a.absorbed_rows > 0
    assert sync_b.absorbed_rows > 0
    # ... and each published its own work for the other to reuse.
    assert sync_a.published_rows > 0
    assert sync_b.published_rows > 0
    assert calls_a["n"] > 0 and calls_b["n"] > 0


def test_served_result_surfaces_model_phase_timings():
    """``QueryResult.timings`` always carries the model-exchange phases.

    With ``share_models`` on, the store round-trips are charged to
    ``model_refresh`` (fetch + absorb) and ``model_append`` (gather +
    publish); with it off the phases still exist — pinned at zero — so
    bench rows render stable ``model_refresh_ms`` / ``model_append_ms``
    columns either way.
    """
    udf, _ = _counted_udf(per_call=0.0)
    with QueryService(share_models=True) as service:
        result = service.submit(_query(udf), _engine(), region="r1").result(
            timeout=60
        )
    assert "model_refresh" in result.timings.seconds
    assert "model_append" in result.timings.seconds
    assert result.timings.get("model_refresh") > 0.0

    udf2, _ = _counted_udf(per_call=0.0)
    with QueryService(share_models=False) as service:
        result = service.submit(_query(udf2), _engine()).result(timeout=60)
    assert result.timings.get("model_refresh") == 0.0
    assert result.timings.get("model_append") == 0.0


def test_plan_cache_dedupes_equal_plans():
    with QueryService() as service:
        a = service._cached_plan(ExecutionPlan(batch_size=2))
        b = service._cached_plan(ExecutionPlan(batch_size=2))
        c = service._cached_plan(ExecutionPlan(batch_size=4))
    assert a is b
    assert c is not a
