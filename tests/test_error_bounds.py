"""Unit tests for GP output-distribution error bounds (§4.2–4.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.error_bounds import (
    build_envelope_outputs,
    combine_bounds,
    gp_discrepancy_bound,
    gp_discrepancy_bound_naive,
    gp_ks_bound,
    interval_probability_bounds,
)
from repro.core.metrics import ks_distance, lambda_discrepancy
from repro.distributions.empirical import EmpiricalDistribution
from repro.exceptions import AccuracyError, GPError


def random_envelope(seed=0, m=200, spread=0.3, z=2.0):
    rng = np.random.default_rng(seed)
    means = rng.normal(size=m)
    stds = np.abs(rng.normal(scale=spread, size=m))
    return build_envelope_outputs(means, stds, z)


class TestEnvelopeConstruction:
    def test_ordering_of_variables(self):
        envelope = random_envelope()
        grid = np.linspace(-5, 5, 101)
        # Y_S = means - z*std  has the *largest* CDF, Y_L the smallest.
        assert np.all(envelope.y_lower.cdf(grid) >= envelope.y_hat.cdf(grid) - 1e-12)
        assert np.all(envelope.y_hat.cdf(grid) >= envelope.y_upper.cdf(grid) - 1e-12)

    def test_zero_band_collapses_to_mean(self):
        means = np.array([1.0, 2.0, 3.0])
        envelope = build_envelope_outputs(means, np.zeros(3), 2.0)
        assert ks_distance(envelope.y_hat, envelope.y_lower) == 0.0
        assert ks_distance(envelope.y_hat, envelope.y_upper) == 0.0

    def test_validation(self):
        with pytest.raises(GPError):
            build_envelope_outputs(np.zeros(3), np.zeros(2), 1.0)
        with pytest.raises(GPError):
            build_envelope_outputs(np.zeros(3), -np.ones(3), 1.0)
        with pytest.raises(GPError):
            build_envelope_outputs(np.zeros(3), np.ones(3), -1.0)

    def test_output_range(self):
        envelope = build_envelope_outputs(np.array([0.0, 10.0]), np.zeros(2), 1.0)
        assert envelope.output_range() == pytest.approx(10.0)
        assert envelope.n_samples == 2


class TestIntervalBounds:
    def test_bracketing_property(self):
        envelope = random_envelope(seed=1)
        for a, b in [(-1.0, 0.0), (-2.0, 2.0), (0.5, 0.6)]:
            rho_l, rho_hat, rho_u = interval_probability_bounds(envelope, a, b)
            assert rho_l - 1e-12 <= rho_hat <= rho_u + 1e-12
            assert 0.0 <= rho_l and rho_u <= 1.0

    def test_invalid_interval(self):
        envelope = random_envelope()
        with pytest.raises(AccuracyError):
            interval_probability_bounds(envelope, 1.0, 0.0)

    def test_degenerate_envelope_gives_exact_probability(self):
        means = np.linspace(0, 1, 100)
        envelope = build_envelope_outputs(means, np.zeros(100), 2.0)
        rho_l, rho_hat, rho_u = interval_probability_bounds(envelope, 0.25, 0.75)
        assert rho_l == pytest.approx(rho_hat)
        assert rho_u == pytest.approx(rho_hat)


class TestDiscrepancyBound:
    def test_efficient_matches_naive(self):
        for seed in range(4):
            envelope = random_envelope(seed=seed, m=60)
            for lam in (0.0, 0.1, 0.5, 2.0):
                fast = gp_discrepancy_bound(envelope, lam)
                slow = gp_discrepancy_bound_naive(envelope, lam)
                assert fast == pytest.approx(slow, abs=1e-12)

    def test_zero_for_degenerate_envelope(self):
        means = np.random.default_rng(2).normal(size=150)
        envelope = build_envelope_outputs(means, np.zeros(150), 2.0)
        assert gp_discrepancy_bound(envelope, 0.1) == pytest.approx(0.0, abs=1e-12)

    def test_grows_with_band_width(self):
        rng = np.random.default_rng(3)
        means = rng.normal(size=150)
        stds = np.abs(rng.normal(scale=0.2, size=150))
        narrow = gp_discrepancy_bound(build_envelope_outputs(means, stds, 1.0), 0.1)
        wide = gp_discrepancy_bound(build_envelope_outputs(means, stds, 3.0), 0.1)
        assert wide >= narrow

    def test_decreases_with_lambda(self):
        envelope = random_envelope(seed=4)
        values = [gp_discrepancy_bound(envelope, lam) for lam in (0.0, 0.2, 1.0, 3.0)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_bounded_by_one(self):
        envelope = random_envelope(seed=5, spread=5.0, z=3.0)
        assert gp_discrepancy_bound(envelope, 0.0) <= 1.0

    def test_negative_lambda_rejected(self):
        envelope = random_envelope()
        with pytest.raises(AccuracyError):
            gp_discrepancy_bound(envelope, -0.1)
        with pytest.raises(AccuracyError):
            gp_discrepancy_bound_naive(envelope, -0.1)

    def test_bound_dominates_any_envelope_function_error(self):
        """The bound must dominate the λ-discrepancy between the mean output
        and the output of *any* function inside the envelope."""
        rng = np.random.default_rng(6)
        m = 300
        means = rng.normal(size=m)
        stds = np.abs(rng.normal(scale=0.4, size=m))
        z = 2.0
        envelope = build_envelope_outputs(means, stds, z)
        lam = 0.2
        bound = gp_discrepancy_bound(envelope, lam)
        for _ in range(10):
            # A random "sample function" output within the envelope bounds.
            wiggle = rng.uniform(-1.0, 1.0, size=m)
            y_tilde = EmpiricalDistribution(means + wiggle * z * stds)
            actual = lambda_discrepancy(envelope.y_hat, y_tilde, lam)
            assert actual <= bound + 1e-9


class TestKSBound:
    def test_is_max_of_two_ks_distances(self):
        envelope = random_envelope(seed=7)
        expected = max(
            ks_distance(envelope.y_hat, envelope.y_lower),
            ks_distance(envelope.y_hat, envelope.y_upper),
        )
        assert gp_ks_bound(envelope) == pytest.approx(expected)

    def test_dominates_envelope_function_ks(self):
        rng = np.random.default_rng(8)
        m = 250
        means = rng.normal(size=m)
        stds = np.abs(rng.normal(scale=0.3, size=m))
        envelope = build_envelope_outputs(means, stds, 2.0)
        bound = gp_ks_bound(envelope)
        for _ in range(10):
            wiggle = rng.uniform(-1.0, 1.0, size=m)
            y_tilde = EmpiricalDistribution(means + wiggle * 2.0 * stds)
            assert ks_distance(envelope.y_hat, y_tilde) <= bound + 1e-9


class TestCombinedBound:
    def test_theorem_4_1_arithmetic(self):
        bound = combine_bounds(0.03, 0.07, 0.02, 0.03)
        assert bound.epsilon_total == pytest.approx(0.1)
        assert bound.confidence == pytest.approx(0.98 * 0.97)

    def test_satisfies(self):
        bound = combine_bounds(0.02, 0.05, 0.01, 0.02)
        assert bound.satisfies(0.1, 0.05)
        assert not bound.satisfies(0.05, 0.05)
        assert not bound.satisfies(0.1, 0.01)

    def test_validation(self):
        with pytest.raises(AccuracyError):
            combine_bounds(-0.01, 0.05, 0.01, 0.01)
        with pytest.raises(AccuracyError):
            combine_bounds(0.01, 0.05, 1.0, 0.01)
