"""Unit tests for multivariate / composite distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions.continuous import Gaussian, Uniform
from repro.distributions.multivariate import (
    IndependentJoint,
    MultivariateGaussian,
    PointMass,
    joint_from_marginals,
)
from repro.exceptions import DistributionError


class TestMultivariateGaussian:
    def test_dimension(self):
        dist = MultivariateGaussian([0.0, 1.0], [[1.0, 0.0], [0.0, 2.0]])
        assert dist.dimension == 2

    def test_sample_covariance_recovered(self, rng):
        cov = [[1.0, 0.6], [0.6, 2.0]]
        dist = MultivariateGaussian([0.0, 0.0], cov)
        samples = dist.sample(60000, random_state=rng)
        empirical = np.cov(samples.T)
        assert np.allclose(empirical, cov, atol=0.06)

    def test_asymmetric_covariance_rejected(self):
        with pytest.raises(DistributionError):
            MultivariateGaussian([0.0, 0.0], [[1.0, 0.5], [0.4, 1.0]])

    def test_non_psd_covariance_rejected(self):
        with pytest.raises(DistributionError):
            MultivariateGaussian([0.0, 0.0], [[1.0, 2.0], [2.0, 1.0]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DistributionError):
            MultivariateGaussian([0.0, 0.0, 0.0], [[1.0, 0.0], [0.0, 1.0]])

    def test_support_box_contains_mean(self):
        dist = MultivariateGaussian([3.0, -2.0], [[1.0, 0.0], [0.0, 1.0]])
        lo, hi = dist.support_box()
        assert np.all(lo < dist.mean()) and np.all(hi > dist.mean())


class TestIndependentJoint:
    def test_dimension_is_sum_of_components(self):
        joint = IndependentJoint([Gaussian(0, 1), Uniform(0, 1), Gaussian(5, 2)])
        assert joint.dimension == 3

    def test_requires_components(self):
        with pytest.raises(DistributionError):
            IndependentJoint([])

    def test_sample_columns_match_marginals(self, rng):
        joint = IndependentJoint([Gaussian(0.0, 1.0), Gaussian(10.0, 0.1)])
        samples = joint.sample(20000, random_state=rng)
        assert np.mean(samples[:, 0]) == pytest.approx(0.0, abs=0.05)
        assert np.mean(samples[:, 1]) == pytest.approx(10.0, abs=0.01)

    def test_components_are_independent(self, rng):
        joint = IndependentJoint([Gaussian(0.0, 1.0), Gaussian(0.0, 1.0)])
        samples = joint.sample(40000, random_state=rng)
        correlation = np.corrcoef(samples.T)[0, 1]
        assert abs(correlation) < 0.03

    def test_mean_concatenates(self):
        joint = joint_from_marginals([Gaussian(1.0, 1.0), Gaussian(2.0, 1.0)])
        assert np.allclose(joint.mean(), [1.0, 2.0])

    def test_support_box_concatenates(self):
        joint = IndependentJoint([Uniform(0, 1), Uniform(5, 6)])
        lo, hi = joint.support_box()
        assert lo.shape == (2,) and hi.shape == (2,)
        assert lo[1] >= 5.0 - 1e-6 and hi[1] <= 6.0 + 1e-6

    def test_marginal_accessor(self):
        g = Gaussian(0.0, 1.0)
        joint = IndependentJoint([g, Uniform(0, 1)])
        assert joint.marginal(0) is g

    def test_nested_multivariate_component(self, rng):
        inner = MultivariateGaussian([0.0, 0.0], [[1.0, 0.0], [0.0, 1.0]])
        joint = IndependentJoint([inner, Gaussian(5.0, 1.0)])
        assert joint.dimension == 3
        assert joint.sample(10, random_state=rng).shape == (10, 3)


class TestPointMass:
    def test_scalar_value(self):
        pm = PointMass(3.0)
        assert pm.dimension == 1
        samples = pm.sample(5)
        assert np.all(samples == 3.0)

    def test_vector_value(self):
        pm = PointMass([1.0, 2.0])
        assert pm.dimension == 2
        assert np.allclose(pm.mean(), [1.0, 2.0])

    def test_support_box_is_degenerate(self):
        lo, hi = PointMass(7.0).support_box()
        assert lo[0] == hi[0] == 7.0
