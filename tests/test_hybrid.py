"""Unit tests for the hybrid GP / MC executor (§5.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.core.hybrid import (
    HybridExecutor,
    rule_based_choice,
)
from repro.core.mc_baseline import MCResult
from repro.core.olgapro import OnlineTupleResult
from repro.distributions.continuous import Gaussian
from repro.exceptions import GPError
from repro.udf.base import UDF


class TestRuleBasedChoice:
    def test_fast_functions_use_mc(self):
        assert rule_based_choice(dimension=1, eval_time=1e-6) == "mc"
        assert rule_based_choice(dimension=10, eval_time=1e-6) == "mc"

    def test_slow_low_dimensional_functions_use_gp(self):
        assert rule_based_choice(dimension=1, eval_time=1e-2) == "gp"
        assert rule_based_choice(dimension=2, eval_time=1e-3) == "gp"

    def test_slow_high_dimensional_functions_use_gp(self):
        assert rule_based_choice(dimension=10, eval_time=0.5) == "gp"

    def test_moderate_high_dimensional_functions_use_mc(self):
        assert rule_based_choice(dimension=8, eval_time=5e-4) == "mc"

    def test_ambiguous_cases_measure(self):
        assert rule_based_choice(dimension=2, eval_time=1e-4) == "measure"
        assert rule_based_choice(dimension=5, eval_time=1e-2) == "measure"

    def test_validation(self):
        with pytest.raises(GPError):
            rule_based_choice(dimension=0, eval_time=1e-3)
        with pytest.raises(GPError):
            rule_based_choice(dimension=1, eval_time=-1.0)


class TestHybridExecutor:
    def make_udf(self, simulated_eval_time):
        return UDF(
            lambda x: float(x[0]) ** 2 + 1.0,
            dimension=1,
            name="sq",
            simulated_eval_time=simulated_eval_time,
            domain=(np.array([-3.0]), np.array([3.0])),
        )

    def test_picks_mc_for_fast_udf(self):
        executor = HybridExecutor(
            self.make_udf(0.0),
            AccuracyRequirement(epsilon=0.2, delta=0.1),
            random_state=0,
            initial_training_points=5,
            n_samples=300,
        )
        decision = executor.decide(Gaussian(0.5, 0.2))
        assert decision.method == "mc"
        assert decision.source == "rule"
        result = executor.process(Gaussian(0.5, 0.2))
        assert isinstance(result, MCResult)

    def test_picks_gp_for_slow_udf(self):
        executor = HybridExecutor(
            self.make_udf(5e-3),
            AccuracyRequirement(epsilon=0.2, delta=0.1),
            random_state=0,
            initial_training_points=5,
            n_samples=300,
        )
        decision = executor.decide(Gaussian(0.5, 0.2))
        assert decision.method == "gp"
        result = executor.process(Gaussian(0.5, 0.2))
        assert isinstance(result, OnlineTupleResult)

    def test_decision_is_cached(self):
        executor = HybridExecutor(
            self.make_udf(0.0),
            AccuracyRequirement(epsilon=0.2, delta=0.1),
            random_state=0,
            initial_training_points=5,
            n_samples=200,
        )
        first = executor.decide(Gaussian(0.0, 0.1))
        second = executor.decide(Gaussian(1.0, 0.1))
        assert first is second

    def test_decision_none_before_first_tuple(self):
        executor = HybridExecutor(self.make_udf(0.0), random_state=0)
        assert executor.decision is None

    def test_measured_decision_path(self):
        # Pick an evaluation time in the "measure" band for a 1-D function and
        # check that a concrete decision is reached by probing.
        udf = self.make_udf(1e-4)
        executor = HybridExecutor(
            udf,
            AccuracyRequirement(epsilon=0.2, delta=0.1),
            probe_tuples=1,
            random_state=0,
            initial_training_points=5,
            n_samples=200,
        )
        decision = executor.decide(Gaussian(0.5, 0.2))
        assert decision.method in ("gp", "mc")
        assert decision.source in ("rule", "measured")
