"""Unit tests for local inference (§5.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.local_inference import (
    LocalInferenceEngine,
    global_inference,
    initial_search_radius,
    kernel_at_distance,
    omitted_weight_bound,
)
from repro.exceptions import GPError
from repro.gp.kernels import SquaredExponential
from repro.gp.regression import GaussianProcess
from repro.index.bounding_box import BoundingBox
from repro.index.rtree import RTree


def build_model(n=120, seed=0, lengthscale=1.0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, size=(n, 2))
    y = np.sin(X[:, 0]) + np.cos(X[:, 1])
    gp = GaussianProcess(kernel=SquaredExponential(signal_std=1.0, lengthscale=lengthscale))
    gp.fit(X, y)
    index = RTree(dimension=2)
    index.bulk_load(X)
    return gp, index


class TestKernelAtDistance:
    def test_matches_direct_evaluation(self):
        kernel = SquaredExponential(signal_std=2.0, lengthscale=1.5)
        distances = np.array([0.0, 1.0, 3.0])
        values = kernel_at_distance(kernel, distances)
        expected = 4.0 * np.exp(-0.5 * (distances / 1.5) ** 2)
        assert np.allclose(values, expected)

    def test_monotone_decreasing(self):
        kernel = SquaredExponential()
        values = kernel_at_distance(kernel, np.array([0.0, 0.5, 1.0, 2.0, 4.0]))
        assert np.all(np.diff(values) < 0)


class TestOmittedWeightBound:
    def test_zero_when_nothing_excluded(self):
        kernel = SquaredExponential()
        box = BoundingBox(np.zeros(2), np.ones(2))
        assert omitted_weight_bound(kernel, np.empty((0, 2)), np.empty(0), box) == 0.0

    def test_bound_dominates_true_omitted_weight(self, rng):
        kernel = SquaredExponential(signal_std=1.0, lengthscale=1.0)
        excluded = rng.uniform(-5, 15, size=(40, 2))
        alpha = rng.normal(size=40)
        box = BoundingBox(np.array([4.0, 4.0]), np.array([6.0, 6.0]))
        bound = omitted_weight_bound(kernel, excluded, alpha, box, subdivisions=1)
        # True omitted contribution at many points inside the box.
        for _ in range(200):
            x = rng.uniform(box.low, box.high)
            k = kernel(x.reshape(1, -1), excluded).ravel()
            assert abs(float(k @ alpha)) <= bound + 1e-9

    def test_subdivision_tightens_bound(self, rng):
        kernel = SquaredExponential(signal_std=1.0, lengthscale=1.0)
        excluded = rng.uniform(-5, 15, size=(30, 2))
        alpha = rng.normal(size=30)
        box = BoundingBox(np.array([2.0, 2.0]), np.array([8.0, 8.0]))
        coarse = omitted_weight_bound(kernel, excluded, alpha, box, subdivisions=1)
        fine = omitted_weight_bound(kernel, excluded, alpha, box, subdivisions=3)
        assert fine <= coarse + 1e-12

    def test_mismatched_inputs_rejected(self):
        kernel = SquaredExponential()
        box = BoundingBox(np.zeros(2), np.ones(2))
        with pytest.raises(GPError):
            omitted_weight_bound(kernel, np.zeros((3, 2)), np.zeros(2), box)


class TestInitialRadius:
    def test_larger_threshold_means_smaller_radius(self):
        kernel = SquaredExponential(signal_std=1.0, lengthscale=1.0)
        alpha = np.ones(50)
        tight = initial_search_radius(kernel, alpha, gamma_threshold=0.001)
        loose = initial_search_radius(kernel, alpha, gamma_threshold=1.0)
        assert tight > loose

    def test_huge_threshold_returns_lengthscale(self):
        kernel = SquaredExponential(lengthscale=2.0)
        assert initial_search_radius(kernel, np.ones(3), gamma_threshold=100.0) == 2.0


class TestLocalInferenceEngine:
    def test_validation(self):
        with pytest.raises(GPError):
            LocalInferenceEngine(gamma_threshold=0.0)
        with pytest.raises(GPError):
            LocalInferenceEngine(gamma_threshold=0.1, expansion_factor=1.0)

    def test_local_matches_global_mean_within_gamma(self, rng):
        gp, index = build_model()
        engine = LocalInferenceEngine(gamma_threshold=0.01)
        samples = rng.normal(loc=[5.0, 5.0], scale=0.4, size=(200, 2))
        local = engine.predict(gp, index, samples)
        global_result = global_inference(gp, samples)
        # The γ threshold bounds the mean-prediction difference.
        assert np.max(np.abs(local.means - global_result.means)) <= 0.01 + 1e-6
        assert local.n_selected <= gp.n_training

    def test_selects_fewer_points_for_larger_gamma(self, rng):
        gp, index = build_model(lengthscale=0.8)
        samples = rng.normal(loc=[5.0, 5.0], scale=0.3, size=(100, 2))
        tight = LocalInferenceEngine(gamma_threshold=1e-4).predict(gp, index, samples)
        loose = LocalInferenceEngine(gamma_threshold=0.5).predict(gp, index, samples)
        assert loose.n_selected <= tight.n_selected

    def test_gamma_reported_below_threshold(self, rng):
        gp, index = build_model()
        engine = LocalInferenceEngine(gamma_threshold=0.05)
        samples = rng.normal(loc=[3.0, 7.0], scale=0.3, size=(80, 2))
        result = engine.predict(gp, index, samples)
        assert result.gamma <= 0.05 + 1e-12

    def test_stds_are_non_negative_and_finite(self, rng):
        gp, index = build_model()
        engine = LocalInferenceEngine(gamma_threshold=0.02)
        samples = rng.normal(loc=[5.0, 5.0], scale=0.5, size=(60, 2))
        result = engine.predict(gp, index, samples)
        assert np.all(result.stds >= 0)
        assert np.all(np.isfinite(result.stds))

    def test_untrained_gp_rejected(self):
        engine = LocalInferenceEngine(gamma_threshold=0.1)
        with pytest.raises(GPError):
            engine.select_points(GaussianProcess(), RTree(dimension=2), BoundingBox(np.zeros(2), np.ones(2)))


class TestGlobalInference:
    def test_uses_all_points(self, rng):
        gp, _ = build_model(n=50)
        samples = rng.uniform(0, 10, size=(20, 2))
        result = global_inference(gp, samples)
        assert result.n_selected == 50
        assert result.gamma == 0.0
        means, stds = gp.predict(samples)
        assert np.allclose(result.means, means)
        assert np.allclose(result.stds, stds)
