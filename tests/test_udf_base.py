"""Unit tests for the instrumented black-box UDF wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import UDFError
from repro.udf.base import UDF, as_udf


class TestEvaluation:
    def test_scalar_call(self):
        udf = UDF(lambda x: float(x[0]) + 1.0, dimension=1)
        assert udf(np.array([2.0])) == 3.0

    def test_wrong_shape_rejected(self):
        udf = UDF(lambda x: 0.0, dimension=2)
        with pytest.raises(UDFError):
            udf(np.array([1.0]))

    def test_non_finite_output_rejected(self):
        udf = UDF(lambda x: float("nan"), dimension=1)
        with pytest.raises(UDFError):
            udf(np.array([0.0]))

    def test_exception_wrapped(self):
        def broken(x):
            raise RuntimeError("boom")

        udf = UDF(broken, dimension=1, name="broken")
        with pytest.raises(UDFError, match="broken"):
            udf(np.array([0.0]))

    def test_batch_non_vectorised(self):
        udf = UDF(lambda x: float(x[0]) * 2.0, dimension=1)
        values = udf.evaluate_batch(np.array([[1.0], [2.0], [3.0]]))
        assert np.allclose(values, [2.0, 4.0, 6.0])

    def test_batch_vectorised(self):
        udf = UDF(lambda X: X[:, 0] ** 2, dimension=1, vectorized=True)
        values = udf.evaluate_batch(np.array([[1.0], [3.0]]))
        assert np.allclose(values, [1.0, 9.0])

    def test_vectorised_wrong_length_rejected(self):
        udf = UDF(lambda X: np.zeros(1), dimension=1, vectorized=True)
        with pytest.raises(UDFError):
            udf.evaluate_batch(np.zeros((3, 1)))

    def test_batch_dimension_check(self):
        udf = UDF(lambda x: 0.0, dimension=2)
        with pytest.raises(UDFError):
            udf.evaluate_batch(np.zeros((3, 1)))


class TestInstrumentation:
    def test_call_counting(self):
        udf = UDF(lambda x: 1.0, dimension=1)
        for _ in range(5):
            udf(np.array([0.0]))
        udf.evaluate_batch(np.zeros((3, 1)))
        assert udf.call_count == 8

    def test_reset_counters(self):
        udf = UDF(lambda x: 1.0, dimension=1)
        udf(np.array([0.0]))
        udf.reset_counters()
        assert udf.call_count == 0
        assert udf.real_time == 0.0

    def test_charged_time_includes_simulated_cost(self):
        udf = UDF(lambda x: 1.0, dimension=1, simulated_eval_time=0.5)
        udf(np.array([0.0]))
        udf(np.array([0.0]))
        assert udf.charged_time >= 1.0
        assert udf.real_time < 0.5  # no actual sleeping happened

    def test_with_simulated_eval_time_copies(self):
        udf = UDF(lambda x: 1.0, dimension=1)
        slow = udf.with_simulated_eval_time(0.1)
        assert slow.simulated_eval_time == 0.1
        assert udf.simulated_eval_time == 0.0
        udf(np.array([0.0]))
        assert slow.call_count == 0  # fresh counters

    def test_measure_eval_time(self):
        udf = UDF(lambda x: 1.0, dimension=1, simulated_eval_time=0.01,
                  domain=(np.array([0.0]), np.array([1.0])))
        measured = udf.measure_eval_time(n_probes=5, random_state=0)
        assert measured >= 0.01

    def test_negative_simulated_time_rejected(self):
        with pytest.raises(UDFError):
            UDF(lambda x: 1.0, dimension=1, simulated_eval_time=-1.0)


class TestDomainAndFactory:
    def test_domain_validation(self):
        with pytest.raises(UDFError):
            UDF(lambda x: 1.0, dimension=2, domain=(np.array([0.0]), np.array([1.0])))
        with pytest.raises(UDFError):
            UDF(lambda x: 1.0, dimension=1, domain=(np.array([1.0]), np.array([0.0])))

    def test_invalid_dimension(self):
        with pytest.raises(UDFError):
            UDF(lambda x: 1.0, dimension=0)

    def test_as_udf_passthrough(self):
        udf = UDF(lambda x: 1.0, dimension=1)
        assert as_udf(udf) is udf

    def test_as_udf_wraps_callable(self):
        def my_function(x):
            return float(x[0])

        udf = as_udf(my_function, dimension=1)
        assert udf.name == "my_function"
        assert udf(np.array([4.0])) == 4.0

    def test_as_udf_requires_dimension(self):
        with pytest.raises(UDFError):
            as_udf(lambda x: 1.0)


class TestAbsorbCharges:
    def test_credits_external_evaluations(self):
        udf = UDF(lambda x: float(x[0]), dimension=1)
        udf(np.array([1.0]))
        udf.absorb_charges(5, 0.25)
        assert udf.call_count == 6
        assert udf.real_time >= 0.25

    def test_rejects_negative_charges(self):
        udf = UDF(lambda x: float(x[0]), dimension=1)
        with pytest.raises(UDFError):
            udf.absorb_charges(-1, 0.0)
        with pytest.raises(UDFError):
            udf.absorb_charges(0, -0.5)
