"""Unit tests for the instrumented black-box UDF wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import UDFError
from repro.udf.base import UDF, as_udf


class TestEvaluation:
    def test_scalar_call(self):
        udf = UDF(lambda x: float(x[0]) + 1.0, dimension=1)
        assert udf(np.array([2.0])) == 3.0

    def test_wrong_shape_rejected(self):
        udf = UDF(lambda x: 0.0, dimension=2)
        with pytest.raises(UDFError):
            udf(np.array([1.0]))

    def test_non_finite_output_rejected(self):
        udf = UDF(lambda x: float("nan"), dimension=1)
        with pytest.raises(UDFError):
            udf(np.array([0.0]))

    def test_exception_wrapped(self):
        def broken(x):
            raise RuntimeError("boom")

        udf = UDF(broken, dimension=1, name="broken")
        with pytest.raises(UDFError, match="broken"):
            udf(np.array([0.0]))

    def test_batch_non_vectorised(self):
        udf = UDF(lambda x: float(x[0]) * 2.0, dimension=1)
        values = udf.evaluate_batch(np.array([[1.0], [2.0], [3.0]]))
        assert np.allclose(values, [2.0, 4.0, 6.0])

    def test_batch_vectorised(self):
        udf = UDF(lambda X: X[:, 0] ** 2, dimension=1, vectorized=True)
        values = udf.evaluate_batch(np.array([[1.0], [3.0]]))
        assert np.allclose(values, [1.0, 9.0])

    def test_vectorised_wrong_length_rejected(self):
        udf = UDF(lambda X: np.zeros(1), dimension=1, vectorized=True)
        with pytest.raises(UDFError):
            udf.evaluate_batch(np.zeros((3, 1)))

    def test_batch_dimension_check(self):
        udf = UDF(lambda x: 0.0, dimension=2)
        with pytest.raises(UDFError):
            udf.evaluate_batch(np.zeros((3, 1)))


class TestInstrumentation:
    def test_call_counting(self):
        udf = UDF(lambda x: 1.0, dimension=1)
        for _ in range(5):
            udf(np.array([0.0]))
        udf.evaluate_batch(np.zeros((3, 1)))
        assert udf.call_count == 8

    def test_reset_counters(self):
        udf = UDF(lambda x: 1.0, dimension=1)
        udf(np.array([0.0]))
        udf.reset_counters()
        assert udf.call_count == 0
        assert udf.real_time == 0.0

    def test_charged_time_includes_simulated_cost(self):
        udf = UDF(lambda x: 1.0, dimension=1, simulated_eval_time=0.5)
        udf(np.array([0.0]))
        udf(np.array([0.0]))
        assert udf.charged_time >= 1.0
        assert udf.real_time < 0.5  # no actual sleeping happened

    def test_with_simulated_eval_time_copies(self):
        udf = UDF(lambda x: 1.0, dimension=1)
        slow = udf.with_simulated_eval_time(0.1)
        assert slow.simulated_eval_time == 0.1
        assert udf.simulated_eval_time == 0.0
        udf(np.array([0.0]))
        assert slow.call_count == 0  # fresh counters

    def test_measure_eval_time(self):
        udf = UDF(lambda x: 1.0, dimension=1, simulated_eval_time=0.01,
                  domain=(np.array([0.0]), np.array([1.0])))
        measured = udf.measure_eval_time(n_probes=5, random_state=0)
        assert measured >= 0.01

    def test_negative_simulated_time_rejected(self):
        with pytest.raises(UDFError):
            UDF(lambda x: 1.0, dimension=1, simulated_eval_time=-1.0)


class TestDomainAndFactory:
    def test_domain_validation(self):
        with pytest.raises(UDFError):
            UDF(lambda x: 1.0, dimension=2, domain=(np.array([0.0]), np.array([1.0])))
        with pytest.raises(UDFError):
            UDF(lambda x: 1.0, dimension=1, domain=(np.array([1.0]), np.array([0.0])))

    def test_invalid_dimension(self):
        with pytest.raises(UDFError):
            UDF(lambda x: 1.0, dimension=0)

    def test_as_udf_passthrough(self):
        udf = UDF(lambda x: 1.0, dimension=1)
        assert as_udf(udf) is udf

    def test_as_udf_wraps_callable(self):
        def my_function(x):
            return float(x[0])

        udf = as_udf(my_function, dimension=1)
        assert udf.name == "my_function"
        assert udf(np.array([4.0])) == 4.0

    def test_as_udf_requires_dimension(self):
        with pytest.raises(UDFError):
            as_udf(lambda x: 1.0)


class TestAbsorbCharges:
    def test_credits_external_evaluations(self):
        udf = UDF(lambda x: float(x[0]), dimension=1)
        udf(np.array([1.0]))
        udf.absorb_charges(5, 0.25)
        assert udf.call_count == 6
        assert udf.real_time >= 0.25

    def test_rejects_negative_charges(self):
        udf = UDF(lambda x: float(x[0]), dimension=1)
        with pytest.raises(UDFError):
            udf.absorb_charges(-1, 0.0)
        with pytest.raises(UDFError):
            udf.absorb_charges(0, -0.5)


class TestInFlightGauges:
    """In-flight tracking under concurrency, resets, and pickling."""

    def test_reset_reseeds_high_water_to_outstanding_count(self):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        release = threading.Event()
        started = threading.Barrier(4)

        def slow(x):
            started.wait(timeout=5.0)
            release.wait(timeout=5.0)
            return float(x[0])

        udf = UDF(slow, dimension=1)
        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = udf.submit_rows(pool, np.arange(3.0).reshape(3, 1))
            started.wait(timeout=5.0)  # all three genuinely in flight
            assert udf.in_flight == 3
            assert udf.max_in_flight == 3
            udf.reset_counters()
            # The outstanding evaluations are the new window's floor.
            assert udf.max_in_flight == 3
            release.set()
            for future in futures:
                future.result()
        assert udf.in_flight == 0
        assert udf.call_count == 3

    def test_threaded_reset_never_leaves_mark_below_outstanding(self):
        """Hammer enter/exit/reset concurrently; the gauge invariants hold.

        Regression test for the reset/high-water seam: a reset racing
        completing evaluations must never leave ``max_in_flight`` below the
        number of evaluations still outstanding, and the gauge must return
        to zero once everything settles.
        """
        import time as _time
        from concurrent.futures import ThreadPoolExecutor

        udf = UDF(lambda x: (_time.sleep(0.001), float(x[0]))[1], dimension=1)
        rows = np.arange(64.0).reshape(64, 1)
        resets_with_outstanding = 0
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = udf.submit_rows(pool, rows)
            for _ in range(50):
                udf.reset_counters()
                # All 64 submissions entered flight before the loop and only
                # *exits* race the reset from here on (no new enters), so
                # the mark can only have been reseeded by a reset and never
                # decreases in between.  The documented invariant is that it
                # can never land below the number still outstanding when it
                # is read after the reset — a reset that raced completions
                # and lost updates would break exactly this.
                outstanding_floor = udf.in_flight
                mark = udf.max_in_flight
                if outstanding_floor:
                    resets_with_outstanding += 1
                assert mark >= outstanding_floor
                _time.sleep(0.0005)
            for future in futures:
                future.result()
        assert udf.in_flight == 0
        assert udf.max_in_flight >= 0
        # The hammer genuinely raced resets against in-flight evaluations.
        assert resets_with_outstanding > 0

    def test_unbalanced_exit_clamps_at_zero(self):
        udf = UDF(lambda x: float(x[0]), dimension=1)
        udf._exit_flight()
        assert udf.in_flight == 0

    def test_pickled_copy_starts_with_zero_flight_gauges(self):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        release = threading.Event()
        started = threading.Barrier(3)

        def slow(x):
            started.wait(timeout=5.0)
            release.wait(timeout=5.0)
            return float(x[0])

        udf = UDF(slow, dimension=1)
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = udf.submit_rows(pool, np.arange(2.0).reshape(2, 1))
            started.wait(timeout=5.0)
            assert udf.in_flight == 2
            # A copy "pickled" mid-flight (the pickle protocol's state
            # round-trip; the black box itself need not be picklable here)
            # must not inherit phantom in-flight evaluations: they will
            # never complete in the copy's process.
            state = dict(udf.__getstate__())
            release.set()
            for future in futures:
                future.result()
        clone = UDF.__new__(UDF)
        clone.__setstate__(state)
        assert clone.in_flight == 0
        assert clone.max_in_flight == 0
        # Charge counters, by contrast, do carry over (none had completed
        # when the copy was taken; the parent charged both afterwards).
        assert clone.call_count == 0
        assert udf.call_count == 2
