"""Unit tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.filtering import SelectionPredicate
from repro.distributions.multivariate import IndependentJoint
from repro.exceptions import DistributionError
from repro.udf.synthetic import reference_function
from repro.workloads.generators import (
    WorkloadSpec,
    input_distribution,
    input_stream,
    selectivity_predicate,
    true_output_distribution,
    workload_for_udf,
)


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(DistributionError):
            WorkloadSpec(dimension=0)
        with pytest.raises(DistributionError):
            WorkloadSpec(dimension=1, domain_low=5.0, domain_high=1.0)
        with pytest.raises(DistributionError):
            WorkloadSpec(dimension=1, input_std=0.0)

    def test_defaults_match_paper(self):
        spec = WorkloadSpec(dimension=2)
        assert spec.domain_low == 0.0
        assert spec.domain_high == 10.0
        assert spec.input_std == 0.5
        assert spec.family == "gaussian"


class TestInputGeneration:
    @pytest.mark.parametrize("family", ["gaussian", "exponential", "gamma"])
    def test_families_produce_correct_dimension(self, family, rng):
        spec = WorkloadSpec(dimension=3, family=family)
        dist = input_distribution(spec, rng)
        samples = dist.sample(50, random_state=rng)
        assert samples.shape == (50, 3)

    def test_unknown_family_rejected(self, rng):
        spec = WorkloadSpec(dimension=1)
        object.__setattr__(spec, "family", "cauchy")
        with pytest.raises(DistributionError):
            input_distribution(spec, rng)

    def test_means_inside_domain(self, rng):
        spec = WorkloadSpec(dimension=2)
        for _ in range(20):
            dist = input_distribution(spec, rng)
            mean = dist.mean()
            assert np.all(mean >= spec.domain_low) and np.all(mean <= spec.domain_high)

    def test_stream_length_and_variety(self):
        spec = WorkloadSpec(dimension=1)
        stream = list(input_stream(spec, 10, random_state=0))
        assert len(stream) == 10
        means = [float(d.mean()[0]) for d in stream]
        assert len(set(np.round(means, 6))) > 1

    def test_stream_requires_positive_count(self):
        with pytest.raises(DistributionError):
            list(input_stream(WorkloadSpec(dimension=1), 0))

    def test_single_dimension_returns_marginal(self, rng):
        spec = WorkloadSpec(dimension=1)
        dist = input_distribution(spec, rng)
        assert not isinstance(dist, IndependentJoint)


class TestWorkloadForUDF:
    def test_uses_udf_domain(self, f1_udf):
        spec = workload_for_udf(f1_udf)
        assert spec.dimension == 2
        assert spec.domain_low == 0.0 and spec.domain_high == 10.0
        assert spec.input_std == pytest.approx(0.5)

    def test_scales_sigma_to_domain(self):
        from repro.udf.astro import galage_udf

        spec = workload_for_udf(galage_udf())
        # The redshift domain is ~[0.01, 1.5]; sigma_I scales accordingly.
        assert spec.input_std < 0.1


class TestTruthAndPredicates:
    def test_true_output_distribution_does_not_touch_counters(self, f1_udf, gaussian_2d_input):
        calls_before = f1_udf.call_count
        truth = true_output_distribution(f1_udf, gaussian_2d_input, n_samples=500, random_state=0)
        assert f1_udf.call_count == calls_before
        assert truth.size == 500

    def test_selectivity_predicate_orders_filter_rates(self):
        udf = reference_function("F1")
        spec = workload_for_udf(udf)
        low_rate = selectivity_predicate(udf, spec, 0.2, random_state=0, n_probe_tuples=15)
        high_rate = selectivity_predicate(udf, spec, 0.9, random_state=0, n_probe_tuples=15)
        assert isinstance(low_rate, SelectionPredicate)
        # A higher target filter rate means a more demanding (higher) cut.
        assert high_rate.low > low_rate.low

    def test_selectivity_predicate_validation(self):
        udf = reference_function("F1")
        spec = workload_for_udf(udf)
        with pytest.raises(DistributionError):
            selectivity_predicate(udf, spec, 0.0)
