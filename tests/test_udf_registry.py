"""Unit tests for the UDF registry used by the query engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import UDFError
from repro.udf.base import UDF
from repro.udf.registry import UDFRegistry, default_registry


class TestRegistry:
    def make_udf(self, name="f"):
        return UDF(lambda x: 1.0, dimension=1, name=name)

    def test_register_and_get(self):
        registry = UDFRegistry()
        udf = self.make_udf("MyFunc")
        registry.register(udf)
        assert registry.get("myfunc") is udf
        assert registry.get("MYFUNC") is udf

    def test_register_under_alternate_name(self):
        registry = UDFRegistry()
        udf = self.make_udf()
        registry.register(udf, name="alias")
        assert registry.get("alias") is udf

    def test_duplicate_rejected_unless_replace(self):
        registry = UDFRegistry()
        registry.register(self.make_udf("g"))
        with pytest.raises(UDFError):
            registry.register(self.make_udf("g"))
        registry.register(self.make_udf("g"), replace=True)

    def test_unknown_name_raises(self):
        registry = UDFRegistry()
        with pytest.raises(UDFError):
            registry.get("nothing")

    def test_contains_len_iter(self):
        registry = UDFRegistry()
        registry.register(self.make_udf("a"))
        registry.register(self.make_udf("b"))
        assert "a" in registry and "B" in registry and "c" not in registry
        assert len(registry) == 2
        assert list(registry) == ["a", "b"]

    def test_empty_name_rejected(self):
        registry = UDFRegistry()
        with pytest.raises(UDFError):
            registry.register(UDF(lambda x: 1.0, dimension=1, name=""))


class TestDefaultRegistry:
    def test_contains_case_study_udfs(self):
        registry = default_registry()
        for name in ("GalAge", "ComoveVol", "AngDist", "Distance"):
            assert name in registry

    def test_returned_udfs_are_callable(self):
        registry = default_registry()
        assert registry.get("galage")(np.array([0.3])) > 0
