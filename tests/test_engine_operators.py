"""Unit tests for the physical query operators and the execution engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.core.filtering import SelectionPredicate
from repro.distributions.continuous import Gaussian
from repro.distributions.empirical import EmpiricalDistribution
from repro.engine.executor import UDFExecutionEngine
from repro.engine.operators import ApplyUDF, CrossJoin, Project, Scan, SelectUDF, SelectWhere
from repro.engine.schema import Attribute, AttributeKind, Schema
from repro.engine.tuples import Relation, UncertainTuple
from repro.exceptions import QueryError
from repro.udf.base import UDF


@pytest.fixture
def small_relation() -> Relation:
    schema = Schema.of([Attribute("objID"), Attribute("x", AttributeKind.UNCERTAIN)])
    relation = Relation("R", schema)
    for i, mu in enumerate((0.0, 1.0, 2.0)):
        relation.insert(UncertainTuple(values={"objID": i, "x": Gaussian(mu, 0.1)}))
    return relation


@pytest.fixture
def square_udf() -> UDF:
    return UDF(lambda x: float(x[0]) ** 2, dimension=1, name="square",
               domain=(np.array([-5.0]), np.array([5.0])))


@pytest.fixture
def mc_engine() -> UDFExecutionEngine:
    return UDFExecutionEngine(
        strategy="mc", requirement=AccuracyRequirement(epsilon=0.2, delta=0.1), random_state=0
    )


@pytest.fixture
def gp_engine() -> UDFExecutionEngine:
    return UDFExecutionEngine(
        strategy="gp",
        requirement=AccuracyRequirement(epsilon=0.2, delta=0.1),
        random_state=0,
        initial_training_points=5,
        n_samples=300,
    )


class TestScanProjectSelect:
    def test_scan(self, small_relation):
        rows = list(Scan(small_relation))
        assert len(rows) == 3

    def test_project(self, small_relation):
        result = Project(Scan(small_relation), ["objID"]).execute()
        assert result.schema.names() == ["objID"]
        assert len(result) == 3

    def test_project_unknown_attribute(self, small_relation):
        with pytest.raises(QueryError):
            Project(Scan(small_relation), ["nope"])

    def test_project_requires_names(self, small_relation):
        with pytest.raises(QueryError):
            Project(Scan(small_relation), [])

    def test_select_where(self, small_relation):
        result = SelectWhere(Scan(small_relation), lambda t: t["objID"] >= 1).execute()
        assert len(result) == 2


class TestCrossJoin:
    def test_pairs_and_prefixes(self, small_relation):
        join = CrossJoin(Scan(small_relation), Scan(small_relation), "G1", "G2")
        rows = list(join)
        assert len(rows) == 9
        assert "G1.objID" in rows[0] and "G2.x" in rows[0]

    def test_pair_filter(self, small_relation):
        join = CrossJoin(
            Scan(small_relation),
            Scan(small_relation),
            "G1",
            "G2",
            pair_filter=lambda t: t["G1.objID"] < t["G2.objID"],
        )
        assert len(list(join)) == 3

    def test_identical_prefixes_rejected(self, small_relation):
        with pytest.raises(QueryError):
            CrossJoin(Scan(small_relation), Scan(small_relation), "G", "G")


class TestApplyUDF:
    def test_adds_output_distribution(self, small_relation, square_udf, mc_engine):
        operator = ApplyUDF(Scan(small_relation), square_udf, ["x"], "sq", mc_engine)
        result = operator.execute()
        assert "sq" in result.schema
        for row in result:
            assert isinstance(row["sq"], EmpiricalDistribution)
            assert f"sq_error_bound" in row.annotations

    def test_mean_of_derived_attribute(self, small_relation, square_udf, mc_engine):
        result = ApplyUDF(Scan(small_relation), square_udf, ["x"], "sq", mc_engine).execute()
        rows = list(result)
        # E[x^2] = mu^2 + sigma^2
        expected = [0.01, 1.01, 4.01]
        for row, target in zip(rows, expected):
            assert float(row["sq"].mean()[0]) == pytest.approx(target, abs=0.15)

    def test_gp_strategy_produces_error_bounds(self, small_relation, square_udf, gp_engine):
        result = ApplyUDF(Scan(small_relation), square_udf, ["x"], "sq", gp_engine).execute()
        for row in result:
            assert 0.0 <= row.annotations["sq_error_bound"] <= 1.0

    def test_validation(self, small_relation, square_udf, mc_engine):
        with pytest.raises(QueryError):
            ApplyUDF(Scan(small_relation), square_udf, ["nope"], "sq", mc_engine)
        with pytest.raises(QueryError):
            ApplyUDF(Scan(small_relation), square_udf, ["x"], "objID", mc_engine)
        with pytest.raises(QueryError):
            ApplyUDF(Scan(small_relation), square_udf, [], "sq", mc_engine)


class TestSelectUDF:
    def test_filters_out_of_range_tuples(self, small_relation, square_udf, mc_engine):
        # Keep only tuples whose square is likely in [3, 6]: only x ~ N(2, .1).
        predicate = SelectionPredicate(low=3.0, high=6.0, threshold=0.5)
        operator = SelectUDF(Scan(small_relation), square_udf, ["x"], "sq", predicate, mc_engine)
        result = operator.execute()
        kept_ids = [row["objID"] for row in result]
        assert kept_ids == [2]
        for row in result:
            assert row.existence_probability >= 0.5
            lo, hi = row["sq"].support
            assert lo >= 3.0 and hi <= 6.0

    def test_gp_strategy_filtering(self, small_relation, square_udf, gp_engine):
        predicate = SelectionPredicate(low=3.0, high=6.0, threshold=0.5)
        operator = SelectUDF(Scan(small_relation), square_udf, ["x"], "sq", predicate, gp_engine)
        kept_ids = [row["objID"] for row in operator]
        assert kept_ids == [2]


class TestExecutionEngine:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(QueryError):
            UDFExecutionEngine(strategy="exhaustive")

    def test_processors_are_reused_per_udf(self, square_udf, gp_engine):
        first = gp_engine.compute(square_udf, Gaussian(0.5, 0.1))
        second = gp_engine.compute(square_udf, Gaussian(0.6, 0.1))
        assert first.distribution is not None and second.distribution is not None
        # The same OLGAPRO instance persists, so the model keeps its training.
        assert len(gp_engine._processors) == 1

    def test_mc_compute_with_predicate_drop(self, square_udf, mc_engine):
        predicate = SelectionPredicate(low=100.0, high=200.0, threshold=0.1)
        output = mc_engine.compute_with_predicate(square_udf, Gaussian(0.0, 0.1), predicate)
        assert output.dropped
