"""Property-based tests (hypothesis) for the columnar column kernels.

Every columnar hot path carries a *bit-identity* claim against its scalar
counterpart; these properties search for counterexamples over random
shapes — including the degenerate ones (B = 0, B = 1, single-sample rows,
tie-heavy sample blocks) where off-by-one errors in batched index algebra
hide:

* encode → hydrate round-trips every supported column family exactly, and
  the stacked Monte-Carlo draw equals the per-row loop draw for draw;
* :func:`repro.gp.linalg.stacked_jittered_cholesky` equals the per-matrix
  factorisation (including the jitter escalation fallback);
* :func:`repro.core.error_bounds.gp_discrepancy_bound_block` equals the
  scalar Algorithm-3 sweep;
* :func:`repro.engine.batch.truncate_columns` equals per-row truncation;
* :func:`repro.core.confidence_bands.band_z_values` equals per-box
  calibration.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.confidence_bands import band_z_value, band_z_values
from repro.core.error_bounds import (
    build_envelope_outputs,
    gp_discrepancy_bound,
    gp_discrepancy_bound_block,
)
from repro.distributions.columns import (
    COLUMN_FAMILIES,
    attempt_encode,
    sample_stacked,
    stacking_supported,
)
from repro.distributions.empirical import EmpiricalDistribution
from repro.engine.batch import truncate_columns
from repro.gp.kernels import Matern32, SquaredExponential
from repro.gp.linalg import jittered_cholesky, stacked_jittered_cholesky
from repro.index.bounding_box import BoundingBox

finite = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=1e-3, max_value=20.0, allow_nan=False, allow_infinity=False)

# Values drawn from a small grid so random sample blocks are tie-heavy —
# the regime where the batched sweep's run-final CDF counts must agree
# with searchsorted's right-continuous semantics.
tie_prone = st.sampled_from([-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0])


# ---------------------------------------------------------------------------
# Column encoding: round-trip and stacked sampling
# ---------------------------------------------------------------------------

FAMILY_PARAM_STRATEGIES = {
    "gaussian": st.tuples(finite, positive),
    "uniform": st.tuples(finite, positive).map(lambda p: (p[0], p[0] + p[1])),
    "exponential": st.tuples(positive, finite),
    "gamma": st.tuples(positive, positive, finite),
    "point": st.tuples(finite),
}


def _hydrate_family(family, rows):
    cls, _ = COLUMN_FAMILIES[family]
    return [cls(*row) for row in rows]


@given(
    family=st.sampled_from(sorted(FAMILY_PARAM_STRATEGIES)),
    data=st.data(),
    n=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=60, deadline=None)
def test_encode_hydrate_round_trip(family, data, n):
    rows = [data.draw(FAMILY_PARAM_STRATEGIES[family]) for _ in range(n)]
    originals = _hydrate_family(family, rows)
    column = attempt_encode(originals)
    assert column is not None and column.family == family and len(column) == n
    _, names = COLUMN_FAMILIES[family]
    for original, hydrated in zip(originals, column.hydrate_all()):
        assert type(hydrated) is type(original)
        if family == "point":
            assert np.array_equal(hydrated.value, original.value)
        else:
            for name in names:
                assert getattr(hydrated, name) == getattr(original, name)


@given(
    family=st.sampled_from(sorted(FAMILY_PARAM_STRATEGIES)),
    data=st.data(),
    n=st.integers(min_value=1, max_value=8),
    m=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_stacked_sampling_matches_per_row_loop(family, data, n, m, seed):
    """One broadcast draw over the column consumes the shared random stream
    exactly as the per-tuple loop does — the determinism contract."""
    if not stacking_supported():
        pytest.skip("platform fails the stacking identity probes")
    rows = [data.draw(FAMILY_PARAM_STRATEGIES[family]) for _ in range(n)]
    column = attempt_encode(_hydrate_family(family, rows))
    block = sample_stacked(column, m, np.random.default_rng(seed))
    loop_rng = np.random.default_rng(seed)
    for i in range(n):
        expected = column.hydrate(i).sample(m, random_state=loop_rng)
        assert np.array_equal(block[i], np.asarray(expected).reshape(m, 1)), i


def test_heterogeneous_and_empty_columns_do_not_encode():
    from repro.distributions.continuous import Gaussian, Uniform

    assert attempt_encode([]) is None
    assert attempt_encode([Gaussian(0.0, 1.0), Uniform(0.0, 1.0)]) is None


# ---------------------------------------------------------------------------
# Stacked Cholesky
# ---------------------------------------------------------------------------

@given(
    b=st.integers(min_value=0, max_value=5),
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    singular=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_stacked_cholesky_matches_per_matrix_loop(b, n, seed, singular):
    rng = np.random.default_rng(seed)
    mats = rng.standard_normal((b, n, n))
    mats = mats @ mats.transpose(0, 2, 1) + float(n) * np.eye(n)
    if singular and b > 0:
        # A rank-deficient member forces the scalar jitter-escalation
        # fallback for the whole stack; it must reproduce each matrix's
        # exact jitter sequence.
        v = rng.standard_normal((n, 1))
        mats[0] = v @ v.T
    stacked_l, stacked_jitter = stacked_jittered_cholesky(mats)
    assert stacked_l.shape == (b, n, n) and stacked_jitter.shape == (b,)
    for i in range(b):
        scalar_l, scalar_jitter = jittered_cholesky(mats[i])
        assert scalar_jitter == stacked_jitter[i], i
        if stacking_supported():
            assert np.array_equal(stacked_l[i], scalar_l), i
        else:
            np.testing.assert_allclose(stacked_l[i], scalar_l)


# ---------------------------------------------------------------------------
# Batched discrepancy-bound sweep (Algorithm 3)
# ---------------------------------------------------------------------------

def _random_envelopes(data, b, m):
    envelopes = []
    for _ in range(b):
        means = np.array([data.draw(tie_prone) for _ in range(m)])
        stds = np.array(
            [data.draw(st.sampled_from([0.0, 0.25, 1.0])) for _ in range(m)]
        )
        z = data.draw(st.sampled_from([0.0, 0.5, 1.5]))
        envelopes.append(build_envelope_outputs(means, stds, z))
    return envelopes


@given(
    data=st.data(),
    b=st.integers(min_value=0, max_value=6),
    m=st.integers(min_value=1, max_value=12),
    lam=st.sampled_from([0.0, 0.05, 0.3, 1.0]),
)
@settings(max_examples=80, deadline=None)
def test_bound_block_matches_scalar_sweep(data, b, m, lam):
    """The batched sweep equals the scalar Algorithm-3 bound bitwise on
    random tie-heavy envelope columns, including B = 0, B = 1 and m = 1."""
    envelopes = _random_envelopes(data, b, m)
    block = gp_discrepancy_bound_block(envelopes, lam)
    assert block.shape == (b,)
    scalar = np.array([gp_discrepancy_bound(env, lam) for env in envelopes])
    assert np.array_equal(block, scalar)


@given(data=st.data(), lam=st.sampled_from([0.0, 0.3]))
@settings(max_examples=20, deadline=None)
def test_bound_block_ragged_fallback_matches_scalar(data, lam):
    """Envelopes of mismatched sample counts take the wholesale scalar
    fallback and still agree."""
    envelopes = _random_envelopes(data, 2, 3) + _random_envelopes(data, 1, 5)
    block = gp_discrepancy_bound_block(envelopes, lam)
    scalar = np.array([gp_discrepancy_bound(env, lam) for env in envelopes])
    assert np.array_equal(block, scalar)


# ---------------------------------------------------------------------------
# Column-kernel predicate truncation
# ---------------------------------------------------------------------------

@given(
    data=st.data(),
    b=st.integers(min_value=0, max_value=6),
    m=st.integers(min_value=1, max_value=10),
    bounds=st.tuples(tie_prone, tie_prone).map(sorted),
)
@settings(max_examples=80, deadline=None)
def test_truncate_columns_matches_per_row_truncate(data, b, m, bounds):
    low, high = bounds
    dists = [
        EmpiricalDistribution(np.array([data.draw(tie_prone) for _ in range(m)]))
        for _ in range(b)
    ]
    block = truncate_columns(dists, low, high)
    scalar = [dist.truncate(low, high) for dist in dists]
    assert len(block) == len(scalar) == b
    for got, expected in zip(block, scalar):
        assert got.existence_probability == expected.existence_probability
        if expected.distribution is None:
            assert got.distribution is None
        else:
            assert np.array_equal(
                got.distribution.samples, expected.distribution.samples
            )


@given(
    data=st.data(),
    sizes=st.lists(st.integers(min_value=1, max_value=6), min_size=2, max_size=4),
)
@settings(max_examples=20, deadline=None)
def test_truncate_columns_ragged_fallback_matches(data, sizes):
    """Mismatched sample counts take the scalar fallback and still agree."""
    if len(set(sizes)) < 2:
        sizes[0] += sizes[1]
    dists = [
        EmpiricalDistribution(np.array([data.draw(tie_prone) for _ in range(m)]))
        for m in sizes
    ]
    block = truncate_columns(dists, -1.0, 1.0)
    scalar = [dist.truncate(-1.0, 1.0) for dist in dists]
    for got, expected in zip(block, scalar):
        assert got.existence_probability == expected.existence_probability


# ---------------------------------------------------------------------------
# Band calibration over a column of boxes
# ---------------------------------------------------------------------------

@given(
    data=st.data(),
    b=st.integers(min_value=0, max_value=5),
    method=st.sampled_from(["euler", "bonferroni", "pointwise"]),
    kernel=st.sampled_from(
        [SquaredExponential(lengthscale=1.5), Matern32(lengthscale=2.0)]
    ),
)
@settings(max_examples=40, deadline=None)
def test_band_z_values_matches_per_box_calibration(data, b, method, kernel):
    boxes = []
    for _ in range(b):
        low = np.array([data.draw(finite)])
        width = data.draw(st.floats(min_value=0.1, max_value=4.0))
        boxes.append(BoundingBox(low=low, high=low + width))
    n_points = 64 if method == "bonferroni" else None
    column = band_z_values(kernel, boxes, method=method, n_points=n_points)
    assert len(column) == b
    for band, box in zip(column, boxes):
        single = band_z_value(kernel, box, method=method, n_points=n_points)
        assert band.z_value == single.z_value
        assert band.method == single.method
