"""Unit tests for the astrophysics cosmology UDFs (§6.4 substitution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import UDFError
from repro.udf.astro import (
    Cosmology,
    angdist_udf,
    angular_separation_deg,
    case_study_udfs,
    comove_vol_udf,
    distance_modulus_udf,
    galage_udf,
    lookback_time_udf,
    sky_distance_udf,
)


class TestCosmology:
    def setup_method(self):
        self.cosmo = Cosmology(h0=70.0, omega_m=0.3)

    def test_parameter_validation(self):
        with pytest.raises(UDFError):
            Cosmology(h0=-1.0)
        with pytest.raises(UDFError):
            Cosmology(omega_m=1.5)

    def test_flatness(self):
        assert self.cosmo.omega_m + self.cosmo.omega_lambda == pytest.approx(1.0)

    def test_age_of_universe_today(self):
        # Standard result for (70, 0.3): ~13.5 Gyr.
        assert self.cosmo.galaxy_age_gyr(0.0) == pytest.approx(13.46, abs=0.2)

    def test_age_decreases_with_redshift(self):
        ages = [self.cosmo.galaxy_age_gyr(z) for z in (0.0, 0.5, 1.0, 2.0)]
        assert all(a > b for a, b in zip(ages, ages[1:]))

    def test_age_at_z1(self):
        # Well-known value: the universe is roughly 5.9 Gyr old at z = 1.
        assert self.cosmo.galaxy_age_gyr(1.0) == pytest.approx(5.9, abs=0.3)

    def test_negative_redshift_rejected(self):
        with pytest.raises(UDFError):
            self.cosmo.galaxy_age_gyr(-0.1)
        with pytest.raises(UDFError):
            self.cosmo.comoving_distance_mpc(-0.1)

    def test_comoving_distance_monotone(self):
        distances = [self.cosmo.comoving_distance_mpc(z) for z in (0.1, 0.5, 1.0)]
        assert distances[0] < distances[1] < distances[2]

    def test_comoving_distance_at_z1(self):
        # Standard result: ~3300 Mpc for (70, 0.3).
        assert self.cosmo.comoving_distance_mpc(1.0) == pytest.approx(3300, rel=0.03)

    def test_dense_distance_matches_quad(self):
        for z in (0.2, 0.8, 1.4):
            dense = self.cosmo.comoving_distance_mpc_dense(z)
            quad = self.cosmo.comoving_distance_mpc(z)
            assert dense == pytest.approx(quad, rel=1e-6)

    def test_comoving_volume_symmetric_in_arguments(self):
        v1 = self.cosmo.comoving_volume_mpc3(0.2, 0.6, 0.1)
        v2 = self.cosmo.comoving_volume_mpc3(0.6, 0.2, 0.1)
        assert v1 == pytest.approx(v2)
        assert v1 > 0

    def test_comoving_volume_zero_for_equal_redshifts(self):
        assert self.cosmo.comoving_volume_mpc3(0.5, 0.5, 0.1) == pytest.approx(0.0)

    def test_comoving_volume_requires_positive_area(self):
        with pytest.raises(UDFError):
            self.cosmo.comoving_volume_mpc3(0.1, 0.2, 0.0)

    def test_luminosity_and_angular_distances(self):
        z = 0.5
        dc = self.cosmo.comoving_distance_mpc(z)
        assert self.cosmo.luminosity_distance_mpc(z) == pytest.approx(1.5 * dc)
        assert self.cosmo.angular_diameter_distance_mpc(z) == pytest.approx(dc / 1.5)

    def test_distance_modulus_reasonable(self):
        # z = 0.1 corresponds to a distance modulus of roughly 38.3 mag.
        assert self.cosmo.distance_modulus(0.1) == pytest.approx(38.3, abs=0.3)

    def test_lookback_plus_age_is_constant(self):
        total = self.cosmo.galaxy_age_gyr(0.0)
        for z in (0.3, 0.9):
            assert self.cosmo.lookback_time_gyr(z) + self.cosmo.galaxy_age_gyr(z) == pytest.approx(total)


class TestAngularSeparation:
    def test_zero_for_identical_points(self):
        assert angular_separation_deg(10.0, 20.0, 10.0, 20.0) == pytest.approx(0.0)

    def test_small_angle_approximation(self):
        # At dec = 0 a pure RA offset equals the separation.
        assert angular_separation_deg(100.0, 0.0, 101.0, 0.0) == pytest.approx(1.0, abs=1e-6)

    def test_symmetric(self):
        a = angular_separation_deg(10.0, 5.0, 12.0, 7.0)
        b = angular_separation_deg(12.0, 7.0, 10.0, 5.0)
        assert a == pytest.approx(b)

    def test_quarter_circle(self):
        assert angular_separation_deg(0.0, 0.0, 90.0, 0.0) == pytest.approx(90.0)


class TestUDFWrappers:
    def test_case_study_table_contents(self):
        udfs = case_study_udfs()
        assert set(udfs) == {"AngDist", "GalAge", "ComoveVol"}
        assert udfs["GalAge"].dimension == 1
        assert udfs["AngDist"].dimension == 2
        assert udfs["ComoveVol"].dimension == 2

    def test_galage_udf_evaluates(self):
        udf = galage_udf()
        age = udf(np.array([0.5]))
        assert 7.0 < age < 10.0

    def test_comove_vol_udf_evaluates(self):
        udf = comove_vol_udf(area_sr=0.1)
        volume = udf(np.array([0.2, 0.7]))
        assert volume > 0

    def test_angdist_udf_evaluates(self):
        udf = angdist_udf()
        separation = udf(np.array([1.0, 0.0]))
        assert 0.0 < separation < 2.0

    def test_sky_distance_udf(self):
        udf = sky_distance_udf()
        assert udf.dimension == 4
        assert udf(np.array([10.0, 0.0, 11.0, 0.0])) == pytest.approx(1.0, abs=1e-6)

    def test_additional_udfs(self):
        assert lookback_time_udf()(np.array([0.5])) > 0
        assert distance_modulus_udf()(np.array([0.5])) > 35.0

    def test_evaluation_time_ordering(self):
        # The substitution must preserve the case-study ordering:
        # AngDist (trigonometry) is much faster than the integrating UDFs.
        udfs = case_study_udfs()
        times = {name: udf.measure_eval_time(n_probes=10, random_state=0) for name, udf in udfs.items()}
        assert times["AngDist"] < times["GalAge"]
        assert times["AngDist"] < times["ComoveVol"]
