"""The CI perf gate's verdict logic (``repro.bench.run_all``).

The gate compares the smoke run's gp batched speedup against a committed
baseline artifact.  Contracts under test:

* a healthy comparison yields a pass/regress verdict with the relative
  change recorded;
* a gated metric missing from either side is flagged ``missing`` — the
  smoke driver turns that into a *failure* unless
  ``--allow-missing-baseline`` is passed, because a renamed metric would
  otherwise disarm the gate forever while reporting OK;
* the override environment variable only applies to genuine regressions;
* the parallel-scaling gp speedup at ``workers=4`` is gated the same way,
  but only on machines with at least ``PARALLEL_GATE_MIN_CPUS`` cores —
  the guard that keeps single-core runners from turning a hardware
  limitation into a reported code regression (ROADMAP item);
* the serving gates — 4-client throughput scaling and 4-client p99
  latency (gated as its inverse, so a latency *increase* regresses) —
  arm on every runner, because the smoke serving workload overlaps
  awaited service latency rather than CPU;
* the columnar-storage speedup over the tuple store is gated like the
  batch gate (a within-run hardware-normalised ratio, armed everywhere);
  its bit-identity half lives in the non-overridable ``identity_failures``
  list, not in a gate verdict;
* the auto-planned-over-naive-default speedup is gated the same way and
  arms everywhere (the smoke auto-plan workload overlaps awaited service
  latency); its auto≡explicit identity half is likewise enforced through
  ``identity_failures``;
* the shared-learning UDF-calls ratio gates against the *fixed*
  ``SHARED_CALLS_RATIO_LIMIT`` ceiling on every runner (a same-invocation
  count quotient — no hardware drift), while the shared-merge wall-clock
  speedup is CPU-gated like the parallel one; the ``workers=1``
  bit-identity half lives in ``identity_failures``.
"""

from __future__ import annotations

import pytest

from repro.bench.run_all import (
    DEFAULT_MAX_REGRESSION,
    PARALLEL_GATE_MIN_CPUS,
    SHARED_CALLS_RATIO_LIMIT,
    check_auto_plan_regression,
    check_columnar_regression,
    check_parallel_regression,
    check_regression,
    check_serving_latency_regression,
    check_serving_regression,
    check_shared_learning_regression,
    check_shared_speedup_regression,
    gated_verdicts,
    main,
)


def _report(speedup):
    return {"batch_pipeline": {"speedup": {"gp": speedup}}}


def _parallel_report(speedup, batch_speedup=2.0):
    report = _report(batch_speedup)
    report["parallel_scaling"] = {
        "speedup_at_4": {"gp": {"workers": 4, "speedup": speedup}}
    }
    return report


def _serving_report(scaling, p99=500.0, batch_speedup=2.0):
    report = _report(batch_speedup)
    report["serving"] = {"scaling_at_4": scaling, "p99_at_4": p99}
    return report


def _columnar_report(speedup, batch_speedup=2.0):
    report = _report(batch_speedup)
    report["columnar"] = {"speedup": speedup, "identical_to_tuple": True}
    return report


class TestCheckRegression:
    def test_pass_records_relative_change(self):
        verdict = check_regression(_report(2.0), _report(2.0), 0.25)
        assert verdict["regressed"] is False
        assert "missing" not in verdict
        assert verdict["relative_change"] == 0.0

    def test_regression_detected(self):
        verdict = check_regression(_report(1.0), _report(2.0), 0.25)
        assert verdict["regressed"] is True
        assert verdict["overridden"] is False

    def test_override_env_applies_to_regressions(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_OVERRIDE", "1")
        verdict = check_regression(_report(1.0), _report(2.0), 0.25)
        assert verdict["regressed"] is True
        assert verdict["overridden"] is True

    @pytest.mark.parametrize(
        "report, baseline",
        [
            ({}, _report(2.0)),                       # metric renamed/dropped
            (_report(2.0), {}),                       # baseline lacks metric
            (_report(None), _report(2.0)),            # null metric
            (_report(2.0), _report(0.0)),             # degenerate baseline
        ],
    )
    def test_missing_metric_is_flagged_not_silently_ok(self, report, baseline):
        verdict = check_regression(report, baseline, DEFAULT_MAX_REGRESSION)
        assert verdict.get("missing") is True
        assert verdict["regressed"] is False
        assert "skipped" in verdict


class TestParallelGate:
    def test_pass_records_relative_change(self):
        verdict = check_parallel_regression(
            _parallel_report(2.5), _parallel_report(2.5), 0.25
        )
        assert verdict["regressed"] is False
        assert "missing" not in verdict
        assert verdict["relative_change"] == 0.0
        assert verdict["metric"] == "parallel_scaling gp speedup at workers=4"

    def test_regression_detected(self):
        verdict = check_parallel_regression(
            _parallel_report(1.0), _parallel_report(2.5), 0.25
        )
        assert verdict["regressed"] is True
        assert verdict["overridden"] is False

    def test_override_env_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_OVERRIDE", "1")
        verdict = check_parallel_regression(
            _parallel_report(1.0), _parallel_report(2.5), 0.25
        )
        assert verdict["regressed"] is True
        assert verdict["overridden"] is True

    @pytest.mark.parametrize(
        "report, baseline",
        [
            (_report(2.0), _parallel_report(2.5)),      # metric dropped from report
            (_parallel_report(2.5), _report(2.0)),      # baseline lacks metric
            (_parallel_report(None), _parallel_report(2.5)),
            (_parallel_report(2.5), _parallel_report(0.0)),
        ],
    )
    def test_missing_metric_is_flagged(self, report, baseline):
        verdict = check_parallel_regression(report, baseline, DEFAULT_MAX_REGRESSION)
        assert verdict.get("missing") is True
        assert verdict["regressed"] is False


class TestServingGate:
    """Serving throughput scaling and p99 latency gates."""

    def test_scaling_pass_records_relative_change(self):
        verdict = check_serving_regression(
            _serving_report(3.0), _serving_report(3.0), 0.25
        )
        assert verdict["regressed"] is False
        assert "missing" not in verdict
        assert verdict["metric"] == "serving throughput scaling at 4 clients"

    def test_scaling_regression_detected(self):
        verdict = check_serving_regression(
            _serving_report(1.2), _serving_report(3.0), 0.25
        )
        assert verdict["regressed"] is True
        assert verdict["overridden"] is False

    def test_p99_increase_is_a_regression(self):
        # p99 grew 2x: the inverse shrinks below the 25% margin.
        verdict = check_serving_latency_regression(
            _serving_report(3.0, p99=1000.0), _serving_report(3.0, p99=500.0), 0.25
        )
        assert verdict["regressed"] is True

    def test_p99_decrease_passes(self):
        verdict = check_serving_latency_regression(
            _serving_report(3.0, p99=400.0), _serving_report(3.0, p99=500.0), 0.25
        )
        assert verdict["regressed"] is False

    @pytest.mark.parametrize(
        "report, baseline",
        [
            (_report(2.0), _serving_report(3.0)),     # metric dropped from report
            (_serving_report(3.0), _report(2.0)),     # baseline lacks metric
            (_serving_report(None), _serving_report(3.0)),
            (_serving_report(3.0, p99=0.0), _serving_report(3.0)),  # degenerate p99
        ],
    )
    def test_missing_metric_is_flagged(self, report, baseline):
        scaling = check_serving_regression(report, baseline, DEFAULT_MAX_REGRESSION)
        latency = check_serving_latency_regression(
            report, baseline, DEFAULT_MAX_REGRESSION
        )
        assert scaling.get("missing") is True or latency.get("missing") is True


class TestCheckColumnarRegression:
    """The columnar-over-tuple-store speedup is gated like the batch gate
    (hardware-normalised ratio, arms on every runner)."""

    def test_pass_and_regress(self):
        healthy = check_columnar_regression(
            _columnar_report(1.6), _columnar_report(1.6), DEFAULT_MAX_REGRESSION
        )
        assert healthy["regressed"] is False
        regressed = check_columnar_regression(
            _columnar_report(1.0), _columnar_report(1.6), DEFAULT_MAX_REGRESSION
        )
        assert regressed["regressed"] is True

    def test_missing_metric_is_flagged(self):
        verdict = check_columnar_regression(
            _report(2.0), _columnar_report(1.6), DEFAULT_MAX_REGRESSION
        )
        assert verdict.get("missing") is True


def _auto_plan_report(speedup, batch_speedup=2.0):
    report = _report(batch_speedup)
    report["auto_plan"] = {"speedup": speedup, "identical_to_explicit": True}
    return report


class TestCheckAutoPlanRegression:
    """The auto-planned speedup over the naive default plan is gated like
    the batch gate (hardware-normalised ratio, arms on every runner)."""

    def test_pass_and_regress(self):
        healthy = check_auto_plan_regression(
            _auto_plan_report(2.5), _auto_plan_report(2.5), DEFAULT_MAX_REGRESSION
        )
        assert healthy["regressed"] is False
        regressed = check_auto_plan_regression(
            _auto_plan_report(1.0), _auto_plan_report(2.5), DEFAULT_MAX_REGRESSION
        )
        assert regressed["regressed"] is True

    def test_missing_metric_is_flagged(self):
        verdict = check_auto_plan_regression(
            _report(2.0), _auto_plan_report(2.5), DEFAULT_MAX_REGRESSION
        )
        assert verdict.get("missing") is True


def _shared_report(ratio, speedup=1.5, batch_speedup=2.0):
    report = _report(batch_speedup)
    report["shared_learning"] = {
        "udf_calls_ratio_workers4": ratio,
        "speedup_at_4": speedup,
        "identical_at_1": True,
    }
    return report


class TestSharedLearningGate:
    """The shared-merge calls ratio gates against a fixed ceiling with zero
    slack — no committed baseline involved — and the wall-clock speedup is
    gated against the baseline like the other hardware-bound ratios."""

    def test_ratio_at_the_ceiling_passes(self):
        verdict = check_shared_learning_regression(
            _shared_report(SHARED_CALLS_RATIO_LIMIT), {}, DEFAULT_MAX_REGRESSION
        )
        assert verdict["regressed"] is False
        assert verdict["udf_calls_ratio"] == SHARED_CALLS_RATIO_LIMIT

    def test_ratio_above_the_ceiling_regresses_regardless_of_margin(self):
        # max_regression is deliberately ignored: the ceiling is absolute.
        verdict = check_shared_learning_regression(
            _shared_report(1.3), {}, max_regression=0.9
        )
        assert verdict["regressed"] is True
        assert verdict["overridden"] is False

    def test_override_env_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_OVERRIDE", "1")
        verdict = check_shared_learning_regression(_shared_report(2.0), {}, 0.25)
        assert verdict["regressed"] is True
        assert verdict["overridden"] is True

    @pytest.mark.parametrize("report", [_report(2.0), _shared_report(None),
                                        _shared_report(0.0)])
    def test_missing_or_degenerate_ratio_is_flagged(self, report):
        verdict = check_shared_learning_regression(report, {}, 0.25)
        assert verdict.get("missing") is True
        assert verdict["regressed"] is False

    def test_speedup_gate_compares_against_the_baseline(self):
        healthy = check_shared_speedup_regression(
            _shared_report(1.0, speedup=1.5), _shared_report(1.0, speedup=1.5), 0.25
        )
        assert healthy["regressed"] is False
        regressed = check_shared_speedup_regression(
            _shared_report(1.0, speedup=0.8), _shared_report(1.0, speedup=1.5), 0.25
        )
        assert regressed["regressed"] is True
        missing = check_shared_speedup_regression(
            _report(2.0), _shared_report(1.0), 0.25
        )
        assert missing.get("missing") is True


class TestCoreCountGuard:
    """The parallel and shared-speedup gates only arm with enough real
    cores to scale on; the batch, columnar, shared-calls-ratio, auto-plan
    and serving gates arm everywhere."""

    ALWAYS_ON = ["gate", "gate_columnar", "gate_shared_learning",
                 "gate_auto_plan", "gate_serving", "gate_serving_p99"]

    def test_single_core_runner_skips_parallel_gate(self):
        verdicts = gated_verdicts(
            _parallel_report(2.5), _parallel_report(2.5), 0.25, cpu_count=1
        )
        assert [key for key, _ in verdicts] == self.ALWAYS_ON

    def test_just_below_threshold_still_skips(self):
        verdicts = gated_verdicts(
            _parallel_report(2.5), _parallel_report(2.5), 0.25,
            cpu_count=PARALLEL_GATE_MIN_CPUS - 1,
        )
        assert [key for key, _ in verdicts] == self.ALWAYS_ON

    def test_multi_core_runner_gates_parallel_too(self):
        verdicts = gated_verdicts(
            _parallel_report(1.0), _parallel_report(2.5), 0.25,
            cpu_count=PARALLEL_GATE_MIN_CPUS,
        )
        assert [key for key, _ in verdicts] == [
            "gate", "gate_columnar", "gate_shared_learning", "gate_parallel",
            "gate_shared_speedup", "gate_auto_plan", "gate_serving",
            "gate_serving_p99",
        ]
        by_key = dict(verdicts)
        assert by_key["gate"]["regressed"] is False
        assert by_key["gate_parallel"]["regressed"] is True


class TestCliFlag:
    def test_allow_missing_baseline_flag_parses(self, tmp_path, monkeypatch):
        """The flag exists and routes into run_smoke (smoke itself is heavy,
        so only the argparse wiring is exercised: an unknown flag would make
        parse_args exit with code 2 before any benchmark runs)."""
        import argparse

        recorded = {}

        def fake_run_smoke(output, baseline, max_regression, allow_missing_baseline=False):
            recorded["allow"] = allow_missing_baseline
            return 0

        monkeypatch.setattr("repro.bench.run_all.run_smoke", fake_run_smoke)
        assert main(["--smoke", "--allow-missing-baseline"]) == 0
        assert recorded["allow"] is True
        recorded.clear()
        assert main(["--smoke"]) == 0
        assert recorded["allow"] is False

        with pytest.raises(SystemExit):
            argparse.ArgumentParser().parse_args(["--no-such-flag"])
