"""Unit tests for the GP emulator and the offline Algorithm 2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.emulator import GPEmulator, emulate_output, offline_gp_output
from repro.core.metrics import ks_distance
from repro.distributions.continuous import Gaussian
from repro.distributions.multivariate import IndependentJoint
from repro.exceptions import GPError, UDFError
from repro.udf.base import UDF
from repro.workloads.generators import true_output_distribution


class TestGPEmulator:
    def test_train_initial_counts_udf_calls(self, f1_udf):
        udf = f1_udf.with_simulated_eval_time(0.0)
        emulator = GPEmulator(udf)
        emulator.train_initial(30, random_state=0)
        assert emulator.n_training == 30
        assert udf.call_count == 30
        assert len(emulator.index) == 30

    def test_designs(self, f1_udf):
        for design in ("random", "grid", "halton"):
            emulator = GPEmulator(f1_udf.with_simulated_eval_time(0.0))
            emulator.train_initial(16, design=design, random_state=0)
            assert emulator.n_training >= 16

    def test_invalid_design_rejected(self, f1_udf):
        emulator = GPEmulator(f1_udf.with_simulated_eval_time(0.0))
        with pytest.raises(GPError):
            emulator.train_initial(10, design="sobol")

    def test_requires_positive_points(self, f1_udf):
        emulator = GPEmulator(f1_udf)
        with pytest.raises(GPError):
            emulator.train_initial(0)

    def test_domain_required(self):
        udf = UDF(lambda x: 1.0, dimension=1)  # no declared domain
        emulator = GPEmulator(udf)
        with pytest.raises(GPError):
            emulator.train_initial(5)
        emulator.train_initial(5, domain=(np.array([0.0]), np.array([1.0])), random_state=0)
        assert emulator.n_training == 5

    def test_add_training_point(self, quadratic_udf):
        emulator = GPEmulator(quadratic_udf.with_simulated_eval_time(0.0))
        emulator.train_initial(6, random_state=0)
        value = emulator.add_training_point(np.array([1.5]))
        assert value == pytest.approx(1.5**2 + 1.0)
        assert emulator.n_training == 7
        assert len(emulator.index) == 7

    def test_add_training_point_shape_check(self, quadratic_udf):
        emulator = GPEmulator(quadratic_udf.with_simulated_eval_time(0.0))
        emulator.train_initial(4, random_state=0)
        with pytest.raises(UDFError):
            emulator.add_training_point(np.array([1.0, 2.0]))

    def test_prediction_quality_on_smooth_function(self, quadratic_udf):
        emulator = GPEmulator(quadratic_udf.with_simulated_eval_time(0.0))
        emulator.train_initial(25, design="grid", random_state=0)
        X_test = np.linspace(-2.5, 2.5, 20).reshape(-1, 1)
        means, stds = emulator.predict(X_test)
        truth = X_test.ravel() ** 2 + 1.0
        assert np.max(np.abs(means - truth)) < 0.1
        assert np.all(stds >= 0)

    def test_retrain_requires_data(self, f1_udf):
        with pytest.raises(GPError):
            GPEmulator(f1_udf).retrain()


class TestEmulateOutput:
    def test_output_distribution_close_to_truth(self, trained_f1_emulator, gaussian_2d_input):
        result = emulate_output(
            trained_f1_emulator, gaussian_2d_input, n_samples=800, random_state=0
        )
        truth = true_output_distribution(
            trained_f1_emulator.udf, gaussian_2d_input, 15000, random_state=1
        )
        assert ks_distance(result.distribution, truth) < 0.1
        assert result.n_samples == 800
        assert result.envelope.n_samples == 800

    def test_no_udf_calls_during_inference(self, trained_f1_emulator, gaussian_2d_input):
        calls_before = trained_f1_emulator.udf.call_count
        emulate_output(trained_f1_emulator, gaussian_2d_input, n_samples=300, random_state=0)
        assert trained_f1_emulator.udf.call_count == calls_before

    def test_invalid_sample_count(self, trained_f1_emulator, gaussian_2d_input):
        with pytest.raises(GPError):
            emulate_output(trained_f1_emulator, gaussian_2d_input, n_samples=0)

    def test_envelope_bracketing(self, trained_f1_emulator, gaussian_2d_input):
        result = emulate_output(
            trained_f1_emulator, gaussian_2d_input, n_samples=500, random_state=2
        )
        grid = np.linspace(*result.distribution.support, 50)
        env = result.envelope
        assert np.all(env.y_lower.cdf(grid) >= env.y_upper.cdf(grid) - 1e-12)


class TestOfflineAlgorithm:
    def test_end_to_end(self, quadratic_udf):
        udf = quadratic_udf.with_simulated_eval_time(0.0)
        input_dist = Gaussian(1.0, 0.2)
        result = offline_gp_output(
            udf, input_dist, n_training=25, n_samples=600, random_state=0
        )
        truth = true_output_distribution(udf, input_dist, 20000, random_state=1)
        assert ks_distance(result.distribution, truth) < 0.08
        # Training used exactly n_training UDF calls; inference used none.
        assert result.udf_calls == 25

    def test_2d_input(self, f1_udf):
        udf = f1_udf.with_simulated_eval_time(0.0)
        input_dist = IndependentJoint([Gaussian(3.0, 0.5), Gaussian(5.0, 0.5)])
        result = offline_gp_output(udf, input_dist, n_training=40, n_samples=400, random_state=3)
        assert result.distribution.size == 400
        assert result.n_training == 40
