"""Unit and behavioural tests for OLGAPRO (Algorithm 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.core.filtering import SelectionPredicate
from repro.core.metrics import lambda_discrepancy
from repro.core.olgapro import OLGAPRO
from repro.core.online_tuning import RandomStrategy
from repro.core.retraining import EagerRetrain, NeverRetrain
from repro.distributions.continuous import Gaussian
from repro.exceptions import GPError
from repro.workloads.generators import true_output_distribution


def small_processor(udf, epsilon=0.15, **kwargs):
    """OLGAPRO with a reduced sample count so tests stay fast."""
    defaults = dict(
        requirement=AccuracyRequirement(epsilon=epsilon, delta=0.05),
        initial_training_points=6,
        n_samples=400,
        random_state=0,
    )
    defaults.update(kwargs)
    return OLGAPRO(udf, **defaults)


class TestConfiguration:
    def test_invalid_initial_points(self, quadratic_udf):
        with pytest.raises(GPError):
            OLGAPRO(quadratic_udf, initial_training_points=1)

    def test_invalid_max_points(self, quadratic_udf):
        with pytest.raises(GPError):
            OLGAPRO(quadratic_udf, max_points_per_tuple=0)

    def test_sample_override(self, quadratic_udf):
        processor = small_processor(quadratic_udf.with_simulated_eval_time(0.0), n_samples=123)
        assert processor.mc_samples() == 123

    def test_budget_samples_without_override(self, quadratic_udf):
        processor = OLGAPRO(quadratic_udf, AccuracyRequirement(epsilon=0.1, delta=0.05))
        assert processor.mc_samples() == processor.budget.mc_samples


class TestProcessing:
    def test_meets_error_budget_on_smooth_udf(self, quadratic_udf):
        udf = quadratic_udf.with_simulated_eval_time(0.0)
        processor = small_processor(udf)
        result = processor.process(Gaussian(1.0, 0.2))
        assert result.converged
        assert result.error_bound.epsilon_total <= processor.requirement.epsilon + 1e-9
        assert result.distribution.size == 400

    def test_output_close_to_ground_truth(self, quadratic_udf):
        udf = quadratic_udf.with_simulated_eval_time(0.0)
        processor = small_processor(udf, epsilon=0.1, n_samples=1500)
        input_dist = Gaussian(1.0, 0.3)
        result = processor.process(input_dist)
        truth = true_output_distribution(udf, input_dist, 20000, random_state=5)
        lam = processor.lambda_value()
        actual = lambda_discrepancy(result.distribution, truth, lam)
        assert actual <= processor.requirement.epsilon + 0.05

    def test_udf_calls_decrease_across_tuples(self, f1_udf):
        udf = f1_udf.with_simulated_eval_time(0.0)
        from repro.distributions.multivariate import IndependentJoint

        processor = small_processor(udf, initial_training_points=10)
        calls = []
        rng = np.random.default_rng(0)
        for _ in range(6):
            mean = rng.uniform(2, 8, size=2)
            dist = IndependentJoint([Gaussian(mean[0], 0.5), Gaussian(mean[1], 0.5)])
            result = processor.process(dist)
            calls.append(result.udf_calls)
        # The first tuple pays for initial training; later tuples should need
        # far fewer (often zero) UDF calls.
        assert calls[0] >= processor.initial_training_points
        assert np.mean(calls[3:]) < calls[0]

    def test_training_points_accumulate(self, quadratic_udf):
        udf = quadratic_udf.with_simulated_eval_time(0.0)
        processor = small_processor(udf)
        assert processor.n_training == 0
        processor.process(Gaussian(0.0, 0.2))
        first = processor.n_training
        processor.process(Gaussian(2.0, 0.2))
        assert processor.n_training >= first
        assert processor.tuples_processed == 2

    def test_max_points_per_tuple_respected(self, f4_udf):
        udf = f4_udf.with_simulated_eval_time(0.0)
        processor = small_processor(
            udf, epsilon=0.05, max_points_per_tuple=3, initial_training_points=5
        )
        from repro.distributions.multivariate import IndependentJoint

        result = processor.process(
            IndependentJoint([Gaussian(5.0, 0.5), Gaussian(5.0, 0.5)])
        )
        assert result.points_added <= 3
        # With such a tight budget on a bumpy function convergence may fail,
        # but the result must still report a valid (possibly large) bound.
        assert result.error_bound.epsilon_gp >= 0

    def test_ks_metric_variant(self, quadratic_udf):
        udf = quadratic_udf.with_simulated_eval_time(0.0)
        processor = small_processor(
            udf, requirement=AccuracyRequirement(epsilon=0.15, delta=0.05, metric="ks")
        )
        result = processor.process(Gaussian(1.0, 0.2))
        assert result.error_bound.epsilon_total <= 0.15 + 1e-9

    def test_alternative_strategies_work(self, quadratic_udf):
        udf = quadratic_udf.with_simulated_eval_time(0.0)
        processor = small_processor(
            udf,
            tuning_strategy=RandomStrategy(),
            retraining_policy=NeverRetrain(),
        )
        result = processor.process(Gaussian(0.5, 0.3))
        assert result.distribution is not None

    def test_eager_retraining_marks_result(self, quadratic_udf):
        udf = quadratic_udf.with_simulated_eval_time(0.0)
        processor = small_processor(
            udf, epsilon=0.08, retraining_policy=EagerRetrain(), n_samples=600
        )
        # Use a shifted input so the processor is likely to add points.
        result = processor.process(Gaussian(2.5, 0.4))
        if result.points_added > 0:
            assert result.retrained

    def test_global_inference_mode(self, quadratic_udf):
        udf = quadratic_udf.with_simulated_eval_time(0.0)
        processor = small_processor(udf, use_local_inference=False)
        result = processor.process(Gaussian(1.0, 0.2))
        assert result.converged


class TestOnlineFiltering:
    def test_drops_tuple_outside_predicate(self, quadratic_udf):
        udf = quadratic_udf.with_simulated_eval_time(0.0)
        processor = small_processor(udf)
        # Output of x^2+1 around x ~ N(1, 0.2) lives near 2; predicate far away.
        predicate = SelectionPredicate(low=50.0, high=60.0, threshold=0.1)
        result = processor.process_with_filter(Gaussian(1.0, 0.2), predicate)
        assert result.dropped
        assert result.result is None

    def test_keeps_tuple_inside_predicate(self, quadratic_udf):
        udf = quadratic_udf.with_simulated_eval_time(0.0)
        processor = small_processor(udf)
        predicate = SelectionPredicate(low=1.0, high=3.0, threshold=0.1)
        result = processor.process_with_filter(Gaussian(1.0, 0.2), predicate)
        assert not result.dropped
        assert result.existence_probability > 0.5

    def test_filtering_saves_time(self, quadratic_udf):
        udf = quadratic_udf.with_simulated_eval_time(0.0)
        processor = small_processor(udf, n_samples=2000)
        predicate = SelectionPredicate(low=100.0, high=200.0, threshold=0.1)
        # Warm up the model so only inference cost remains.
        processor.process(Gaussian(1.0, 0.2))
        # Both sides of the comparison are single-digit-millisecond timings;
        # take the best of three so a scheduler hiccup on a loaded CI runner
        # cannot flip the (robust, ~1.5x) margin.
        filtered_runs = [
            processor.process_with_filter(Gaussian(1.0, 0.2), predicate)
            for _ in range(3)
        ]
        full_runs = [processor.process(Gaussian(1.0, 0.2)) for _ in range(3)]
        assert all(run.dropped for run in filtered_runs)
        assert (min(run.elapsed_time for run in filtered_runs)
                < min(run.elapsed_time for run in full_runs))
