"""Unit tests for the query-engine schema, tuples and relations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions.continuous import Gaussian
from repro.distributions.multivariate import IndependentJoint, PointMass
from repro.engine.schema import Attribute, AttributeKind, Schema
from repro.engine.tuples import Relation, UncertainTuple
from repro.exceptions import SchemaError


class TestAttribute:
    def test_defaults(self):
        attr = Attribute("objID")
        assert not attr.is_uncertain
        assert attr.dimension == 1

    def test_validation(self):
        with pytest.raises(SchemaError):
            Attribute("")
        with pytest.raises(SchemaError):
            Attribute("x", dimension=0)


class TestSchema:
    def make(self):
        return Schema.of(
            [
                Attribute("objID"),
                Attribute("redshift", AttributeKind.UNCERTAIN),
                Attribute("mag", AttributeKind.CERTAIN),
            ]
        )

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of([Attribute("a"), Attribute("a")])

    def test_lookup_and_membership(self):
        schema = self.make()
        assert "redshift" in schema
        assert "nope" not in schema
        assert schema.attribute("redshift").is_uncertain
        with pytest.raises(SchemaError):
            schema.attribute("nope")

    def test_names_and_uncertain_names(self):
        schema = self.make()
        assert schema.names() == ["objID", "redshift", "mag"]
        assert schema.uncertain_names() == ["redshift"]

    def test_with_attribute_and_project(self):
        schema = self.make().with_attribute(Attribute("derived", AttributeKind.UNCERTAIN))
        assert len(schema) == 4
        projected = schema.project(["derived", "objID"])
        assert projected.names() == ["derived", "objID"]

    def test_prefixed(self):
        prefixed = self.make().prefixed("G1")
        assert prefixed.names() == ["G1.objID", "G1.redshift", "G1.mag"]
        assert prefixed.attribute("G1.redshift").is_uncertain


class TestUncertainTuple:
    def make(self):
        return UncertainTuple(
            values={"objID": 7, "redshift": Gaussian(0.5, 0.05), "area": 0.1}
        )

    def test_getitem_and_contains(self):
        row = self.make()
        assert row["objID"] == 7
        assert "redshift" in row
        with pytest.raises(SchemaError):
            _ = row["missing"]

    def test_is_uncertain(self):
        row = self.make()
        assert row.is_uncertain("redshift")
        assert not row.is_uncertain("objID")

    def test_input_distribution_single(self):
        row = self.make()
        dist = row.input_distribution(["redshift"])
        assert isinstance(dist, Gaussian)

    def test_input_distribution_mixed(self):
        row = self.make()
        dist = row.input_distribution(["redshift", "area"])
        assert isinstance(dist, IndependentJoint)
        assert dist.dimension == 2
        samples = dist.sample(10, random_state=0)
        assert np.allclose(samples[:, 1], 0.1)  # the certain argument

    def test_input_distribution_requires_names(self):
        with pytest.raises(SchemaError):
            self.make().input_distribution([])

    def test_merged_with(self):
        left = self.make()
        right = UncertainTuple(values={"objID": 9}, existence_probability=0.5)
        merged = left.merged_with(right, "G1", "G2")
        assert merged["G1.objID"] == 7
        assert merged["G2.objID"] == 9
        assert merged.existence_probability == pytest.approx(0.5)

    def test_with_value_copies(self):
        row = self.make()
        updated = row.with_value("new", PointMass(1.0))
        assert "new" in updated
        assert "new" not in row


class TestRelation:
    def schema(self):
        return Schema.of([Attribute("objID"), Attribute("z", AttributeKind.UNCERTAIN)])

    def test_insert_valid(self):
        relation = Relation("R", self.schema())
        relation.insert(UncertainTuple(values={"objID": 1, "z": Gaussian(0.3, 0.01)}))
        assert len(relation) == 1

    def test_missing_attribute_rejected(self):
        relation = Relation("R", self.schema())
        with pytest.raises(SchemaError):
            relation.insert(UncertainTuple(values={"objID": 1}))

    def test_certain_value_in_uncertain_column_rejected(self):
        relation = Relation("R", self.schema())
        with pytest.raises(SchemaError):
            relation.insert(UncertainTuple(values={"objID": 1, "z": 0.5}))

    def test_extend_and_iterate(self):
        relation = Relation("R", self.schema())
        rows = [
            UncertainTuple(values={"objID": i, "z": Gaussian(0.1 * (i + 1), 0.01)})
            for i in range(3)
        ]
        relation.extend(rows)
        assert [row["objID"] for row in relation] == [0, 1, 2]
