"""Fault tolerance: deterministic retries, quarantine, shard recovery, breaker.

Contracts under test (see :mod:`repro.udf.retry`, :mod:`repro.udf.faults`,
:mod:`repro.engine.faults`, :mod:`repro.engine.parallel`,
:mod:`repro.engine.service`):

* a :class:`~repro.udf.faults.FaultSchedule` is **replayable**: failures
  are a pure function of ``(seed, point, attempt)`` — no wall clock, no
  shared RNG — and survive pickling into pool workers;
* a run that recovers from injected transient faults via retries is
  **bit-identical** to the fault-free run with the same seed, on the
  serial, thread-pool and asyncio transports, with matching UDF charge
  counters (failed attempts charge nothing);
* tuples whose evaluations stay failing after the policy is exhausted are
  **quarantined** as ``degraded`` verdicts (carrying the last bound the
  online algorithm had) instead of aborting the query — and fatal faults
  are never retried;
* a dead pool worker's shard is **re-executed** (same ``spawn_keyed``
  stream ⇒ identical results) up to ``retry.shard_attempts``; exhaustion
  raises :class:`~repro.exceptions.ShardFailureError` whose message alone
  reproduces the shard;
* a transport drain that exceeds its deadline raises the typed
  :class:`~repro.exceptions.TransportDrainTimeoutError` (never the raw
  ``concurrent.futures.TimeoutError``) and still tears the pool down;
* the serving circuit breaker trips after consecutive same-UDF failures,
  fast-fails with :class:`~repro.exceptions.CircuitOpenError`, admits a
  single half-open probe after the cooldown, and ``close(drain=True)``
  finishes in-flight queries;
* every injected-failure exit path leaks no threads or transports.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.engine import (
    VERDICT_DEGRADED,
    ExecutionPlan,
    FaultInjectingTransport,
    ParallelExecutor,
    Query,
    QueryService,
    ThreadPoolTransport,
    UDFExecutionEngine,
    generate_galaxy_relation,
)
from repro.exceptions import (
    CircuitOpenError,
    FatalUDFError,
    PlanError,
    QueryCancelledError,
    QueryError,
    ReproError,
    ShardFailureError,
    TransientUDFError,
    TransportDrainTimeoutError,
    UDFError,
)
from repro.udf.base import UDF
from repro.udf.faults import (
    FaultInjectingAsyncUDF,
    FaultInjectingUDF,
    FaultSchedule,
    point_key,
)
from repro.udf.retry import RetryPolicy
from repro.udf.synthetic import async_service_udf, reference_function
from repro.workloads.generators import input_stream, workload_for_udf

REQUIREMENT = AccuracyRequirement(epsilon=0.15, delta=0.05)
RELATION = generate_galaxy_relation(4, random_state=11)

#: Threads that must not survive any computation or service shutdown.
THREAD_PREFIXES = ("udf-", "repro-")


def _leaked_threads() -> list[str]:
    """Names of surviving transport/service threads (should be empty)."""
    return [
        t.name for t in threading.enumerate() if t.name.startswith(THREAD_PREFIXES)
    ]


def _engine(seed: int = 7, n_samples: int = 120) -> UDFExecutionEngine:
    return UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=seed, n_samples=n_samples
    )


def _dists(udf: UDF, n_tuples: int = 3, stream_seed: int = 4):
    return list(
        input_stream(
            workload_for_udf(udf), n_tuples,
            random_state=np.random.default_rng(stream_seed),
        )
    )


def _assert_outputs_identical(a_outputs, b_outputs) -> None:
    """Samples and bounds must match bit for bit (not merely approximately)."""
    assert len(a_outputs) == len(b_outputs)
    for i, (a, b) in enumerate(zip(a_outputs, b_outputs)):
        assert np.array_equal(a.distribution.samples, b.distribution.samples), i
        assert a.error_bound == b.error_bound, i


# ---------------------------------------------------------------------------
# FaultSchedule: replayability, caps, pickling
# ---------------------------------------------------------------------------

def _keys(n: int = 40):
    return [point_key(np.array([float(i), float(2 * i)])) for i in range(n)]


def test_schedule_is_replayable():
    a = FaultSchedule(0.4, seed=5)
    b = FaultSchedule(0.4, seed=5)
    for key in _keys():
        for _attempt in range(3):
            assert a.should_fail(key) == b.should_fail(key)
    assert a.injected_failures == b.injected_failures > 0
    assert a.attempts_seen == b.attempts_seen == 120


def test_schedule_seed_changes_the_failures():
    a = FaultSchedule(0.4, seed=5)
    b = FaultSchedule(0.4, seed=6)
    draws_a = [a.should_fail(key) for key in _keys()]
    draws_b = [b.should_fail(key) for key in _keys()]
    assert draws_a != draws_b


def test_schedule_validates_rate_and_cap():
    with pytest.raises(UDFError, match=r"\[0, 1\]"):
        FaultSchedule(1.5)
    with pytest.raises(UDFError, match=r"\[0, 1\]"):
        FaultSchedule(-0.1)
    with pytest.raises(UDFError, match="non-negative"):
        FaultSchedule(0.5, max_failures_per_point=-1)


def test_schedule_caps_failures_per_point():
    schedule = FaultSchedule(1.0, seed=0, max_failures_per_point=2)
    key = point_key(np.array([1.0, 2.0]))
    assert [schedule.should_fail(key) for _ in range(5)] == [
        True, True, False, False, False,
    ]
    assert schedule.injected_failures == 2


def test_schedule_consume_failures_spends_the_ending_success():
    schedule = FaultSchedule(1.0, seed=0, max_failures_per_point=1)
    key = point_key(np.array([3.0, 4.0]))
    # One scheduled failure, then the success draw the real attempt rides on.
    assert schedule.consume_failures(key, limit=3) == 1
    assert schedule.attempts_seen == 2


def test_schedule_pickle_resumes_where_the_original_would():
    original = FaultSchedule(0.5, seed=9)
    key = point_key(np.array([7.0, 8.0]))
    original.should_fail(key)
    copy = pickle.loads(pickle.dumps(original))
    # Same per-point attempt counters => identical continuation.
    for _ in range(4):
        assert copy.should_fail(key) == original.should_fail(key)


# ---------------------------------------------------------------------------
# RetryPolicy: validation and deterministic backoff
# ---------------------------------------------------------------------------

def test_retry_policy_validates_fields():
    with pytest.raises(UDFError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(UDFError, match="backoff_base"):
        RetryPolicy(backoff_base=-0.1)
    with pytest.raises(UDFError, match="backoff_cap"):
        RetryPolicy(backoff_cap=-1.0)
    with pytest.raises(UDFError, match="retry_budget"):
        RetryPolicy(retry_budget=-1)
    with pytest.raises(UDFError, match="shard_attempts"):
        RetryPolicy(shard_attempts=0)


def test_retry_policy_backoff_is_capped_doubling():
    policy = RetryPolicy(max_attempts=5, backoff_base=0.1, backoff_cap=0.25)
    assert [policy.delay_for(n) for n in (1, 2, 3, 4)] == [0.1, 0.2, 0.25, 0.25]
    assert RetryPolicy().delay_for(1) == 0.0  # backoff_base=0 retries immediately
    with pytest.raises(UDFError, match="failure_count"):
        policy.delay_for(0)


# ---------------------------------------------------------------------------
# UDF retry loop: recovery, budget, fatal faults, pickling
# ---------------------------------------------------------------------------

def test_transient_faults_recover_bit_identically():
    inner = reference_function("F1")
    schedule = FaultSchedule(0.5, seed=3, max_failures_per_point=2)
    faulty = FaultInjectingUDF(inner, schedule)
    faulty._install_retry_policy(RetryPolicy(max_attempts=3))
    points = np.random.default_rng(0).uniform(1.0, 9.0, size=(25, 2))
    clean = reference_function("F1")
    for x in points:
        assert faulty(x) == clean(x)
    assert schedule.injected_failures > 0
    # Failed attempts charge nothing: both UDFs report one call per point.
    assert faulty.call_count == clean.call_count == len(points)


def test_transient_fault_without_policy_propagates():
    schedule = FaultSchedule(1.0, seed=0)
    faulty = FaultInjectingUDF(reference_function("F1"), schedule)
    with pytest.raises(TransientUDFError, match="injected transient fault"):
        faulty(np.array([1.0, 2.0]))


def test_retry_budget_exhaustion_turns_transient_terminal():
    schedule = FaultSchedule(1.0, seed=0, max_failures_per_point=1)
    faulty = FaultInjectingUDF(reference_function("F1"), schedule)
    faulty._install_retry_policy(RetryPolicy(max_attempts=3, retry_budget=0))
    with pytest.raises(TransientUDFError):
        faulty(np.array([1.0, 2.0]))


def test_fatal_fault_is_never_retried():
    schedule = FaultSchedule(1.0, seed=0)
    faulty = FaultInjectingUDF(reference_function("F1"), schedule, fatal=True)
    faulty._install_retry_policy(RetryPolicy(max_attempts=5))
    with pytest.raises(FatalUDFError, match="injected fatal fault"):
        faulty(np.array([1.0, 2.0]))
    assert schedule.attempts_seen == 1  # no retry draw happened
    assert faulty.call_count == 0


def test_vectorized_batch_retries_recover_bit_identically():
    inner = reference_function("F1")  # vectorised
    assert inner.vectorized
    schedule = FaultSchedule(0.9, seed=1, max_failures_per_point=2)
    faulty = FaultInjectingUDF(inner, schedule)
    faulty._install_retry_policy(RetryPolicy(max_attempts=3))
    X = np.random.default_rng(1).uniform(1.0, 9.0, size=(8, 2))
    clean = reference_function("F1")
    assert np.array_equal(faulty.evaluate_batch(X), clean.evaluate_batch(X))
    assert faulty.call_count == clean.call_count == X.shape[0]
    assert schedule.injected_failures > 0


def test_pickled_udf_keeps_policy_and_zeroes_used_retries():
    schedule = FaultSchedule(0.5, seed=3, max_failures_per_point=2)
    faulty = FaultInjectingUDF(reference_function("F1"), schedule)
    faulty._install_retry_policy(RetryPolicy(max_attempts=3))
    points = np.random.default_rng(0).uniform(1.0, 9.0, size=(25, 2))
    for x in points:
        faulty(x)
    assert faulty.retries_used > 0
    copy = pickle.loads(pickle.dumps(faulty))
    assert copy._retry_policy == faulty._retry_policy
    assert copy.retries_used == 0  # fresh budget window in the worker


# ---------------------------------------------------------------------------
# Plan plumbing
# ---------------------------------------------------------------------------

def test_plan_rejects_non_policy_retry():
    with pytest.raises(PlanError, match="RetryPolicy"):
        ExecutionPlan(retry="three times please")


def test_plan_with_retry_and_workers_resolves_to_parallel_executor():
    plan = ExecutionPlan(workers=2, retry=RetryPolicy(shard_attempts=3))
    executor = plan.resolve(_engine())
    assert isinstance(executor, ParallelExecutor)
    assert executor.retry == plan.retry


def test_parallel_executor_validates_retry():
    with pytest.raises(QueryError, match="RetryPolicy"):
        ParallelExecutor(_engine(), workers=2, retry=7)


# ---------------------------------------------------------------------------
# The headline contract: bit-identity under injected faults, per transport
# ---------------------------------------------------------------------------

def _identity_run(mode: str, inject: bool):
    """One small GP run of ``mode``; returns (outputs, call_count, schedule)."""
    policy = RetryPolicy(max_attempts=3)
    schedule = (
        FaultSchedule(0.3, seed=1234, max_failures_per_point=2) if inject else None
    )
    if mode == "asyncio":
        inner = async_service_udf("F4", latency=2e-3, random_state=7)
        udf = FaultInjectingAsyncUDF(inner, schedule) if inject else inner
        plan = ExecutionPlan(
            batch_size=3, async_inflight=2, transport="asyncio", retry=policy
        )
    else:
        inner = reference_function("F4")
        udf = FaultInjectingUDF(inner, schedule) if inject else inner
        if mode == "threads":
            plan = ExecutionPlan(
                batch_size=3, async_inflight=2, transport="threads", retry=policy
            )
        else:
            plan = ExecutionPlan(batch_size=3, retry=policy)
    result = _engine(n_samples=100).compute_with_plan(udf, _dists(udf), plan=plan)
    return list(result.outputs), udf.call_count, schedule


@pytest.mark.parametrize("mode", ["serial", "threads", "asyncio"])
def test_injected_faults_with_retries_are_bit_identical(mode):
    clean_outputs, clean_calls, _ = _identity_run(mode, inject=False)
    faulty_outputs, faulty_calls, schedule = _identity_run(mode, inject=True)
    assert schedule.injected_failures > 0  # the gate must not be vacuous
    _assert_outputs_identical(clean_outputs, faulty_outputs)
    assert clean_calls == faulty_calls
    assert _leaked_threads() == []


# ---------------------------------------------------------------------------
# Chaos transport: absorption and exhaustion at the transport seam
# ---------------------------------------------------------------------------

def test_fault_injecting_transport_is_bit_identical_when_absorbable():
    def run(inject: bool):
        udf = reference_function("F4")
        schedule = FaultSchedule(0.3, seed=77, max_failures_per_point=2)
        transport = (
            FaultInjectingTransport(schedule, inner="threads")
            if inject
            else "threads"
        )
        plan = ExecutionPlan(
            batch_size=3, async_inflight=2, transport=transport,
            retry=RetryPolicy(max_attempts=3),
        )
        result = _engine(n_samples=100).compute_with_plan(udf, _dists(udf), plan=plan)
        return list(result.outputs), schedule if inject else None

    clean_outputs, _ = run(inject=False)
    faulty_outputs, schedule = run(inject=True)
    assert schedule.injected_failures > 0
    _assert_outputs_identical(clean_outputs, faulty_outputs)
    assert _leaked_threads() == []


def test_fault_injecting_transport_delegates_lifecycle():
    schedule = FaultSchedule(0.0, seed=0)
    transport = FaultInjectingTransport(schedule, inner="threads")
    assert isinstance(transport.inner, ThreadPoolTransport)
    udf = reference_function("F1")
    with transport.session(max_workers=2):
        futures = transport.submit_rows(udf, np.array([[1.0, 2.0], [3.0, 4.0]]))
        values = [f.result() for f in futures]
    assert values == [udf(np.array([1.0, 2.0])), udf(np.array([3.0, 4.0]))]
    assert _leaked_threads() == []


def test_fault_injecting_transport_exhaustion_fails_future_typed():
    schedule = FaultSchedule(1.0, seed=0)  # uncapped: every attempt fails
    transport = FaultInjectingTransport(schedule, inner="threads")
    udf = reference_function("F1")
    udf._install_retry_policy(RetryPolicy(max_attempts=2))
    with transport.session(max_workers=2):
        (future,) = transport.submit_rows(udf, np.array([[1.0, 2.0]]))
        with pytest.raises(TransientUDFError, match=r"all 2 attempt\(s\) failed"):
            future.result()
    assert udf.call_count == 0
    udf._install_retry_policy(None)


# ---------------------------------------------------------------------------
# Quarantine: degraded verdicts instead of aborted queries
# ---------------------------------------------------------------------------

def _always_transient(x):
    raise TransientUDFError("service is down")


class _FailAfter:
    """Succeed for the first ``n`` calls of this process, then fail forever.

    Lets the GP train its initial model, then simulates a total outage in
    the refinement phase — exercising OLGAPRO's in-loop quarantine, which
    keeps the last bound it computed rather than NaN.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.calls = 0

    def __call__(self, x):
        self.calls += 1
        if self.calls > self.n:
            raise TransientUDFError("service went down mid-refinement")
        return float(np.sin(x[0]) + np.cos(x[1]))


def _failing_udf(func=_always_transient) -> UDF:
    return UDF(func, dimension=2, name="flaky",
               domain=(np.zeros(2), np.full(2, 10.0)))


@pytest.mark.parametrize("batched", [False, True], ids=["per-tuple", "batched"])
def test_quarantine_surfaces_degraded_verdicts(batched):
    udf = _failing_udf()
    plan = ExecutionPlan(batch_size=3 if batched else None,
                         retry=RetryPolicy(max_attempts=2, quarantine=True))
    result = _engine().compute_with_plan(udf, _dists(udf), plan=plan)
    assert len(result.degraded()) == len(result.verdicts) == 3
    for verdict in result.verdicts:
        assert verdict.verdict == VERDICT_DEGRADED
    for output in result.outputs:
        assert output.failed


def test_quarantine_off_aborts_the_query():
    udf = _failing_udf()
    plan = ExecutionPlan(retry=RetryPolicy(max_attempts=2, quarantine=False))
    with pytest.raises(TransientUDFError):
        _engine().compute_with_plan(udf, _dists(udf), plan=plan)


def test_quarantine_keeps_the_last_bound_olgapro_had():
    udf = _failing_udf(_FailAfter(25))  # survives initial training, not refinement
    plan = ExecutionPlan(retry=RetryPolicy(max_attempts=2, quarantine=True))
    result = _engine().compute_with_plan(udf, _dists(udf), plan=plan)
    degraded = result.degraded()
    assert degraded  # the outage struck mid-query
    assert any(np.isfinite(v.bound) for v in degraded), (
        "a tuple quarantined mid-refinement must carry the last finite "
        "bound the online algorithm computed, not NaN"
    )


def test_quarantine_without_retry_policy_is_inert():
    udf = _failing_udf()
    with pytest.raises(UDFError):
        _engine().compute_with_plan(udf, _dists(udf), plan=ExecutionPlan())


# ---------------------------------------------------------------------------
# Query surface: the operators install the plan's retry policy themselves
# (compute_with_plan is not on their path), quarantined rows materialise
# ---------------------------------------------------------------------------


def _query_run(inject: bool):
    relation = generate_galaxy_relation(6, random_state=21)
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=13, n_samples=120
    )
    udf = reference_function("F3")
    schedule = None
    if inject:
        schedule = FaultSchedule(0.3, seed=1234, max_failures_per_point=2)
        udf = FaultInjectingUDF(udf, schedule)
    plan = ExecutionPlan(batch_size=3, retry=RetryPolicy(max_attempts=3))
    result = (
        Query(relation)
        .apply_udf(udf, ["ra_offset", "dec_offset"], alias="f", plan=plan)
        .run(engine)
    )
    return result, schedule, udf


def test_query_surface_retry_recovers_bit_identically():
    clean, _, clean_udf = _query_run(False)
    faulty, schedule, faulty_udf = _query_run(True)
    assert schedule.injected_failures > 0
    for a, b in zip(clean.relation.tuples, faulty.relation.tuples):
        assert np.array_equal(a["f"].samples, b["f"].samples)
        assert a.annotations["f_error_bound"] == b.annotations["f_error_bound"]
    assert clean_udf.call_count == faulty_udf.call_count
    assert getattr(faulty_udf, "_retry_policy", None) is None  # uninstalled


def test_query_surface_quarantine_materialises_degraded_rows():
    udf = FaultInjectingUDF(reference_function("F3"), FaultSchedule(1.0, seed=0))
    plan = ExecutionPlan(retry=RetryPolicy(max_attempts=2, quarantine=True))
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=13, n_samples=120
    )
    result = (
        Query(generate_galaxy_relation(4, random_state=21))
        .apply_udf(udf, ["ra_offset", "dec_offset"], alias="f", plan=plan)
        .run(engine)
    )
    assert [v.verdict for v in result.verdicts] == [VERDICT_DEGRADED] * 4
    for row in result.relation.tuples:
        assert row["f"] is None  # "value unavailable" is schema-storable
        assert row.annotations["f_degraded"] is True
    assert getattr(udf, "_retry_policy", None) is None


def test_where_udf_retains_quarantined_tuples_as_degraded():
    udf = FaultInjectingUDF(reference_function("F3"), FaultSchedule(1.0, seed=0))
    plan = ExecutionPlan(retry=RetryPolicy(max_attempts=2, quarantine=True))
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=13, n_samples=120
    )
    result = (
        Query(generate_galaxy_relation(3, random_state=21))
        .where_udf(
            udf, ["ra_offset", "dec_offset"], alias="f",
            low=-10.0, high=10.0, threshold=0.1, plan=plan,
        )
        .run(engine)
    )
    # A failed evaluation rules nothing out: every tuple is retained, degraded.
    assert len(result.relation.tuples) == 3
    assert [v.verdict for v in result.verdicts] == [VERDICT_DEGRADED] * 3


@pytest.mark.parametrize("mode", ["serial", "threads", "asyncio"])
def test_injected_failure_paths_leak_nothing(mode):
    policy = RetryPolicy(max_attempts=2, quarantine=True)
    if mode == "asyncio":
        schedule = FaultSchedule(1.0, seed=0)
        udf = FaultInjectingAsyncUDF(
            async_service_udf("F4", latency=1e-3, random_state=7), schedule
        )
        plan = ExecutionPlan(batch_size=3, async_inflight=2,
                             transport="asyncio", retry=policy)
    elif mode == "threads":
        udf = _failing_udf()
        plan = ExecutionPlan(batch_size=3, async_inflight=2,
                             transport="threads", retry=policy)
    else:
        udf = _failing_udf()
        plan = ExecutionPlan(batch_size=3, retry=policy)
    result = _engine().compute_with_plan(udf, _dists(udf), plan=plan)
    assert len(result.degraded()) == 3
    assert _leaked_threads() == []


# ---------------------------------------------------------------------------
# Shard recovery (dead pool workers)
# ---------------------------------------------------------------------------

class _CrashOnce:
    """Kill the worker process on first contact, succeed ever after.

    The flag file is the cross-process memory: the first worker to
    evaluate creates it and dies (as a segfault would — no exception),
    every later process sees it and computes normally.
    """

    def __init__(self, flag_path: str) -> None:
        self.flag_path = flag_path

    def __call__(self, x):
        if not os.path.exists(self.flag_path):
            with open(self.flag_path, "w"):
                pass
            os._exit(13)
        return float(np.sin(x[0]) + np.cos(x[1]))


def _crash_udf(flag_path: str) -> UDF:
    return UDF(_CrashOnce(flag_path), dimension=2, name="crash-once",
               domain=(np.zeros(2), np.full(2, 10.0)))


def test_dead_worker_shard_is_reexecuted_bit_identically(tmp_path):
    flag = str(tmp_path / "crashed-once")

    def run(pre_crashed: bool):
        if pre_crashed and not os.path.exists(flag):
            with open(flag, "w"):
                pass
        udf = _crash_udf(flag)
        executor = ParallelExecutor(
            _engine(n_samples=150), workers=2, batch_size=4, seed=1,
            retry=RetryPolicy(shard_attempts=2),
        )
        return executor.compute_batch(udf, _dists(udf, n_tuples=8))

    recovered = run(pre_crashed=False)  # first round crashes, second recovers
    os.remove(flag)
    with open(flag, "w"):
        pass
    clean = run(pre_crashed=True)  # never crashes
    _assert_outputs_identical(clean, recovered)


def test_dead_worker_without_retry_raises_shard_failure(tmp_path):
    udf = _crash_udf(str(tmp_path / "never-created-by-retry"))
    # Crash every round: the flag is re-pointed at a path the dying worker
    # creates, so with no retry the very first round is terminal.
    executor = ParallelExecutor(_engine(n_samples=150), workers=2, batch_size=4, seed=1)
    with pytest.raises(QueryError, match="worker process died"):
        executor.compute_batch(udf, _dists(udf, n_tuples=8))


def _exploding(x):
    raise RuntimeError("black box exploded")


def test_shard_failure_message_reproduces_the_shard():
    udf = UDF(_exploding, dimension=2, name="exploding",
              domain=(np.zeros(2), np.full(2, 10.0)))
    executor = ParallelExecutor(_engine(n_samples=150), workers=2,
                                batch_size=4, seed=123)
    with pytest.raises(ShardFailureError, match="parallel shard") as excinfo:
        executor.compute_batch(udf, _dists(udf, n_tuples=8))
    message = str(excinfo.value)
    # Everything needed to re-run the failing shard in isolation.
    assert "tuples" in message
    assert "base_seed=" in message
    assert "spawn_key=" in message


# ---------------------------------------------------------------------------
# Transport drain deadline (typed, pool still torn down)
# ---------------------------------------------------------------------------

def test_drain_timeout_is_typed_and_pool_is_torn_down():
    transport = ThreadPoolTransport()
    transport.open(2, label="drain-test")
    try:
        udf = reference_function("F1")
        real = transport.submit_rows(udf, np.array([[1.0, 2.0]]))
        stuck: Future = Future()  # an evaluation that never settles
        started = time.monotonic()
        with pytest.raises(TransportDrainTimeoutError, match="threads") as excinfo:
            transport.drain(real + [stuck], timeout=0.2)
        elapsed = time.monotonic() - started
        assert elapsed < 5.0  # the deadline actually bounded the wait
        assert "0.2" in str(excinfo.value)
        assert isinstance(excinfo.value, QueryError)  # typed, not the raw timeout
    finally:
        transport.close()
    assert _leaked_threads() == []  # the pool was still torn down


# ---------------------------------------------------------------------------
# Serving circuit breaker and graceful drain
# ---------------------------------------------------------------------------

def _boom(X):
    raise RuntimeError("dependency down")


def _breaker_udf(fail: bool, name: str = "breaker-target") -> UDF:
    if fail:
        return UDF(_boom, dimension=1, name=name, vectorized=True)
    return UDF(
        lambda X: np.sin(3.0 * np.atleast_2d(X)[:, 0]),
        dimension=1, name=name, vectorized=True,
    )


def _slow_udf(per_call: float = 0.02, name: str = "slow") -> UDF:
    def f(X: np.ndarray) -> np.ndarray:
        time.sleep(per_call)
        return np.sin(3.0 * np.atleast_2d(X)[:, 0])

    return UDF(f, dimension=1, name=name, vectorized=True)


def _service_query(udf: UDF) -> Query:
    return Query(RELATION).apply_udf(udf, ["redshift"], alias="out")


def _fail_one(service: QueryService, name: str = "breaker-target") -> None:
    handle = service.submit(_service_query(_breaker_udf(fail=True, name=name)),
                            _engine())
    with pytest.raises(ReproError):
        handle.result(timeout=30)


def test_breaker_opens_after_consecutive_failures_and_probes():
    with QueryService(worker_budget=2, breaker_threshold=2,
                      breaker_cooldown=0.2) as service:
        _fail_one(service)
        _fail_one(service)
        # Tripped: fast-fail, no queue slot, no engine work.
        with pytest.raises(CircuitOpenError, match="breaker-target") as excinfo:
            service.submit(_service_query(_breaker_udf(fail=True)), _engine())
        assert "2 consecutive query failures" in str(excinfo.value)
        assert service.stats["fast_failed"] == 1
        # After the cooldown one half-open probe is admitted; it succeeds
        # and closes the breaker for good.
        time.sleep(0.25)
        probe = service.submit(_service_query(_breaker_udf(fail=False)), _engine())
        probe.result(timeout=30)
        after = service.submit(_service_query(_breaker_udf(fail=False)), _engine())
        after.result(timeout=30)
    assert _leaked_threads() == []


def test_breaker_failed_probe_reopens_the_cooldown():
    with QueryService(worker_budget=2, breaker_threshold=1,
                      breaker_cooldown=0.2) as service:
        _fail_one(service)
        time.sleep(0.25)
        _fail_one(service)  # the half-open probe — and it fails
        # Re-opened: straight back to fast-fail without a fresh streak.
        with pytest.raises(CircuitOpenError):
            service.submit(_service_query(_breaker_udf(fail=True)), _engine())


def test_breaker_rejects_second_probe_while_first_in_flight():
    with QueryService(worker_budget=2, breaker_threshold=1,
                      breaker_cooldown=0.1) as service:
        _fail_one(service, name="slow")
        time.sleep(0.15)
        probe = service.submit(_service_query(_slow_udf(name="slow")), _engine())
        with pytest.raises(CircuitOpenError, match="half-open"):
            service.submit(_service_query(_slow_udf(name="slow")), _engine())
        probe.result(timeout=60)


def test_breaker_disabled_with_none_threshold():
    with QueryService(worker_budget=2, breaker_threshold=None) as service:
        for _ in range(4):
            _fail_one(service)
        handle = service.submit(_service_query(_breaker_udf(fail=False)), _engine())
        handle.result(timeout=30)


def test_breaker_ignores_cancellations():
    with QueryService(worker_budget=2, breaker_threshold=1,
                      breaker_cooldown=60.0) as service:
        handle = service.submit(_service_query(_slow_udf(name="cancelme")), _engine())
        handle.cancel()
        with pytest.raises(QueryCancelledError):
            handle.result(timeout=30)
        # A cancellation says nothing about the UDF's health: not recorded.
        again = service.submit(_service_query(_slow_udf(name="cancelme")), _engine())
        again.result(timeout=60)


def test_breaker_validates_configuration():
    from repro.exceptions import ServiceError

    with pytest.raises(ServiceError, match="breaker_threshold"):
        QueryService(breaker_threshold=0)
    with pytest.raises(ServiceError, match="breaker_cooldown"):
        QueryService(breaker_cooldown=0.0)


def test_close_drain_finishes_in_flight_queries():
    service = QueryService(worker_budget=2)
    handle = service.submit(_service_query(_slow_udf()), _engine())
    service.close(drain=True)
    result = handle.result(timeout=0.0)  # already finished by the drain
    assert len(result.relation) == len(RELATION)
    assert service.stats["completed"] == 1
    assert service.stats["cancelled"] == 0
    assert _leaked_threads() == []
