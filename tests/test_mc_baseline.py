"""Unit tests for the Monte-Carlo baseline (Algorithm 1 + Remark 2.1)."""

from __future__ import annotations

import pytest
from scipy import stats

from repro.core.accuracy import AccuracyRequirement
from repro.core.filtering import SelectionPredicate
from repro.core.mc_baseline import (
    mc_sample_count,
    monte_carlo_output,
    monte_carlo_with_filter,
)
from repro.core.metrics import ks_distance
from repro.distributions.continuous import Gaussian
from repro.exceptions import AccuracyError
from repro.udf.base import UDF


class TestMonteCarloOutput:
    def test_sample_count_matches_requirement(self, linear_udf, gaussian_1d_input):
        requirement = AccuracyRequirement(epsilon=0.2, delta=0.1)
        result = monte_carlo_output(
            linear_udf.with_simulated_eval_time(0.0), gaussian_1d_input, requirement=requirement,
            random_state=0,
        )
        assert result.n_samples == mc_sample_count(requirement)
        assert result.udf_calls == result.n_samples

    def test_explicit_sample_count(self, linear_udf, gaussian_1d_input):
        result = monte_carlo_output(
            linear_udf.with_simulated_eval_time(0.0), gaussian_1d_input, n_samples=123,
            random_state=0,
        )
        assert result.n_samples == 123
        assert result.distribution.size == 123

    def test_exactly_one_budget_spec(self, linear_udf, gaussian_1d_input):
        with pytest.raises(AccuracyError):
            monte_carlo_output(linear_udf, gaussian_1d_input)
        with pytest.raises(AccuracyError):
            monte_carlo_output(
                linear_udf, gaussian_1d_input,
                requirement=AccuracyRequirement(), n_samples=10,
            )

    def test_linear_udf_output_matches_analytic(self, linear_udf):
        # f(x) = 2x + 1 on N(2, 0.3^2) => output is N(5, 0.6^2).
        udf = linear_udf.with_simulated_eval_time(0.0)
        result = monte_carlo_output(udf, Gaussian(2.0, 0.3), n_samples=4000, random_state=1)
        analytic = stats.norm(loc=5.0, scale=0.6).cdf
        assert ks_distance(result.distribution, analytic) < 0.04

    def test_ks_guarantee_holds_empirically(self, linear_udf):
        # With the sample size dictated by (epsilon, delta) in the KS metric,
        # the realised KS error against the analytic output should be below
        # epsilon in (almost) every run.
        udf = linear_udf.with_simulated_eval_time(0.0)
        requirement = AccuracyRequirement(epsilon=0.1, delta=0.05, metric="ks")
        analytic = stats.norm(loc=5.0, scale=0.6).cdf
        failures = 0
        for seed in range(10):
            result = monte_carlo_output(udf, Gaussian(2.0, 0.3), requirement=requirement,
                                        random_state=seed)
            if ks_distance(result.distribution, analytic) > 0.1:
                failures += 1
        # The guarantee is probabilistic (delta = 5%); allow a single miss in
        # ten repetitions rather than demanding zero.
        assert failures <= 1

    def test_charged_time_accounts_simulated_cost(self, gaussian_1d_input):
        udf = UDF(lambda x: float(x[0]), dimension=1, simulated_eval_time=1e-3)
        result = monte_carlo_output(udf, gaussian_1d_input, n_samples=200, random_state=0)
        assert result.charged_time >= 0.2


class TestMonteCarloWithFilter:
    def make_udf(self):
        return UDF(lambda x: float(x[0]), dimension=1, name="identity")

    def test_drops_improbable_tuple_early(self):
        udf = self.make_udf()
        predicate = SelectionPredicate(low=100.0, high=200.0, threshold=0.1)
        result = monte_carlo_with_filter(
            udf, Gaussian(0.0, 1.0), predicate, n_samples=5000, batch_size=100, random_state=0
        )
        assert result.dropped
        assert result.distribution is None
        # Early dropping must have saved most of the budget.
        assert result.n_samples < 1000

    def test_keeps_probable_tuple(self):
        udf = self.make_udf()
        predicate = SelectionPredicate(low=-1.0, high=1.0, threshold=0.1)
        result = monte_carlo_with_filter(
            udf, Gaussian(0.0, 1.0), predicate, n_samples=1000, random_state=0
        )
        assert not result.dropped
        assert result.distribution is not None
        assert result.n_samples == 1000
        assert result.decision.estimate == pytest.approx(0.68, abs=0.06)

    def test_validation(self):
        udf = self.make_udf()
        predicate = SelectionPredicate(low=0.0, high=1.0)
        with pytest.raises(AccuracyError):
            monte_carlo_with_filter(udf, Gaussian(0, 1), predicate)
        with pytest.raises(AccuracyError):
            monte_carlo_with_filter(
                udf, Gaussian(0, 1), predicate, n_samples=100, batch_size=0
            )

    def test_no_false_negative_for_clearly_selective_tuple(self):
        # A tuple whose output is certainly inside the predicate interval
        # must never be dropped.
        udf = self.make_udf()
        predicate = SelectionPredicate(low=-10.0, high=10.0, threshold=0.1)
        for seed in range(5):
            result = monte_carlo_with_filter(
                udf, Gaussian(0.0, 1.0), predicate, n_samples=500, random_state=seed
            )
            assert not result.dropped
