"""Unit tests for discrete distributions (categorical, Poisson, x-tuples)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions.discrete import Categorical, Poisson, TupleAlternatives
from repro.exceptions import DistributionError


class TestCategorical:
    def test_probabilities_normalised(self):
        dist = Categorical([1.0, 2.0], [2.0, 6.0])
        assert np.allclose(dist.probabilities.sum(), 1.0)

    def test_values_sorted_internally(self):
        dist = Categorical([3.0, 1.0, 2.0], [0.2, 0.5, 0.3])
        assert np.all(np.diff(dist.values) > 0)

    def test_mean_and_variance(self):
        dist = Categorical([0.0, 10.0], [0.5, 0.5])
        assert dist.mean()[0] == pytest.approx(5.0)
        assert dist.variance() == pytest.approx(25.0)

    def test_cdf_step_function(self):
        dist = Categorical([1.0, 2.0, 3.0], [0.2, 0.3, 0.5])
        assert dist.cdf(np.asarray(0.5)) == pytest.approx(0.0)
        assert dist.cdf(np.asarray(1.0)) == pytest.approx(0.2)
        assert dist.cdf(np.asarray(2.5)) == pytest.approx(0.5)
        assert dist.cdf(np.asarray(3.0)) == pytest.approx(1.0)

    def test_ppf_selects_correct_value(self):
        dist = Categorical([1.0, 2.0, 3.0], [0.2, 0.3, 0.5])
        assert dist.ppf(np.asarray(0.1)) == pytest.approx(1.0)
        assert dist.ppf(np.asarray(0.4)) == pytest.approx(2.0)
        assert dist.ppf(np.asarray(0.99)) == pytest.approx(3.0)

    def test_sampling_frequencies(self, rng):
        dist = Categorical([0.0, 1.0], [0.3, 0.7])
        samples = dist.sample(30000, random_state=rng)
        assert np.mean(samples) == pytest.approx(0.7, abs=0.02)

    def test_negative_probability_rejected(self):
        with pytest.raises(DistributionError):
            Categorical([1.0, 2.0], [-0.1, 1.1])

    def test_length_mismatch_rejected(self):
        with pytest.raises(DistributionError):
            Categorical([1.0], [0.5, 0.5])


class TestPoisson:
    def test_invalid_rate(self):
        with pytest.raises(DistributionError):
            Poisson(0.0)

    def test_mean_equals_variance(self):
        dist = Poisson(4.5)
        assert dist.mean()[0] == pytest.approx(4.5)
        assert dist.variance() == pytest.approx(4.5)

    def test_samples_are_non_negative_integers(self, rng):
        samples = Poisson(3.0).sample(500, random_state=rng)
        assert np.all(samples >= 0)
        assert np.allclose(samples, np.round(samples))

    def test_cdf_increases(self):
        dist = Poisson(2.0)
        grid = np.arange(0, 10, dtype=float)
        assert np.all(np.diff(dist.cdf(grid)) >= 0)


class TestTupleAlternatives:
    def test_existence_probability(self):
        dist = TupleAlternatives([[1.0, 2.0], [3.0, 4.0]], [0.3, 0.4])
        assert dist.existence_probability == pytest.approx(0.7)

    def test_probabilities_above_one_rejected(self):
        with pytest.raises(DistributionError):
            TupleAlternatives([[1.0], [2.0]], [0.7, 0.7])

    def test_sampling_produces_nan_for_missing(self, rng):
        dist = TupleAlternatives([[1.0]], [0.5])
        samples = dist.sample(5000, random_state=rng)
        missing_fraction = np.mean(np.isnan(samples[:, 0]))
        assert missing_fraction == pytest.approx(0.5, abs=0.03)

    def test_dimension_from_alternatives(self):
        dist = TupleAlternatives([[1.0, 2.0, 3.0]], [1.0])
        assert dist.dimension == 3

    def test_mean_of_alternatives(self):
        dist = TupleAlternatives([[0.0], [10.0]], [0.2, 0.2])
        assert dist.mean()[0] == pytest.approx(5.0)
