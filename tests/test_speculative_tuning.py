"""Speculative multi-point OLGAPRO tuning: savings, rollback, snapshots.

The headline contract (asserted with the GP's operation counter): on the
online-tuning workload, ``speculative_k = 4`` cuts the refinement loop's
factorization count by at least 2x versus the serial one-point loop, while
meeting the same error budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.core.local_inference import BatchKernelCache
from repro.core.olgapro import OLGAPRO
from repro.exceptions import GPError
from repro.gp.kernels import SquaredExponential
from repro.gp.regression import GaussianProcess
from repro.udf.synthetic import reference_function
from repro.workloads.generators import input_stream, workload_for_udf

REQUIREMENT = AccuracyRequirement(epsilon=0.2, delta=0.05)


def _run_stream(speculative_k, n_tuples=12, **kwargs):
    udf = reference_function("F4", simulated_eval_time=1e-3)
    processor = OLGAPRO(
        udf,
        requirement=REQUIREMENT,
        random_state=42,
        n_samples=300,
        max_points_per_tuple=60,
        initial_training_points=10,
        speculative_k=speculative_k,
        **kwargs,
    )
    dists = list(
        input_stream(workload_for_udf(udf), n_tuples, random_state=np.random.default_rng(3))
    )
    results = [processor.process(dist) for dist in dists]
    return processor, results


# ---------------------------------------------------------------------------
# Headline: factorization savings at the same error budget
# ---------------------------------------------------------------------------

def test_speculative_halves_refinement_factorizations():
    serial, serial_results = _run_stream(speculative_k=1)
    speculative, speculative_results = _run_stream(speculative_k=4)

    # The workload must actually exercise refinement for this to mean anything.
    assert serial.refinement_factorizations > 20
    # >= 2x fewer factorization-grade operations in the refinement loop.
    assert speculative.refinement_factorizations * 2 <= serial.refinement_factorizations

    # Same error budget: every converged tuple reports a bound within budget
    # (modulo tuples whose post-tuple hyperparameter retrain re-computed the
    # bound under a new kernel — identical behaviour in both modes), and
    # speculation converges at least as many tuples as the serial loop does.
    budget = serial.budget.epsilon_gp
    for results in (serial_results, speculative_results):
        for result in results:
            if result.converged and not result.retrained:
                assert result.error_bound.epsilon_gp <= budget + 1e-12
    assert sum(r.converged for r in speculative_results) >= sum(
        r.converged for r in serial_results
    )


def test_speculative_uses_blocked_updates():
    speculative, _ = _run_stream(speculative_k=4, n_tuples=6)
    counts = speculative.emulator.gp.op_counts
    assert counts["block_update"] > 0
    # Blocked updates dominate rank-1 updates in the speculative loop (rank-1
    # only appears for capacity-1 iterations and rollback fallbacks).
    assert counts["block_update"] >= counts["rank1_update"]


def test_speculative_block_never_duplicates_a_sample_row():
    """Empirical inputs resample their support with replacement, so the MC
    sample matrix contains exact-duplicate rows; the top-k block must pick
    distinct locations only (a duplicate would waste a UDF call and absorb a
    repeated row into the covariance)."""
    from repro.distributions.empirical import EmpiricalDistribution
    from repro.distributions.multivariate import IndependentJoint

    rng = np.random.default_rng(9)
    dist = IndependentJoint([
        EmpiricalDistribution(rng.uniform(3, 7, size=8)),
        EmpiricalDistribution(rng.uniform(3, 7, size=8)),
    ])
    udf = reference_function("F4", simulated_eval_time=1e-3)
    processor = OLGAPRO(udf, requirement=REQUIREMENT, random_state=5, n_samples=200,
                        max_points_per_tuple=40, initial_training_points=8,
                        speculative_k=4)
    # Duplicates must actually be present for the guard to be exercised.
    probe = dist.sample(200, random_state=np.random.default_rng(5))
    assert len({row.tobytes() for row in probe}) < probe.shape[0]
    result = processor.process(dist)
    assert result.points_added > 0
    X = processor.emulator.gp.X_train
    assert len({row.tobytes() for row in X}) == X.shape[0]


def test_speculative_k_validation():
    udf = reference_function("F1")
    with pytest.raises(GPError):
        OLGAPRO(udf, speculative_k=0)
    # The speculative loop fixes the selection rule; a custom strategy would
    # silently become a no-op, so the combination is rejected outright.
    from repro.core.online_tuning import RandomStrategy

    with pytest.raises(GPError, match="tuning_strategy"):
        OLGAPRO(udf, speculative_k=4, tuning_strategy=RandomStrategy())


# ---------------------------------------------------------------------------
# Rollback: an overshooting block is undone via the snapshot
# ---------------------------------------------------------------------------

def test_rollback_commits_single_point_when_bound_worsens(monkeypatch):
    udf = reference_function("F4", simulated_eval_time=1e-3)
    processor = OLGAPRO(
        udf,
        requirement=REQUIREMENT,
        random_state=7,
        n_samples=200,
        max_points_per_tuple=30,
        initial_training_points=8,
        speculative_k=4,
    )
    dist = next(
        iter(input_stream(workload_for_udf(udf), 1, random_state=np.random.default_rng(1)))
    )

    # Force the bound re-check after the first speculative block to come out
    # strictly worse, so the rollback branch runs; afterwards report the true
    # bound so the loop terminates normally.  (Call #1 computes the loop's
    # initial bound, call #2 is the re-check right after the first block.)
    real_bound_from_inference = processor._bound_from_inference
    state = {"calls": 0, "sabotaged": False}

    def sabotaged(inference, box, n_points):
        envelope, bound = real_bound_from_inference(inference, box, n_points)
        state["calls"] += 1
        if state["calls"] == 2 and not state["sabotaged"]:
            state["sabotaged"] = True
            return envelope, bound + 10.0
        return envelope, bound

    monkeypatch.setattr(processor, "_bound_from_inference", sabotaged)
    n_rollback_restores = {"n": 0}
    real_restore = processor.emulator.restore

    def counting_restore(snapshot):
        n_rollback_restores["n"] += 1
        real_restore(snapshot)

    monkeypatch.setattr(processor.emulator, "restore", counting_restore)

    result = processor.process(dist)
    assert state["sabotaged"], "the speculative block re-check was never reached"
    assert n_rollback_restores["n"] == 1
    # The run still completes and the model is consistent with its index.
    assert processor.emulator.n_training == len(processor.emulator.index)
    assert result.distribution.size == 200


# ---------------------------------------------------------------------------
# GP / emulator snapshot machinery
# ---------------------------------------------------------------------------

def test_gp_snapshot_restore_roundtrip():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 10, size=(20, 2))
    y = np.sin(X[:, 0]) + np.cos(X[:, 1])
    gp = GaussianProcess(kernel=SquaredExponential())
    gp.fit(X, y)
    probe = rng.uniform(0, 10, size=(15, 2))
    mean_before, std_before = gp.predict(probe)
    state = gp.snapshot()

    extra = rng.uniform(0, 10, size=(5, 2))
    gp.add_points(extra, np.ones(5))
    assert gp.n_training == 25
    gp.restore(state)

    assert gp.n_training == 20
    mean_after, std_after = gp.predict(probe)
    assert np.array_equal(mean_before, mean_after)
    assert np.array_equal(std_before, std_after)


def test_gp_restore_does_not_reset_op_counts():
    rng = np.random.default_rng(1)
    gp = GaussianProcess(kernel=SquaredExponential())
    gp.fit(rng.uniform(0, 10, size=(10, 2)), rng.normal(size=10))
    state = gp.snapshot()
    gp.add_points(rng.uniform(0, 10, size=(3, 2)), rng.normal(size=3))
    ops = gp.factorization_count
    gp.restore(state)
    assert gp.factorization_count == ops


def test_emulator_restore_rebuilds_index():
    udf = reference_function("F1")
    processor = OLGAPRO(udf, requirement=REQUIREMENT, random_state=3, n_samples=150,
                        initial_training_points=6)
    dist = next(
        iter(input_stream(workload_for_udf(udf), 1, random_state=np.random.default_rng(2)))
    )
    processor.process(dist)
    emulator = processor.emulator
    state = emulator.snapshot()
    n_before = emulator.n_training

    emulator.add_training_points(np.random.default_rng(5).uniform(0, 10, size=(4, 2)))
    assert len(emulator.index) == n_before + 4
    emulator.restore(state)
    assert emulator.n_training == n_before
    assert len(emulator.index) == n_before


def test_absorb_observations_skips_udf_calls():
    udf = reference_function("F1")
    processor = OLGAPRO(udf, requirement=REQUIREMENT, random_state=3, n_samples=150,
                        initial_training_points=6)
    dist = next(
        iter(input_stream(workload_for_udf(udf), 1, random_state=np.random.default_rng(2)))
    )
    processor.process(dist)
    emulator = processor.emulator
    calls_before = udf.call_count
    X = np.random.default_rng(8).uniform(0, 10, size=(3, 2))
    emulator.absorb_observations(X, np.array([1.0, 2.0, 3.0]))
    assert udf.call_count == calls_before
    assert emulator.n_training >= 3
    assert len(emulator.index) == emulator.n_training


# ---------------------------------------------------------------------------
# BatchKernelCache survives a mid-batch rollback (model shrinkage)
# ---------------------------------------------------------------------------

def test_batch_kernel_cache_syncs_after_shrinkage():
    rng = np.random.default_rng(4)
    X = rng.uniform(0, 10, size=(30, 2))
    y = np.sin(X[:, 0]) * np.cos(X[:, 1])
    gp = GaussianProcess(kernel=SquaredExponential())
    gp.fit(X, y)
    samples = rng.uniform(2, 8, size=(40, 2))
    cache = BatchKernelCache(gp, [samples])
    cache.rows(gp, 0)

    state = gp.snapshot()
    gp.add_points(rng.uniform(0, 10, size=(5, 2)), rng.normal(size=5))
    assert cache.rows(gp, 0).shape == (40, 35)
    gp.restore(state)

    rows = cache.rows(gp, 0)
    assert rows.shape == (40, 30)
    assert np.allclose(rows, gp.kernel(samples, gp.X_train), rtol=1e-12)
    assert cache.K_train.shape == (30, 30)
    assert np.allclose(cache.K_train, gp.kernel(gp.X_train, gp.X_train), rtol=1e-12)
    assert cache.box_distances.shape[0] == 30
