"""Unit tests for the GP linear-algebra helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GPError
from repro.gp.linalg import (
    block_inverse_update,
    inverse_from_cholesky,
    jittered_cholesky,
    log_det_from_cholesky,
    solve_cholesky,
    symmetrize,
)


def random_spd(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    return A @ A.T + n * np.eye(n)


class TestJitteredCholesky:
    def test_exact_for_spd(self):
        M = random_spd(6)
        L, jitter = jittered_cholesky(M)
        assert jitter == 0.0
        assert np.allclose(L @ L.T, M)

    def test_adds_jitter_for_singular(self):
        M = np.ones((4, 4))  # rank 1, not PD
        L, jitter = jittered_cholesky(M)
        assert jitter > 0.0
        assert np.allclose(L @ L.T, M + jitter * np.eye(4), atol=1e-8)

    def test_rejects_non_square(self):
        with pytest.raises(GPError):
            jittered_cholesky(np.ones((2, 3)))

    def test_gives_up_on_hopeless_matrix(self):
        M = -np.eye(3)
        with pytest.raises(GPError):
            jittered_cholesky(M, max_tries=2)


class TestSolvers:
    def test_solve_cholesky(self):
        M = random_spd(5, seed=1)
        L, _ = jittered_cholesky(M)
        b = np.arange(5, dtype=float)
        x = solve_cholesky(L, b)
        assert np.allclose(M @ x, b)

    def test_inverse_from_cholesky(self):
        M = random_spd(4, seed=2)
        L, _ = jittered_cholesky(M)
        inv = inverse_from_cholesky(L)
        assert np.allclose(M @ inv, np.eye(4), atol=1e-10)

    def test_log_det(self):
        M = random_spd(5, seed=3)
        L, _ = jittered_cholesky(M)
        sign, expected = np.linalg.slogdet(M)
        assert sign > 0
        assert log_det_from_cholesky(L) == pytest.approx(expected)


class TestBlockInverseUpdate:
    def test_matches_direct_inverse(self):
        rng = np.random.default_rng(4)
        n = 8
        M = random_spd(n, seed=4)
        K_inv = np.linalg.inv(M)
        k_new = rng.normal(size=n)
        k_self = float(n + rng.uniform(1.0, 2.0))
        grown = np.block([[M, k_new[:, None]], [k_new[None, :], np.array([[k_self]])]])
        expected = np.linalg.inv(grown)
        updated = block_inverse_update(K_inv, k_new, k_self)
        assert np.allclose(updated, expected, atol=1e-8)

    def test_repeated_updates_stay_accurate(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 5, size=(12, 1))

        def kernel(a, b):
            return np.exp(-0.5 * (a - b.T) ** 2)

        nugget = 1e-6
        start = 4
        M = kernel(points[:start], points[:start]) + nugget * np.eye(start)
        K_inv = np.linalg.inv(M)
        for i in range(start, points.shape[0]):
            k_new = kernel(points[:i], points[i : i + 1]).ravel()
            k_self = 1.0 + nugget
            K_inv = block_inverse_update(K_inv, k_new, k_self)
        full = kernel(points, points) + nugget * np.eye(points.shape[0])
        # The kernel matrix is poorly conditioned (nearby points), so compare
        # with a relative tolerance.
        assert np.allclose(K_inv, np.linalg.inv(full), rtol=1e-3, atol=1e-6)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GPError):
            block_inverse_update(np.eye(3), np.zeros(2), 1.0)

    def test_degenerate_point_rejected(self):
        M = np.eye(2)
        # New point identical to an existing one => zero Schur complement.
        with pytest.raises(GPError):
            block_inverse_update(np.linalg.inv(M), np.array([1.0, 0.0]), 1.0)


class TestSymmetrize:
    def test_result_is_symmetric(self):
        A = np.array([[1.0, 2.0], [0.0, 1.0]])
        S = symmetrize(A)
        assert np.allclose(S, S.T)
        assert np.allclose(S, [[1.0, 1.0], [1.0, 1.0]])
