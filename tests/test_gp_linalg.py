"""Unit tests for the GP linear-algebra helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GPError
from repro.gp.linalg import (
    block_inverse_update,
    block_inverse_update_multi,
    inverse_from_cholesky,
    jittered_cholesky,
    log_det_from_cholesky,
    solve_cholesky,
    symmetrize,
)


def random_spd(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    A = rng.normal(size=(n, n))
    return A @ A.T + n * np.eye(n)


class TestJitteredCholesky:
    def test_exact_for_spd(self):
        M = random_spd(6)
        L, jitter = jittered_cholesky(M)
        assert jitter == 0.0
        assert np.allclose(L @ L.T, M)

    def test_adds_jitter_for_singular(self):
        M = np.ones((4, 4))  # rank 1, not PD
        L, jitter = jittered_cholesky(M)
        assert jitter > 0.0
        assert np.allclose(L @ L.T, M + jitter * np.eye(4), atol=1e-8)

    def test_rejects_non_square(self):
        with pytest.raises(GPError):
            jittered_cholesky(np.ones((2, 3)))

    def test_gives_up_on_hopeless_matrix(self):
        M = -np.eye(3)
        with pytest.raises(GPError):
            jittered_cholesky(M, max_tries=2)


class TestSolvers:
    def test_solve_cholesky(self):
        M = random_spd(5, seed=1)
        L, _ = jittered_cholesky(M)
        b = np.arange(5, dtype=float)
        x = solve_cholesky(L, b)
        assert np.allclose(M @ x, b)

    def test_inverse_from_cholesky(self):
        M = random_spd(4, seed=2)
        L, _ = jittered_cholesky(M)
        inv = inverse_from_cholesky(L)
        assert np.allclose(M @ inv, np.eye(4), atol=1e-10)

    def test_log_det(self):
        M = random_spd(5, seed=3)
        L, _ = jittered_cholesky(M)
        sign, expected = np.linalg.slogdet(M)
        assert sign > 0
        assert log_det_from_cholesky(L) == pytest.approx(expected)


class TestBlockInverseUpdate:
    def test_matches_direct_inverse(self):
        rng = np.random.default_rng(4)
        n = 8
        M = random_spd(n, seed=4)
        K_inv = np.linalg.inv(M)
        k_new = rng.normal(size=n)
        k_self = float(n + rng.uniform(1.0, 2.0))
        grown = np.block([[M, k_new[:, None]], [k_new[None, :], np.array([[k_self]])]])
        expected = np.linalg.inv(grown)
        updated = block_inverse_update(K_inv, k_new, k_self)
        assert np.allclose(updated, expected, atol=1e-8)

    def test_repeated_updates_stay_accurate(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(0, 5, size=(12, 1))

        def kernel(a, b):
            return np.exp(-0.5 * (a - b.T) ** 2)

        nugget = 1e-6
        start = 4
        M = kernel(points[:start], points[:start]) + nugget * np.eye(start)
        K_inv = np.linalg.inv(M)
        for i in range(start, points.shape[0]):
            k_new = kernel(points[:i], points[i : i + 1]).ravel()
            k_self = 1.0 + nugget
            K_inv = block_inverse_update(K_inv, k_new, k_self)
        full = kernel(points, points) + nugget * np.eye(points.shape[0])
        # The kernel matrix is poorly conditioned (nearby points), so compare
        # with a relative tolerance.
        assert np.allclose(K_inv, np.linalg.inv(full), rtol=1e-3, atol=1e-6)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(GPError):
            block_inverse_update(np.eye(3), np.zeros(2), 1.0)

    def test_degenerate_point_rejected(self):
        M = np.eye(2)
        # New point identical to an existing one => zero Schur complement.
        with pytest.raises(GPError):
            block_inverse_update(np.linalg.inv(M), np.array([1.0, 0.0]), 1.0)


class TestSymmetrize:
    def test_result_is_symmetric(self):
        A = np.array([[1.0, 2.0], [0.0, 1.0]])
        S = symmetrize(A)
        assert np.allclose(S, S.T)
        assert np.allclose(S, [[1.0, 1.0], [1.0, 1.0]])


class TestJitterFailureMessage:
    def test_reports_final_jitter_tried(self):
        # -I never becomes PD for jitters far below 1; with the default
        # initial jitter of 1e-10 and 8 escalations the final attempt uses
        # 1e-3, and the error message must say so.
        with pytest.raises(GPError, match=r"final jitter 0\.001\b"):
            jittered_cholesky(-np.eye(3), initial_jitter=1e-10, max_tries=8)


class TestBlockInverseUpdateMulti:
    def assemble(self, K, K_cross, K_block):
        return np.block([[K, K_cross], [K_cross.T, K_block]])

    def test_matches_direct_inverse(self):
        full = random_spd(9, seed=5)
        K, K_cross, K_block = full[:6, :6], full[:6, 6:], full[6:, 6:]
        updated = block_inverse_update_multi(np.linalg.inv(K), K_cross, K_block)
        assert np.allclose(updated, np.linalg.inv(self.assemble(K, K_cross, K_block)),
                           atol=1e-8)

    def test_matches_sequence_of_rank_one_updates(self):
        full = random_spd(7, seed=6)
        K = full[:4, :4]
        blocked = block_inverse_update_multi(
            np.linalg.inv(K), full[:4, 4:], full[4:, 4:]
        )
        sequential = np.linalg.inv(K)
        for j in range(4, 7):
            sequential = block_inverse_update(
                sequential, full[:j, j], float(full[j, j])
            )
        assert np.allclose(blocked, sequential, atol=1e-8)

    def test_single_column_matches_rank_one(self):
        full = random_spd(5, seed=7)
        K = full[:4, :4]
        blocked = block_inverse_update_multi(
            np.linalg.inv(K), full[:4, 4:5], full[4:5, 4:5]
        )
        rank_one = block_inverse_update(np.linalg.inv(K), full[:4, 4], float(full[4, 4]))
        assert np.allclose(blocked, rank_one, atol=1e-10)

    def test_rank_deficient_block_raises_typed_error(self):
        K = random_spd(4, seed=8)
        K_inv = np.linalg.inv(K)
        rng = np.random.default_rng(8)
        x = rng.normal(size=4)
        # Two identical new points: the Schur complement is singular.
        K_cross = np.column_stack([x, x])
        K_block = np.full((2, 2), 2.0)
        with pytest.raises(GPError, match="rank-deficient"):
            block_inverse_update_multi(K_inv, K_cross, K_block)

    def test_validates_shapes(self):
        K_inv = np.eye(3)
        with pytest.raises(GPError):
            block_inverse_update_multi(K_inv, np.ones((2, 2)), np.eye(2))
        with pytest.raises(GPError):
            block_inverse_update_multi(K_inv, np.ones((3, 2)), np.eye(3))


class TestGaussianProcessAddPoints:
    def test_add_points_matches_full_refit(self):
        from repro.gp.kernels import SquaredExponential
        from repro.gp.regression import GaussianProcess

        rng = np.random.default_rng(12)
        X = rng.uniform(0, 10, size=(12, 2))
        y = np.sin(X[:, 0]) + X[:, 1] * 0.1
        # center_targets=False: the incremental path keeps its mean offset
        # until the next full recompute, so only the uncentred model admits
        # an exact comparison against a from-scratch refit.
        incremental = GaussianProcess(
            kernel=SquaredExponential(1.0, 2.0), center_targets=False
        ).fit(X[:8], y[:8])
        incremental.add_points(X[8:], y[8:])
        refit = GaussianProcess(
            kernel=SquaredExponential(1.0, 2.0), center_targets=False
        ).fit(X, y)
        probe = rng.uniform(0, 10, size=(5, 2))
        m1, s1 = incremental.predict(probe)
        m2, s2 = refit.predict(probe)
        assert np.allclose(m1, m2, atol=1e-7)
        assert np.allclose(s1, s2, atol=1e-6)

    def test_add_points_duplicate_block_falls_back_to_refit(self):
        from repro.gp.kernels import SquaredExponential
        from repro.gp.regression import GaussianProcess

        rng = np.random.default_rng(13)
        X = rng.uniform(0, 10, size=(6, 1))
        y = np.cos(X[:, 0])
        gp = GaussianProcess(kernel=SquaredExponential(1.0, 2.0)).fit(X, y)
        duplicate = np.vstack([X[0], X[0]])
        # Rank-deficient against the training set: must not raise, and the
        # model must keep answering (jittered full refit under the hood).
        gp.add_points(duplicate, np.array([y[0], y[0]]))
        assert gp.n_training == 8
        mean, std = gp.predict(X[:2])
        assert np.all(np.isfinite(mean)) and np.all(np.isfinite(std))

    def test_emulator_add_training_points_updates_index(self):
        from repro.core.emulator import GPEmulator
        from repro.udf.base import UDF

        udf = UDF(lambda x: float(x[0]) ** 2, dimension=1, name="sq",
                  domain=(np.array([-2.0]), np.array([2.0])))
        emulator = GPEmulator(udf)
        emulator.train_initial(5, design="random", random_state=3,
                               optimize_hyperparameters=False)
        values = emulator.add_training_points(np.array([[0.5], [-1.5], [1.1]]))
        assert values.shape == (3,)
        assert emulator.n_training == 8
        assert len(emulator.index) == 8
