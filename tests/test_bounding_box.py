"""Unit tests for axis-aligned bounding boxes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import IndexError_
from repro.index.bounding_box import BoundingBox, union_of_boxes


class TestConstruction:
    def test_from_points(self):
        box = BoundingBox.from_points(np.array([[0.0, 1.0], [2.0, -1.0], [1.0, 0.5]]))
        assert np.allclose(box.low, [0.0, -1.0])
        assert np.allclose(box.high, [2.0, 1.0])

    def test_from_single_point(self):
        box = BoundingBox.from_point(np.array([3.0, 4.0]))
        assert box.volume() == 0.0
        assert box.contains_point(np.array([3.0, 4.0]))

    def test_invalid_corners_rejected(self):
        with pytest.raises(IndexError_):
            BoundingBox(np.array([1.0, 0.0]), np.array([0.0, 1.0]))

    def test_empty_points_rejected(self):
        with pytest.raises(IndexError_):
            BoundingBox.from_points(np.empty((0, 2)))


class TestGeometry:
    def setup_method(self):
        self.box = BoundingBox(np.array([0.0, 0.0]), np.array([2.0, 4.0]))

    def test_volume_and_margin(self):
        assert self.box.volume() == pytest.approx(8.0)
        assert self.box.margin() == pytest.approx(6.0)

    def test_center_and_lengths(self):
        assert np.allclose(self.box.center, [1.0, 2.0])
        assert np.allclose(self.box.lengths, [2.0, 4.0])

    def test_contains_point(self):
        assert self.box.contains_point(np.array([1.0, 1.0]))
        assert self.box.contains_point(np.array([0.0, 4.0]))  # boundary counts
        assert not self.box.contains_point(np.array([3.0, 1.0]))

    def test_contains_box(self):
        inner = BoundingBox(np.array([0.5, 1.0]), np.array([1.5, 3.0]))
        assert self.box.contains_box(inner)
        assert not inner.contains_box(self.box)

    def test_intersects(self):
        overlapping = BoundingBox(np.array([1.0, 3.0]), np.array([5.0, 6.0]))
        disjoint = BoundingBox(np.array([5.0, 5.0]), np.array([6.0, 6.0]))
        assert self.box.intersects(overlapping)
        assert not self.box.intersects(disjoint)

    def test_union(self):
        other = BoundingBox(np.array([-1.0, 2.0]), np.array([1.0, 6.0]))
        union = self.box.union(other)
        assert np.allclose(union.low, [-1.0, 0.0])
        assert np.allclose(union.high, [2.0, 6.0])

    def test_enlargement(self):
        other = BoundingBox(np.array([2.0, 0.0]), np.array([4.0, 4.0]))
        assert self.box.enlargement(other) == pytest.approx(8.0)

    def test_expand(self):
        grown = self.box.expand(1.0)
        assert np.allclose(grown.low, [-1.0, -1.0])
        assert np.allclose(grown.high, [3.0, 5.0])
        with pytest.raises(IndexError_):
            self.box.expand(-0.5)


class TestDistances:
    def setup_method(self):
        self.box = BoundingBox(np.array([0.0, 0.0]), np.array([1.0, 1.0]))

    def test_nearest_point_inside(self):
        p = np.array([0.5, 0.5])
        assert np.allclose(self.box.nearest_point_to(p), p)
        assert self.box.min_distance_to(p) == 0.0

    def test_nearest_point_outside(self):
        p = np.array([3.0, 0.5])
        assert np.allclose(self.box.nearest_point_to(p), [1.0, 0.5])
        assert self.box.min_distance_to(p) == pytest.approx(2.0)

    def test_farthest_point(self):
        p = np.array([-1.0, -1.0])
        assert np.allclose(self.box.farthest_point_to(p), [1.0, 1.0])
        assert self.box.max_distance_to(p) == pytest.approx(np.sqrt(8.0))

    def test_far_distance_dominates_near(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = rng.uniform(-5, 5, size=2)
            assert self.box.max_distance_to(p) >= self.box.min_distance_to(p)

    def test_box_to_box_distance(self):
        other = BoundingBox(np.array([3.0, 0.0]), np.array([4.0, 1.0]))
        assert self.box.min_distance_to_box(other) == pytest.approx(2.0)
        touching = BoundingBox(np.array([1.0, 0.0]), np.array([2.0, 1.0]))
        assert self.box.min_distance_to_box(touching) == 0.0

    def test_kernel_bound_property(self):
        # For any point inside the box, its distance to an external point is
        # between the min and max distances — the inequality local inference
        # relies on.
        rng = np.random.default_rng(1)
        external = np.array([2.5, -1.5])
        dmin = self.box.min_distance_to(external)
        dmax = self.box.max_distance_to(external)
        for _ in range(100):
            inside = rng.uniform(self.box.low, self.box.high)
            d = float(np.linalg.norm(inside - external))
            assert dmin - 1e-12 <= d <= dmax + 1e-12


class TestSubdivision:
    def test_subdivide_counts(self):
        box = BoundingBox(np.array([0.0, 0.0]), np.array([4.0, 4.0]))
        parts = box.subdivide(2)
        assert len(parts) == 4
        assert sum(p.volume() for p in parts) == pytest.approx(box.volume())

    def test_subdivide_one_returns_self(self):
        box = BoundingBox(np.array([0.0]), np.array([1.0]))
        assert box.subdivide(1) == [box]

    def test_subdivide_invalid(self):
        box = BoundingBox(np.array([0.0]), np.array([1.0]))
        with pytest.raises(IndexError_):
            box.subdivide(0)

    def test_subdivision_covers_box(self):
        box = BoundingBox(np.array([0.0, 1.0]), np.array([2.0, 3.0]))
        parts = box.subdivide(3)
        rng = np.random.default_rng(2)
        for _ in range(100):
            p = rng.uniform(box.low, box.high)
            assert any(part.contains_point(p) for part in parts)


class TestUnionOfBoxes:
    def test_union_of_many(self):
        boxes = [
            BoundingBox(np.array([float(i)]), np.array([float(i) + 1.0]))
            for i in range(5)
        ]
        union = union_of_boxes(boxes)
        assert union.low[0] == 0.0 and union.high[0] == 5.0

    def test_empty_union_rejected(self):
        with pytest.raises(IndexError_):
            union_of_boxes([])
