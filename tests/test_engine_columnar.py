"""ColumnarRelation: encoding, lazy hydration, round trip, query integration.

Contracts under test (see :mod:`repro.engine.columnar`):

* ``from_relation`` packs certain attributes into one structured array
  (preserving exact Python scalar types on the round trip) and packs each
  homogeneous uncertain column succinctly, while heterogeneous / joint /
  quarantined columns stay object-backed;
* distribution objects are built lazily, only at the hydration boundary
  (``row`` / iteration), and hydration reconstructs the exact types and
  parameters that were encoded;
* ``to_columnar().to_relation()`` round-trips bit-identically;
* a ``Query`` scans a ``ColumnarRelation`` directly, and running it under
  ``ExecutionPlan(storage="columnar")`` matches the tuple-store query bit
  for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.distributions.columns import UncertainColumn
from repro.distributions.continuous import Gaussian, TruncatedGaussian, Uniform
from repro.engine import (
    Attribute,
    AttributeKind,
    ColumnarRelation,
    ExecutionPlan,
    Query,
    Relation,
    Schema,
    UDFExecutionEngine,
    UncertainTuple,
    generate_galaxy_relation,
)
from repro.exceptions import SchemaError
from repro.udf.synthetic import reference_function

REQUIREMENT = AccuracyRequirement(epsilon=0.2, delta=0.05)


def _galaxy(n=4, seed=5):
    return generate_galaxy_relation(n, random_state=seed)


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def test_from_relation_packs_certain_and_homogeneous_uncertain_columns():
    columnar = ColumnarRelation.from_relation(_galaxy())
    # Certain attributes keep exact scalar dtypes in one structured array.
    assert columnar.certain.dtype.names == ("objID", "mag_r")
    assert columnar.certain["objID"].dtype.kind == "i"
    assert columnar.certain["mag_r"].dtype.kind == "f"
    # Homogeneous Gaussian columns pack; the TruncatedGaussian column (an
    # unsupported family) stays object-backed.
    assert isinstance(columnar.column("ra_offset"), UncertainColumn)
    assert isinstance(columnar.column("dec_offset"), UncertainColumn)
    assert isinstance(columnar.column("redshift"), list)
    assert "packed_columns=2/3" in repr(columnar)


def test_mixed_type_certain_column_stays_object_backed():
    schema = Schema.of(
        [
            Attribute("tag", AttributeKind.CERTAIN),
            Attribute("x", AttributeKind.UNCERTAIN),
        ]
    )
    relation = Relation(name="mixed", schema=schema)
    relation.insert(UncertainTuple(values={"tag": 1, "x": Gaussian(0.0, 1.0)}))
    relation.insert(UncertainTuple(values={"tag": "b", "x": Gaussian(1.0, 1.0)}))
    columnar = relation.to_columnar()
    assert columnar.certain["tag"].dtype == object
    assert [row["tag"] for row in columnar] == [1, "b"]


def test_quarantined_and_heterogeneous_columns_stay_object_backed():
    schema = Schema.of([Attribute("x", AttributeKind.UNCERTAIN)])
    relation = Relation(name="r", schema=schema)
    relation.insert(UncertainTuple(values={"x": Gaussian(0.0, 1.0)}))
    relation.insert(UncertainTuple(values={"x": None}))  # quarantined cell
    columnar = relation.to_columnar()
    assert isinstance(columnar.column("x"), list)
    assert columnar.row(1)["x"] is None

    hetero = Relation(name="h", schema=schema)
    hetero.insert(UncertainTuple(values={"x": Gaussian(0.0, 1.0)}))
    hetero.insert(UncertainTuple(values={"x": Uniform(0.0, 1.0)}))
    assert isinstance(hetero.to_columnar().column("x"), list)


def test_misaligned_column_blocks_raise_schema_error():
    columnar = ColumnarRelation.from_relation(_galaxy(3))
    with pytest.raises(SchemaError, match="rows"):
        ColumnarRelation(
            name="bad",
            schema=columnar.schema,
            certain=columnar.certain,
            uncertain={**columnar.uncertain, "redshift": columnar.uncertain["redshift"][:2]},
            existence=columnar.existence,
            annotations=columnar.annotations,
        )
    with pytest.raises(SchemaError, match="existence"):
        ColumnarRelation(
            name="bad",
            schema=columnar.schema,
            certain=columnar.certain,
            uncertain=columnar.uncertain,
            existence=columnar.existence[:2],
            annotations=columnar.annotations,
        )


# ---------------------------------------------------------------------------
# Hydration boundary and round trip
# ---------------------------------------------------------------------------

def test_row_hydrates_lazily_with_exact_types_and_parameters():
    relation = _galaxy()
    columnar = relation.to_columnar()
    for i, original in enumerate(relation):
        hydrated = columnar.row(i)
        assert type(hydrated["ra_offset"]) is Gaussian
        assert type(hydrated["redshift"]) is TruncatedGaussian
        assert hydrated["ra_offset"].mu == original["ra_offset"].mu
        assert hydrated["ra_offset"].sigma == original["ra_offset"].sigma
        assert hydrated["objID"] == original["objID"]
        assert type(hydrated["objID"]) is int
        assert hydrated.existence_probability == original.existence_probability
    # Each hydration builds a fresh object (nothing cached per cell) —
    # the store itself never holds per-tuple distribution objects for
    # packed columns.
    assert columnar.row(0)["ra_offset"] is not columnar.row(0)["ra_offset"]
    with pytest.raises(IndexError):
        columnar.row(len(relation))


def test_hydrated_column_preserves_tuple_order():
    relation = _galaxy()
    columnar = relation.to_columnar()
    hydrated = columnar.hydrated_column("dec_offset")
    assert [d.mu for d in hydrated] == [row["dec_offset"].mu for row in relation]
    with pytest.raises(SchemaError, match="no uncertain column"):
        columnar.column("nope")
    # Certain attributes are not uncertain columns.
    with pytest.raises(SchemaError):
        columnar.column("objID")


def test_round_trip_is_exact():
    relation = _galaxy(5)
    back = relation.to_columnar().to_relation()
    assert back.name == relation.name and back.schema == relation.schema
    for original, rebuilt in zip(relation, back):
        for attr in relation.schema:
            a, b = original[attr.name], rebuilt[attr.name]
            if attr.is_uncertain:
                assert type(a) is type(b)
                assert a.mu == b.mu and a.sigma == b.sigma
            else:
                assert a == b and type(a) is type(b)
        assert original.existence_probability == rebuilt.existence_probability
        assert original.annotations == rebuilt.annotations


# ---------------------------------------------------------------------------
# Query integration
# ---------------------------------------------------------------------------

def test_query_scans_columnar_relation_and_matches_tuple_store():
    """A Query over the columnar store, executed with
    ``storage="columnar"``, is bit-identical to the same query over the
    tuple store with the default storage."""
    results = {}
    for storage in ("tuple", "columnar"):
        udf = reference_function("F1", simulated_eval_time=1e-4)
        engine = UDFExecutionEngine(
            strategy="gp", requirement=REQUIREMENT, random_state=11, n_samples=96
        )
        relation = _galaxy(6, seed=5)
        source = relation if storage == "tuple" else relation.to_columnar()
        results[storage] = (
            Query(source)
            .apply_udf(
                udf,
                ["ra_offset", "dec_offset"],
                alias="f",
                plan=ExecutionPlan(batch_size=4, storage=storage),
            )
            .run(engine)
        )
    ref, got = results["tuple"], results["columnar"]
    assert len(ref.relation.tuples) == len(got.relation.tuples)
    for a, b in zip(ref.relation, got.relation):
        assert np.array_equal(a["f"].samples, b["f"].samples)
        assert a.annotations["f_error_bound"] == b.annotations["f_error_bound"]
        assert a.annotations["f_udf_calls"] == b.annotations["f_udf_calls"]
    assert [v.verdict for v in ref.verdicts] == [v.verdict for v in got.verdicts]
