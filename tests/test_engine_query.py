"""Integration-style tests for the fluent query builder (queries Q1 and Q2)."""

from __future__ import annotations

import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.distributions.empirical import EmpiricalDistribution
from repro.engine.executor import UDFExecutionEngine
from repro.engine.query import Query
from repro.engine.sdss import generate_galaxy_relation
from repro.exceptions import QueryError
from repro.udf.astro import comove_vol_udf, galage_udf, sky_distance_udf


@pytest.fixture(scope="module")
def galaxy():
    return generate_galaxy_relation(4, random_state=0)


@pytest.fixture(scope="module")
def engine():
    return UDFExecutionEngine(
        strategy="gp",
        requirement=AccuracyRequirement(epsilon=0.2, delta=0.1),
        random_state=0,
        initial_training_points=6,
        n_samples=300,
    )


class TestQ1:
    def test_galage_per_galaxy(self, galaxy, engine):
        result = (
            Query(galaxy)
            .apply_udf(galage_udf(), ["redshift"], alias="galage")
            .project(["objID", "galage"])
            .run(engine)
        )
        assert len(result) == len(galaxy)
        assert result.schema.names() == ["objID", "galage"]
        for row in result:
            age = row["galage"]
            assert isinstance(age, EmpiricalDistribution)
            # Galaxy ages must be between ~3.5 and ~13.5 Gyr in this redshift range.
            assert 3.0 < float(age.mean()[0]) < 14.0

    def test_error_bound_annotation_present(self, galaxy, engine):
        result = Query(galaxy).apply_udf(galage_udf(), ["redshift"], alias="galage").run(engine)
        for row in result:
            assert row.annotations["galage_error_bound"] <= 0.2 + 1e-9


class TestQ2:
    def test_join_with_udf_predicate(self, galaxy, engine):
        result = (
            Query(galaxy)
            .alias("G1")
            .cross_join(galaxy, alias="G2", pair_filter=lambda t: t["G1.objID"] < t["G2.objID"])
            .where_udf(
                sky_distance_udf(),
                ["G1.ra_offset", "G1.dec_offset", "G2.ra_offset", "G2.dec_offset"],
                alias="dist",
                low=0.0,
                high=90.0,
                threshold=0.1,
            )
            .apply_udf(comove_vol_udf(), ["G1.redshift", "G2.redshift"], alias="covol")
            .project(["G1.objID", "G2.objID", "dist", "covol"])
            .run(engine)
        )
        # The predicate [0, 90] degrees is permissive, so all pairs survive.
        assert len(result) == 6
        for row in result:
            assert isinstance(row["dist"], EmpiricalDistribution)
            assert isinstance(row["covol"], EmpiricalDistribution)
            assert float(row["covol"].mean()[0]) >= 0
            assert 0.0 < row.existence_probability <= 1.0

    def test_selective_predicate_drops_pairs(self, galaxy, engine):
        result = (
            Query(galaxy)
            .alias("G1")
            .cross_join(galaxy, alias="G2", pair_filter=lambda t: t["G1.objID"] < t["G2.objID"])
            .where_udf(
                sky_distance_udf(),
                ["G1.ra_offset", "G1.dec_offset", "G2.ra_offset", "G2.dec_offset"],
                alias="dist",
                low=1000.0,
                high=2000.0,  # impossible angular separation
                threshold=0.1,
            )
            .run(engine)
        )
        assert len(result) == 0


class TestBuilderValidation:
    def test_alias_must_be_non_empty(self, galaxy):
        with pytest.raises(QueryError):
            Query(galaxy).alias("")

    def test_join_aliases_must_differ(self, galaxy):
        with pytest.raises(QueryError):
            Query(galaxy).alias("G").cross_join(galaxy, alias="G")

    def test_where_on_certain_attributes(self, galaxy, engine):
        result = Query(galaxy).where(lambda t: t["objID"] % 2 == 0).run(engine)
        assert all(row["objID"] % 2 == 0 for row in result)

    def test_plan_without_execution(self, galaxy, engine):
        plan = Query(galaxy).project(["objID"]).plan(engine)
        assert plan.schema().names() == ["objID"]
