"""Live shared emulator model: store protocol, sync exchanges, endpoint.

Contracts under test (see :mod:`repro.core.shared_model`):

* the store's version is the committed row count, appends dedupe on the
  input point's bytes, and ``fetch_since``/``exchange`` return rows in
  commit order without ever echoing a caller's own publication back;
* ``claim_initialization`` hands the initial-design bill to exactly one
  learner, and ``await_version`` bounds the others' wait;
* :class:`~repro.core.shared_model.EmulatorSync` publishes exactly the
  rows its emulator evaluated locally, absorbs remote rows without
  re-charging the UDF, honours the training cap, and records its cost
  under the ``model_append`` / ``model_refresh`` phases;
* the manager endpoint serves a real store through a picklable proxy.
"""

from __future__ import annotations

import numpy as np

from repro.core.emulator import GPEmulator
from repro.core.shared_model import (
    EmulatorSync,
    SharedEmulatorStore,
    serve_shared_store,
)
from repro.timing import PhaseTimings
from repro.udf.base import UDF


def _rows(n, d=2, offset=0.0):
    """n deterministic distinct d-dimensional points."""
    base = np.arange(n * d, dtype=float).reshape(n, d)
    return base + offset


def _f(X):
    X = np.atleast_2d(X)
    return np.sin(X[:, 0]) + 0.5 * X[:, 1]


def _emulator(seed=7):
    del seed  # the emulator itself is deterministic; kept for call-site intent
    udf = UDF(_f, dimension=2, name="shared-test", vectorized=True)
    return GPEmulator(udf)


# ---------------------------------------------------------------------------
# SharedEmulatorStore
# ---------------------------------------------------------------------------

def test_store_version_counts_committed_rows_and_dedupes():
    store = SharedEmulatorStore()
    assert store.current_version() == 0
    X = _rows(3)
    version = store.append(X, _f(X))
    assert version == store.current_version() == 3
    # Re-appending the same rows commits nothing new.
    assert store.append(X, _f(X)) == 3
    # A mixed batch commits only the genuinely new row.
    mixed = np.vstack([X[1], _rows(1, offset=100.0)])
    assert store.append(mixed, _f(mixed)) == 4


def test_fetch_since_slices_in_commit_order():
    store = SharedEmulatorStore()
    first = _rows(2)
    second = _rows(2, offset=50.0)
    store.append(first, _f(first))
    fence = store.current_version()
    store.append(second, _f(second))
    version, X, y = store.fetch_since(fence)
    assert version == 4
    assert np.array_equal(X, second)
    assert np.array_equal(y, _f(second))
    # Fetching at the head returns an empty, correctly-shaped delta.
    version, X, y = store.fetch_since(version)
    assert version == 4 and X.shape == (0, 2) and y.shape == (0,)


def test_exchange_never_returns_the_callers_own_rows():
    store = SharedEmulatorStore()
    theirs = _rows(3)
    store.append(theirs, _f(theirs))
    mine = _rows(2, offset=200.0)
    version, remote_X, remote_y = store.exchange(mine, _f(mine), seen_version=0)
    assert version == 5
    assert np.array_equal(remote_X, theirs)
    assert np.array_equal(remote_y, _f(theirs))
    # A second exchange from the same caller sees nothing new.
    version, remote_X, _ = store.exchange(
        np.empty((0, 2)), np.empty(0), seen_version=version
    )
    assert version == 5 and remote_X.shape[0] == 0


def test_claim_initialization_is_single_winner():
    store = SharedEmulatorStore()
    assert store.claim_initialization() is True
    assert store.claim_initialization() is False


def test_await_version_returns_on_commit_or_timeout():
    store = SharedEmulatorStore()
    X = _rows(2)
    store.append(X, _f(X))
    assert store.await_version(2, timeout=0.0) == 2
    # A timeout is a liveness signal, not an error.
    assert store.await_version(10, timeout=0.05, poll=0.01) == 2


def test_hyperparameter_publication_round_trips_a_copy():
    store = SharedEmulatorStore()
    assert store.hyperparameters() is None
    theta = np.array([0.1, -0.5])
    store.publish_hyperparameters(theta)
    got = store.hyperparameters()
    assert np.array_equal(got, theta)
    got[0] = 99.0
    assert np.array_equal(store.hyperparameters(), theta)


# ---------------------------------------------------------------------------
# EmulatorSync
# ---------------------------------------------------------------------------

def test_sync_publishes_local_rows_and_absorbs_remote_rows():
    store = SharedEmulatorStore()
    remote = _rows(4, offset=30.0)
    store.append(remote, _f(remote))

    emulator = _emulator()
    local = _rows(3)
    emulator.absorb_observations(local, _f(local))
    sync = EmulatorSync(store, emulator)
    published, absorbed = sync.sync()
    assert (published, absorbed) == (3, 4)
    assert store.current_version() == 7
    assert emulator.n_training == 7
    # The exchange is idempotent once both sides are caught up.
    assert sync.sync() == (0, 0)
    assert sync.published_rows == 3 and sync.absorbed_rows == 4


def test_absorbed_rows_are_never_republished():
    store = SharedEmulatorStore()
    remote = _rows(2, offset=30.0)
    store.append(remote, _f(remote))
    emulator = _emulator()
    sync = EmulatorSync(store, emulator)
    sync.sync()  # absorbs the remote rows into the local model
    assert emulator.n_training == 2
    # The absorbed rows sit in the local model beyond the publish cursor's
    # start, but must not ping-pong back into the store as "local" rows.
    assert sync.sync() == (0, 0)
    assert store.current_version() == 2


def test_absorb_respects_the_training_cap_and_counts_drops():
    store = SharedEmulatorStore()
    remote = _rows(6, offset=30.0)
    store.append(remote, _f(remote))
    emulator = _emulator()
    local = _rows(2)
    emulator.absorb_observations(local, _f(local))
    sync = EmulatorSync(store, emulator, max_training_points=5)
    _, absorbed = sync.sync()
    assert absorbed == 3
    assert emulator.n_training == 5
    assert sync.dropped_rows == 3


def test_sync_records_model_phase_timings():
    store = SharedEmulatorStore()
    timings = PhaseTimings()
    emulator = _emulator()
    local = _rows(3)
    emulator.absorb_observations(local, _f(local))
    sync = EmulatorSync(store, emulator, timings=timings)
    sync.sync()
    # Both phases are materialised (bench rows render them as
    # ``model_append_ms`` / ``model_refresh_ms``); the exchange itself is
    # charged to the refresh phase.
    assert timings.get("model_append") >= 0.0
    assert "model_append" in timings.seconds
    assert timings.get("model_refresh") > 0.0


def test_seed_warm_starts_from_a_seeded_store_without_udf_calls():
    store = SharedEmulatorStore()
    X = _rows(10)
    store.append(X, _f(X))
    store.publish_hyperparameters(np.array([0.2, 0.3]))
    emulator = _emulator()
    sync = EmulatorSync(store, emulator)
    assert sync.seed(min_rows=10) is True
    assert emulator.n_training == 10
    # Hyperparameters came from the store: no local ML refit needed.
    assert emulator._trained_hyperparameters
    assert np.allclose(emulator.gp.kernel.theta, [0.2, 0.3])


def test_seed_or_wait_elects_exactly_one_initializer():
    store = SharedEmulatorStore()
    first = EmulatorSync(store, _emulator(seed=1))
    second = EmulatorSync(store, _emulator(seed=2))
    # Empty store: the first learner must pay for the design itself.
    assert first.seed_or_wait(min_rows=5, timeout=0.05) is False
    X = _rows(5)
    first.emulator.absorb_observations(X, _f(X))
    first.sync()
    # The second learner seeds from the published design, zero UDF calls.
    assert second.seed_or_wait(min_rows=5, timeout=0.05) is True
    assert second.emulator.n_training == 5


def test_seed_or_wait_times_out_to_self_sufficiency():
    store = SharedEmulatorStore()
    store.claim_initialization()  # a claimed initializer that never publishes
    sync = EmulatorSync(store, _emulator())
    assert sync.seed_or_wait(min_rows=5, timeout=0.05) is False


# ---------------------------------------------------------------------------
# The process endpoint
# ---------------------------------------------------------------------------

def test_manager_endpoint_serves_a_store_proxy():
    manager, store = serve_shared_store()
    try:
        X = _rows(3)
        assert store.append(X, _f(X)) == 3
        version, remote_X, remote_y = store.fetch_since(0)
        assert version == 3
        assert np.array_equal(remote_X, X)
        assert np.array_equal(remote_y, _f(X))
        assert store.claim_initialization() is True
        assert store.claim_initialization() is False
        # A sync works identically through the proxy.
        emulator = _emulator()
        sync = EmulatorSync(store, emulator)
        _, absorbed = sync.sync()
        assert absorbed == 3
    finally:
        manager.shutdown()
