"""Unit tests for the approximation metrics (discrepancy, KS, λ-discrepancy)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.core.metrics import (
    discrepancy,
    discrepancy_against_cdf,
    interval_probability_error,
    ks_distance,
    lambda_discrepancy,
    lambda_discrepancy_naive,
)
from repro.distributions.empirical import EmpiricalDistribution


def ecdf(values):
    return EmpiricalDistribution(np.asarray(values, dtype=float))


class TestKSDistance:
    def test_identical_is_zero(self):
        a = ecdf([1.0, 2.0, 3.0])
        assert ks_distance(a, a) == 0.0

    def test_disjoint_supports(self):
        assert ks_distance(ecdf([0.0, 1.0]), ecdf([5.0, 6.0])) == pytest.approx(1.0)

    def test_matches_scipy_two_sample_statistic(self, rng):
        x = rng.normal(size=300)
        y = rng.normal(loc=0.4, size=250)
        ours = ks_distance(ecdf(x), ecdf(y))
        theirs = stats.ks_2samp(x, y).statistic
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_against_analytic_cdf(self, rng):
        x = rng.normal(size=2000)
        d = ks_distance(ecdf(x), stats.norm.cdf)
        # DKW: with 2000 samples the KS distance should be small.
        assert d < 0.05

    def test_symmetry(self, rng):
        a = ecdf(rng.normal(size=100))
        b = ecdf(rng.normal(loc=1.0, size=120))
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))


class TestDiscrepancy:
    def test_identical_is_zero(self):
        a = ecdf([1.0, 2.0, 3.0])
        assert discrepancy(a, a) == 0.0

    def test_bounded_by_twice_ks(self, rng):
        for seed in range(5):
            r = np.random.default_rng(seed)
            a = ecdf(r.normal(size=150))
            b = ecdf(r.normal(loc=0.5, scale=1.5, size=130))
            d = discrepancy(a, b)
            ks = ks_distance(a, b)
            assert ks - 1e-12 <= d <= 2 * ks + 1e-12

    def test_known_shift_example(self):
        # Two interleaved uniform grids: the discrepancy of a half-step shift.
        a = ecdf(np.arange(0, 10, 1.0))
        b = ecdf(np.arange(0.5, 10.5, 1.0))
        assert discrepancy(a, b) == pytest.approx(0.1)

    def test_value_in_unit_interval(self, rng):
        a = ecdf(rng.uniform(size=50))
        b = ecdf(rng.uniform(1.0, 3.0, size=60))
        assert 0.0 <= discrepancy(a, b) <= 1.0

    def test_symmetry(self, rng):
        a = ecdf(rng.normal(size=80))
        b = ecdf(rng.exponential(size=90))
        assert discrepancy(a, b) == pytest.approx(discrepancy(b, a))

    def test_detects_middle_mass_difference(self):
        # Same range, but b concentrates mass in the middle: a two-sided
        # interval exposes the difference more than any one-sided one.
        a = ecdf(np.linspace(0, 10, 101))
        b = ecdf(np.concatenate([np.linspace(0, 10, 21), np.full(80, 5.0)]))
        assert discrepancy(a, b) > 0.3


class TestLambdaDiscrepancy:
    def test_lambda_zero_equals_discrepancy(self, rng):
        a = ecdf(rng.normal(size=100))
        b = ecdf(rng.normal(loc=0.3, size=100))
        assert lambda_discrepancy(a, b, 0.0) == pytest.approx(discrepancy(a, b))

    def test_monotone_in_lambda(self, rng):
        a = ecdf(rng.normal(size=120))
        b = ecdf(rng.normal(loc=0.5, size=100))
        values = [lambda_discrepancy(a, b, lam) for lam in (0.0, 0.5, 1.0, 2.0, 5.0)]
        assert all(x >= y - 1e-12 for x, y in zip(values, values[1:]))

    def test_matches_naive_enumeration(self, rng):
        for seed in range(4):
            r = np.random.default_rng(seed)
            a = ecdf(r.normal(size=25))
            b = ecdf(r.normal(loc=0.4, scale=1.3, size=20))
            for lam in (0.0, 0.3, 1.0, 3.0):
                fast = lambda_discrepancy(a, b, lam)
                slow = lambda_discrepancy_naive(a, b, lam)
                assert fast == pytest.approx(slow, abs=1e-12)

    def test_negative_lambda_rejected(self):
        a = ecdf([1.0])
        with pytest.raises(ValueError):
            lambda_discrepancy(a, a, -1.0)
        with pytest.raises(ValueError):
            lambda_discrepancy_naive(a, a, -0.5)

    def test_huge_lambda_reduces_to_one_sided(self, rng):
        # When lambda exceeds the support width, only intervals with an
        # endpoint at +/- infinity remain, so the value equals the KS distance.
        a = ecdf(rng.uniform(0, 1, size=60))
        b = ecdf(rng.uniform(0.2, 1.2, size=60))
        assert lambda_discrepancy(a, b, 100.0) == pytest.approx(ks_distance(a, b), abs=1e-12)


class TestAgainstReferenceCDF:
    def test_converges_with_sample_size(self):
        rng = np.random.default_rng(7)
        small = discrepancy_against_cdf(ecdf(rng.normal(size=100)), stats.norm.cdf)
        large = discrepancy_against_cdf(ecdf(rng.normal(size=20000)), stats.norm.cdf)
        assert large < small

    def test_zero_for_matching_step_function(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        dist = ecdf(samples)
        assert discrepancy_against_cdf(dist, dist.cdf) == 0.0


class TestIntervalProbabilityError:
    def test_explicit_intervals(self):
        a = ecdf([1.0, 2.0, 3.0, 4.0])
        b = ecdf([1.0, 2.0, 3.0, 100.0])
        err = interval_probability_error(a, b, [(0.0, 2.5), (3.5, 5.0)])
        assert err == pytest.approx(0.25)

    def test_upper_bounded_by_discrepancy(self, rng):
        a = ecdf(rng.normal(size=100))
        b = ecdf(rng.normal(loc=0.3, size=100))
        intervals = [(-1.0, 0.0), (0.0, 1.0), (-2.0, 2.0)]
        assert interval_probability_error(a, b, intervals) <= discrepancy(a, b) + 1e-12
