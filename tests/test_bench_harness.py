"""Unit tests for the experiment harness (result tables)."""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentTable, summarize
from repro.exceptions import ReproError


class TestExperimentTable:
    def make(self):
        table = ExperimentTable(
            experiment_id="expt_test",
            paper_artifact="Figure 0",
            description="test table",
        )
        table.add_row(approach="gp", time_ms=1.5)
        table.add_row(approach="mc", time_ms=30.0)
        return table

    def test_columns_and_column_access(self):
        table = self.make()
        assert table.columns == ["approach", "time_ms"]
        assert table.column("approach") == ["gp", "mc"]
        with pytest.raises(ReproError):
            table.column("missing")

    def test_row_key_consistency_enforced(self):
        table = self.make()
        with pytest.raises(ReproError):
            table.add_row(approach="gp", runtime=1.0)

    def test_filtered(self):
        table = self.make()
        subset = table.filtered(approach="gp")
        assert len(subset.rows) == 1
        assert subset.rows[0]["time_ms"] == 1.5

    def test_to_text_contains_values(self):
        text = self.make().to_text()
        assert "expt_test" in text
        assert "Figure 0" in text
        assert "gp" in text and "mc" in text

    def test_to_text_empty_table(self):
        table = ExperimentTable("x", "y", "z")
        assert "(no rows)" in table.to_text()


class TestSummarize:
    def test_statistics(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            summarize([])
