"""Unit tests for the experiment harness (result tables)."""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentTable, summarize
from repro.exceptions import ReproError


class TestExperimentTable:
    def make(self):
        table = ExperimentTable(
            experiment_id="expt_test",
            paper_artifact="Figure 0",
            description="test table",
        )
        table.add_row(approach="gp", time_ms=1.5)
        table.add_row(approach="mc", time_ms=30.0)
        return table

    def test_columns_and_column_access(self):
        table = self.make()
        assert table.columns == ["approach", "time_ms"]
        assert table.column("approach") == ["gp", "mc"]
        with pytest.raises(ReproError):
            table.column("missing")

    def test_row_key_consistency_enforced(self):
        table = self.make()
        with pytest.raises(ReproError):
            table.add_row(approach="gp", runtime=1.0)

    def test_filtered(self):
        table = self.make()
        subset = table.filtered(approach="gp")
        assert len(subset.rows) == 1
        assert subset.rows[0]["time_ms"] == 1.5

    def test_to_text_contains_values(self):
        text = self.make().to_text()
        assert "expt_test" in text
        assert "Figure 0" in text
        assert "gp" in text and "mc" in text

    def test_to_text_empty_table(self):
        table = ExperimentTable("x", "y", "z")
        assert "(no rows)" in table.to_text()


class TestSummarize:
    def test_statistics(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            summarize([])


class TestPhaseTimings:
    def test_accumulates_and_totals(self):
        from repro.bench.harness import PhaseTimings

        timings = PhaseTimings()
        timings.add("sampling", 0.5)
        timings.add("sampling", 0.25)
        timings.add("inference", 1.0)
        assert timings.get("sampling") == pytest.approx(0.75)
        assert timings.get("refinement") == 0.0
        assert timings.total == pytest.approx(1.75)

    def test_measure_context_manager(self):
        from repro.bench.harness import PhaseTimings

        timings = PhaseTimings()
        with timings.measure("inference"):
            pass
        assert timings.get("inference") > 0.0

    def test_rejects_negative_and_resets(self):
        from repro.bench.harness import PhaseTimings

        timings = PhaseTimings()
        with pytest.raises(ReproError):
            timings.add("sampling", -1.0)
        timings.add("sampling", 2.0)
        assert timings.as_row(prefix="t_") == {"t_sampling": 2000.0}
        timings.reset()
        assert timings.total == 0.0

    def test_merge_accumulates_per_phase(self):
        from repro.bench.harness import PhaseTimings

        parent = PhaseTimings()
        parent.add("sampling", 1.0)
        worker = PhaseTimings()
        worker.add("sampling", 0.5)
        worker.add("refinement", 2.0)
        returned = parent.merge(worker)
        assert returned is parent
        assert parent.get("sampling") == pytest.approx(1.5)
        assert parent.get("refinement") == pytest.approx(2.0)
        # The merged-from accumulator is untouched.
        assert worker.get("sampling") == pytest.approx(0.5)

    def test_merge_accepts_plain_mapping_and_iadd(self):
        from repro.bench.harness import PhaseTimings

        timings = PhaseTimings()
        timings.merge({"inference": 0.25})
        other = PhaseTimings()
        other.add("inference", 0.75)
        timings += other
        assert timings.get("inference") == pytest.approx(1.0)

    def test_merge_negative_guard_leaves_state_unchanged(self):
        from repro.bench.harness import PhaseTimings

        timings = PhaseTimings()
        timings.add("sampling", 1.0)
        with pytest.raises(ReproError):
            timings.merge({"sampling": 0.5, "inference": -0.1})
        # All-or-nothing: the valid "sampling" entry was not applied either.
        assert timings.get("sampling") == pytest.approx(1.0)
        assert timings.get("inference") == 0.0
