"""Unit tests for the configuration defaults and RNG plumbing."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import config
from repro.rng import as_generator, derive_seed, spawn, spawn_keyed


class TestPaperDefaults:
    def test_values_match_section_6_1(self):
        defaults = config.PaperDefaults()
        assert defaults.epsilon == 0.1
        assert defaults.delta == 0.05
        assert defaults.lambda_fraction == 0.01
        assert defaults.domain_low == 0.0 and defaults.domain_high == 10.0
        assert defaults.input_std == 0.5
        assert defaults.eval_time == pytest.approx(1e-3)
        assert defaults.domain_range == 10.0

    def test_immutable(self):
        defaults = config.PaperDefaults()
        with pytest.raises(dataclasses.FrozenInstanceError):
            defaults.epsilon = 0.2  # type: ignore[misc]

    def test_replace_creates_new_instance(self):
        defaults = config.PaperDefaults()
        tighter = dataclasses.replace(defaults, epsilon=0.02)
        assert tighter.epsilon == 0.02
        assert defaults.epsilon == 0.1

    def test_budget_constants_are_fractions(self):
        assert 0.0 < config.DEFAULT_MC_FRACTION < 1.0
        assert 0.0 < config.DEFAULT_GAMMA_FRACTION < 1.0
        assert 0.0 < config.DEFAULT_LAMBDA_FRACTION < 1.0


class TestRng:
    def test_as_generator_from_seed_is_reproducible(self):
        a = as_generator(42).normal(size=5)
        b = as_generator(42).normal(size=5)
        assert np.allclose(a, b)

    def test_as_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_as_generator_none_gives_fresh_entropy(self):
        a = as_generator(None).normal(size=3)
        b = as_generator(None).normal(size=3)
        assert not np.allclose(a, b)

    def test_spawn_produces_independent_streams(self):
        rng = as_generator(7)
        children = spawn(rng, 3)
        assert len(children) == 3
        draws = [child.normal(size=4) for child in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(as_generator(0), -1)

    def test_derive_seed_range(self):
        rng = as_generator(3)
        for _ in range(10):
            seed = derive_seed(rng)
            assert 0 <= seed < 2**63


class TestSpawnKeyed:
    def test_deterministic_per_key(self):
        a = spawn_keyed(42, 3).normal(size=6)
        b = spawn_keyed(42, 3).normal(size=6)
        assert np.array_equal(a, b)

    def test_independent_across_shard_indices(self):
        draws = [spawn_keyed(42, i).normal(size=6) for i in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(draws[i], draws[j])

    def test_matches_seed_sequence_spawn(self):
        """The contract documented in rng.py: shard i's stream equals
        SeedSequence(seed).spawn(n)[i] for any n > i."""
        children = np.random.SeedSequence(7).spawn(5)
        for i in (0, 2, 4):
            expected = np.random.default_rng(children[i]).normal(size=4)
            assert np.array_equal(spawn_keyed(7, i).normal(size=4), expected)

    def test_does_not_depend_on_other_shards(self):
        # Consuming shard 0's stream must not perturb shard 1's.
        first = spawn_keyed(11, 1).normal(size=3)
        spawn_keyed(11, 0).normal(size=1000)
        assert np.array_equal(spawn_keyed(11, 1).normal(size=3), first)

    def test_negative_shard_index_rejected(self):
        with pytest.raises(ValueError):
            spawn_keyed(0, -1)
