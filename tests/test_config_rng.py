"""Unit tests for the configuration defaults and RNG plumbing."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import config
from repro.rng import as_generator, derive_seed, spawn


class TestPaperDefaults:
    def test_values_match_section_6_1(self):
        defaults = config.PaperDefaults()
        assert defaults.epsilon == 0.1
        assert defaults.delta == 0.05
        assert defaults.lambda_fraction == 0.01
        assert defaults.domain_low == 0.0 and defaults.domain_high == 10.0
        assert defaults.input_std == 0.5
        assert defaults.eval_time == pytest.approx(1e-3)
        assert defaults.domain_range == 10.0

    def test_immutable(self):
        defaults = config.PaperDefaults()
        with pytest.raises(dataclasses.FrozenInstanceError):
            defaults.epsilon = 0.2  # type: ignore[misc]

    def test_replace_creates_new_instance(self):
        defaults = config.PaperDefaults()
        tighter = dataclasses.replace(defaults, epsilon=0.02)
        assert tighter.epsilon == 0.02
        assert defaults.epsilon == 0.1

    def test_budget_constants_are_fractions(self):
        assert 0.0 < config.DEFAULT_MC_FRACTION < 1.0
        assert 0.0 < config.DEFAULT_GAMMA_FRACTION < 1.0
        assert 0.0 < config.DEFAULT_LAMBDA_FRACTION < 1.0


class TestRng:
    def test_as_generator_from_seed_is_reproducible(self):
        a = as_generator(42).normal(size=5)
        b = as_generator(42).normal(size=5)
        assert np.allclose(a, b)

    def test_as_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_as_generator_none_gives_fresh_entropy(self):
        a = as_generator(None).normal(size=3)
        b = as_generator(None).normal(size=3)
        assert not np.allclose(a, b)

    def test_spawn_produces_independent_streams(self):
        rng = as_generator(7)
        children = spawn(rng, 3)
        assert len(children) == 3
        draws = [child.normal(size=4) for child in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn(as_generator(0), -1)

    def test_derive_seed_range(self):
        rng = as_generator(3)
        for _ in range(10):
            seed = derive_seed(rng)
            assert 0 <= seed < 2**63
