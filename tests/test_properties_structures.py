"""Property-based tests (hypothesis) for core data structures.

Covers the R-tree (search correctness and structural invariants for arbitrary
point sets), empirical CDFs (monotonicity, quantile consistency), the
envelope error bounds (efficient == naive, bound validity), and the
incremental covariance-inverse update.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.error_bounds import (
    build_envelope_outputs,
    gp_discrepancy_bound,
    gp_discrepancy_bound_naive,
    interval_probability_bounds,
)
from repro.distributions.empirical import EmpiricalDistribution
from repro.gp.linalg import block_inverse_update
from repro.index.bounding_box import BoundingBox
from repro.index.rtree import RTree

coordinate = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)

point_sets = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(min_value=1, max_value=60), st.just(2)),
    elements=coordinate,
)


class TestRTreeProperties:
    @given(point_sets)
    @settings(max_examples=40, deadline=None)
    def test_structural_invariants(self, points):
        tree = RTree(dimension=2, max_entries=5)
        tree.bulk_load(points)
        tree.check_invariants()
        assert len(tree) == points.shape[0]
        assert sorted(tree.all_payloads()) == list(range(points.shape[0]))

    @given(point_sets, coordinate, coordinate, st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=40, deadline=None)
    def test_distance_search_matches_brute_force(self, points, cx, cy, radius):
        tree = RTree(dimension=2, max_entries=6)
        tree.bulk_load(points)
        query = BoundingBox.from_point(np.array([cx, cy]))
        expected = {
            i for i, p in enumerate(points) if float(np.linalg.norm(p - np.array([cx, cy]))) <= radius
        }
        assert set(tree.search_within_distance(query, radius)) == expected

    @given(point_sets, coordinate, coordinate)
    @settings(max_examples=40, deadline=None)
    def test_nearest_matches_brute_force(self, points, cx, cy):
        tree = RTree(dimension=2, max_entries=6)
        tree.bulk_load(points)
        query = np.array([cx, cy])
        found = tree.nearest(query, k=1)[0]
        best = float(np.min(np.linalg.norm(points - query, axis=1)))
        assert float(np.linalg.norm(points[found] - query)) == pytest.approx(best, rel=1e-9)


class TestEmpiricalProperties:
    values = hnp.arrays(
        dtype=np.float64,
        shape=st.integers(min_value=1, max_value=80),
        elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False),
    )

    @given(values)
    @settings(max_examples=50, deadline=None)
    def test_cdf_monotone_and_normalised(self, samples):
        dist = EmpiricalDistribution(samples)
        grid = np.sort(np.concatenate([samples, samples - 0.5, samples + 0.5]))
        cdf = dist.cdf(grid)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert dist.cdf(np.asarray(np.max(samples))) == 1.0
        assert dist.cdf(np.asarray(np.min(samples) - 1.0)) == 0.0

    @given(values, st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=50, deadline=None)
    def test_quantile_consistency(self, samples, q):
        dist = EmpiricalDistribution(samples)
        x = float(dist.ppf(np.asarray(q)))
        assert dist.cdf(np.asarray(x)) >= q - 1e-12

    @given(values, st.floats(min_value=-1e3, max_value=1e3), st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_interval_probability_matches_cdf_difference(self, samples, a, width):
        dist = EmpiricalDistribution(samples)
        b = a + width
        prob = dist.interval_probability(a, b)
        assert 0.0 <= prob <= 1.0
        # Inclusive interval probability can exceed the CDF difference only by
        # the mass exactly at a.
        assert prob >= float(dist.cdf(np.asarray(b)) - dist.cdf(np.asarray(a))) - 1e-12


class TestEnvelopeBoundProperties:
    @st.composite
    @staticmethod
    def envelopes(draw):
        n = draw(st.integers(min_value=2, max_value=40))
        rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=10_000)))
        means = rng.normal(size=n) * draw(st.floats(min_value=0.1, max_value=5.0))
        stds = np.abs(rng.normal(size=n)) * draw(st.floats(min_value=0.0, max_value=2.0))
        z = draw(st.floats(min_value=0.0, max_value=4.0))
        return build_envelope_outputs(means, stds, z)

    @given(envelopes(), st.floats(min_value=0.0, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_efficient_bound_matches_naive(self, envelope, lam):
        fast = gp_discrepancy_bound(envelope, lam)
        slow = gp_discrepancy_bound_naive(envelope, lam)
        assert abs(fast - slow) < 1e-9

    @given(envelopes(), st.floats(min_value=-5.0, max_value=5.0), st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_interval_bounds_bracket_the_estimate(self, envelope, a, width):
        rho_l, rho_hat, rho_u = interval_probability_bounds(envelope, a, a + width)
        assert rho_l - 1e-12 <= rho_hat <= rho_u + 1e-12


class TestIncrementalInverseProperties:
    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_update_matches_direct_inverse(self, n, seed):
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(n, n))
        M = A @ A.T + n * np.eye(n)
        k_new = rng.normal(size=n)
        # Choose the self-covariance so the grown matrix is guaranteed to be
        # positive definite (Schur complement strictly positive).
        k_self = float(k_new @ np.linalg.solve(M, k_new) + 1.0 + abs(rng.normal()))
        grown = np.block([[M, k_new[:, None]], [k_new[None, :], np.array([[k_self]])]])
        updated = block_inverse_update(np.linalg.inv(M), k_new, k_self)
        assert np.allclose(updated @ grown, np.eye(n + 1), atol=1e-6)
