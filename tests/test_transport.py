"""Evaluation transports and the AsyncUDF: values, gauges, shutdown, pickling.

Contracts under test (see :mod:`repro.engine.transport` and
:class:`repro.udf.base.AsyncUDF`):

* every transport — including the out-of-process subprocess pool —
  returns one future per row, in row order, resolving to the same values
  the blocking path computes, with exact charge accounting and a zeroed
  in-flight gauge afterwards;
* the asyncio transport genuinely overlaps awaited latencies, requires an
  ``AsyncUDF`` (typed error otherwise), and ``async_inflight=1`` over it
  is bit-identical to the serial batched path;
* **shutdown**: no pool thread, event-loop thread or worker process
  survives a computation — including one that fails with a
  ``UDFError``/``QueryError`` — and every transport-started thread is
  non-daemon and joined;
* **pickling**: a pickled transport arrives closed (live resources
  dropped) and can be opened fresh, while the original keeps running;
  an ``AsyncUDF`` pickles and evaluates in the copy.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.engine import (
    AsyncioTransport,
    AsyncRefinementExecutor,
    BatchExecutor,
    PipelinedExecutor,
    SerialTransport,
    SubprocessPoolTransport,
    ThreadPoolTransport,
    make_transport,
)
from repro.engine.executor import UDFExecutionEngine
from repro.engine.transport import transport_name
from repro.exceptions import PlanError, QueryError, UDFError
from repro.udf.base import AsyncUDF
from repro.udf.faults import FaultInjectingUDF, FaultSchedule
from repro.udf.synthetic import async_service_udf, reference_function
from repro.workloads.generators import input_stream, workload_for_udf

REQUIREMENT = AccuracyRequirement(epsilon=0.15, delta=0.05)


def _points(n=6, seed=0):
    return np.random.default_rng(seed).uniform(1.0, 9.0, size=(n, 2))


def _engine_fixture(latency=0.0, jitter=0.0, n_tuples=4, seed=31, stream_seed=4):
    udf = async_service_udf("F4", latency=latency, jitter=jitter)
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=seed, n_samples=120
    )
    dists = list(
        input_stream(
            workload_for_udf(udf), n_tuples, random_state=np.random.default_rng(stream_seed)
        )
    )
    return udf, engine, dists


def _transport_threads():
    """Names of live threads created by any evaluation transport."""
    return [
        thread.name
        for thread in threading.enumerate()
        if thread.name.startswith(("udf-", "udf-asyncio-", "udf-eval-"))
    ]


# ---------------------------------------------------------------------------
# Registry and spec handling
# ---------------------------------------------------------------------------

def test_registry_resolution():
    assert isinstance(make_transport("serial"), SerialTransport)
    assert isinstance(make_transport("threads"), ThreadPoolTransport)
    assert isinstance(make_transport("asyncio"), AsyncioTransport)
    assert isinstance(make_transport("subprocess"), SubprocessPoolTransport)
    instance = ThreadPoolTransport()
    assert make_transport(instance) is instance
    assert transport_name("asyncio") == "asyncio"
    assert transport_name(instance) == "threads"
    with pytest.raises(PlanError):
        make_transport("carrier-pigeon")


# ---------------------------------------------------------------------------
# Value and accounting parity across transports
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["serial", "threads", "asyncio", "subprocess"])
def test_submit_rows_matches_blocking_evaluation(name):
    udf_ref = async_service_udf("F4")
    points = _points()
    expected = udf_ref.evaluate_batch(points)

    udf = async_service_udf("F4")
    transport = make_transport(name)
    with transport.session(4, label="test"):
        futures = transport.submit_rows(udf, points)
        values = np.array([future.result() for future in futures])
    assert np.array_equal(values, expected)
    assert udf.call_count == udf_ref.call_count == points.shape[0]
    assert udf.in_flight == 0
    assert _transport_threads() == []


def test_udf_submit_rows_dispatches_to_a_transport():
    # The duck-typed seam: passing a transport where an Executor was
    # expected routes the submission through the transport.
    udf = async_service_udf("F4")
    points = _points(4)
    transport = AsyncioTransport()
    with transport.session(4, label="dispatch"):
        futures = udf.submit_rows(transport, points)
        values = np.array([future.result() for future in futures])
    assert values.shape == (4,)
    assert udf.call_count == 4


def test_evaluate_many_over_a_transport():
    udf = async_service_udf("F4", latency=1e-3)
    points = _points(8, seed=3)
    serial = async_service_udf("F4").evaluate_batch(points)
    transport = AsyncioTransport()
    with transport.session(8, label="many"):
        values = udf.evaluate_many(points, executor=transport, max_inflight=4)
    assert np.array_equal(values, serial)
    assert udf.max_in_flight > 1


def test_serial_transport_resolves_inline_and_captures_failures():
    async def boom(x):
        raise RuntimeError("service down")

    udf = AsyncUDF(boom, dimension=2, name="boom")
    transport = SerialTransport()
    with transport.session(1):
        futures = transport.submit_rows(udf, _points(2))
    assert all(isinstance(f, Future) and f.done() for f in futures)
    with pytest.raises(UDFError, match="service down"):
        futures[0].result()


def test_transports_require_open():
    with pytest.raises(QueryError, match="not open"):
        ThreadPoolTransport().submit_rows(async_service_udf("F4"), _points(1))
    with pytest.raises(QueryError, match="not open"):
        AsyncioTransport().submit_rows(async_service_udf("F4"), _points(1))
    transport = ThreadPoolTransport()
    with transport.session(2):
        with pytest.raises(QueryError, match="already open"):
            transport.open(2)
    transport.close()  # idempotent


def test_asyncio_transport_rejects_blocking_udfs():
    blocking = reference_function("F4")
    with pytest.raises(QueryError, match="AsyncUDF"):
        AsyncioTransport().accepts(blocking)
    # ... and the executor surfaces it before any work happens.
    _, engine, dists = _engine_fixture()
    executor = AsyncRefinementExecutor(engine, inflight=4, batch_size=4,
                                       transport="asyncio")
    with pytest.raises(QueryError, match="AsyncUDF"):
        executor.compute_batch(blocking, dists)
    # ... including on the degenerate paths that never open the transport:
    # a misconfiguration must not surface only once the window is raised.
    degenerate = AsyncRefinementExecutor(engine, inflight=1, batch_size=4,
                                         transport="asyncio")
    with pytest.raises(QueryError, match="AsyncUDF"):
        degenerate.compute_batch(blocking, dists)
    pipelined = PipelinedExecutor(engine, lookahead=1, batch_size=4,
                                  transport="asyncio")
    with pytest.raises(QueryError, match="AsyncUDF"):
        pipelined.compute_batch(blocking, dists)
    assert _transport_threads() == []


def test_serial_transport_cannot_carry_an_overlap_window():
    _, engine, _ = _engine_fixture(n_tuples=1)
    with pytest.raises(QueryError, match="serial"):
        AsyncRefinementExecutor(engine, inflight=4, transport="serial")
    with pytest.raises(QueryError, match="serial"):
        PipelinedExecutor(engine, lookahead=4, transport="serial")


# ---------------------------------------------------------------------------
# AsyncUDF semantics
# ---------------------------------------------------------------------------

def test_async_udf_blocking_call_validates_and_charges():
    udf = async_service_udf("F4")
    value = udf(np.array([5.0, 5.0]))
    assert np.isfinite(value)
    assert udf.call_count == 1
    with pytest.raises(UDFError, match="shape"):
        udf(np.array([1.0, 2.0, 3.0]))


def test_async_udf_non_finite_value_raises():
    async def nan_service(x):
        return float("nan")

    udf = AsyncUDF(nan_service, dimension=2, name="nan")
    with pytest.raises(UDFError, match="non-finite"):
        udf(np.array([1.0, 2.0]))


def test_async_udf_pickles_and_evaluates_in_the_copy():
    udf = async_service_udf("F4", latency=0.0)
    point = np.array([4.0, 6.0])
    expected = udf(point)
    clone = pickle.loads(pickle.dumps(udf))
    assert clone(point) == expected
    # Counters carried over at pickling time, then advanced by the copy's
    # own evaluation; the original's stay untouched.
    assert clone.call_count == udf.call_count + 1


def test_async_udf_with_simulated_eval_time_stays_async():
    udf = async_service_udf("F4").with_simulated_eval_time(0.5)
    assert isinstance(udf, AsyncUDF)
    udf(np.array([5.0, 5.0]))
    assert udf.charged_time >= 0.5


# ---------------------------------------------------------------------------
# Overlap and bit-identity through the executors
# ---------------------------------------------------------------------------

def test_asyncio_inflight_1_is_bit_identical_to_serial_batched():
    udf_a, engine_a, dists_a = _engine_fixture()
    serial = BatchExecutor(engine_a, batch_size=4).compute_batch(udf_a, dists_a)
    udf_b, engine_b, dists_b = _engine_fixture()
    overlapped = AsyncRefinementExecutor(
        engine_b, inflight=1, batch_size=4, transport="asyncio"
    ).compute_batch(udf_b, dists_b)
    assert len(serial) == len(overlapped)
    for a, b in zip(serial, overlapped):
        assert np.array_equal(a.distribution.samples, b.distribution.samples)
        assert a.error_bound == b.error_bound
    assert udf_a.call_count == udf_b.call_count


def test_asyncio_transport_genuinely_overlaps():
    udf, engine, dists = _engine_fixture(latency=2e-3)
    AsyncRefinementExecutor(
        engine, inflight=4, batch_size=4, transport="asyncio"
    ).compute_batch(udf, dists)
    assert udf.max_in_flight > 1
    assert udf.in_flight == 0
    assert _transport_threads() == []


def test_asyncio_run_is_repeatable_and_jitter_invariant():
    def run(jitter):
        udf, engine, dists = _engine_fixture(latency=2e-3, jitter=jitter)
        outputs = AsyncRefinementExecutor(
            engine, inflight=4, batch_size=4, transport="asyncio"
        ).compute_batch(udf, dists)
        return outputs, udf.call_count

    reference, reference_calls = run(0.0)
    for jitter in (0.5, 0.95):
        outputs, calls = run(jitter)
        assert calls == reference_calls
        for a, b in zip(reference, outputs):
            assert np.array_equal(a.distribution.samples, b.distribution.samples)
            assert a.error_bound == b.error_bound


def test_pipelined_executor_rides_the_asyncio_transport():
    udf, engine, dists = _engine_fixture(latency=1e-3, n_tuples=6)
    executor = PipelinedExecutor(
        engine, lookahead=2, inflight=2, batch_size=6, transport="asyncio"
    )
    outputs = executor.compute_batch(udf, dists)
    assert len(outputs) == 6
    assert udf.in_flight == 0
    assert _transport_threads() == []


# ---------------------------------------------------------------------------
# Shutdown: the no-leaked-threads regression contract
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("transport", ["threads", "asyncio"])
def test_failed_query_leaks_no_threads(transport):
    """A UDF that starts failing mid-query must not leave pool or
    event-loop threads behind: the transport session closes (joining all
    non-daemon threads) on the error path."""
    state = {"calls": 0}

    async def flaky(x):
        state["calls"] += 1
        if state["calls"] > 30:
            raise RuntimeError("service went away")
        return float(np.sum(x))

    udf = AsyncUDF(flaky, dimension=2, name="flaky")
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=3, n_samples=120
    )
    dists = list(
        input_stream(workload_for_udf(udf), 4, random_state=np.random.default_rng(2))
    )
    executor = AsyncRefinementExecutor(engine, inflight=4, batch_size=4,
                                       transport=transport)
    with pytest.raises(UDFError):
        executor.compute_batch(udf, dists)
    leaked = _transport_threads()
    assert leaked == [], leaked
    # Every thread in the process is either the main thread or daemonic
    # housekeeping — nothing the transports started survives.
    assert all(
        thread is threading.main_thread() or thread.daemon or
        not thread.name.startswith("udf")
        for thread in threading.enumerate()
    )
    assert udf.in_flight == 0


def test_transport_close_is_idempotent_and_joins_the_loop_thread():
    transport = AsyncioTransport()
    transport.open(2, label="join-check")
    names_open = _transport_threads()
    assert any("join-check" in name for name in names_open)
    transport.close()
    transport.close()
    assert _transport_threads() == []


# ---------------------------------------------------------------------------
# Subprocess pool: out-of-process evaluation with parent-side accounting
# ---------------------------------------------------------------------------

def test_subprocess_transport_accepts_blocking_udfs_and_charges_the_parent():
    # Workers evaluate pickled *copies*; the parent's live UDF must still
    # end up with the full charge (calls and seconds folded back as deltas).
    udf = reference_function("F2")
    points = _points(5, seed=9)
    expected = reference_function("F2").evaluate_batch(points)
    transport = SubprocessPoolTransport()
    with transport.session(2, label="proc"):
        futures = transport.submit_rows(udf, points)
        values = np.array([future.result() for future in futures])
    assert np.array_equal(values, expected)
    assert udf.call_count == points.shape[0]
    assert udf.in_flight == 0
    assert multiprocessing.active_children() == []


def test_subprocess_transport_requires_open_and_valid_workers():
    transport = SubprocessPoolTransport()
    with pytest.raises(QueryError, match="not open"):
        transport.submit_rows(reference_function("F2"), _points(1))
    with pytest.raises(QueryError, match="positive"):
        transport.open(0)
    with transport.session(1):
        with pytest.raises(QueryError, match="already open"):
            transport.open(1)
    transport.close()  # idempotent


def test_failed_subprocess_query_leaks_no_workers():
    """The process-pool twin of the thread-leak contract: a UDF that fails
    fatally inside a worker must not leave pool processes (or their
    manager threads) behind, and the parent gauge returns to zero."""
    schedule = FaultSchedule(rate=1.0, seed=11)
    udf = FaultInjectingUDF(reference_function("F2"), schedule, fatal=True)
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=3, n_samples=120
    )
    dists = list(
        input_stream(workload_for_udf(udf), 3, random_state=np.random.default_rng(2))
    )
    executor = AsyncRefinementExecutor(engine, inflight=2, batch_size=4,
                                       transport="subprocess")
    with pytest.raises(UDFError):
        executor.compute_batch(udf, dists)
    assert multiprocessing.active_children() == []
    assert _transport_threads() == []
    assert udf.in_flight == 0


# ---------------------------------------------------------------------------
# Pickling: live resources dropped, copy opens fresh, original unharmed
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["threads", "asyncio", "subprocess"])
def test_pickling_an_open_transport_ships_a_closed_copy(name):
    udf = async_service_udf("F4")
    points = _points(3, seed=5)
    transport = make_transport(name)
    with transport.session(2, label="pickle"):
        payload = pickle.dumps(transport)
        # The original keeps working after being pickled...
        values = np.array(
            [f.result() for f in transport.submit_rows(udf, points)]
        )
    assert values.shape == (3,)
    clone = pickle.loads(payload)
    # ...and the copy arrives closed but opens fresh.
    with pytest.raises(QueryError, match="not open"):
        clone.submit_rows(udf, points)
    with clone.session(2, label="pickle-clone"):
        clone_values = np.array(
            [f.result() for f in clone.submit_rows(udf, points)]
        )
    assert np.array_equal(clone_values, values)
    assert _transport_threads() == []
