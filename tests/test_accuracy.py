"""Unit tests for accuracy requirements, budgets and sample-size bounds."""

from __future__ import annotations

import math

import pytest

from repro.core.accuracy import (
    AccuracyRequirement,
    ks_epsilon_for_samples,
    required_mc_samples,
)
from repro.exceptions import AccuracyError


class TestAccuracyRequirement:
    def test_defaults_match_paper(self):
        req = AccuracyRequirement()
        assert req.epsilon == 0.1
        assert req.delta == 0.05
        assert req.metric == "discrepancy"

    def test_validation(self):
        with pytest.raises(AccuracyError):
            AccuracyRequirement(epsilon=0.0)
        with pytest.raises(AccuracyError):
            AccuracyRequirement(epsilon=1.5)
        with pytest.raises(AccuracyError):
            AccuracyRequirement(delta=0.0)
        with pytest.raises(AccuracyError):
            AccuracyRequirement(metric="tv")
        with pytest.raises(AccuracyError):
            AccuracyRequirement(lambda_value=-1.0)

    def test_with_lambda_fraction(self):
        req = AccuracyRequirement().with_lambda_fraction(output_range=50.0, fraction=0.01)
        assert req.lambda_value == pytest.approx(0.5)
        with pytest.raises(AccuracyError):
            AccuracyRequirement().with_lambda_fraction(output_range=0.0)


class TestBudgetSplit:
    def test_epsilon_split_sums(self):
        budget = AccuracyRequirement(epsilon=0.1, delta=0.05).split(mc_fraction=0.7)
        assert budget.epsilon_mc == pytest.approx(0.07)
        assert budget.epsilon_gp == pytest.approx(0.03)
        assert budget.epsilon_mc + budget.epsilon_gp == pytest.approx(0.1)

    def test_delta_split_preserves_confidence(self):
        req = AccuracyRequirement(epsilon=0.1, delta=0.05)
        budget = req.split()
        joint = (1 - budget.delta_mc) * (1 - budget.delta_gp)
        assert joint == pytest.approx(1 - req.delta, abs=1e-12)

    def test_invalid_fractions(self):
        req = AccuracyRequirement()
        with pytest.raises(AccuracyError):
            req.split(mc_fraction=0.0)
        with pytest.raises(AccuracyError):
            req.split(mc_fraction=1.0)
        with pytest.raises(AccuracyError):
            req.split(mc_delta_fraction=1.0)

    def test_budget_sample_count_consistent(self):
        budget = AccuracyRequirement(epsilon=0.1, delta=0.05).split(mc_fraction=0.7)
        expected = required_mc_samples(budget.epsilon_mc, budget.delta_mc, "discrepancy")
        assert budget.mc_samples == expected


class TestSampleCounts:
    def test_paper_worked_example(self):
        # epsilon = 0.02, delta = 0.05 (discrepancy) requires m > 18000.
        m = required_mc_samples(0.02, 0.05, metric="discrepancy")
        assert m > 18000
        assert m == math.ceil(math.log(2 / 0.05) / (2 * 0.01**2))

    def test_ks_requires_quarter_of_discrepancy(self):
        ks = required_mc_samples(0.1, 0.05, metric="ks")
        disc = required_mc_samples(0.1, 0.05, metric="discrepancy")
        assert disc == pytest.approx(4 * ks, rel=0.01)

    def test_monotonicity(self):
        assert required_mc_samples(0.05, 0.05) > required_mc_samples(0.1, 0.05)
        assert required_mc_samples(0.1, 0.01) > required_mc_samples(0.1, 0.1)

    def test_invalid_parameters(self):
        with pytest.raises(AccuracyError):
            required_mc_samples(0.0, 0.05)
        with pytest.raises(AccuracyError):
            required_mc_samples(0.1, 1.0)
        with pytest.raises(AccuracyError):
            required_mc_samples(0.1, 0.05, metric="other")

    def test_inverse_formula(self):
        m = required_mc_samples(0.1, 0.05, metric="ks")
        epsilon = ks_epsilon_for_samples(m, 0.05)
        assert epsilon <= 0.1
        assert ks_epsilon_for_samples(m - 10, 0.05) > epsilon

    def test_inverse_validation(self):
        with pytest.raises(AccuracyError):
            ks_epsilon_for_samples(0, 0.05)
        with pytest.raises(AccuracyError):
            ks_epsilon_for_samples(10, 0.0)
