"""Unit tests for the synthetic Gaussian-mixture UDFs (§6.1A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import UDFError
from repro.udf.synthetic import (
    GaussianMixtureFunction,
    MixtureSpec,
    high_dimensional_function,
    make_mixture_udf,
    reference_function,
    reference_suite,
)


class TestGaussianMixtureFunction:
    def test_single_point_and_batch_agree(self):
        f = GaussianMixtureFunction(
            centers=np.array([[1.0, 1.0]]), stds=np.array([1.0]), amplitudes=np.array([2.0])
        )
        single = f(np.array([0.5, 0.5]))
        batch = f(np.array([[0.5, 0.5]]))
        assert single == pytest.approx(batch[0])

    def test_peak_at_center(self):
        f = GaussianMixtureFunction(
            centers=np.array([[2.0]]), stds=np.array([0.5]), amplitudes=np.array([3.0]),
            baseline=0.5,
        )
        assert f(np.array([2.0])) == pytest.approx(3.5)
        assert f(np.array([10.0])) == pytest.approx(0.5, abs=1e-6)

    def test_strictly_positive(self):
        f = GaussianMixtureFunction(
            centers=np.array([[0.0, 0.0]]), stds=np.array([1.0]), amplitudes=np.array([1.0])
        )
        rng = np.random.default_rng(0)
        values = f(rng.uniform(-10, 10, size=(200, 2)))
        assert np.all(values > 0)

    def test_mismatched_parameters_rejected(self):
        with pytest.raises(UDFError):
            GaussianMixtureFunction(np.zeros((2, 1)), np.array([1.0]), np.array([1.0, 1.0]))

    def test_value_range_spans_baseline_to_peak(self):
        f = GaussianMixtureFunction(
            centers=np.array([[5.0, 5.0]]), stds=np.array([0.5]), amplitudes=np.array([2.0]),
            baseline=0.5, domain=(np.zeros(2), 10 * np.ones(2)),
        )
        lo, hi = f.value_range()
        assert lo == pytest.approx(0.5, abs=0.01)
        assert hi == pytest.approx(2.5, abs=0.05)


class TestFactories:
    def test_make_mixture_udf_dimension(self):
        spec = MixtureSpec(dimension=3, n_components=4, component_std=1.0)
        udf = make_mixture_udf(spec, random_state=0)
        assert udf.dimension == 3
        assert udf.domain is not None
        value = udf(np.array([5.0, 5.0, 5.0]))
        assert np.isfinite(value)

    def test_reproducible_with_seed(self):
        spec = MixtureSpec(dimension=2, n_components=2, component_std=1.0)
        a = make_mixture_udf(spec, random_state=42)
        b = make_mixture_udf(spec, random_state=42)
        x = np.array([3.0, 7.0])
        assert a(x) == pytest.approx(b(x))

    def test_invalid_spec_rejected(self):
        with pytest.raises(UDFError):
            make_mixture_udf(MixtureSpec(dimension=0, n_components=1, component_std=1.0))
        with pytest.raises(UDFError):
            make_mixture_udf(MixtureSpec(dimension=1, n_components=0, component_std=1.0))

    def test_simulated_eval_time_propagates(self):
        spec = MixtureSpec(dimension=1, n_components=1, component_std=1.0)
        udf = make_mixture_udf(spec, simulated_eval_time=0.25)
        assert udf.simulated_eval_time == 0.25


class TestReferenceFunctions:
    def test_all_four_exist(self):
        suite = reference_suite()
        assert set(suite) == {"F1", "F2", "F3", "F4"}
        for udf in suite.values():
            assert udf.dimension == 2

    def test_unknown_name_rejected(self):
        with pytest.raises(UDFError):
            reference_function("F9")

    def test_f1_is_smoother_than_f4(self):
        # F1 (one broad peak) should vary far less over the domain than F4
        # (five narrow peaks); compare total variation over a full grid.
        f1 = reference_function("F1")
        f4 = reference_function("F4")
        axis = np.linspace(0.0, 10.0, 60)
        xx, yy = np.meshgrid(axis, axis)
        grid = np.stack([xx.ravel(), yy.ravel()], axis=1)
        v1 = f1.evaluate_batch(grid).reshape(60, 60)
        v4 = f4.evaluate_batch(grid).reshape(60, 60)

        def total_variation(values: np.ndarray) -> float:
            return float(
                np.abs(np.diff(values, axis=0)).sum() + np.abs(np.diff(values, axis=1)).sum()
            )

        assert total_variation(v4) > total_variation(v1)

    def test_case_insensitive(self):
        assert reference_function("f2").name == "F2"

    def test_deterministic_across_calls(self):
        a = reference_function("F3")
        b = reference_function("F3")
        x = np.array([4.2, 6.9])
        assert a(x) == pytest.approx(b(x))


class TestHighDimensionalFunction:
    @pytest.mark.parametrize("dimension", [1, 2, 5, 10])
    def test_dimensions(self, dimension):
        udf = high_dimensional_function(dimension)
        assert udf.dimension == dimension
        x = np.full(dimension, 5.0)
        assert np.isfinite(udf(x))

    def test_domain_is_default_box(self):
        udf = high_dimensional_function(3)
        low, high = udf.domain
        assert np.allclose(low, 0.0) and np.allclose(high, 10.0)
