"""Process-pool sharded execution: determinism, merging, and failure modes.

Contracts under test (see :mod:`repro.engine.parallel` and :mod:`repro.rng`):

* ``workers=1`` is numerically identical to the serial
  :class:`~repro.engine.batch.BatchExecutor` path under the same engine seed;
* under the ``"discard"`` merge policy, shard outputs are invariant to the
  worker count for any ``workers >= 2`` (fixed shard size, keyed streams);
* the merge policies move worker-added training points (and only those)
  back into the parent model;
* worker failures — black-box exceptions, unpicklable state, dead pool
  processes — surface as typed :class:`~repro.exceptions.QueryError`\\ s.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.core.filtering import SelectionPredicate
from repro.engine import (
    BatchExecutor,
    ParallelExecutor,
    Query,
    UDFExecutionEngine,
    generate_galaxy_relation,
)
from repro.engine.parallel import _emulator_of
from repro.exceptions import QueryError
from repro.udf.base import UDF
from repro.udf.synthetic import reference_function
from repro.workloads.generators import input_stream, workload_for_udf

RTOL = 1e-8

REQUIREMENT = AccuracyRequirement(epsilon=0.15, delta=0.05)

PREDICATE = SelectionPredicate(low=0.0, high=1.5, threshold=0.1)


def _fixture(strategy="gp", n_tuples=10, seed=31, stream_seed=4, **engine_kwargs):
    """Fresh (udf, engine, distributions) triple with deterministic seeds."""
    udf = reference_function("F1", simulated_eval_time=1e-3)
    kwargs = dict(engine_kwargs)
    if strategy == "gp":
        kwargs.setdefault("n_samples", 200)
    engine = UDFExecutionEngine(
        strategy=strategy, requirement=REQUIREMENT, random_state=seed, **kwargs
    )
    dists = list(
        input_stream(
            workload_for_udf(udf), n_tuples, random_state=np.random.default_rng(stream_seed)
        )
    )
    return udf, engine, dists


def _assert_same_outputs(a_outputs, b_outputs):
    assert len(a_outputs) == len(b_outputs)
    for i, (a, b) in enumerate(zip(a_outputs, b_outputs)):
        assert a.dropped == b.dropped, i
        assert np.isclose(a.existence_probability, b.existence_probability, rtol=RTOL), i
        if a.distribution is not None:
            assert np.allclose(a.distribution.samples, b.distribution.samples, rtol=RTOL), i
            assert np.isclose(a.error_bound, b.error_bound, rtol=RTOL), i


# ---------------------------------------------------------------------------
# workers=1: identity with the serial batched path
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("strategy", ["mc", "gp"])
def test_workers_1_matches_serial_batched(strategy):
    udf_a, engine_a, dists_a = _fixture(strategy)
    serial = BatchExecutor(engine_a, batch_size=4).compute_batch(udf_a, dists_a)
    udf_b, engine_b, dists_b = _fixture(strategy)
    parallel = ParallelExecutor(engine_b, workers=1, batch_size=4).compute_batch(
        udf_b, dists_b
    )
    _assert_same_outputs(serial, parallel)
    assert udf_a.call_count == udf_b.call_count


def test_workers_1_discard_rolls_the_model_back():
    udf, engine, dists = _fixture("gp")
    executor = ParallelExecutor(engine, workers=1, batch_size=4, merge="discard")
    executor.compute_batch(udf, dists)
    # The run created the processor, but discard must leave the engine as if
    # it had never run: no model for this UDF.
    assert _emulator_of(engine, udf) is None
    assert executor.last_merged_points == 0


def test_workers_1_discard_restores_an_existing_model():
    udf, engine, dists = _fixture("gp")
    # Warm the model first, then run with discard: n_training must not move.
    engine.compute(udf, dists[0])
    emulator = _emulator_of(engine, udf)
    n_before = emulator.n_training
    X_before = emulator.gp.X_train
    ParallelExecutor(engine, workers=1, batch_size=4, merge="discard").compute_batch(
        udf, dists[1:]
    )
    assert emulator.n_training == n_before
    assert np.array_equal(emulator.gp.X_train, X_before)


# ---------------------------------------------------------------------------
# workers >= 2: shard invariance and merge policies
# ---------------------------------------------------------------------------

def _sharded_run(workers, merge="discard", shard_size=None, batch_size=4, **kwargs):
    udf, engine, dists = _fixture("gp", **kwargs)
    executor = ParallelExecutor(
        engine,
        workers=workers,
        batch_size=batch_size,
        shard_size=shard_size,
        merge=merge,
        seed=99,
    )
    outputs = executor.compute_batch(udf, dists)
    return outputs, engine, udf, executor


def test_discard_outputs_invariant_to_worker_count():
    reference, _, _, _ = _sharded_run(workers=2)
    for workers in (3, 4):
        outputs, _, _, _ = _sharded_run(workers=workers)
        _assert_same_outputs(reference, outputs)


def test_shard_size_smaller_than_batch_size():
    # Shards of 2 tuples under batch_size 4: every shard is a single partial
    # chunk.  Must run and stay invariant to the worker count.
    a, _, _, _ = _sharded_run(workers=2, shard_size=2, batch_size=4)
    b, _, _, _ = _sharded_run(workers=4, shard_size=2, batch_size=4)
    _assert_same_outputs(a, b)
    assert len(a) == 10


def test_input_smaller_than_one_shard():
    outputs, _, _, _ = _sharded_run(workers=4, n_tuples=3, shard_size=8)
    assert len(outputs) == 3


def test_empty_input_returns_empty():
    udf, engine, _ = _fixture("gp")
    assert ParallelExecutor(engine, workers=4).compute_batch(udf, []) == []


def test_empty_input_emits_zero_phase_timings():
    """An empty relation is a legal input: no pool, no crash, zero phases."""
    udf, engine, _ = _fixture("gp")
    executor = ParallelExecutor(engine, workers=4)
    assert executor.compute_batch(udf, []) == []
    for phase in ("sampling", "inference", "refinement"):
        assert phase in executor.timings.seconds
        assert executor.timings.get(phase) == 0.0
    assert executor.last_merged_points == 0
    assert executor.last_dropped_points == 0
    # The predicate path degenerates the same way.
    assert executor.compute_batch_with_predicate(udf, [], PREDICATE) == []


def test_shard_size_larger_than_relation_yields_one_shard_with_timings():
    """shard_size > len(relation): one shard, merged timings, full outputs."""
    udf, engine, dists = _fixture("gp", n_tuples=3)
    executor = ParallelExecutor(
        engine, workers=4, batch_size=4, shard_size=16, merge="discard", seed=9
    )
    outputs = executor.compute_batch(udf, dists)
    assert len(outputs) == 3
    assert executor.timings.get("sampling") > 0.0
    assert executor.timings.get("inference") > 0.0


def test_union_merges_worker_points_into_parent():
    outputs_discard, engine_d, _, _ = _sharded_run(workers=2, merge="discard")
    outputs_union, engine_u, udf_u, executor = _sharded_run(workers=2, merge="union")
    # Outputs are computed from the same snapshot either way.
    _assert_same_outputs(outputs_discard, outputs_union)
    # ... but only union warms the parent model.
    assert _emulator_of(engine_d, udf_u) is None
    emulator = _emulator_of(engine_u, udf_u)
    assert emulator is not None
    assert executor.last_merged_points > 0
    assert emulator.n_training == executor.last_merged_points


def test_refit_threshold_retrains_parent_hyperparameters():
    _, engine, udf, executor = _sharded_run(workers=2, merge="refit-threshold")
    emulator = _emulator_of(engine, udf)
    assert executor.last_merged_points >= executor.refit_threshold
    # retrain() marks the emulator as hyperparameter-trained.
    assert emulator._trained_hyperparameters


def test_union_merge_respects_max_training_points():
    udf, engine, dists = _fixture("gp", max_training_points=30)
    executor = ParallelExecutor(engine, workers=2, batch_size=4, merge="union", seed=5)
    executor.compute_batch(udf, dists)
    emulator = _emulator_of(engine, udf)
    assert emulator.n_training <= 30
    # The workers learn far more than 30 points from a cold snapshot each,
    # so the cap must actually have bitten.
    assert executor.last_dropped_points > 0
    assert executor.last_merged_points + executor.last_dropped_points > 30


def test_union_dedupes_exact_duplicates():
    # Two shards started from the same warm snapshot can return identical
    # points; the parent must keep one copy of each.
    udf, engine, dists = _fixture("gp")
    executor = ParallelExecutor(engine, workers=2, batch_size=4, merge="union", seed=5)
    executor.compute_batch(udf, dists)
    emulator = _emulator_of(engine, udf)
    X = emulator.gp.X_train
    assert len({row.tobytes() for row in X}) == X.shape[0]


def test_parallel_credits_udf_cost_to_parent():
    _, _, udf, _ = _sharded_run(workers=2, merge="discard")
    assert udf.call_count > 0


@pytest.mark.parametrize("async_inflight", [None, 4])
def test_parallel_charge_accounting_is_exact(async_inflight):
    """Worker deltas are absorbed exactly once — also on the composed path.

    Worker shards charge their private UDF copies (through the async thread
    pool when ``async_inflight`` composes) and the parent absorbs each
    worker's whole delta once; the parent's total must therefore equal the
    sum of the per-tuple charges reported in the outputs — an over-count
    from double absorption, or an under-count from a lost delta, breaks the
    equality exactly.
    """
    udf, engine, dists = _fixture("gp", n_tuples=8)
    executor = ParallelExecutor(
        engine, workers=2, batch_size=4, merge="discard", seed=99,
        async_inflight=async_inflight,
    )
    outputs = executor.compute_batch(udf, dists)
    assert udf.call_count == sum(output.udf_calls for output in outputs)
    assert udf.call_count > 0
    # Real-time accounting follows the same single-absorption path: with
    # workers >= 2 the parent performs no black-box work itself, so a
    # strictly positive real_time proves the workers' wall-clock deltas
    # were credited back (a lost delta would leave it exactly zero).
    assert udf.real_time > 0.0


def test_parallel_merges_worker_timings():
    _, _, _, executor = _sharded_run(workers=2)
    assert executor.timings.get("sampling") > 0.0
    assert executor.timings.get("inference") > 0.0


# ---------------------------------------------------------------------------
# merge="shared": the live shared model
# ---------------------------------------------------------------------------

def test_shared_workers_1_is_bit_identical_to_serial_batched():
    """The CI-gated determinism contract: no store, no sync, same bits."""
    udf_a, engine_a, dists_a = _fixture("gp")
    serial = BatchExecutor(engine_a, batch_size=4).compute_batch(udf_a, dists_a)
    udf_b, engine_b, dists_b = _fixture("gp")
    shared = ParallelExecutor(
        engine_b, workers=1, batch_size=4, merge="shared"
    ).compute_batch(udf_b, dists_b)
    assert len(serial) == len(shared)
    for a, b in zip(serial, shared):
        assert np.array_equal(a.distribution.samples, b.distribution.samples)
        assert a.error_bound == b.error_bound
        assert a.udf_calls == b.udf_calls
    assert udf_a.call_count == udf_b.call_count
    # Like the serial batched path, the run leaves the engine warm.
    emulator_a = _emulator_of(engine_a, udf_a)
    emulator_b = _emulator_of(engine_b, udf_b)
    assert np.array_equal(emulator_a.gp.X_train, emulator_b.gp.X_train)


def test_shared_saves_udf_calls_versus_discard():
    """Shards learn from each other live instead of relearning from scratch.

    At minimum the shared run saves all but one initial training design
    (the store elects a single initializer), and mid-stream absorption
    flattens every shard's learning curve further, so the total must come
    in strictly below the cold-shard policy's.
    """
    _, _, udf_discard, _ = _sharded_run(workers=2, merge="discard")
    _, _, udf_shared, _ = _sharded_run(workers=2, merge="shared")
    assert udf_shared.call_count < udf_discard.call_count


def test_shared_warms_parent_from_the_store_and_keeps_charges_exact():
    outputs, engine, udf, executor = _sharded_run(workers=2, merge="shared")
    emulator = _emulator_of(engine, udf)
    assert emulator is not None
    # The parent ends warm: the store's commit order is the merge order,
    # and a cold parent's growth equals the merged-point count.
    assert emulator.n_training == executor.last_merged_points > 0
    # No row entered the parent model twice (the store dedupes).
    X = emulator.gp.X_train
    assert len({row.tobytes() for row in X}) == X.shape[0]
    # Store-absorbed rows are never re-charged: the parent's aggregate
    # equals the sum of per-tuple charges exactly.
    assert udf.call_count == sum(output.udf_calls for output in outputs)
    assert udf.call_count > 0
    # Sync overhead is observable in the merged phase record.
    assert "model_refresh" in executor.timings.seconds
    assert "model_append" in executor.timings.seconds


# ---------------------------------------------------------------------------
# Predicate (SelectUDF) path
# ---------------------------------------------------------------------------

def test_predicate_workers_1_matches_serial():
    udf_a, engine_a, dists_a = _fixture("gp", stream_seed=9)
    serial = BatchExecutor(engine_a, batch_size=3).compute_batch_with_predicate(
        udf_a, dists_a, PREDICATE
    )
    udf_b, engine_b, dists_b = _fixture("gp", stream_seed=9)
    parallel = ParallelExecutor(engine_b, workers=1, batch_size=3).compute_batch_with_predicate(
        udf_b, dists_b, PREDICATE
    )
    _assert_same_outputs(serial, parallel)


def test_predicate_outputs_invariant_to_worker_count():
    results = {}
    for workers in (2, 4):
        udf, engine, dists = _fixture("gp", stream_seed=9)
        executor = ParallelExecutor(
            engine, workers=workers, batch_size=3, merge="discard", seed=17
        )
        results[workers] = executor.compute_batch_with_predicate(udf, dists, PREDICATE)
    _assert_same_outputs(results[2], results[4])


def test_select_udf_operator_runs_parallel():
    relation = generate_galaxy_relation(8, random_state=22)
    udf = reference_function("F1", simulated_eval_time=1e-4)
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=5, n_samples=200
    )
    result = (
        Query(relation)
        .where_udf(udf, ["ra_offset", "dec_offset"], alias="f",
                   low=0.0, high=1.5, threshold=0.05,
                   batch_size=4, workers=2, merge="discard", parallel_seed=3)
        .run(engine)
    )
    for row in result:
        assert 0.0 <= row.existence_probability <= 1.0
        assert row["f"].size > 0


def test_apply_udf_operator_workers_1_matches_batched():
    def run(workers):
        relation = generate_galaxy_relation(8, random_state=21)
        udf = reference_function("F1", simulated_eval_time=1e-4)
        engine = UDFExecutionEngine(
            strategy="gp", requirement=REQUIREMENT, random_state=13, n_samples=150
        )
        return (
            Query(relation)
            .apply_udf(udf, ["ra_offset", "dec_offset"], alias="f",
                       batch_size=3, workers=workers)
            .run(engine)
        )

    plain = run(None)
    parallel = run(1)
    assert len(plain) == len(parallel)
    for a, b in zip(plain, parallel):
        assert np.allclose(a["f"].samples, b["f"].samples, rtol=RTOL)


# ---------------------------------------------------------------------------
# Failure modes
# ---------------------------------------------------------------------------

def _exploding(x):
    raise RuntimeError("black box exploded")


def _hard_crash(x):
    os._exit(13)  # simulates a segfaulting worker: no exception, just death


def test_worker_udf_exception_surfaces_as_query_error():
    udf = UDF(_exploding, dimension=2, name="exploding",
              domain=(np.zeros(2), np.full(2, 10.0)))
    _, engine, dists = _fixture("gp")
    executor = ParallelExecutor(engine, workers=2, batch_size=4, seed=1)
    with pytest.raises(QueryError, match="shard"):
        executor.compute_batch(udf, dists)


def test_dead_worker_process_surfaces_as_query_error():
    udf = UDF(_hard_crash, dimension=2, name="crashing",
              domain=(np.zeros(2), np.full(2, 10.0)))
    _, engine, dists = _fixture("gp")
    executor = ParallelExecutor(engine, workers=2, batch_size=4, seed=1)
    with pytest.raises(QueryError):
        executor.compute_batch(udf, dists)


def test_unpicklable_udf_surfaces_as_query_error():
    udf = UDF(lambda x: float(x[0]), dimension=2, name="lambda",
              domain=(np.zeros(2), np.full(2, 10.0)))
    _, engine, dists = _fixture("gp")
    executor = ParallelExecutor(engine, workers=2, batch_size=4, seed=1)
    with pytest.raises(QueryError, match="picklable"):
        executor.compute_batch(udf, dists)


def test_executor_validates_configuration():
    _, engine, _ = _fixture("gp")
    with pytest.raises(QueryError):
        ParallelExecutor(engine, workers=0)
    with pytest.raises(QueryError):
        ParallelExecutor(engine, batch_size=0)
    with pytest.raises(QueryError):
        ParallelExecutor(engine, shard_size=0)
    with pytest.raises(QueryError):
        ParallelExecutor(engine, merge="replace")
    with pytest.raises(QueryError):
        ParallelExecutor(engine, refit_threshold=0)
