"""Unit tests for the Gaussian-process regressor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GPError, NotTrainedError
from repro.gp.kernels import Matern52, SquaredExponential
from repro.gp.regression import GaussianProcess


def make_training_data(n=25, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 5, size=(n, 1))
    y = np.sin(X).ravel()
    return X, y


class TestFitAndPredict:
    def test_untrained_raises(self):
        gp = GaussianProcess()
        with pytest.raises(NotTrainedError):
            gp.predict(np.zeros((1, 1)))
        with pytest.raises(NotTrainedError):
            _ = gp.X_train

    def test_interpolates_training_points(self):
        X, y = make_training_data()
        gp = GaussianProcess(kernel=SquaredExponential(signal_std=1.0, lengthscale=1.0))
        gp.fit(X, y)
        mean, std = gp.predict(X)
        assert np.allclose(mean, y, atol=1e-3)
        assert np.all(std < 1e-2)

    def test_prediction_accuracy_between_points(self):
        X, y = make_training_data(n=40)
        gp = GaussianProcess(kernel=SquaredExponential(signal_std=1.0, lengthscale=1.0))
        gp.fit(X, y)
        X_test = np.linspace(0.2, 4.8, 30).reshape(-1, 1)
        mean = gp.predict_mean(X_test)
        assert np.max(np.abs(mean - np.sin(X_test).ravel())) < 0.05

    def test_variance_grows_away_from_data(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.zeros(3)
        gp = GaussianProcess(kernel=SquaredExponential(lengthscale=0.5)).fit(X, y)
        _, std_near = gp.predict(np.array([[1.0]]))
        _, std_far = gp.predict(np.array([[10.0]]))
        assert std_far[0] > std_near[0]
        assert std_far[0] == pytest.approx(1.0, abs=1e-3)  # reverts to prior

    def test_predict_mean_matches_full_predict(self):
        X, y = make_training_data()
        gp = GaussianProcess().fit(X, y)
        X_test = np.linspace(0, 5, 11).reshape(-1, 1)
        mean_only = gp.predict_mean(X_test)
        mean_full, _ = gp.predict(X_test)
        assert np.allclose(mean_only, mean_full)

    def test_shape_validation(self):
        gp = GaussianProcess()
        with pytest.raises(GPError):
            gp.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(GPError):
            gp.fit(np.zeros((0, 2)), np.zeros(0))

    def test_works_with_matern_kernel(self):
        X, y = make_training_data(n=30, seed=1)
        gp = GaussianProcess(kernel=Matern52(signal_std=1.0, lengthscale=1.0)).fit(X, y)
        mean = gp.predict_mean(X)
        assert np.allclose(mean, y, atol=5e-3)


class TestIncrementalUpdates:
    def test_add_point_matches_refit(self):
        # Disable target centering: the incremental path deliberately keeps
        # the offset fixed between refreshes, so exact agreement with a fresh
        # fit is only defined for the uncentred model.
        X, y = make_training_data(n=20, seed=2)
        incremental = GaussianProcess(center_targets=False).fit(X[:10], y[:10])
        for i in range(10, 20):
            incremental.add_point(X[i], y[i])
        refit = GaussianProcess(center_targets=False).fit(X, y)
        X_test = np.linspace(0, 5, 15).reshape(-1, 1)
        mean_inc, std_inc = incremental.predict(X_test)
        mean_ref, std_ref = refit.predict(X_test)
        assert np.allclose(mean_inc, mean_ref, atol=1e-6)
        # Posterior stds are tiny near data; allow for incremental round-off.
        assert np.allclose(std_inc, std_ref, atol=1e-4)

    def test_add_point_on_empty_model(self):
        gp = GaussianProcess()
        gp.add_point(np.array([1.0]), 2.0)
        assert gp.n_training == 1
        assert gp.predict_mean(np.array([[1.0]]))[0] == pytest.approx(2.0, abs=1e-6)

    def test_duplicate_point_falls_back_to_refit(self):
        gp = GaussianProcess()
        gp.add_point(np.array([1.0]), 2.0)
        gp.add_point(np.array([1.0]), 2.0)  # must not crash
        assert gp.n_training == 2

    def test_dimension_mismatch_rejected(self):
        gp = GaussianProcess().fit(np.zeros((2, 2)), np.zeros(2))
        with pytest.raises(GPError):
            gp.add_point(np.array([1.0]), 0.0)

    def test_periodic_refresh(self):
        gp = GaussianProcess(refresh_every=5)
        rng = np.random.default_rng(3)
        for i in range(12):
            gp.add_point(rng.uniform(0, 5, size=1), float(i))
        assert gp.n_training == 12
        # After the refresh the internal counter is reset.
        assert gp._adds_since_refresh < 5


class TestLikelihood:
    def test_likelihood_value_matches_direct_formula(self):
        X, y = make_training_data(n=12, seed=4)
        # Disable target centering so the closed-form zero-mean formula applies.
        gp = GaussianProcess(noise_variance=1e-6, center_targets=False).fit(X, y)
        K = gp.kernel(X, X) + 1e-6 * np.eye(12)
        sign, logdet = np.linalg.slogdet(K)
        expected = -0.5 * y @ np.linalg.solve(K, y) - 0.5 * logdet - 6 * np.log(2 * np.pi)
        assert gp.log_marginal_likelihood() == pytest.approx(expected, rel=1e-6)

    def test_gradient_matches_finite_differences(self):
        X, y = make_training_data(n=15, seed=5)
        gp = GaussianProcess(noise_variance=1e-6).fit(X, y)
        analytic = gp.log_marginal_likelihood_gradient()
        eps = 1e-5
        theta = gp.kernel.theta
        numeric = np.zeros_like(analytic)
        for j in range(theta.size):
            gp.set_hyperparameters(theta + eps * np.eye(theta.size)[j])
            plus = gp.log_marginal_likelihood()
            gp.set_hyperparameters(theta - eps * np.eye(theta.size)[j])
            minus = gp.log_marginal_likelihood()
            numeric[j] = (plus - minus) / (2 * eps)
        gp.set_hyperparameters(theta)
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_hessian_diag_matches_finite_differences(self):
        X, y = make_training_data(n=12, seed=6)
        gp = GaussianProcess(noise_variance=1e-6).fit(X, y)
        analytic = gp.log_marginal_likelihood_hessian_diag()
        eps = 1e-4
        theta = gp.kernel.theta
        numeric = np.zeros_like(analytic)
        base = gp.log_marginal_likelihood()
        for j in range(theta.size):
            gp.set_hyperparameters(theta + eps * np.eye(theta.size)[j])
            plus = gp.log_marginal_likelihood()
            gp.set_hyperparameters(theta - eps * np.eye(theta.size)[j])
            minus = gp.log_marginal_likelihood()
            numeric[j] = (plus - 2 * base + minus) / eps**2
            gp.set_hyperparameters(theta)
        assert np.allclose(analytic, numeric, rtol=1e-2, atol=1e-2)


class TestPosteriorSampling:
    def test_sample_shapes(self):
        X, y = make_training_data(n=10, seed=7)
        gp = GaussianProcess().fit(X, y)
        X_test = np.linspace(0, 5, 8).reshape(-1, 1)
        samples = gp.sample_posterior(X_test, n_samples=5, random_state=0)
        assert samples.shape == (5, 8)

    def test_samples_respect_training_data(self):
        X, y = make_training_data(n=15, seed=8)
        gp = GaussianProcess().fit(X, y)
        samples = gp.sample_posterior(X, n_samples=20, random_state=1)
        # At training points the posterior is pinned to the observations.
        assert np.max(np.abs(samples - y)) < 0.05
