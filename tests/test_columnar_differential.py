"""Differential harness: columnar storage ≡ tuple store, bit for bit.

The storage layer's whole contract (see :mod:`repro.engine.columnar` and
the ``columnar=True`` path of :meth:`repro.core.olgapro.OLGAPRO.process_batch`)
is that ``ExecutionPlan(storage="columnar")`` is an *implementation detail*:
under the same seed every executor layer must produce bit-identical

* output sample arrays (``distribution.samples``),
* error bounds (``error_bound``),
* per-tuple UDF charge counters (``udf_calls``) and the UDF's own
  ``call_count``,
* predicate verdicts,

whether the chunk ran through per-tuple objects or through column blocks.
These tests run the same workload through both storages across the plan
matrix (serial batch, overlap windows on each transport, pipeline
lookahead, sharded workers) and assert exact equality — no tolerances.

Workloads cover both regimes of the encoder: a 1-D Gaussian (and Gamma)
stream packs into an :class:`~repro.distributions.columns.UncertainColumn`
and exercises the stacked fast path; a 2-D stream of
``IndependentJoint`` inputs is *not* encodable, so the columnar executor
must take its per-tuple fallback — and still match.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

import repro.core.olgapro as olgapro_module
from repro.core.accuracy import AccuracyRequirement
from repro.distributions.columns import attempt_encode, stacking_supported
from repro.engine import BatchExecutor, ExecutionPlan, UDFExecutionEngine
from repro.udf.synthetic import async_service_udf, high_dimensional_function
from repro.workloads.generators import input_stream, workload_for_udf

REQUIREMENT = AccuracyRequirement(epsilon=0.2, delta=0.05)
N_TUPLES = 10


def _make_udf(workload: str):
    if workload == "joint-2d":
        # 2-D inputs arrive as IndependentJoint objects, which the column
        # encoder rejects — the differential must hold on the fallback
        # path too.  An AsyncUDF so every transport (incl. asyncio) runs.
        return async_service_udf("F2", latency=0.0)
    return high_dimensional_function(1, simulated_eval_time=1e-4)


def _fixture(workload: str, seed=31, stream_seed=4):
    """Fresh (udf, engine, distributions) for one named workload."""
    udf = _make_udf(workload)
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=seed, n_samples=96
    )
    family = "gamma" if workload == "gamma-1d" else "gaussian"
    dists = list(
        input_stream(
            workload_for_udf(udf, family=family),
            N_TUPLES,
            random_state=np.random.default_rng(stream_seed),
        )
    )
    return udf, engine, dists


def _run(workload: str, plan: ExecutionPlan):
    udf, engine, dists = _fixture(workload)
    result = engine.compute_with_plan(udf, dists, plan)
    return udf, result


def _assert_bit_identical(reference, candidate):
    ref_outputs, got_outputs = reference.outputs, candidate.outputs
    assert len(ref_outputs) == len(got_outputs)
    for i, (ref, got) in enumerate(zip(ref_outputs, got_outputs)):
        assert np.array_equal(
            ref.distribution.samples, got.distribution.samples
        ), f"sample block diverged at tuple {i}"
        assert ref.error_bound == got.error_bound, f"bound diverged at tuple {i}"
        assert ref.udf_calls == got.udf_calls, f"UDF charge diverged at tuple {i}"
    assert [v.verdict for v in reference.verdicts] == [
        v.verdict for v in candidate.verdicts
    ]


WORKLOADS = ["gaussian-1d", "gamma-1d", "joint-2d"]

PLAN_MATRIX = [
    pytest.param(ExecutionPlan(batch_size=4), id="batched"),
    pytest.param(ExecutionPlan(batch_size=4, async_inflight=2), id="inflight-threads"),
    pytest.param(
        ExecutionPlan(batch_size=4, async_inflight=2, transport="asyncio"),
        id="inflight-asyncio",
    ),
    pytest.param(ExecutionPlan(batch_size=4, pipeline_lookahead=2), id="lookahead"),
    pytest.param(ExecutionPlan(batch_size=4, workers=1), id="workers"),
]


@pytest.mark.parametrize("plan", PLAN_MATRIX)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_columnar_matches_tuple_store_across_plan_matrix(workload, plan):
    """The headline differential: for every workload × plan combination,
    ``storage="columnar"`` is bit-identical to ``storage="tuple"`` —
    values, bounds, verdicts and charge counters."""
    if plan.transport == "asyncio" and workload != "joint-2d":
        pytest.skip("asyncio transport requires the AsyncUDF workload")
    udf_ref, reference = _run(workload, plan)
    udf_col, candidate = _run(workload, replace(plan, storage="columnar"))
    _assert_bit_identical(reference, candidate)
    assert udf_ref.call_count == udf_col.call_count


@pytest.mark.parametrize("workload", WORKLOADS)
def test_columnar_matches_across_chunk_boundaries(workload):
    """Chunk size must not leak into results: a columnar run at one batch
    size matches the tuple store at the same size, including the final
    ragged chunk (10 tuples at batch_size=4 → chunks of 4, 4, 2)."""
    for batch_size in (3, 4, N_TUPLES + 5):
        plan = ExecutionPlan(batch_size=batch_size)
        udf_ref, reference = _run(workload, plan)
        _, candidate = _run(workload, replace(plan, storage="columnar"))
        _assert_bit_identical(reference, candidate)


def test_columnar_matches_under_predicate_filtering():
    """``where_udf``-style predicate evaluation (the online-filtering path)
    keeps verdict-for-verdict identity under the columnar storage."""
    from repro.core.filtering import SelectionPredicate

    plans = [
        ExecutionPlan(batch_size=4, storage=storage)
        for storage in ("tuple", "columnar")
    ]
    outcomes = []
    for plan in plans:
        udf, engine, dists = _fixture("gaussian-1d")
        executor = plan.resolve(engine)
        predicate = SelectionPredicate(low=-1.0, high=1.0, threshold=0.1)
        outputs = executor.compute_batch_with_predicate(udf, dists, predicate)
        outcomes.append((udf.call_count, outputs))
    (ref_calls, ref_outputs), (col_calls, col_outputs) = outcomes
    assert ref_calls == col_calls
    assert len(ref_outputs) == len(col_outputs)
    for ref, got in zip(ref_outputs, col_outputs):
        assert ref.error_bound == got.error_bound
        assert ref.udf_calls == got.udf_calls


# ---------------------------------------------------------------------------
# Guards: the differential above must not pass vacuously
# ---------------------------------------------------------------------------

def test_workload_encodability_matches_intent():
    """The 1-D streams really pack into columns and the 2-D stream really
    does not — otherwise the fallback rows of the matrix test nothing."""
    for workload, encodable in [
        ("gaussian-1d", True),
        ("gamma-1d", True),
        ("joint-2d", False),
    ]:
        _, _, dists = _fixture(workload)
        assert (attempt_encode(dists) is not None) is encodable, workload


def test_columnar_fast_path_engages(monkeypatch):
    """On a platform with exact stacking, the encodable workload must run
    through the stacked sampler — not silently fall back per tuple."""
    if not stacking_supported():
        pytest.skip("platform fails the stacking identity probes")
    calls = {"n": 0}
    real = olgapro_module.sample_stacked

    def spy(column, size, rng):
        calls["n"] += 1
        return real(column, size, rng)

    monkeypatch.setattr(olgapro_module, "sample_stacked", spy)
    udf, engine, dists = _fixture("gaussian-1d")
    BatchExecutor(engine, batch_size=4, storage="columnar").compute_batch(udf, dists)
    assert calls["n"] >= 1


def test_tuple_storage_never_touches_the_column_path(monkeypatch):
    """The default storage must not consult the columnar machinery at all —
    the differential is between two genuinely distinct code paths."""

    def forbidden(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("tuple storage entered the columnar sampler")

    monkeypatch.setattr(olgapro_module, "sample_stacked", forbidden)
    udf, engine, dists = _fixture("gaussian-1d")
    outputs = BatchExecutor(engine, batch_size=4).compute_batch(udf, dists)
    assert len(outputs) == len(dists)
