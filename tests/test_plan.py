"""ExecutionPlan: validation, precedence, resolution and path equivalence.

Contracts under test (see :mod:`repro.engine.plan`):

* contradictory or out-of-domain knob combinations raise a typed
  ``PlanError`` whose message states the precedence rule — never a
  silently picked path;
* ``plan=`` and the legacy per-knob kwargs are mutually exclusive, and the
  legacy kwargs build the identical plan (deprecation shim);
* a plan resolves to the executor stack the old hand-wired selection
  produced: workers → pipeline_lookahead → async_inflight → batch_size →
  per-tuple;
* **path equivalence**: every determinism-preserving plan (per-tuple,
  batched, inflight=1, lookahead=1, workers=1, each transport) produces
  bit-identical outputs, error bounds and UDF call counts to the serial
  batched path under a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.engine import (
    AsyncRefinementExecutor,
    BatchExecutor,
    ExecutionPlan,
    ParallelExecutor,
    PipelinedExecutor,
    Query,
    ThreadPoolTransport,
    UDFExecutionEngine,
    generate_galaxy_relation,
)
from repro.exceptions import PlanError, QueryError
from repro.udf.synthetic import async_service_udf
from repro.workloads.generators import input_stream, workload_for_udf

REQUIREMENT = AccuracyRequirement(epsilon=0.15, delta=0.05)


def _fixture(n_tuples=4, seed=31, stream_seed=4):
    """Fresh (async-service udf, engine, distributions) with fixed seeds.

    An :class:`~repro.udf.base.AsyncUDF` (zero latency) is used so the same
    fixture exercises *every* transport — the serial and thread paths run
    it through its blocking bridge, the asyncio path natively.
    """
    udf = async_service_udf("F4", latency=0.0)
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=seed, n_samples=120
    )
    dists = list(
        input_stream(
            workload_for_udf(udf), n_tuples, random_state=np.random.default_rng(stream_seed)
        )
    )
    return udf, engine, dists


def _assert_identical(a_outputs, b_outputs):
    assert len(a_outputs) == len(b_outputs)
    for i, (a, b) in enumerate(zip(a_outputs, b_outputs)):
        assert np.array_equal(a.distribution.samples, b.distribution.samples), i
        assert a.error_bound == b.error_bound, i


# ---------------------------------------------------------------------------
# Validation: conflicts raise typed PlanError with the precedence rule
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {"batch_size": 0},
        {"workers": 0},
        {"async_inflight": 0},
        {"pipeline_lookahead": -1},
        {"speculative_k": 0},
        {"oversubscribe": 0.5},
        {"merge": "replace"},
        {"async_inflight": 2, "transport": "no-such-transport"},
    ],
)
def test_out_of_domain_values_raise_plan_error(kwargs):
    with pytest.raises(PlanError):
        ExecutionPlan(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        # merge configures sharded execution; without workers it would have
        # been silently ignored before the plan layer.
        {"merge": "discard"},
        # an explicit workers would silently beat oversubscribe.
        {"workers": 4, "oversubscribe": 2.0},
        # a serial transport cannot overlap a window.
        {"async_inflight": 8, "transport": "serial"},
        {"pipeline_lookahead": 4, "transport": "serial"},
        # an asyncio transport without any window to carry.
        {"transport": "asyncio"},
        {"batch_size": 8, "transport": "asyncio"},
    ],
)
def test_knob_conflicts_raise_plan_error_with_precedence(kwargs):
    with pytest.raises(PlanError, match="precedence"):
        ExecutionPlan(**kwargs)


def test_plan_error_is_a_query_error():
    with pytest.raises(QueryError):
        ExecutionPlan(batch_size=0)


def test_shared_merge_needs_workers_or_a_pipeline():
    # merge="shared" is the one policy meaningful beyond the sharded layer:
    # with workers it shares the model across shards, with a pipeline it
    # keeps prefetch walks refreshed against the live model.  Alone it
    # would be silently inert, so the plan rejects it.
    assert ExecutionPlan(workers=2, merge="shared").merge == "shared"
    assert ExecutionPlan(pipeline_lookahead=4, merge="shared").merge == "shared"
    with pytest.raises(PlanError, match="precedence"):
        ExecutionPlan(merge="shared")
    # Every other non-default policy still requires workers, pipeline or not.
    with pytest.raises(PlanError, match="precedence"):
        ExecutionPlan(pipeline_lookahead=4, merge="discard")


def test_shared_merge_resolution_arms_the_walk_refresh():
    _, engine, _ = _fixture(n_tuples=1)
    piped = ExecutionPlan(pipeline_lookahead=4, merge="shared").resolve(engine)
    assert isinstance(piped, PipelinedExecutor)
    assert piped.shared_refresh is True
    default = ExecutionPlan(pipeline_lookahead=4).resolve(engine)
    assert default.shared_refresh is False
    sharded = ExecutionPlan(workers=2, merge="shared").resolve(engine)
    assert isinstance(sharded, ParallelExecutor)
    assert sharded.merge == "shared"


def test_transport_instance_with_workers_is_rejected():
    with pytest.raises(PlanError, match="process-local"):
        ExecutionPlan(workers=2, async_inflight=2, transport=ThreadPoolTransport())


def test_serial_transport_with_window_of_one_is_legal():
    plan = ExecutionPlan(batch_size=4, async_inflight=1, transport="serial")
    assert plan.async_inflight == 1


def test_serial_transport_without_a_window_is_legal():
    # "serial" is the explicit no-overlap spelling, so a plan with no
    # window knob accepts it (and resolution simply never consults it).
    _, engine, _ = _fixture(n_tuples=1)
    plan = ExecutionPlan(batch_size=8, transport="serial")
    assert isinstance(plan.resolve(engine), BatchExecutor)


def test_with_overrides_revalidates():
    plan = ExecutionPlan(batch_size=8)
    assert plan.with_overrides(batch_size=16).batch_size == 16
    with pytest.raises(PlanError):
        plan.with_overrides(batch_size=0)


# ---------------------------------------------------------------------------
# plan= versus legacy kwargs
# ---------------------------------------------------------------------------

def test_plan_and_legacy_kwargs_are_mutually_exclusive():
    relation = generate_galaxy_relation(4, random_state=1)
    udf, _, _ = _fixture()
    # The conflict surfaces at the builder call — where the user wrote the
    # contradictory spellings — not at run().
    with pytest.raises(PlanError, match="not both"):
        Query(relation).apply_udf(
            udf, ["ra_offset", "dec_offset"], alias="f",
            plan=ExecutionPlan(batch_size=4), batch_size=8,
        )


def test_legacy_kwargs_build_the_identical_plan():
    relation = generate_galaxy_relation(4, random_state=1)
    udf, engine, _ = _fixture()
    with pytest.warns(DeprecationWarning):
        operator = (
            Query(relation)
            .apply_udf(udf, ["ra_offset", "dec_offset"], alias="f",
                       batch_size=4, async_inflight=2)
            .plan(engine)
        )
    assert operator.plan == ExecutionPlan(batch_size=4, async_inflight=2)


def test_query_plan_run_matches_legacy_kwargs_run():
    def run(use_plan):
        relation = generate_galaxy_relation(6, random_state=21)
        udf, engine, _ = _fixture(seed=13)
        if use_plan:
            kwargs = {"plan": ExecutionPlan(batch_size=3, async_inflight=1)}
        else:
            kwargs = {"batch_size": 3, "async_inflight": 1}
        return (
            Query(relation)
            .apply_udf(udf, ["ra_offset", "dec_offset"], alias="f", **kwargs)
            .run(engine)
        )

    plain = run(True)
    legacy = run(False)
    assert len(plain) == len(legacy)
    for a, b in zip(plain, legacy):
        assert np.array_equal(a["f"].samples, b["f"].samples)


# ---------------------------------------------------------------------------
# Resolution: the plan picks the executor the old selection logic picked
# ---------------------------------------------------------------------------

def test_resolution_precedence():
    _, engine, _ = _fixture(n_tuples=1)
    assert ExecutionPlan().resolve(engine) is None
    assert isinstance(ExecutionPlan(batch_size=8).resolve(engine), BatchExecutor)
    assert isinstance(
        ExecutionPlan(async_inflight=4).resolve(engine), AsyncRefinementExecutor
    )
    assert isinstance(
        ExecutionPlan(async_inflight=4, pipeline_lookahead=4).resolve(engine),
        PipelinedExecutor,
    )
    assert isinstance(
        ExecutionPlan(workers=2, pipeline_lookahead=4, async_inflight=4).resolve(engine),
        ParallelExecutor,
    )


def test_resolution_forwards_the_knobs():
    _, engine, _ = _fixture(n_tuples=1)
    executor = ExecutionPlan(
        workers=3, batch_size=8, merge="discard", parallel_seed=17,
        async_inflight=4, pipeline_lookahead=2, transport="asyncio",
    ).resolve(engine)
    assert executor.workers == 3
    assert executor.batch_size == 8
    assert executor.merge == "discard"
    assert executor.seed == 17
    assert executor.async_inflight == 4
    assert executor.pipeline_lookahead == 2
    assert executor.transport == "asyncio"


def test_speculative_k_needs_the_engine_constructor():
    _, engine, _ = _fixture(n_tuples=1)
    with pytest.raises(PlanError, match="speculative_k"):
        ExecutionPlan(speculative_k=3).resolve(engine)


def test_engine_accepts_a_plan_and_applies_speculative_k():
    plan = ExecutionPlan(batch_size=4, speculative_k=3)
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=1, plan=plan,
    )
    assert engine.plan is plan
    assert engine._processor_kwargs["speculative_k"] == 3
    # The stored plan resolves cleanly against its own engine.
    assert isinstance(plan.resolve(engine), BatchExecutor)
    with pytest.raises(PlanError, match="conflicts"):
        UDFExecutionEngine(strategy="gp", plan=plan, speculative_k=2)


# ---------------------------------------------------------------------------
# Path equivalence: every determinism-preserving plan == serial batched
# ---------------------------------------------------------------------------

DETERMINISM_PRESERVING_PLANS = [
    pytest.param(ExecutionPlan(batch_size=4), id="batched"),
    pytest.param(ExecutionPlan(batch_size=4, async_inflight=1), id="inflight1-threads"),
    pytest.param(
        ExecutionPlan(batch_size=4, async_inflight=1, transport="serial"),
        id="inflight1-serial",
    ),
    pytest.param(
        ExecutionPlan(batch_size=4, async_inflight=1, transport="asyncio"),
        id="inflight1-asyncio",
    ),
    pytest.param(ExecutionPlan(batch_size=4, pipeline_lookahead=1), id="lookahead1"),
    pytest.param(ExecutionPlan(batch_size=4, workers=1), id="workers1"),
]


@pytest.mark.parametrize("plan", DETERMINISM_PRESERVING_PLANS)
def test_determinism_preserving_plans_match_serial_batched(plan):
    """The parametrized property at the heart of the refactor: plans that
    promise bit-identity with the serial batched path keep that promise —
    outputs, error bounds and UDF call counts."""
    udf_ref, engine_ref, dists_ref = _fixture()
    reference = BatchExecutor(engine_ref, batch_size=4).compute_batch(udf_ref, dists_ref)

    udf, engine, dists = _fixture()
    outputs = engine.compute_with_plan(udf, dists, plan)
    _assert_identical(reference, outputs)
    assert udf.call_count == udf_ref.call_count


def test_per_tuple_plan_is_numerically_equivalent_to_batched():
    """The all-default plan (per-tuple path) matches the batched pipeline's
    *numerical* equivalence contract from PR 1 (same stream, same results
    to floating-point noise — the batched kernel algebra reorders the
    arithmetic, so bitwise identity is not part of that contract)."""
    udf_ref, engine_ref, dists_ref = _fixture()
    reference = BatchExecutor(engine_ref, batch_size=4).compute_batch(udf_ref, dists_ref)
    udf, engine, dists = _fixture()
    outputs = engine.compute_with_plan(udf, dists, ExecutionPlan())
    assert len(reference) == len(outputs)
    for a, b in zip(reference, outputs):
        np.testing.assert_allclose(
            a.distribution.samples, b.distribution.samples, rtol=1e-9, atol=1e-9
        )
        assert a.error_bound == pytest.approx(b.error_bound, rel=1e-9)


def test_compute_with_plan_uses_the_engine_default_plan():
    udf_a, engine_a, dists_a = _fixture()
    direct = engine_a.compute_with_plan(udf_a, dists_a, ExecutionPlan(batch_size=4))

    udf_b, _, dists_b = _fixture()
    engine_b = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=31, n_samples=120,
        plan=ExecutionPlan(batch_size=4),
    )
    defaulted = engine_b.compute_with_plan(udf_b, dists_b)
    _assert_identical(direct, defaulted)
