"""Unit tests for the online-tuning point-selection strategies (§5.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.online_tuning import (
    LargestVarianceStrategy,
    OptimalGreedyStrategy,
    RandomStrategy,
    make_strategy,
)
from repro.exceptions import GPError


def candidates(m=20, seed=0):
    rng = np.random.default_rng(seed)
    samples = rng.uniform(0, 10, size=(m, 2))
    means = rng.normal(size=m)
    stds = rng.uniform(0.1, 2.0, size=m)
    return samples, means, stds


class TestLargestVariance:
    def test_selects_argmax_std(self):
        samples, means, stds = candidates()
        stds[7] = 10.0
        assert LargestVarianceStrategy().select(samples, means, stds) == 7

    def test_validation(self):
        strategy = LargestVarianceStrategy()
        with pytest.raises(GPError):
            strategy.select(np.empty((0, 2)), np.empty(0), np.empty(0))
        with pytest.raises(GPError):
            strategy.select(np.zeros((3, 2)), np.zeros(2), np.zeros(3))


class TestRandom:
    def test_returns_valid_index(self):
        samples, means, stds = candidates()
        for seed in range(10):
            index = RandomStrategy().select(samples, means, stds, random_state=seed)
            assert 0 <= index < samples.shape[0]

    def test_deterministic_given_seed(self):
        samples, means, stds = candidates()
        a = RandomStrategy().select(samples, means, stds, random_state=3)
        b = RandomStrategy().select(samples, means, stds, random_state=3)
        assert a == b

    def test_spreads_over_candidates(self):
        samples, means, stds = candidates(m=10)
        picks = {
            RandomStrategy().select(samples, means, stds, random_state=seed)
            for seed in range(40)
        }
        assert len(picks) > 3


class TestOptimalGreedy:
    def test_requires_evaluator(self):
        samples, means, stds = candidates()
        with pytest.raises(GPError):
            OptimalGreedyStrategy().select(samples, means, stds)

    def test_picks_candidate_minimising_error(self):
        samples, means, stds = candidates(m=12)
        # Synthetic evaluator: candidate 4 gives the lowest simulated error.
        errors = {i: 1.0 for i in range(12)}
        errors[4] = 0.01
        strategy = OptimalGreedyStrategy()
        chosen = strategy.select(samples, means, stds, error_evaluator=lambda i: errors[i])
        assert chosen == 4

    def test_max_candidates_limits_calls(self):
        samples, means, stds = candidates(m=30)
        calls = []

        def evaluator(i):
            calls.append(i)
            return float(i)

        OptimalGreedyStrategy(max_candidates=5).select(
            samples, means, stds, error_evaluator=evaluator
        )
        assert len(calls) == 5

    def test_candidates_tried_in_variance_order(self):
        samples, means, stds = candidates(m=10)
        order = []
        OptimalGreedyStrategy(max_candidates=3).select(
            samples, means, stds, error_evaluator=lambda i: order.append(i) or 1.0
        )
        expected = list(np.argsort(-stds)[:3])
        assert order == expected


class TestFactory:
    def test_make_by_name(self):
        assert isinstance(make_strategy("random"), RandomStrategy)
        assert isinstance(make_strategy("largest_variance"), LargestVarianceStrategy)
        greedy = make_strategy("optimal_greedy", max_candidates=7)
        assert isinstance(greedy, OptimalGreedyStrategy)
        assert greedy.max_candidates == 7

    def test_unknown_name(self):
        with pytest.raises(GPError):
            make_strategy("entropy")
