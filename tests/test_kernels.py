"""Unit tests for GP kernels, their derivatives and spectral moments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GPError
from repro.gp.kernels import (
    Matern32,
    Matern52,
    SquaredExponential,
    make_kernel,
    pairwise_sq_dists,
)

ALL_KERNELS = [SquaredExponential, Matern32, Matern52]


class TestPairwiseDistances:
    def test_matches_direct_computation(self, rng):
        X1 = rng.normal(size=(10, 3))
        X2 = rng.normal(size=(7, 3))
        expected = np.array([[np.sum((a - b) ** 2) for b in X2] for a in X1])
        assert np.allclose(pairwise_sq_dists(X1, X2), expected, atol=1e-10)

    def test_non_negative(self, rng):
        X = rng.normal(size=(20, 2))
        assert np.all(pairwise_sq_dists(X, X) >= 0)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(GPError):
            pairwise_sq_dists(np.zeros((2, 2)), np.zeros((2, 3)))


@pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
class TestKernelBasics:
    def test_diagonal_is_signal_variance(self, kernel_cls, rng):
        kernel = kernel_cls(signal_std=2.0, lengthscale=1.5)
        X = rng.normal(size=(5, 2))
        K = kernel(X, X)
        assert np.allclose(np.diag(K), 4.0)
        assert np.allclose(kernel.diag(X), 4.0)

    def test_symmetry_and_psd(self, kernel_cls, rng):
        kernel = kernel_cls(signal_std=1.0, lengthscale=0.8)
        X = rng.uniform(0, 5, size=(15, 2))
        K = kernel(X, X)
        assert np.allclose(K, K.T)
        eigenvalues = np.linalg.eigvalsh(K)
        assert eigenvalues.min() > -1e-8

    def test_decays_with_distance(self, kernel_cls):
        kernel = kernel_cls(signal_std=1.0, lengthscale=1.0)
        near = kernel(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = kernel(np.array([[0.0]]), np.array([[5.0]]))[0, 0]
        assert near > far > 0.0

    def test_theta_roundtrip(self, kernel_cls):
        kernel = kernel_cls(signal_std=3.0, lengthscale=0.5)
        theta = kernel.theta
        other = kernel_cls()
        other.theta = theta
        assert other.signal_std == pytest.approx(3.0)
        assert other.lengthscale == pytest.approx(0.5)

    def test_invalid_parameters_rejected(self, kernel_cls):
        with pytest.raises(GPError):
            kernel_cls(signal_std=-1.0, lengthscale=1.0)
        with pytest.raises(GPError):
            kernel_cls(signal_std=1.0, lengthscale=0.0)

    def test_clone_is_independent(self, kernel_cls):
        kernel = kernel_cls(signal_std=1.0, lengthscale=1.0)
        clone = kernel.clone()
        clone.theta = np.array([1.0, 1.0])
        assert kernel.lengthscale == pytest.approx(1.0)

    def test_second_spectral_moment_positive(self, kernel_cls):
        kernel = kernel_cls(signal_std=1.0, lengthscale=2.0)
        assert kernel.second_spectral_moment() > 0
        # Larger lengthscale => smoother process => smaller spectral moment.
        rough = kernel_cls(signal_std=1.0, lengthscale=0.5)
        assert rough.second_spectral_moment() > kernel.second_spectral_moment()


@pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
class TestKernelDerivatives:
    """Analytic hyperparameter derivatives agree with finite differences."""

    @staticmethod
    def _finite_difference(kernel_cls, theta, X, index, eps=1e-5):
        plus = kernel_cls()
        plus.theta = theta + eps * np.eye(2)[index]
        minus = kernel_cls()
        minus.theta = theta - eps * np.eye(2)[index]
        return (plus(X, X) - minus(X, X)) / (2 * eps)

    def test_gradients_match_finite_differences(self, kernel_cls, rng):
        X = rng.uniform(0, 3, size=(8, 2))
        kernel = kernel_cls(signal_std=1.3, lengthscale=0.9)
        grads = kernel.gradients(X)
        for j in range(2):
            numeric = self._finite_difference(kernel_cls, kernel.theta, X, j)
            assert np.allclose(grads[j], numeric, atol=1e-5)

    def test_second_derivatives_match_finite_differences(self, kernel_cls, rng):
        X = rng.uniform(0, 3, size=(6, 2))
        kernel = kernel_cls(signal_std=1.1, lengthscale=1.4)
        seconds = kernel.second_derivatives(X)
        eps = 1e-4
        for j in range(2):
            plus = kernel_cls()
            plus.theta = kernel.theta + eps * np.eye(2)[j]
            minus = kernel_cls()
            minus.theta = kernel.theta - eps * np.eye(2)[j]
            numeric = (plus(X, X) - 2 * kernel(X, X) + minus(X, X)) / eps**2
            assert np.allclose(seconds[j], numeric, atol=1e-4)


class TestSpectralMoments:
    def test_se_value(self):
        assert SquaredExponential(lengthscale=2.0).second_spectral_moment() == pytest.approx(0.25)

    def test_matern_ordering(self):
        # For the same lengthscale, rougher kernels have larger spectral moments.
        se = SquaredExponential(lengthscale=1.0).second_spectral_moment()
        m52 = Matern52(lengthscale=1.0).second_spectral_moment()
        m32 = Matern32(lengthscale=1.0).second_spectral_moment()
        assert m32 > m52 > se

    def test_matches_numerical_curvature(self):
        # lambda_2 = -corr''(0); check numerically for the SE kernel.
        kernel = SquaredExponential(signal_std=1.0, lengthscale=1.7)
        h = 1e-4
        k0 = kernel(np.array([[0.0]]), np.array([[0.0]]))[0, 0]
        kh = kernel(np.array([[0.0]]), np.array([[h]]))[0, 0]
        curvature = 2 * (k0 - kh) / h**2
        assert curvature == pytest.approx(kernel.second_spectral_moment(), rel=1e-3)


class TestFactory:
    def test_make_kernel_by_name(self):
        assert isinstance(make_kernel("squared_exponential"), SquaredExponential)
        assert isinstance(make_kernel("rbf"), SquaredExponential)
        assert isinstance(make_kernel("matern32"), Matern32)
        assert isinstance(make_kernel("MATERN52"), Matern52)

    def test_unknown_name_rejected(self):
        with pytest.raises(GPError):
            make_kernel("linear")
