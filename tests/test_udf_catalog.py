"""The UDF catalog: profile derivation, declarations, and memoization.

Contracts under test (see :mod:`repro.udf.catalog`):

* a :class:`UDFProfile` derives its fields from the UDF's own attributes
  (declared latency, vectorisation, async capability, dimension), with
  registration-time overrides winning and unknown override keys rejected;
* profile validation is typed (:class:`~repro.exceptions.UDFError`) —
  bad dimensions, negative costs, unknown backends;
* the latency classes split at the documented thresholds and a *neutral*
  profile (negligible cost, no backend) is the serial-path anchor;
* :class:`UDFCatalog` is a registry whose entries always carry a profile
  keyed by the canonical (lower-case) name;
* ``default_registry()`` / ``default_catalog()`` are memoized — repeated
  calls return the same object with the same UDF instances (the
  idempotent-registration regression) — and ``fresh=True`` escapes the
  cache with an independent instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import UDFError
from repro.udf.base import UDF
from repro.udf.catalog import (
    LATENCY_MODERATE,
    LATENCY_NEGLIGIBLE,
    LATENCY_SLOW,
    MODERATE_THRESHOLD_SECONDS,
    SLOW_THRESHOLD_SECONDS,
    UDFCatalog,
    UDFProfile,
    canonical_udf_name,
    default_catalog,
    latency_class_for,
)
from repro.udf.registry import default_registry
from repro.udf.synthetic import async_service_udf, reference_function


class TestLatencyClasses:
    def test_thresholds(self):
        assert latency_class_for(0.0) == LATENCY_NEGLIGIBLE
        assert latency_class_for(MODERATE_THRESHOLD_SECONDS / 2) == LATENCY_NEGLIGIBLE
        assert latency_class_for(MODERATE_THRESHOLD_SECONDS) == LATENCY_MODERATE
        assert latency_class_for(SLOW_THRESHOLD_SECONDS / 2) == LATENCY_MODERATE
        assert latency_class_for(SLOW_THRESHOLD_SECONDS) == LATENCY_SLOW
        assert latency_class_for(10.0) == LATENCY_SLOW

    def test_canonical_name_lowercases(self):
        assert canonical_udf_name("GalAge") == "galage"
        assert canonical_udf_name("galage") == "galage"


class TestProfileDerivation:
    def test_blocking_udf_derives_cost_from_declared_eval_time(self):
        udf = reference_function("F2", real_eval_time=0.02)
        profile = UDFProfile.from_udf(udf)
        assert profile.name == "f2"
        assert profile.dimension == udf.dimension
        assert profile.per_call_seconds == pytest.approx(0.02)
        assert profile.latency_class == LATENCY_SLOW
        assert not profile.async_capable
        assert not profile.is_neutral

    def test_async_udf_derives_latency_and_async_capability(self):
        udf = async_service_udf("F2", latency=0.005)
        profile = UDFProfile.from_udf(udf)
        assert profile.async_capable
        assert profile.per_call_seconds == pytest.approx(0.005)
        assert profile.latency_class == LATENCY_MODERATE

    def test_simulated_eval_time_adds_to_the_declared_cost(self):
        udf = reference_function("F2").with_simulated_eval_time(0.5)
        profile = UDFProfile.from_udf(udf)
        assert profile.per_call_seconds >= 0.5

    def test_plain_numpy_udf_is_neutral(self):
        udf = UDF(lambda x: float(np.sum(x)), dimension=2, name="cheap")
        profile = UDFProfile.from_udf(udf)
        assert profile.is_neutral
        assert profile.latency_class == LATENCY_NEGLIGIBLE

    def test_overrides_win_over_derivation(self):
        udf = reference_function("F2")
        profile = UDFProfile.from_udf(
            udf, per_call_seconds=0.05, deterministic=False, tags=("svc",)
        )
        assert profile.per_call_seconds == pytest.approx(0.05)
        assert not profile.deterministic
        assert profile.tags == ("svc",)

    def test_unknown_override_key_rejected(self):
        with pytest.raises(UDFError, match="unknown profile field"):
            UDFProfile.from_udf(reference_function("F2"), latencyy=0.1)

    def test_with_overrides_revalidates(self):
        profile = UDFProfile.from_udf(reference_function("F2"))
        slow = profile.with_overrides(per_call_seconds=1.0)
        assert slow.latency_class == LATENCY_SLOW
        with pytest.raises(UDFError):
            profile.with_overrides(per_call_seconds=-1.0)

    def test_describe_mentions_the_load_bearing_fields(self):
        profile = UDFProfile(
            name="Svc", dimension=2, per_call_seconds=0.02,
            async_capable=True, backend="subprocess",
        )
        text = profile.describe()
        assert "svc" in text and "slow" in text
        assert "async" in text and "backend=subprocess" in text


class TestProfileValidation:
    def test_bad_dimension(self):
        with pytest.raises(UDFError, match="dimension"):
            UDFProfile(name="f", dimension=0)

    def test_negative_cost(self):
        with pytest.raises(UDFError, match="non-negative"):
            UDFProfile(name="f", dimension=1, per_call_seconds=-0.1)

    def test_empty_name(self):
        with pytest.raises(UDFError, match="name"):
            UDFProfile(name="", dimension=1)

    def test_unknown_backend(self):
        with pytest.raises(UDFError, match="backend"):
            UDFProfile(name="f", dimension=1, backend="carrier-pigeon")

    def test_known_backends_accepted(self):
        for backend in ("serial", "threads", "asyncio", "subprocess"):
            assert UDFProfile(name="f", dimension=1, backend=backend).backend == backend


class TestCatalog:
    def test_register_derives_and_stores_a_profile(self):
        catalog = UDFCatalog()
        udf = reference_function("F2", real_eval_time=0.02)
        stored = catalog.register(udf)
        assert catalog.profile("F2") is stored
        assert stored.name == "f2"
        assert stored.latency_class == LATENCY_SLOW
        assert catalog.get("f2") is udf

    def test_register_with_overrides_and_backend(self):
        catalog = UDFCatalog()
        stored = catalog.register(
            reference_function("F2"), backend="subprocess", deterministic=False
        )
        assert stored.backend == "subprocess"
        assert not stored.deterministic

    def test_register_with_full_profile_forces_the_catalog_key(self):
        catalog = UDFCatalog()
        profile = UDFProfile(name="other", dimension=2, per_call_seconds=0.02)
        stored = catalog.register(reference_function("F2"), profile=profile)
        assert stored.name == "f2"
        assert stored.per_call_seconds == pytest.approx(0.02)

    def test_profile_plus_overrides_rejected(self):
        catalog = UDFCatalog()
        profile = UDFProfile(name="f2", dimension=2)
        with pytest.raises(UDFError, match="profile="):
            catalog.register(reference_function("F2"), profile=profile,
                             backend="subprocess")

    def test_profile_unknown_name_raises(self):
        with pytest.raises(UDFError, match="no profile"):
            UDFCatalog().profile("nothing")

    def test_profile_for_prefers_the_stored_declaration(self):
        catalog = UDFCatalog()
        udf = reference_function("F2")
        catalog.register(udf, per_call_seconds=0.05)
        assert catalog.profile_for(udf).per_call_seconds == pytest.approx(0.05)
        # A *different* object under the same name falls back to derivation:
        # its declaration, if any, lives with its own registration.
        stranger = reference_function("F2")
        assert catalog.profile_for(stranger).per_call_seconds == pytest.approx(0.0)

    def test_profiles_listing_is_name_ordered(self):
        catalog = UDFCatalog()
        catalog.register(reference_function("F3"))
        catalog.register(reference_function("F1"))
        assert [p.name for p in catalog.profiles()] == ["f1", "f3"]


class TestDefaultMemoization:
    def test_default_registry_is_memoized(self):
        first = default_registry()
        second = default_registry()
        assert first is second
        # The idempotent-registration regression: repeated calls must not
        # re-register (UDFError on duplicates) nor rebuild the UDFs.
        assert first.get("galage") is second.get("galage")

    def test_default_registry_fresh_escape_hatch(self):
        shared = default_registry()
        fresh = default_registry(fresh=True)
        assert fresh is not shared
        assert fresh.get("galage") is not shared.get("galage")
        assert set(iter(fresh)) == set(iter(shared))

    def test_default_catalog_is_memoized_with_profiles(self):
        first = default_catalog()
        assert default_catalog() is first
        for name in ("galage", "comovevol", "angdist", "distance"):
            assert name in first
            profile = first.profile(name)
            assert profile.name == name
            assert "astro" in profile.tags

    def test_default_catalog_fresh_is_independent(self):
        shared = default_catalog()
        fresh = default_catalog(fresh=True)
        assert fresh is not shared
        fresh.register(reference_function("F4"), replace=True)
        assert "f4" not in shared
