"""Shared fixtures for the test suite.

Fixtures keep the expensive objects (trained emulators, reference functions)
session-scoped so the several-hundred test cases stay fast while still
exercising realistic configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.emulator import GPEmulator
from repro.distributions.continuous import Gaussian
from repro.distributions.multivariate import IndependentJoint
from repro.udf.base import UDF
from repro.udf.synthetic import reference_function


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def f1_udf() -> UDF:
    """The smooth single-peak reference function F1 (2-D)."""
    return reference_function("F1")


@pytest.fixture(scope="session")
def f4_udf() -> UDF:
    """The bumpy five-peak reference function F4 (2-D)."""
    return reference_function("F4")


@pytest.fixture(scope="session")
def quadratic_udf() -> UDF:
    """A simple 1-D deterministic UDF with a known closed form."""
    return UDF(lambda x: float(x[0]) ** 2 + 1.0, dimension=1, name="quadratic",
               domain=(np.array([-3.0]), np.array([3.0])))


@pytest.fixture(scope="session")
def linear_udf() -> UDF:
    """A 1-D linear UDF: outputs are analytically tractable for Gaussian input."""
    return UDF(lambda x: 2.0 * float(x[0]) + 1.0, dimension=1, name="linear",
               domain=(np.array([0.0]), np.array([10.0])))


@pytest.fixture(scope="session")
def trained_f1_emulator(f1_udf: UDF) -> GPEmulator:
    """An emulator for F1 trained on a moderate design (shared, read-only)."""
    emulator = GPEmulator(f1_udf)
    emulator.train_initial(60, design="random", random_state=0)
    return emulator


@pytest.fixture
def gaussian_2d_input() -> IndependentJoint:
    """A 2-D Gaussian input tuple inside the default [0, 10]^2 domain."""
    return IndependentJoint([Gaussian(mu=4.0, sigma=0.5), Gaussian(mu=6.0, sigma=0.5)])


@pytest.fixture
def gaussian_1d_input() -> Gaussian:
    """A 1-D Gaussian input tuple."""
    return Gaussian(mu=2.0, sigma=0.3)
