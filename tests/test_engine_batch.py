"""Batched execution pipeline: equivalence with the per-tuple path.

The central contract of :class:`repro.engine.batch.BatchExecutor` is that —
under the same seed and the default (deterministic) tuning strategy — it
produces exactly the same output distributions and error bounds as calling
the engine once per tuple, for every strategy and including tuples that go
through the refinement loop or carry a selection predicate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.core.filtering import SelectionPredicate
from repro.core.local_inference import BatchKernelCache, LocalInferenceEngine
from repro.core.olgapro import OLGAPRO
from repro.engine.batch import DEFAULT_BATCH_SIZE, BatchExecutor, iter_batches
from repro.engine.executor import UDFExecutionEngine
from repro.engine.query import Query
from repro.engine.sdss import generate_galaxy_relation
from repro.exceptions import QueryError
from repro.udf.synthetic import reference_function
from repro.workloads.generators import input_stream, workload_for_udf

RTOL = 1e-8

REQUIREMENT = AccuracyRequirement(epsilon=0.15, delta=0.05)


def _paired_runs(strategy, function_name="F1", n_tuples=7, seed=77, stream_seed=3,
                 requirement=REQUIREMENT, batch_size=4, **engine_kwargs):
    """Run the same stream per-tuple and batched on independent twin engines."""
    outputs = {}
    for mode in ("per_tuple", "batched"):
        udf = reference_function(function_name, simulated_eval_time=1e-3)
        engine = UDFExecutionEngine(
            strategy=strategy, requirement=requirement, random_state=seed, **engine_kwargs
        )
        dists = list(
            input_stream(workload_for_udf(udf), n_tuples,
                         random_state=np.random.default_rng(stream_seed))
        )
        if mode == "per_tuple":
            outputs[mode] = [engine.compute(udf, d) for d in dists]
        else:
            outputs[mode] = engine.compute_batch(udf, dists, batch_size=batch_size)
        outputs[mode + "_udf"] = udf
    return outputs


def _assert_outputs_match(per_tuple, batched):
    assert len(per_tuple) == len(batched)
    for i, (a, b) in enumerate(zip(per_tuple, batched)):
        assert np.allclose(a.distribution.samples, b.distribution.samples, rtol=RTOL), i
        assert np.isclose(a.error_bound, b.error_bound, rtol=RTOL), i
        assert a.udf_calls == b.udf_calls, i
        assert a.existence_probability == b.existence_probability, i
        assert a.dropped == b.dropped, i


# ---------------------------------------------------------------------------
# BatchExecutor equivalence, per strategy
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("strategy", ["mc", "gp", "hybrid"])
def test_batch_matches_per_tuple(strategy):
    runs = _paired_runs(strategy)
    _assert_outputs_match(runs["per_tuple"], runs["batched"])
    # Identical UDF cost in both modes: no extra or saved UDF calls.
    assert runs["per_tuple_udf"].call_count == runs["batched_udf"].call_count


def test_batch_matches_per_tuple_under_refinement():
    """A bumpy UDF forces the refinement loop; trajectories must coincide."""
    runs = _paired_runs(
        "gp",
        function_name="F4",
        n_tuples=4,
        n_samples=200,
        max_points_per_tuple=6,
        batch_size=2,
    )
    _assert_outputs_match(runs["per_tuple"], runs["batched"])
    # The workload must actually have exercised refinement for this test to
    # mean anything.
    assert runs["batched_udf"].call_count > 5


def test_batch_matches_across_chunk_boundaries():
    """Equivalence must hold when the stream spans several chunks."""
    runs = _paired_runs("gp", n_tuples=9, batch_size=4)
    _assert_outputs_match(runs["per_tuple"], runs["batched"])


def test_batch_matches_per_tuple_under_speculative_tuning():
    """Speculative k-point refinement is deterministic: same trajectory in
    both pipelines (stable top-k selection, fresh per-tuple inference)."""
    runs = _paired_runs(
        "gp",
        function_name="F4",
        n_tuples=4,
        n_samples=200,
        max_points_per_tuple=8,
        speculative_k=3,
        batch_size=2,
    )
    _assert_outputs_match(runs["per_tuple"], runs["batched"])
    assert runs["per_tuple_udf"].call_count == runs["batched_udf"].call_count
    # The speculative path must actually have fired (blocked updates happened).
    assert runs["batched_udf"].call_count > 5


def test_process_batch_empty_and_single():
    udf = reference_function("F1")
    processor = OLGAPRO(udf, requirement=REQUIREMENT, random_state=1, n_samples=150)
    assert processor.process_batch([]) == []
    dist = next(iter(input_stream(workload_for_udf(udf), 1, random_state=5)))
    [result] = processor.process_batch([dist])
    assert result.n_samples == 150
    assert result.distribution.size == 150


@pytest.mark.parametrize("storage", ["tuple", "columnar"])
def test_empty_relation_yields_empty_outputs_and_zero_phases(storage):
    """A zero-length input (empty relation, or an all-empty column block)
    is a legal batch in both storages: explicit zero phase timings, not an
    absent or partial report."""
    udf = reference_function("F1")
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=1, n_samples=150
    )
    executor = BatchExecutor(engine, batch_size=4, storage=storage)
    assert executor.compute_batch(udf, []) == []
    assert executor.timings.seconds == {
        "sampling": 0.0,
        "inference": 0.0,
        "refinement": 0.0,
    }


def test_process_batch_empty_and_single_columnar():
    """The columnar chunk path handles the degenerate chunk sizes the
    column kernels are most easily off-by-one on: a zero-length chunk and
    a single-tuple chunk (a (1, m, 1) sample block, one-row column arm)."""
    udf = reference_function("F1")
    processors = {}
    results = {}
    for columnar in (False, True):
        processor = OLGAPRO(udf, requirement=REQUIREMENT, random_state=1, n_samples=150)
        assert processor.process_batch([], columnar=columnar) == []
        dist = next(iter(input_stream(workload_for_udf(udf), 1, random_state=5)))
        [result] = processor.process_batch([dist], columnar=columnar)
        assert result.n_samples == 150
        processors[columnar], results[columnar] = processor, result
    assert np.array_equal(
        results[False].distribution.samples, results[True].distribution.samples
    )
    assert results[False].error_bound == results[True].error_bound


def test_single_tuple_columnar_matches_tuple_storage():
    udf = reference_function("F1")
    outputs = {}
    for storage in ("tuple", "columnar"):
        engine = UDFExecutionEngine(
            strategy="gp", requirement=REQUIREMENT, random_state=9, n_samples=150
        )
        dists = list(input_stream(workload_for_udf(udf), 1, random_state=5))
        executor = BatchExecutor(engine, batch_size=4, storage=storage)
        outputs[storage] = executor.compute_batch(udf, dists)
    [ref], [got] = outputs["tuple"], outputs["columnar"]
    assert np.array_equal(ref.distribution.samples, got.distribution.samples)
    assert ref.error_bound == got.error_bound
    assert ref.udf_calls == got.udf_calls


def test_zero_length_column_block_samples_empty():
    """sample_stacked on an empty column returns an empty (0, m, 1) block
    without touching the random stream."""
    from repro.distributions.columns import UncertainColumn, sample_stacked

    column = UncertainColumn(family="gaussian", params=np.empty((0, 2)))
    rng = np.random.default_rng(3)
    before = rng.bit_generator.state
    block = sample_stacked(column, 7, rng)
    assert block.shape == (0, 7, 1)
    assert rng.bit_generator.state == before


# ---------------------------------------------------------------------------
# Filtered (predicate) path
# ---------------------------------------------------------------------------

def test_batch_with_predicate_matches_per_tuple():
    predicate = SelectionPredicate(low=0.0, high=1.0, threshold=0.1)
    outputs = {}
    for mode in ("per_tuple", "batched"):
        udf = reference_function("F1", simulated_eval_time=1e-3)
        engine = UDFExecutionEngine(strategy="gp", requirement=REQUIREMENT,
                                    random_state=7, n_samples=200)
        dists = list(input_stream(workload_for_udf(udf), 6,
                                  random_state=np.random.default_rng(9)))
        if mode == "per_tuple":
            outputs[mode] = [
                engine.compute_with_predicate(udf, d, predicate) for d in dists
            ]
        else:
            executor = BatchExecutor(engine, batch_size=3)
            outputs[mode] = executor.compute_batch_with_predicate(udf, dists, predicate)
    for a, b in zip(outputs["per_tuple"], outputs["batched"]):
        assert a.dropped == b.dropped
        assert np.isclose(a.existence_probability, b.existence_probability, rtol=RTOL)
        if not a.dropped and a.distribution is not None:
            assert np.allclose(a.distribution.samples, b.distribution.samples, rtol=RTOL)


# ---------------------------------------------------------------------------
# Operator / query integration
# ---------------------------------------------------------------------------

def _galage_query_result(batch_size):
    relation = generate_galaxy_relation(8, random_state=21)
    udf = reference_function("F1", simulated_eval_time=1e-4)
    engine = UDFExecutionEngine(strategy="gp", requirement=REQUIREMENT,
                                random_state=13, n_samples=150)
    query = Query(relation).apply_udf(
        udf, ["ra_offset", "dec_offset"], alias="f", batch_size=batch_size
    )
    return query.run(engine)


def test_query_batch_size_matches_default_path():
    plain = _galage_query_result(None)
    batched = _galage_query_result(3)
    assert len(plain) == len(batched)
    for a, b in zip(plain, batched):
        assert np.allclose(a["f"].samples, b["f"].samples, rtol=RTOL)
        assert np.isclose(
            a.annotations["f_error_bound"], b.annotations["f_error_bound"], rtol=RTOL
        )


def test_where_udf_batch_size_matches_default_path():
    results = {}
    for batch_size in (None, 4):
        relation = generate_galaxy_relation(8, random_state=22)
        udf = reference_function("F1", simulated_eval_time=1e-4)
        engine = UDFExecutionEngine(strategy="gp", requirement=REQUIREMENT,
                                    random_state=5, n_samples=200)
        results[batch_size] = (
            Query(relation)
            .where_udf(udf, ["ra_offset", "dec_offset"], alias="f",
                       low=0.0, high=1.5, threshold=0.05, batch_size=batch_size)
            .run(engine)
        )
    plain, batched = results[None], results[4]
    assert len(plain) == len(batched)
    for a, b in zip(plain, batched):
        assert np.isclose(a.existence_probability, b.existence_probability, rtol=RTOL)
        assert np.allclose(a["f"].samples, b["f"].samples, rtol=RTOL)


# ---------------------------------------------------------------------------
# Batch plumbing
# ---------------------------------------------------------------------------

def test_iter_batches_chunks_and_validates():
    assert list(iter_batches(range(7), 3)) == [[0, 1, 2], [3, 4, 5], [6]]
    assert list(iter_batches([], 4)) == []
    with pytest.raises(QueryError):
        list(iter_batches(range(3), 0))


def test_batch_executor_validates_batch_size():
    engine = UDFExecutionEngine(strategy="mc", requirement=REQUIREMENT, random_state=0)
    with pytest.raises(QueryError):
        BatchExecutor(engine, batch_size=0)
    assert BatchExecutor(engine).batch_size == DEFAULT_BATCH_SIZE


def test_batch_executor_records_phase_timings():
    udf = reference_function("F1", simulated_eval_time=1e-4)
    engine = UDFExecutionEngine(strategy="gp", requirement=REQUIREMENT,
                                random_state=3, n_samples=150)
    executor = BatchExecutor(engine, batch_size=4)
    dists = list(input_stream(workload_for_udf(udf), 4,
                              random_state=np.random.default_rng(2)))
    executor.compute_batch(udf, dists)
    assert executor.timings.get("sampling") > 0.0
    assert executor.timings.get("inference") > 0.0
    assert executor.timings.total >= executor.timings.get("inference")


def test_predict_multi_matches_predict(trained_f1_emulator):
    """The multi-query local-inference path reproduces per-tuple inference."""
    emulator = trained_f1_emulator
    rng = np.random.default_rng(17)
    sample_sets = [
        rng.uniform(3, 7, size=(100, 2)) + rng.normal(0, 0.2, size=(1, 2))
        for _ in range(5)
    ]
    engine = LocalInferenceEngine(
        gamma_threshold=0.05 * float(np.ptp(emulator.gp.y_train))
    )
    per = [engine.predict(emulator.gp, emulator.index, s) for s in sample_sets]
    multi = engine.predict_multi(emulator.gp, emulator.index, sample_sets)
    for a, b in zip(per, multi):
        assert np.array_equal(a.selected_indices, b.selected_indices)
        assert np.allclose(a.means, b.means, rtol=RTOL)
        assert np.allclose(a.stds, b.stds, rtol=RTOL, atol=1e-12)


def test_batch_kernel_cache_tracks_model_growth(trained_f1_emulator):
    """Appending training points keeps cached blocks equal to fresh kernels."""
    from repro.gp.regression import GaussianProcess

    source = trained_f1_emulator.gp
    gp = GaussianProcess(kernel=source.kernel.clone(),
                         noise_variance=source.noise_variance)
    gp.fit(source.X_train[:40], source.y_train[:40])
    rng = np.random.default_rng(8)
    samples = rng.uniform(3, 7, size=(50, 2))
    cache = BatchKernelCache(gp, [samples])
    before = cache.rows(gp, 0)
    assert before.shape == (50, 40)
    gp.add_point(source.X_train[40], float(source.y_train[40]))
    after = cache.rows(gp, 0)
    assert after.shape == (50, 41)
    fresh = gp.kernel(samples, gp.X_train)
    assert np.allclose(after, fresh, rtol=1e-12)
    assert cache.K_train.shape == (41, 41)
    assert np.allclose(cache.K_train, gp.kernel(gp.X_train, gp.X_train), rtol=1e-12)
