"""Unit tests for GP hyperparameter training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GPError
from repro.gp.kernels import SquaredExponential
from repro.gp.regression import GaussianProcess
from repro.gp.training import (
    fit_hyperparameters,
    gradient_step,
    initial_hyperparameters,
    newton_step,
)


def smooth_data(n=30, lengthscale=1.5, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, size=(n, 1))
    y = np.sin(X / lengthscale).ravel() * 2.0
    return X, y


class TestInitialHyperparameters:
    def test_signal_matches_target_std(self):
        X, y = smooth_data()
        theta = initial_hyperparameters(X, y)
        assert np.exp(theta[0]) == pytest.approx(np.std(y), rel=1e-6)

    def test_lengthscale_is_median_distance(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0.0, 1.0, 0.0])
        theta = initial_hyperparameters(X, y)
        assert np.exp(theta[1]) == pytest.approx(1.0)

    def test_degenerate_targets_fall_back(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([3.0, 3.0])
        theta = initial_hyperparameters(X, y)
        assert np.exp(theta[0]) == pytest.approx(1.0)

    def test_single_point(self):
        theta = initial_hyperparameters(np.array([[1.0]]), np.array([2.0]))
        assert np.all(np.isfinite(theta))


class TestFitHyperparameters:
    def test_likelihood_never_decreases(self):
        X, y = smooth_data(seed=1)
        gp = GaussianProcess(kernel=SquaredExponential(signal_std=0.3, lengthscale=0.2))
        gp.fit(X, y)
        before = gp.log_marginal_likelihood()
        result = fit_hyperparameters(gp)
        assert result.log_likelihood >= before - 1e-9
        assert gp.log_marginal_likelihood() == pytest.approx(result.log_likelihood)

    def test_recovers_sensible_lengthscale(self):
        X, y = smooth_data(n=60, lengthscale=1.5, seed=2)
        gp = GaussianProcess(kernel=SquaredExponential(signal_std=1.0, lengthscale=0.1))
        gp.fit(X, y)
        fit_hyperparameters(gp)
        # The sinusoid's period is ~9.4; a fitted lengthscale far below 0.3 or
        # above 30 would indicate a broken optimiser.
        assert 0.3 < gp.kernel.lengthscale < 30.0

    def test_gradient_ascent_variant(self):
        X, y = smooth_data(n=25, seed=3)
        gp = GaussianProcess(kernel=SquaredExponential(signal_std=0.5, lengthscale=0.5))
        gp.fit(X, y)
        before = gp.log_marginal_likelihood()
        result = fit_hyperparameters(gp, method="gradient", max_iterations=50)
        assert result.log_likelihood >= before - 1e-9

    def test_unknown_method_rejected(self):
        X, y = smooth_data(n=10)
        gp = GaussianProcess().fit(X, y)
        with pytest.raises(GPError):
            fit_hyperparameters(gp, method="adam")

    def test_untrained_gp_rejected(self):
        with pytest.raises(GPError):
            fit_hyperparameters(GaussianProcess())


class TestSingleSteps:
    def test_gradient_step_moves_uphill(self):
        X, y = smooth_data(n=20, seed=4)
        gp = GaussianProcess(kernel=SquaredExponential(signal_std=0.3, lengthscale=0.3))
        gp.fit(X, y)
        before = gp.log_marginal_likelihood()
        proposed = gradient_step(gp, learning_rate=0.01)
        gp.set_hyperparameters(proposed)
        assert gp.log_marginal_likelihood() > before

    def test_newton_step_is_clipped(self):
        X, y = smooth_data(n=20, seed=5)
        gp = GaussianProcess(kernel=SquaredExponential(signal_std=0.1, lengthscale=0.1))
        gp.fit(X, y)
        proposed = newton_step(gp, max_step=2.0)
        assert np.all(np.abs(proposed - gp.kernel.theta) <= 2.0 + 1e-12)

    def test_newton_step_near_optimum_is_small(self):
        X, y = smooth_data(n=40, seed=6)
        gp = GaussianProcess().fit(X, y)
        fit_hyperparameters(gp)
        proposed = newton_step(gp)
        # At (near) the MLE the Newton step should propose only a modest move;
        # the optimum may sit on a data-driven bound, in which case the
        # one-sided gradient keeps the step from being exactly zero.
        assert np.linalg.norm(proposed - gp.kernel.theta) < 1.0
        # Applying the proposed step must not dramatically improve the
        # likelihood (we were already essentially at the constrained optimum).
        before = gp.log_marginal_likelihood()
        gp.set_hyperparameters(np.clip(proposed, -10, 10))
        after = gp.log_marginal_likelihood()
        assert after <= before + max(3.0, 0.1 * abs(before))

    def test_steps_do_not_modify_gp(self):
        X, y = smooth_data(n=15, seed=7)
        gp = GaussianProcess().fit(X, y)
        theta_before = gp.kernel.theta.copy()
        gradient_step(gp)
        newton_step(gp)
        assert np.allclose(gp.kernel.theta, theta_before)
