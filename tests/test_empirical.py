"""Unit tests for empirical distributions (ECDFs) and truncation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions.empirical import (
    EmpiricalDistribution,
    ecdf_difference_sup,
)
from repro.exceptions import EmptySampleError


class TestEmpiricalDistribution:
    def test_requires_samples(self):
        with pytest.raises(EmptySampleError):
            EmpiricalDistribution(np.array([]))

    def test_non_finite_samples_dropped(self):
        dist = EmpiricalDistribution(np.array([1.0, np.nan, 2.0, np.inf]))
        assert dist.size == 2

    def test_all_non_finite_raises(self):
        with pytest.raises(EmptySampleError):
            EmpiricalDistribution(np.array([np.nan, np.inf]))

    def test_cdf_step_values(self):
        dist = EmpiricalDistribution(np.array([1.0, 2.0, 3.0, 4.0]))
        assert dist.cdf(np.asarray(0.0)) == 0.0
        assert dist.cdf(np.asarray(1.0)) == 0.25
        assert dist.cdf(np.asarray(2.5)) == 0.5
        assert dist.cdf(np.asarray(4.0)) == 1.0

    def test_cdf_vectorised(self):
        dist = EmpiricalDistribution(np.arange(10, dtype=float))
        values = dist.cdf(np.array([-1.0, 4.5, 100.0]))
        assert np.allclose(values, [0.0, 0.5, 1.0])

    def test_ppf_returns_order_statistics(self):
        dist = EmpiricalDistribution(np.array([10.0, 20.0, 30.0, 40.0]))
        assert dist.ppf(np.asarray(0.25)) == 10.0
        assert dist.ppf(np.asarray(1.0)) == 40.0

    def test_ppf_out_of_range_rejected(self):
        dist = EmpiricalDistribution(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            dist.ppf(np.asarray(1.5))

    def test_mean_and_variance(self):
        dist = EmpiricalDistribution(np.array([2.0, 4.0, 6.0]))
        assert dist.mean()[0] == pytest.approx(4.0)
        assert dist.variance() == pytest.approx(np.var([2.0, 4.0, 6.0]))

    def test_interval_probability_inclusive(self):
        dist = EmpiricalDistribution(np.array([1.0, 2.0, 3.0, 4.0]))
        assert dist.interval_probability(2.0, 3.0) == pytest.approx(0.5)
        assert dist.interval_probability(0.0, 10.0) == pytest.approx(1.0)

    def test_interval_probability_invalid(self):
        dist = EmpiricalDistribution(np.array([1.0]))
        with pytest.raises(ValueError):
            dist.interval_probability(2.0, 1.0)

    def test_support(self):
        dist = EmpiricalDistribution(np.array([5.0, -1.0, 3.0]))
        assert dist.support == (-1.0, 5.0)

    def test_resampling_stays_in_support(self, rng):
        dist = EmpiricalDistribution(np.array([1.0, 2.0, 3.0]))
        samples = dist.sample(100, random_state=rng)
        assert set(np.unique(samples)).issubset({1.0, 2.0, 3.0})

    def test_pdf_is_nonnegative_and_normalised(self):
        dist = EmpiricalDistribution(np.random.default_rng(0).normal(size=400))
        grid = np.linspace(-6, 6, 2001)
        pdf = dist.pdf(grid)
        assert np.all(pdf >= 0)
        assert np.trapezoid(pdf, grid) == pytest.approx(1.0, abs=0.02)

    def test_histogram_density(self):
        dist = EmpiricalDistribution(np.random.default_rng(1).normal(size=500))
        densities, edges = dist.histogram(bins=20)
        widths = np.diff(edges)
        assert np.sum(densities * widths) == pytest.approx(1.0, abs=1e-9)

    def test_histogram_invalid_bins(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution(np.array([1.0])).histogram(bins=0)


class TestTruncation:
    def test_truncate_returns_existence_probability(self):
        dist = EmpiricalDistribution(np.arange(10, dtype=float))
        result = dist.truncate(0.0, 4.0)
        assert result.existence_probability == pytest.approx(0.5)
        assert result.distribution is not None
        assert result.distribution.size == 5

    def test_truncate_to_empty_interval(self):
        dist = EmpiricalDistribution(np.array([1.0, 2.0]))
        result = dist.truncate(10.0, 20.0)
        assert result.existence_probability == 0.0
        assert result.distribution is None

    def test_truncate_invalid_interval(self):
        dist = EmpiricalDistribution(np.array([1.0]))
        with pytest.raises(ValueError):
            dist.truncate(3.0, 2.0)

    def test_truncated_support_inside_interval(self):
        dist = EmpiricalDistribution(np.linspace(0, 10, 101))
        result = dist.truncate(2.0, 3.0)
        lo, hi = result.distribution.support
        assert lo >= 2.0 and hi <= 3.0


class TestEcdfDifference:
    def test_identical_distributions(self):
        samples = np.array([1.0, 2.0, 3.0])
        a = EmpiricalDistribution(samples)
        b = EmpiricalDistribution(samples)
        assert ecdf_difference_sup(a, b) == 0.0

    def test_disjoint_distributions(self):
        a = EmpiricalDistribution(np.array([0.0, 1.0]))
        b = EmpiricalDistribution(np.array([10.0, 11.0]))
        assert ecdf_difference_sup(a, b) == pytest.approx(1.0)

    def test_symmetry(self):
        a = EmpiricalDistribution(np.array([0.0, 1.0, 2.0]))
        b = EmpiricalDistribution(np.array([0.5, 1.5, 2.5, 3.5]))
        assert ecdf_difference_sup(a, b) == pytest.approx(ecdf_difference_sup(b, a))
