"""Unit tests for the from-scratch R-tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import IndexError_
from repro.index.bounding_box import BoundingBox
from repro.index.rtree import RTree


def brute_force_within_distance(points: np.ndarray, box: BoundingBox, radius: float) -> set[int]:
    """Reference implementation for search_within_distance."""
    result = set()
    for i, p in enumerate(points):
        if box.min_distance_to(p) <= radius:
            result.add(i)
    return result


class TestBasics:
    def test_empty_tree(self):
        tree = RTree(dimension=2)
        assert len(tree) == 0
        assert tree.all_payloads() == []
        assert tree.nearest(np.array([0.0, 0.0])) == []

    def test_insert_and_len(self, rng):
        tree = RTree(dimension=2)
        points = rng.uniform(0, 10, size=(50, 2))
        tree.bulk_load(points)
        assert len(tree) == 50
        assert sorted(tree.all_payloads()) == list(range(50))

    def test_wrong_dimension_rejected(self):
        tree = RTree(dimension=2)
        with pytest.raises(IndexError_):
            tree.insert(np.array([1.0, 2.0, 3.0]), 0)

    def test_invalid_configuration(self):
        with pytest.raises(IndexError_):
            RTree(dimension=0)
        with pytest.raises(IndexError_):
            RTree(dimension=2, max_entries=3)
        with pytest.raises(IndexError_):
            RTree(dimension=2, max_entries=8, min_entries=5)

    def test_height_grows_with_size(self, rng):
        tree = RTree(dimension=2, max_entries=4)
        assert tree.height() == 1
        tree.bulk_load(rng.uniform(0, 10, size=(100, 2)))
        assert tree.height() >= 3

    def test_invariants_after_many_inserts(self, rng):
        tree = RTree(dimension=3, max_entries=6)
        tree.bulk_load(rng.uniform(-5, 5, size=(200, 3)))
        tree.check_invariants()


class TestSearch:
    def test_box_search_matches_brute_force(self, rng):
        points = rng.uniform(0, 10, size=(120, 2))
        tree = RTree(dimension=2)
        tree.bulk_load(points)
        query = BoundingBox(np.array([2.0, 3.0]), np.array([6.0, 7.0]))
        expected = {i for i, p in enumerate(points) if query.contains_point(p)}
        assert set(tree.search_box(query)) == expected

    def test_distance_search_matches_brute_force(self, rng):
        points = rng.uniform(0, 10, size=(150, 2))
        tree = RTree(dimension=2)
        tree.bulk_load(points)
        query = BoundingBox(np.array([4.0, 4.0]), np.array([5.0, 5.0]))
        for radius in (0.0, 0.5, 2.0, 20.0):
            expected = brute_force_within_distance(points, query, radius)
            assert set(tree.search_within_distance(query, radius)) == expected

    def test_distance_search_negative_radius_rejected(self):
        tree = RTree(dimension=2)
        tree.insert(np.array([0.0, 0.0]), 0)
        with pytest.raises(IndexError_):
            tree.search_within_distance(BoundingBox.from_point(np.zeros(2)), -1.0)

    def test_search_with_radius_covering_everything(self, rng):
        points = rng.uniform(0, 1, size=(30, 2))
        tree = RTree(dimension=2)
        tree.bulk_load(points)
        box = BoundingBox.from_point(np.array([0.5, 0.5]))
        assert sorted(tree.search_within_distance(box, 10.0)) == list(range(30))


class TestNearest:
    def test_nearest_single(self, rng):
        points = rng.uniform(0, 10, size=(80, 2))
        tree = RTree(dimension=2)
        tree.bulk_load(points)
        query = np.array([5.0, 5.0])
        expected = int(np.argmin(np.linalg.norm(points - query, axis=1)))
        assert tree.nearest(query, k=1) == [expected]

    def test_nearest_k_ordering(self, rng):
        points = rng.uniform(0, 10, size=(60, 2))
        tree = RTree(dimension=2)
        tree.bulk_load(points)
        query = np.array([2.0, 8.0])
        found = tree.nearest(query, k=5)
        expected = list(np.argsort(np.linalg.norm(points - query, axis=1))[:5])
        assert found == expected

    def test_nearest_invalid_k(self):
        tree = RTree(dimension=1)
        tree.insert(np.array([0.0]), 0)
        with pytest.raises(IndexError_):
            tree.nearest(np.array([0.0]), k=0)

    def test_nearest_k_larger_than_size(self, rng):
        tree = RTree(dimension=1)
        tree.bulk_load(rng.uniform(0, 1, size=(3, 1)))
        assert len(tree.nearest(np.array([0.5]), k=10)) == 3


class TestPayloads:
    def test_custom_payloads(self):
        tree = RTree(dimension=1)
        tree.bulk_load(np.array([[0.0], [1.0], [2.0]]), payloads=[10, 20, 30])
        box = BoundingBox(np.array([0.5]), np.array([2.5]))
        assert sorted(tree.search_box(box)) == [20, 30]

    def test_duplicate_points_allowed(self):
        tree = RTree(dimension=2)
        for i in range(10):
            tree.insert(np.array([1.0, 1.0]), i)
        box = BoundingBox.from_point(np.array([1.0, 1.0]))
        assert sorted(tree.search_box(box)) == list(range(10))
