"""Property-based tests (hypothesis) for the approximation metrics."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.metrics import (
    discrepancy,
    ks_distance,
    lambda_discrepancy,
    lambda_discrepancy_naive,
)
from repro.distributions.empirical import EmpiricalDistribution

finite_floats = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)

sample_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=40),
    elements=finite_floats,
)


@st.composite
def two_ecdfs(draw):
    a = EmpiricalDistribution(draw(sample_arrays))
    b = EmpiricalDistribution(draw(sample_arrays))
    return a, b


class TestMetricAxioms:
    @given(two_ecdfs())
    @settings(max_examples=60, deadline=None)
    def test_values_in_unit_interval(self, pair):
        a, b = pair
        for value in (ks_distance(a, b), discrepancy(a, b), lambda_discrepancy(a, b, 1.0)):
            assert -1e-12 <= value <= 1.0 + 1e-12

    @given(two_ecdfs())
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, pair):
        a, b = pair
        assert ks_distance(a, b) == ks_distance(b, a)
        assert discrepancy(a, b) == discrepancy(b, a)

    @given(sample_arrays)
    @settings(max_examples=60, deadline=None)
    def test_identity_of_indiscernibles(self, samples):
        dist = EmpiricalDistribution(samples)
        assert ks_distance(dist, dist) == 0.0
        assert discrepancy(dist, dist) == 0.0

    @given(two_ecdfs())
    @settings(max_examples=60, deadline=None)
    def test_ks_discrepancy_sandwich(self, pair):
        # KS <= D <= 2 KS (stated right after Definition 2 in the paper).
        a, b = pair
        ks = ks_distance(a, b)
        d = discrepancy(a, b)
        assert ks - 1e-12 <= d <= 2 * ks + 1e-12

    @given(two_ecdfs(), st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_lambda_discrepancy_below_discrepancy(self, pair, lam):
        a, b = pair
        assert lambda_discrepancy(a, b, lam) <= discrepancy(a, b) + 1e-12

    @given(two_ecdfs(), st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_efficient_lambda_discrepancy_matches_naive(self, pair, lam):
        a, b = pair
        fast = lambda_discrepancy(a, b, lam)
        slow = lambda_discrepancy_naive(a, b, lam)
        assert abs(fast - slow) < 1e-9


class TestTriangleInequality:
    @given(sample_arrays, sample_arrays, sample_arrays)
    @settings(max_examples=40, deadline=None)
    def test_ks_triangle(self, xs, ys, zs):
        a, b, c = (EmpiricalDistribution(arr) for arr in (xs, ys, zs))
        assert ks_distance(a, c) <= ks_distance(a, b) + ks_distance(b, c) + 1e-12

    @given(sample_arrays, sample_arrays, sample_arrays)
    @settings(max_examples=40, deadline=None)
    def test_discrepancy_triangle(self, xs, ys, zs):
        # The triangle inequality underlies Theorem 4.1's error combination.
        a, b, c = (EmpiricalDistribution(arr) for arr in (xs, ys, zs))
        assert discrepancy(a, c) <= discrepancy(a, b) + discrepancy(b, c) + 1e-12

    @given(sample_arrays, sample_arrays, sample_arrays, st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_lambda_discrepancy_triangle(self, xs, ys, zs, lam):
        a, b, c = (EmpiricalDistribution(arr) for arr in (xs, ys, zs))
        assert lambda_discrepancy(a, c, lam) <= (
            lambda_discrepancy(a, b, lam) + lambda_discrepancy(b, c, lam) + 1e-12
        )
