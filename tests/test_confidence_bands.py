"""Unit tests for simultaneous confidence bands (Euler-characteristic method)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.core.confidence_bands import (
    band_z_value,
    expected_euler_characteristic,
    lipschitz_killing_curvatures,
)
from repro.exceptions import GPError
from repro.gp.kernels import SquaredExponential
from repro.gp.regression import GaussianProcess
from repro.index.bounding_box import BoundingBox


def unit_box(d: int, side: float = 1.0) -> BoundingBox:
    return BoundingBox(np.zeros(d), np.full(d, side))


class TestLipschitzKilling:
    def test_one_dimensional_interval(self):
        curvatures = lipschitz_killing_curvatures(unit_box(1, 3.0))
        assert np.allclose(curvatures, [1.0, 3.0])

    def test_rectangle(self):
        box = BoundingBox(np.zeros(2), np.array([2.0, 3.0]))
        curvatures = lipschitz_killing_curvatures(box)
        assert np.allclose(curvatures, [1.0, 5.0, 6.0])

    def test_cube(self):
        curvatures = lipschitz_killing_curvatures(unit_box(3, 2.0))
        assert np.allclose(curvatures, [1.0, 6.0, 12.0, 8.0])


class TestExpectedEulerCharacteristic:
    def test_reduces_to_gaussian_tail_for_tiny_domain(self):
        box = unit_box(1, 1e-9)
        value = expected_euler_characteristic(2.0, box, second_spectral_moment=1.0)
        assert value == pytest.approx(stats.norm.sf(2.0), rel=1e-4)

    def test_decreasing_in_z(self):
        box = unit_box(2, 5.0)
        values = [expected_euler_characteristic(z, box, 1.0) for z in (1.0, 2.0, 3.0, 4.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_increasing_in_domain_size(self):
        small = expected_euler_characteristic(2.5, unit_box(1, 1.0), 1.0)
        large = expected_euler_characteristic(2.5, unit_box(1, 10.0), 1.0)
        assert large > small

    def test_increasing_in_spectral_moment(self):
        box = unit_box(1, 5.0)
        smooth = expected_euler_characteristic(2.5, box, 0.1)
        rough = expected_euler_characteristic(2.5, box, 10.0)
        assert rough > smooth

    def test_invalid_inputs(self):
        with pytest.raises(GPError):
            expected_euler_characteristic(0.0, unit_box(1), 1.0)
        with pytest.raises(GPError):
            expected_euler_characteristic(2.0, unit_box(1), 0.0)


class TestBandCalibration:
    def test_euler_band_wider_than_pointwise(self):
        kernel = SquaredExponential(signal_std=1.0, lengthscale=0.5)
        box = unit_box(2, 10.0)
        euler = band_z_value(kernel, box, alpha=0.05, method="euler")
        pointwise = band_z_value(kernel, box, alpha=0.05, method="pointwise")
        assert euler.z_value >= pointwise.z_value
        assert pointwise.z_value == pytest.approx(1.96, abs=0.01)

    def test_band_widens_for_rougher_kernels(self):
        box = unit_box(2, 10.0)
        smooth = band_z_value(SquaredExponential(lengthscale=3.0), box, method="euler")
        rough = band_z_value(SquaredExponential(lengthscale=0.3), box, method="euler")
        assert rough.z_value > smooth.z_value

    def test_band_widens_as_alpha_shrinks(self):
        kernel = SquaredExponential(lengthscale=1.0)
        box = unit_box(1, 10.0)
        loose = band_z_value(kernel, box, alpha=0.2, method="euler")
        tight = band_z_value(kernel, box, alpha=0.01, method="euler")
        assert tight.z_value > loose.z_value

    def test_bonferroni_requires_points(self):
        kernel = SquaredExponential()
        with pytest.raises(GPError):
            band_z_value(kernel, unit_box(1), method="bonferroni")
        band = band_z_value(kernel, unit_box(1), method="bonferroni", n_points=1000)
        assert band.z_value > 3.0

    def test_invalid_alpha_and_method(self):
        kernel = SquaredExponential()
        with pytest.raises(GPError):
            band_z_value(kernel, unit_box(1), alpha=0.0)
        with pytest.raises(GPError):
            band_z_value(kernel, unit_box(1), method="magic")

    def test_envelope_construction(self):
        band = band_z_value(SquaredExponential(), unit_box(1), method="pointwise")
        means = np.array([0.0, 1.0])
        stds = np.array([1.0, 2.0])
        lower, upper = band.envelope(means, stds)
        assert np.all(lower < means) and np.all(upper > means)
        assert np.allclose(upper - means, band.z_value * stds)

    def test_bonferroni_band_contains_posterior_samples(self):
        # Empirical validation on the discrete evaluation grid: the union-bound
        # band must contain posterior sample paths at least (1 - alpha) of the
        # time, which is exactly what the error-bound machinery relies on.
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 10, size=(25, 1))
        y = np.sin(X).ravel()
        gp = GaussianProcess(kernel=SquaredExponential(signal_std=1.0, lengthscale=1.0))
        gp.fit(X, y)
        X_test = np.linspace(0, 10, 200).reshape(-1, 1)
        mean, std = gp.predict(X_test)
        band = band_z_value(
            gp.kernel,
            BoundingBox.from_points(X_test),
            alpha=0.1,
            method="bonferroni",
            n_points=X_test.shape[0],
        )
        samples = gp.sample_posterior(X_test, n_samples=200, random_state=1)
        # Ignore locations where the posterior std is at numerical-noise level
        # (right on top of training points): there the z-score is dominated by
        # the jitter used when factorising the posterior covariance.
        informative = std > 1e-3
        z_scores = np.abs(samples[:, informative] - mean[informative]) / std[informative]
        violation_rate = np.mean(np.any(z_scores > band.z_value, axis=1))
        assert violation_rate <= 0.1 + 0.05

    def test_euler_band_coverage_is_reasonable(self):
        # The Euler-characteristic band uses the *prior* spectral moment as an
        # approximation for the standardised posterior process (the paper's
        # approach); it should still contain most posterior sample paths.
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 10, size=(25, 1))
        y = np.sin(X).ravel()
        gp = GaussianProcess(kernel=SquaredExponential(signal_std=1.0, lengthscale=1.0))
        gp.fit(X, y)
        X_test = np.linspace(0, 10, 200).reshape(-1, 1)
        mean, std = gp.predict(X_test)
        band = band_z_value(gp.kernel, BoundingBox.from_points(X_test), alpha=0.1, method="euler")
        samples = gp.sample_posterior(X_test, n_samples=200, random_state=3)
        informative = std > 1e-3
        z_scores = np.abs(samples[:, informative] - mean[informative]) / std[informative]
        violation_rate = np.mean(np.any(z_scores > band.z_value, axis=1))
        assert violation_rate <= 0.5
