"""Unit tests for selection predicates and Hoeffding-based filtering."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.filtering import (
    FilterDecision,
    SelectionPredicate,
    filtering_decision,
    hoeffding_half_width,
    upper_bound_decision,
)
from repro.exceptions import AccuracyError


class TestSelectionPredicate:
    def test_validation(self):
        with pytest.raises(AccuracyError):
            SelectionPredicate(low=2.0, high=1.0)
        with pytest.raises(AccuracyError):
            SelectionPredicate(low=0.0, high=1.0, threshold=1.5)

    def test_indicator(self):
        predicate = SelectionPredicate(low=0.0, high=1.0)
        values = np.array([-0.5, 0.0, 0.5, 1.0, 1.5])
        assert np.allclose(predicate.indicator(values), [0, 1, 1, 1, 0])

    def test_selectivity(self):
        predicate = SelectionPredicate(low=0.0, high=1.0)
        assert predicate.selectivity(np.array([0.5, 2.0, 0.7, -1.0])) == pytest.approx(0.5)
        assert predicate.selectivity(np.array([])) == 0.0


class TestHoeffding:
    def test_formula(self):
        assert hoeffding_half_width(100, 0.05) == pytest.approx(
            math.sqrt(math.log(2 / 0.05) / 200)
        )

    def test_shrinks_with_samples(self):
        assert hoeffding_half_width(1000, 0.05) < hoeffding_half_width(100, 0.05)

    def test_validation(self):
        with pytest.raises(AccuracyError):
            hoeffding_half_width(0, 0.05)
        with pytest.raises(AccuracyError):
            hoeffding_half_width(10, 0.0)

    def test_coverage_empirically(self, rng):
        # The (1 - delta) interval should contain the true Bernoulli mean in
        # (well) over 1 - delta of repeated experiments.
        true_p = 0.3
        delta = 0.1
        n = 200
        covered = 0
        trials = 300
        for _ in range(trials):
            samples = rng.binomial(1, true_p, size=n)
            estimate = samples.mean()
            half = hoeffding_half_width(n, delta)
            covered += int(abs(estimate - true_p) <= half)
        assert covered / trials > 1 - delta


class TestFilteringDecision:
    def setup_method(self):
        self.predicate = SelectionPredicate(low=0.0, high=1.0, threshold=0.1)

    def test_drop_when_clearly_below(self):
        indicators = np.zeros(500)
        decision = filtering_decision(indicators, self.predicate, delta=0.05)
        assert decision.action == "drop"
        assert decision.upper < 0.1

    def test_keep_when_clearly_above(self):
        indicators = np.ones(500)
        decision = filtering_decision(indicators, self.predicate, delta=0.05)
        assert decision.action == "keep"
        assert decision.lower >= 0.1

    def test_undecided_with_few_samples(self):
        indicators = np.array([0.0, 1.0, 0.0])
        decision = filtering_decision(indicators, self.predicate, delta=0.05)
        assert decision.action == "undecided"

    def test_empty_samples(self):
        decision = filtering_decision(np.array([]), self.predicate, delta=0.05)
        assert decision.action == "undecided"
        assert decision.n_samples == 0

    def test_interval_clipping(self):
        decision = FilterDecision(action="keep", estimate=0.99, half_width=0.1, n_samples=10)
        assert decision.upper == 1.0
        decision = FilterDecision(action="drop", estimate=0.01, half_width=0.1, n_samples=10)
        assert decision.lower == 0.0


class TestUpperBoundDecision:
    def test_drop_when_rho_upper_small(self):
        predicate = SelectionPredicate(low=0.0, high=1.0, threshold=0.2)
        decision = upper_bound_decision(
            rho_upper=0.05, rho_estimate=0.02, predicate=predicate, n_samples=2000, delta=0.05
        )
        assert decision.action == "drop"

    def test_keep_when_estimate_clearly_above(self):
        predicate = SelectionPredicate(low=0.0, high=1.0, threshold=0.2)
        decision = upper_bound_decision(
            rho_upper=0.9, rho_estimate=0.8, predicate=predicate, n_samples=2000, delta=0.05
        )
        assert decision.action == "keep"

    def test_undecided_in_between(self):
        predicate = SelectionPredicate(low=0.0, high=1.0, threshold=0.2)
        decision = upper_bound_decision(
            rho_upper=0.3, rho_estimate=0.19, predicate=predicate, n_samples=50, delta=0.05
        )
        assert decision.action == "undecided"
