"""Cross-tuple pipelined refinement: identity, determinism, and the seams.

Contracts under test (see :mod:`repro.engine.pipeline`):

* ``pipeline_lookahead=1`` (scheduler disengaged) is bit-identical to the
  serial :class:`~repro.engine.batch.BatchExecutor` path under the same
  seed;
* at any ``lookahead > 1`` the committed trajectory — outputs, bounds, GP
  state, per-tuple consumed calls — is bit-identical to the within-tuple
  async path (:class:`~repro.engine.async_exec.AsyncRefinementExecutor`)
  at the same window: prefetching changes who pays for an evaluation,
  never the result;
* runs are repeatable under a fixed seed, with deterministic total charge
  counts, and invariant to completion order (point-hashed latency jitter);
* degenerate inputs (empty batches) return cleanly with zero-phase
  timings;
* the knob composes through ``Query`` / ``compute_pipelined`` /
  ``ParallelExecutor``, including the ``merge="refit-threshold"``
  fence/rollback interaction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.engine import (
    AsyncRefinementExecutor,
    BatchExecutor,
    ParallelExecutor,
    PipelinedExecutor,
    Query,
    UDFExecutionEngine,
    generate_galaxy_relation,
)
from repro.engine.parallel import _emulator_of
from repro.exceptions import QueryError
from repro.udf.synthetic import reference_function
from repro.workloads.generators import input_stream, workload_for_udf

REQUIREMENT = AccuracyRequirement(epsilon=0.15, delta=0.05)


def _fixture(
    n_tuples=8,
    seed=31,
    stream_seed=4,
    n_samples=200,
    real_eval_time=0.0,
    real_eval_jitter=0.0,
    function_name="F1",
    **engine_kwargs,
):
    """Fresh (udf, engine, distributions) triple with deterministic seeds."""
    udf = reference_function(
        function_name,
        simulated_eval_time=1e-3,
        real_eval_time=real_eval_time,
        real_eval_jitter=real_eval_jitter,
    )
    engine = UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=seed,
        n_samples=n_samples, **engine_kwargs,
    )
    dists = list(
        input_stream(
            workload_for_udf(udf), n_tuples, random_state=np.random.default_rng(stream_seed)
        )
    )
    return udf, engine, dists


def _assert_identical_outputs(a_outputs, b_outputs):
    """Bitwise comparison of output distributions and claimed error bounds."""
    assert len(a_outputs) == len(b_outputs)
    for i, (a, b) in enumerate(zip(a_outputs, b_outputs)):
        assert np.array_equal(a.distribution.samples, b.distribution.samples), i
        assert a.error_bound == b.error_bound, i


def _gp_state(engine, udf):
    """Fingerprint of the model state after a run (or None when cold)."""
    emulator = _emulator_of(engine, udf)
    if emulator is None:
        return None
    gp = emulator.gp
    return (gp.X_train.tobytes(), gp.y_train.tobytes(), gp.kernel.theta.tobytes())


# ---------------------------------------------------------------------------
# Identity contracts
# ---------------------------------------------------------------------------

def test_lookahead_1_is_bit_identical_to_serial_batched():
    udf_a, engine_a, dists_a = _fixture()
    serial = BatchExecutor(engine_a, batch_size=4).compute_batch(udf_a, dists_a)
    udf_b, engine_b, dists_b = _fixture()
    piped = PipelinedExecutor(engine_b, lookahead=1, batch_size=4).compute_batch(
        udf_b, dists_b
    )
    _assert_identical_outputs(serial, piped)
    assert udf_a.call_count == udf_b.call_count
    assert _gp_state(engine_a, udf_a) == _gp_state(engine_b, udf_b)


@pytest.mark.parametrize("lookahead", [2, 3])
def test_pipelined_trajectory_matches_async_at_same_window(lookahead):
    udf_a, engine_a, dists_a = _fixture()
    asynced = AsyncRefinementExecutor(engine_a, inflight=4, batch_size=4).compute_batch(
        udf_a, dists_a
    )
    udf_b, engine_b, dists_b = _fixture()
    executor = PipelinedExecutor(engine_b, lookahead=lookahead, inflight=4, batch_size=4)
    piped = executor.compute_batch(udf_b, dists_b)
    _assert_identical_outputs(asynced, piped)
    assert _gp_state(engine_a, udf_a) == _gp_state(engine_b, udf_b)
    # Per-tuple consumed calls match the async accounting; the pipeline's
    # extra speculative charges appear only in the UDF total and the
    # executor's waste gauge.  The total can also come in *under*
    # async + waste: the pool dedupes points that distinct tuples both
    # evaluate, which the async path pays for twice.
    assert [a.udf_calls for a in asynced] == [b.udf_calls for b in piped]
    assert udf_b.call_count <= udf_a.call_count + executor.last_wasted_calls


def test_pipelined_run_is_repeatable_with_deterministic_charges():
    def run():
        udf, engine, dists = _fixture()
        executor = PipelinedExecutor(engine, lookahead=3, inflight=4, batch_size=4)
        outputs = executor.compute_batch(udf, dists)
        return outputs, udf.call_count, executor

    outputs_a, calls_a, executor_a = run()
    outputs_b, calls_b, executor_b = run()
    _assert_identical_outputs(outputs_a, outputs_b)
    # Total charges are deterministic (the pool dedupes the union of
    # requested keys); the prefetched/wasted gauges are diagnostics whose
    # attribution of a contested key (walk and commit racing to submit it)
    # may vary by a hair, so they are only sanity-bounded here.
    assert calls_a == calls_b
    for executor in (executor_a, executor_b):
        assert 0 <= executor.last_wasted_calls <= executor.last_speculative_calls


def test_completion_order_invariance_under_latency_jitter():
    """Point-hashed latency jitter permutes completion order, not results."""
    def run(jitter):
        udf, engine, dists = _fixture(
            n_tuples=4, real_eval_time=2e-3, real_eval_jitter=jitter, n_samples=120
        )
        outputs = PipelinedExecutor(
            engine, lookahead=3, inflight=4, batch_size=4
        ).compute_batch(udf, dists)
        return outputs, udf.call_count

    smooth, calls_smooth = run(0.0)
    jittered, calls_jittered = run(0.9)
    _assert_identical_outputs(smooth, jittered)
    assert calls_smooth == calls_jittered


def test_speculative_k_accounting_matches_batched_on_non_engaged_path():
    """Per-tuple udf_calls stays exact when speculative_k rolls back.

    With ``speculative_k > 1`` and ``inflight=1`` the pipeline's window
    driver stands down and the stock speculative loop runs; a rolled-back
    block still *paid* for its k evaluations, so the pipeline's consumed
    counter must report the same per-tuple numbers as the batched path's
    call-count deltas — not the committed ``points_added``.
    """
    udf_a, engine_a, dists_a = _fixture(function_name="F4", speculative_k=4)
    batched = BatchExecutor(engine_a, batch_size=4).compute_batch(udf_a, dists_a)
    udf_b, engine_b, dists_b = _fixture(function_name="F4", speculative_k=4)
    executor = PipelinedExecutor(engine_b, lookahead=3, inflight=1, batch_size=4)
    piped = executor.compute_batch(udf_b, dists_b)
    _assert_identical_outputs(batched, piped)
    assert [a.udf_calls for a in batched] == [b.udf_calls for b in piped]
    # The speculative block loop consults the value pool too: commits reuse
    # prefetched evaluations, so the total never exceeds the batched calls
    # plus the (deterministic) speculative waste.
    assert udf_b.call_count <= udf_a.call_count + executor.last_wasted_calls


def test_mc_strategy_delegates_to_the_batched_path():
    def run(lookahead):
        udf = reference_function("F1", simulated_eval_time=1e-3)
        engine = UDFExecutionEngine(strategy="mc", requirement=REQUIREMENT, random_state=11)
        dists = list(
            input_stream(workload_for_udf(udf), 5, random_state=np.random.default_rng(2))
        )
        if lookahead is None:
            return BatchExecutor(engine, batch_size=3).compute_batch(udf, dists)
        return PipelinedExecutor(engine, lookahead=lookahead, batch_size=3).compute_batch(
            udf, dists
        )

    _assert_identical_outputs(run(None), run(4))


def test_predicate_path_matches_async_predicate_path():
    from repro.core.filtering import SelectionPredicate

    predicate = SelectionPredicate(low=0.0, high=1.5, threshold=0.1)
    udf_a, engine_a, dists_a = _fixture(stream_seed=9)
    asynced = AsyncRefinementExecutor(
        engine_a, inflight=4, batch_size=3
    ).compute_batch_with_predicate(udf_a, dists_a, predicate)
    udf_b, engine_b, dists_b = _fixture(stream_seed=9)
    piped = PipelinedExecutor(
        engine_b, lookahead=4, inflight=4, batch_size=3
    ).compute_batch_with_predicate(udf_b, dists_b, predicate)
    assert len(asynced) == len(piped)
    for a, b in zip(asynced, piped):
        assert a.dropped == b.dropped
        if a.distribution is not None:
            assert np.array_equal(a.distribution.samples, b.distribution.samples)


def test_predicate_path_defaults_to_async_window_at_deep_lookahead():
    """lookahead>1 with inflight unset keeps within-tuple overlap engaged.

    The user opted into pipelining; on the predicate path only the
    cross-tuple half stands down, so the delegate must be the async
    executor at the scheduler's default window — not the serial path.
    """
    from repro.core.filtering import SelectionPredicate
    from repro.engine import DEFAULT_ASYNC_INFLIGHT

    predicate = SelectionPredicate(low=0.0, high=1.5, threshold=0.1)
    udf_a, engine_a, dists_a = _fixture(stream_seed=9)
    asynced = AsyncRefinementExecutor(
        engine_a, inflight=DEFAULT_ASYNC_INFLIGHT, batch_size=3
    ).compute_batch_with_predicate(udf_a, dists_a, predicate)
    udf_b, engine_b, dists_b = _fixture(stream_seed=9)
    piped = PipelinedExecutor(
        engine_b, lookahead=4, batch_size=3
    ).compute_batch_with_predicate(udf_b, dists_b, predicate)
    assert len(asynced) == len(piped)
    for a, b in zip(asynced, piped):
        assert a.dropped == b.dropped
        if a.distribution is not None:
            assert np.array_equal(a.distribution.samples, b.distribution.samples)


# ---------------------------------------------------------------------------
# Degenerate inputs
# ---------------------------------------------------------------------------

def test_empty_batch_returns_empty_with_zero_phase_timings():
    udf, engine, _ = _fixture()
    executor = PipelinedExecutor(engine, lookahead=4, inflight=4)
    assert executor.compute_batch(udf, []) == []
    for phase in ("sampling", "inference", "refinement", "speculation"):
        assert phase in executor.timings.seconds
        assert executor.timings.get(phase) == 0.0
    assert executor.last_speculative_calls == 0
    assert executor.last_wasted_calls == 0


def test_single_tuple_batch_runs_pipelined():
    udf, engine, dists = _fixture(n_tuples=1)
    outputs = PipelinedExecutor(engine, lookahead=4, inflight=4).compute_batch(
        udf, dists[:1]
    )
    assert len(outputs) == 1
    assert outputs[0].distribution.samples.size > 0


def test_configuration_validation():
    _, engine, _ = _fixture()
    with pytest.raises(QueryError):
        PipelinedExecutor(engine, lookahead=0)
    with pytest.raises(QueryError):
        PipelinedExecutor(engine, lookahead=2, inflight=0)
    with pytest.raises(QueryError):
        PipelinedExecutor(engine, lookahead=2, batch_size=0)


def test_nested_pipelined_execution_is_rejected():
    udf, engine, dists = _fixture(n_tuples=2)
    executor = PipelinedExecutor(engine, lookahead=2, inflight=4, batch_size=2)
    olgapro = executor._olgapro_for(udf)
    olgapro.evaluation_driver = object()
    try:
        with pytest.raises(QueryError, match="driver"):
            executor.compute_batch(udf, dists)
    finally:
        olgapro.evaluation_driver = None


# ---------------------------------------------------------------------------
# Plumbing: engine, query builder, parallel composition
# ---------------------------------------------------------------------------

def test_compute_pipelined_convenience_wrapper():
    udf_a, engine_a, dists_a = _fixture(n_tuples=4)
    direct = PipelinedExecutor(engine_a, lookahead=3, inflight=4, batch_size=4).compute_batch(
        udf_a, dists_a
    )
    udf_b, engine_b, dists_b = _fixture(n_tuples=4)
    wrapped = engine_b.compute_pipelined(
        udf_b, dists_b, lookahead=3, inflight=4, batch_size=4
    )
    _assert_identical_outputs(direct, wrapped)


def test_query_pipeline_lookahead_1_matches_batched():
    def run(pipeline_lookahead):
        relation = generate_galaxy_relation(6, random_state=21)
        udf = reference_function("F1", simulated_eval_time=1e-4)
        engine = UDFExecutionEngine(
            strategy="gp", requirement=REQUIREMENT, random_state=13, n_samples=150
        )
        return (
            Query(relation)
            .apply_udf(udf, ["ra_offset", "dec_offset"], alias="f",
                       batch_size=3, pipeline_lookahead=pipeline_lookahead)
            .run(engine)
        )

    batched = run(None)
    piped = run(1)
    assert len(batched) == len(piped)
    for a, b in zip(batched, piped):
        assert np.array_equal(a["f"].samples, b["f"].samples)


def test_query_pipeline_lookahead_runs_and_is_deterministic():
    def run():
        relation = generate_galaxy_relation(6, random_state=22)
        udf = reference_function("F1", simulated_eval_time=1e-4)
        engine = UDFExecutionEngine(
            strategy="gp", requirement=REQUIREMENT, random_state=5, n_samples=150
        )
        return (
            Query(relation)
            .apply_udf(udf, ["ra_offset", "dec_offset"], alias="f",
                       batch_size=6, pipeline_lookahead=3, async_inflight=4)
            .run(engine)
        )

    a, b = run(), run()
    assert len(a) == len(b) == 6
    for ra, rb in zip(a, b):
        assert np.array_equal(ra["f"].samples, rb["f"].samples)


def test_parallel_workers_1_with_pipeline_matches_pipelined_executor():
    udf_a, engine_a, dists_a = _fixture()
    direct = PipelinedExecutor(engine_a, lookahead=3, inflight=4, batch_size=4).compute_batch(
        udf_a, dists_a
    )
    udf_b, engine_b, dists_b = _fixture()
    sharded = ParallelExecutor(
        engine_b, workers=1, batch_size=4, async_inflight=4, pipeline_lookahead=3
    ).compute_batch(udf_b, dists_b)
    _assert_identical_outputs(direct, sharded)


def test_parallel_shards_honor_pipeline_lookahead():
    def sharded(workers):
        udf, engine, dists = _fixture(n_tuples=8)
        executor = ParallelExecutor(
            engine, workers=workers, batch_size=4, merge="discard", seed=17,
            async_inflight=4, pipeline_lookahead=3,
        )
        return executor.compute_batch(udf, dists)

    # Worker-count invariance must survive the composed pipelined shards.
    _assert_identical_outputs(sharded(2), sharded(4))


def test_parallel_validates_pipeline_lookahead():
    _, engine, _ = _fixture()
    with pytest.raises(QueryError):
        ParallelExecutor(engine, pipeline_lookahead=0)


# ---------------------------------------------------------------------------
# Fence / merge interaction (refit-threshold)
# ---------------------------------------------------------------------------

def test_refit_threshold_merge_counts_pipelined_worker_points_once():
    """Stale-fence re-inference must not double-absorb toward the refit count.

    Every worker runs the pipelined scheduler: its speculative stages
    re-run inference when fences go stale, and its walks absorb points into
    *private* views.  Only the points genuinely committed to the worker's
    live model may flow back through the ``"refit-threshold"`` merge — so
    the parent's merged-point count must equal its model growth exactly,
    with no duplicates.
    """
    udf, engine, dists = _fixture(n_tuples=8)
    executor = ParallelExecutor(
        engine, workers=2, batch_size=4, merge="refit-threshold", seed=5,
        async_inflight=4, pipeline_lookahead=3,
    )
    executor.compute_batch(udf, dists)
    emulator = _emulator_of(engine, udf)
    assert emulator is not None
    # Merged points == parent model growth (the parent started cold).
    assert emulator.n_training == executor.last_merged_points
    # No row entered the parent model twice.
    X = emulator.gp.X_train
    assert len({row.tobytes() for row in X}) == X.shape[0]
    # The refit actually fired: enough merged points crossed the threshold.
    assert executor.last_merged_points >= executor.refit_threshold
    assert emulator._trained_hyperparameters


def test_refit_threshold_serial_pipeline_does_not_double_count_refit_points():
    """workers=1 + pipeline: model growth equals the merged-point count."""
    udf, engine, dists = _fixture(n_tuples=6)
    executor = ParallelExecutor(
        engine, workers=1, batch_size=3, merge="refit-threshold",
        async_inflight=4, pipeline_lookahead=3,
    )
    executor.compute_batch(udf, dists)
    emulator = _emulator_of(engine, udf)
    assert emulator.n_training == executor.last_merged_points


# ---------------------------------------------------------------------------
# shared_refresh: prefetch-walk fidelity on a cold stream
# ---------------------------------------------------------------------------

def test_shared_refresh_cuts_walk_mispredictions_on_a_cold_stream():
    """``merge="shared"``'s pipeline leg: refreshed walks mispredict less.

    On a cold stream every commit moves the model, so a walk fenced at
    submission time prefetches candidates a no-longer-existing model would
    have refined.  With ``shared_refresh`` the walk re-fences to the live
    model between windows — re-ranking its candidates and stopping outright
    once the refreshed bound fits the budget — so the speculative pool's
    wasted (prefetched-but-never-consumed) evaluations must drop.  The
    committed results are bit-identical either way: walks only feed the
    deduplicated prefetch pool.
    """
    def run(shared_refresh):
        udf, engine, dists = _fixture(function_name="F4", real_eval_time=2e-3)
        executor = PipelinedExecutor(
            engine, lookahead=4, inflight=4, batch_size=8,
            shared_refresh=shared_refresh,
        )
        outputs = executor.compute_batch(udf, dists)
        return outputs, executor

    outputs_off, executor_off = run(False)
    outputs_on, executor_on = run(True)
    _assert_identical_outputs(outputs_off, outputs_on)
    # The mechanism engaged: the cold stream outran fences repeatedly.
    assert executor_off.last_walk_refreshes == 0
    assert executor_on.last_walk_refreshes > 0
    # ... and fewer prefetches were mispredicted.
    assert executor_on.last_wasted_calls < executor_off.last_wasted_calls
