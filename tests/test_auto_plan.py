"""The profile-driven auto-planner and the ``plan="auto"`` spelling.

Contracts under test (see :meth:`repro.engine.plan.ExecutionPlan.auto` and
:mod:`repro.udf.catalog`):

* the knob table — a *neutral* profile resolves to the serial batched
  path; a moderate-latency UDF gets an overlap window; a slow
  async-capable UDF gets the asyncio transport, a wider window,
  cross-tuple lookahead and speculative evaluation (the non-default-knob
  acceptance criterion); a declared ``backend`` wins the transport;
* ``plan="auto"`` is *bit-identical* to spelling the resolved
  :class:`ExecutionPlan` explicitly — on the engine entry point, the
  query builder (including name-based catalog UDFs) and across workload
  families — because ``auto`` only ever *selects* a plan, never changes
  evaluation semantics;
* ``is_auto_plan`` accepts exactly the ``"auto"`` spelling and rejects
  every other string with a typed :class:`~repro.exceptions.PlanError`;
* ``speculative_k`` stays a processor-construction knob: with an engine
  in hand the planner mirrors the engine's configured value (or omits the
  knob) so the resolved plan always validates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accuracy import AccuracyRequirement
from repro.engine import (
    AUTO_PLAN,
    BatchExecutor,
    ExecutionPlan,
    Query,
    is_auto_plan,
)
from repro.engine.executor import UDFExecutionEngine
from repro.engine.sdss import generate_galaxy_relation
from repro.exceptions import PlanError
from repro.udf.base import UDF
from repro.udf.catalog import UDFProfile
from repro.udf.synthetic import async_service_udf, reference_function
from repro.workloads.generators import input_stream, workload_for_udf

REQUIREMENT = AccuracyRequirement(epsilon=0.15, delta=0.05)


def _engine(seed=7, **kwargs):
    return UDFExecutionEngine(
        strategy="gp", requirement=REQUIREMENT, random_state=seed,
        n_samples=120, **kwargs
    )


def _dists(udf, family="gaussian", n=5, seed=3):
    spec = workload_for_udf(udf, family=family)
    return list(input_stream(spec, n, random_state=np.random.default_rng(seed)))


def _neutral_udf():
    return UDF(lambda x: float(np.sum(x)), dimension=2, name="cheap",
               domain=(np.array([1.0, 1.0]), np.array([9.0, 9.0])))


# ---------------------------------------------------------------------------
# The "auto" spelling
# ---------------------------------------------------------------------------

def test_is_auto_plan_accepts_only_the_auto_string():
    assert is_auto_plan(AUTO_PLAN)
    assert is_auto_plan("auto")
    assert not is_auto_plan(None)
    assert not is_auto_plan(ExecutionPlan())
    with pytest.raises(PlanError, match="auto"):
        is_auto_plan("Auto")
    with pytest.raises(PlanError, match="auto"):
        is_auto_plan("fast")


def test_unknown_string_plan_rejected_everywhere():
    engine = _engine()
    with pytest.raises(PlanError):
        UDFExecutionEngine(strategy="gp", plan="turbo")
    with pytest.raises(PlanError):
        Query(generate_galaxy_relation(4, random_state=1)).apply_udf(
            "galage", ["redshift"], alias="g", plan="turbo"
        )
    with pytest.raises(PlanError):
        engine.compute_with_plan(_neutral_udf(), _dists(_neutral_udf(), n=1),
                                 plan="turbo")


# ---------------------------------------------------------------------------
# The knob table
# ---------------------------------------------------------------------------

def test_neutral_profile_resolves_to_the_serial_batched_path():
    plan = ExecutionPlan.auto(_neutral_udf())
    assert plan == ExecutionPlan(batch_size=32)
    executor = plan.resolve(_engine())
    assert type(executor) is BatchExecutor


def test_moderate_blocking_udf_gets_a_thread_window():
    profile = UDFProfile(name="svc", dimension=2, per_call_seconds=2e-3)
    plan = ExecutionPlan.auto(profile)
    assert plan.async_inflight == 4
    assert plan.transport == "threads"
    assert plan.pipeline_lookahead is None


def test_slow_async_udf_gets_nondefault_overlap_knobs():
    # The acceptance criterion: a declared high-latency, async-capable UDF
    # auto-plans to non-default knobs on every overlap axis.
    udf = async_service_udf("F2", latency=0.02)
    plan = ExecutionPlan.auto(udf)
    assert plan.transport == "asyncio"
    assert plan.async_inflight == 8
    assert plan.pipeline_lookahead == 4
    assert plan.speculative_k == 2
    assert plan != ExecutionPlan(batch_size=32)


def test_declared_backend_wins_the_transport():
    profile = UDFProfile(name="svc", dimension=2, per_call_seconds=0.02,
                         backend="subprocess")
    plan = ExecutionPlan.auto(profile)
    assert plan.transport == "subprocess"
    assert plan.async_inflight == 8
    # A negligible-cost UDF pinned to an out-of-process backend still needs
    # a (minimal) window so the transport is actually engaged.
    cheap = UDFProfile(name="svc", dimension=2, backend="subprocess")
    assert ExecutionPlan.auto(cheap).async_inflight == 1
    # ... while a serial backend cannot carry a window at all.
    pinned_serial = UDFProfile(name="svc", dimension=2, per_call_seconds=0.02,
                               backend="serial")
    serial_plan = ExecutionPlan.auto(pinned_serial)
    assert serial_plan.transport == "serial"
    assert serial_plan.async_inflight is None


def test_relation_size_caps_batch_and_gates_lookahead():
    udf = async_service_udf("F2", latency=0.02)
    small = ExecutionPlan.auto(udf, relation_size=3)
    assert small.batch_size == 3
    assert small.pipeline_lookahead is None  # nothing to look ahead across
    large = ExecutionPlan.auto(udf, relation_size=100)
    assert large.batch_size == 32
    assert large.pipeline_lookahead == 4


def test_speculative_k_mirrors_the_engine_configuration():
    udf = async_service_udf("F2", latency=0.02)
    configured = _engine(speculative_k=3)
    assert ExecutionPlan.auto(udf, engine=configured).speculative_k == 3
    unconfigured = _engine()
    assert ExecutionPlan.auto(udf, engine=unconfigured).speculative_k is None
    # ... and the mirrored plan actually resolves against that engine.
    ExecutionPlan.auto(udf, engine=configured).resolve(configured)
    ExecutionPlan.auto(udf, engine=unconfigured).resolve(unconfigured)


def test_auto_accepts_name_profile_or_udf():
    by_profile = ExecutionPlan.auto(UDFProfile(name="galage", dimension=1))
    by_name = ExecutionPlan.auto("galage")
    from repro.udf.catalog import default_catalog
    by_udf = ExecutionPlan.auto(default_catalog().get("galage"))
    assert by_profile == by_name == by_udf


# ---------------------------------------------------------------------------
# Bit-identity: "auto" is exactly the explicit plan it selects
# ---------------------------------------------------------------------------

def _assert_results_identical(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert np.array_equal(left.distribution.samples,
                              right.distribution.samples)
        assert left.error_bound == right.error_bound


@pytest.mark.parametrize("family", ["gaussian", "gamma"])
@pytest.mark.parametrize("latency", [0.0, 2e-3])
def test_auto_is_bit_identical_to_the_explicit_plan(family, latency):
    def run(plan):
        udf = async_service_udf("F4", latency=latency)
        engine = _engine()
        dists = _dists(udf, family=family, n=4, seed=4)
        return engine.compute_with_plan(udf, dists, plan=plan)

    probe = async_service_udf("F4", latency=latency)
    explicit = ExecutionPlan.auto(probe, relation_size=4, engine=_engine())
    _assert_results_identical(run("auto"), run(explicit))


def test_auto_is_bit_identical_on_the_query_builder_with_a_catalog_name():
    def run(plan):
        relation = generate_galaxy_relation(6, random_state=11)
        return (
            Query(relation)
            .apply_udf("galage", ["redshift"], alias="galage", plan=plan)
            .run(_engine())
        )

    from repro.udf.catalog import default_catalog
    explicit = ExecutionPlan.auto(default_catalog().profile("galage"),
                                  relation_size=6, engine=_engine())
    auto_result = run("auto")
    explicit_result = run(explicit)
    assert len(auto_result) == len(explicit_result)
    assert [t["galage"].samples.tolist() for t in auto_result] == [
        t["galage"].samples.tolist() for t in explicit_result
    ]


@pytest.mark.parametrize("transport", ["threads", "asyncio", "subprocess"])
def test_auto_with_a_pinned_backend_is_bit_identical_to_serial(transport):
    # A declared backend changes *where* calls run, never what they
    # compute: the auto plan under any backend matches the neutral serial
    # batched run bit for bit.
    def run(plan):
        udf = async_service_udf("F4", latency=1e-4)
        engine = _engine()
        dists = _dists(udf, n=4, seed=6)
        return engine.compute_with_plan(udf, dists, plan=plan)

    baseline = run(ExecutionPlan(batch_size=32))
    probe = async_service_udf("F4", latency=1e-4)
    from repro.udf.catalog import UDFCatalog
    catalog = UDFCatalog()
    catalog.register(probe, backend=transport)
    pinned = ExecutionPlan.auto(catalog.profile(probe.name))
    assert pinned.transport == transport
    _assert_results_identical(baseline, run(pinned))
