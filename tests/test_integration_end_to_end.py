"""End-to-end integration tests across modules.

These exercise the full pipelines the paper's evaluation uses: the GP online
algorithm versus the MC baseline on the same workload (accuracy and UDF-call
comparison), the experiment harness, and the astrophysics case-study path
from the SDSS-like relation through the query engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.experiments_astro import astro_case_study_table
from repro.core.accuracy import AccuracyRequirement
from repro.core.mc_baseline import monte_carlo_output
from repro.core.metrics import ks_distance, lambda_discrepancy
from repro.core.olgapro import OLGAPRO
from repro.distributions.continuous import Gaussian
from repro.distributions.multivariate import IndependentJoint
from repro.udf.synthetic import reference_function
from repro.workloads.generators import (
    WorkloadSpec,
    input_stream,
    true_output_distribution,
    workload_for_udf,
)


class TestGPvsMCOnSyntheticWorkload:
    def test_both_approaches_agree_with_ground_truth(self):
        udf = reference_function("F1")
        requirement = AccuracyRequirement(epsilon=0.15, delta=0.05)
        processor = OLGAPRO(
            udf, requirement, initial_training_points=10, n_samples=600, random_state=0
        )
        spec = workload_for_udf(udf)
        for dist in input_stream(spec, 4, random_state=1):
            truth = true_output_distribution(udf, dist, 15000, random_state=2)
            gp_result = processor.process(dist)
            mc_result = monte_carlo_output(
                udf.with_simulated_eval_time(0.0), dist, n_samples=600, random_state=3
            )
            lam = processor.lambda_value()
            gp_error = lambda_discrepancy(gp_result.distribution, truth, lam)
            mc_error = lambda_discrepancy(mc_result.distribution, truth, lam)
            assert gp_error <= requirement.epsilon + 0.08
            assert mc_error <= requirement.epsilon + 0.08

    def test_gp_uses_far_fewer_udf_calls_once_warm(self):
        udf = reference_function("F2")
        requirement = AccuracyRequirement(epsilon=0.15, delta=0.05)
        processor = OLGAPRO(
            udf, requirement, initial_training_points=10, n_samples=500, random_state=0
        )
        spec = workload_for_udf(udf)
        stream = list(input_stream(spec, 8, random_state=4))
        gp_calls = []
        for dist in stream:
            gp_calls.append(processor.process(dist).udf_calls)
        mc_calls_per_tuple = 500
        # After warm-up, GP tuples should need well under 10% of MC's calls.
        assert np.mean(gp_calls[-4:]) < 0.1 * mc_calls_per_tuple

    def test_gp_charged_time_insensitive_to_eval_time_after_warmup(self):
        requirement = AccuracyRequirement(epsilon=0.15, delta=0.05)
        times = {}
        for eval_time in (0.0, 0.05):
            udf = reference_function("F1", simulated_eval_time=eval_time)
            processor = OLGAPRO(
                udf, requirement, initial_training_points=8, n_samples=400, random_state=0
            )
            spec = workload_for_udf(udf)
            stream = list(input_stream(spec, 6, random_state=5))
            charged = [processor.process(dist).charged_time for dist in stream]
            times[eval_time] = np.mean(charged[-3:])
        # Late-stream per-tuple cost should barely depend on the UDF cost
        # (the paper's "GP is almost insensitive to function evaluation time"):
        # the increase must be a small fraction of what MC would pay for the
        # same evaluation time (400 calls x 0.05 s = 20 s per tuple).
        mc_cost_per_tuple = 400 * 0.05
        assert times[0.05] - times[0.0] < 0.1 * mc_cost_per_tuple


class TestExperimentHarnessSmoke:
    def test_astro_case_study_table_shape(self):
        table = astro_case_study_table(n_probes=5)
        assert {row["function"] for row in table.rows} == {"AngDist", "GalAge", "ComoveVol"}
        assert all(row["eval_time_ms"] > 0 for row in table.rows)
        text = table.to_text()
        assert "GalAge" in text


class TestNonGaussianInputs:
    @pytest.mark.parametrize("family", ["exponential", "gamma"])
    def test_olgapro_handles_other_input_families(self, family):
        udf = reference_function("F1")
        processor = OLGAPRO(
            udf,
            AccuracyRequirement(epsilon=0.2, delta=0.1),
            initial_training_points=8,
            n_samples=400,
            random_state=0,
        )
        spec = WorkloadSpec(dimension=2, family=family)  # type: ignore[arg-type]
        for dist in input_stream(spec, 2, random_state=6):
            result = processor.process(dist)
            assert result.distribution.size == 400

    def test_correlated_gaussian_input(self):
        from repro.distributions.multivariate import MultivariateGaussian

        udf = reference_function("F1")
        processor = OLGAPRO(
            udf,
            AccuracyRequirement(epsilon=0.2, delta=0.1),
            initial_training_points=8,
            n_samples=400,
            random_state=0,
        )
        dist = MultivariateGaussian([4.0, 6.0], [[0.25, 0.2], [0.2, 0.25]])
        result = processor.process(dist)
        truth = true_output_distribution(udf, dist, 10000, random_state=7)
        assert ks_distance(result.distribution, truth) < 0.15


class TestOutputNonGaussianity:
    def test_angdist_output_is_not_gaussian(self):
        # Fig. 6(a): the output distribution of AngDist on uncertain positions
        # is visibly non-Gaussian (it is a distance, bounded below by zero and
        # right-skewed), which is why returning only mean/variance is not enough.
        from scipy import stats

        from repro.udf.astro import angdist_udf

        udf = angdist_udf()
        # Offsets centred at zero make the separation Rayleigh-like: bounded
        # below by zero and strongly right-skewed.
        input_dist = IndependentJoint([Gaussian(0.0, 0.05), Gaussian(0.0, 0.05)])
        result = monte_carlo_output(udf, input_dist, n_samples=3000, random_state=0)
        samples = result.distribution.samples
        gaussian_fit = stats.norm(loc=samples.mean(), scale=samples.std())
        assert ks_distance(result.distribution, gaussian_fit.cdf) > 0.03
        assert stats.skew(samples) > 0.2
