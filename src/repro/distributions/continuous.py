"""Continuous univariate distributions used to model uncertain attributes.

The paper's default workload uses Gaussian-distributed uncertain attributes
(Section 6.1B) and additionally evaluates exponential and Gamma inputs
(Expt 4).  Each class wraps the corresponding analytic formulas rather than
delegating to ``scipy.stats`` objects at sampling time, keeping the hot
sampling path on ``numpy.random.Generator`` which is considerably faster for
the per-tuple sample counts (thousands) the algorithms require.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy import special, stats

from repro.distributions.base import UnivariateDistribution
from repro.exceptions import DistributionError
from repro.rng import RandomState, as_generator


class Gaussian(UnivariateDistribution):
    """Normal distribution ``N(mu, sigma^2)``."""

    def __init__(self, mu: float, sigma: float):
        if sigma <= 0 or not math.isfinite(sigma):
            raise DistributionError(f"sigma must be positive and finite, got {sigma}")
        if not math.isfinite(mu):
            raise DistributionError(f"mu must be finite, got {mu}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        size = self._validated_size(size)
        rng = as_generator(random_state)
        return rng.normal(self.mu, self.sigma, size=(size, 1))

    def mean(self) -> np.ndarray:
        return np.array([self.mu])

    def variance(self) -> float:
        return self.sigma**2

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        z = (x - self.mu) / self.sigma
        return np.exp(-0.5 * z**2) / (self.sigma * math.sqrt(2 * math.pi))

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return 0.5 * (1.0 + special.erf((x - self.mu) / (self.sigma * math.sqrt(2))))

    def ppf(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        return self.mu + self.sigma * math.sqrt(2) * special.erfinv(2 * q - 1)

    def __repr__(self) -> str:
        return f"Gaussian(mu={self.mu:g}, sigma={self.sigma:g})"


class Uniform(UnivariateDistribution):
    """Uniform distribution on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if not (math.isfinite(low) and math.isfinite(high)):
            raise DistributionError("uniform bounds must be finite")
        if high <= low:
            raise DistributionError(
                f"high ({high}) must exceed low ({low}) for a Uniform distribution"
            )
        self.low = float(low)
        self.high = float(high)

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        size = self._validated_size(size)
        rng = as_generator(random_state)
        return rng.uniform(self.low, self.high, size=(size, 1))

    def mean(self) -> np.ndarray:
        return np.array([(self.low + self.high) / 2.0])

    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        inside = (x >= self.low) & (x <= self.high)
        return np.where(inside, 1.0 / (self.high - self.low), 0.0)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.clip((x - self.low) / (self.high - self.low), 0.0, 1.0)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        return self.low + q * (self.high - self.low)

    def __repr__(self) -> str:
        return f"Uniform(low={self.low:g}, high={self.high:g})"


class Exponential(UnivariateDistribution):
    """Exponential distribution with rate ``rate`` shifted by ``shift``.

    The shift allows placing the distribution inside the synthetic function
    domain ``[0, 10]`` used in the paper's sensitivity experiments.
    """

    def __init__(self, rate: float, shift: float = 0.0):
        if rate <= 0 or not math.isfinite(rate):
            raise DistributionError(f"rate must be positive and finite, got {rate}")
        self.rate = float(rate)
        self.shift = float(shift)

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        size = self._validated_size(size)
        rng = as_generator(random_state)
        return self.shift + rng.exponential(1.0 / self.rate, size=(size, 1))

    def mean(self) -> np.ndarray:
        return np.array([self.shift + 1.0 / self.rate])

    def variance(self) -> float:
        return 1.0 / self.rate**2

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float) - self.shift
        return np.where(x >= 0, self.rate * np.exp(-self.rate * x), 0.0)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float) - self.shift
        return np.where(x >= 0, 1.0 - np.exp(-self.rate * np.maximum(x, 0.0)), 0.0)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        return self.shift - np.log1p(-q) / self.rate

    def __repr__(self) -> str:
        return f"Exponential(rate={self.rate:g}, shift={self.shift:g})"


class Gamma(UnivariateDistribution):
    """Gamma distribution with ``shape`` and ``scale``, optionally shifted."""

    def __init__(self, shape: float, scale: float, shift: float = 0.0):
        if shape <= 0 or scale <= 0:
            raise DistributionError(
                f"shape and scale must be positive, got shape={shape}, scale={scale}"
            )
        self.shape = float(shape)
        self.scale = float(scale)
        self.shift = float(shift)

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        size = self._validated_size(size)
        rng = as_generator(random_state)
        return self.shift + rng.gamma(self.shape, self.scale, size=(size, 1))

    def mean(self) -> np.ndarray:
        return np.array([self.shift + self.shape * self.scale])

    def variance(self) -> float:
        return self.shape * self.scale**2

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float) - self.shift
        return stats.gamma.pdf(x, a=self.shape, scale=self.scale)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float) - self.shift
        return stats.gamma.cdf(x, a=self.shape, scale=self.scale)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        return self.shift + stats.gamma.ppf(q, a=self.shape, scale=self.scale)

    def __repr__(self) -> str:
        return (
            f"Gamma(shape={self.shape:g}, scale={self.scale:g}, shift={self.shift:g})"
        )


class TruncatedGaussian(UnivariateDistribution):
    """Gaussian truncated to ``[low, high]``.

    Used to keep uncertain attributes inside physically meaningful ranges,
    e.g. a redshift that must remain positive.
    """

    def __init__(self, mu: float, sigma: float, low: float, high: float):
        if sigma <= 0:
            raise DistributionError(f"sigma must be positive, got {sigma}")
        if high <= low:
            raise DistributionError(f"high ({high}) must exceed low ({low})")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.low = float(low)
        self.high = float(high)
        self._a = (self.low - self.mu) / self.sigma
        self._b = (self.high - self.mu) / self.sigma
        self._dist = stats.truncnorm(self._a, self._b, loc=self.mu, scale=self.sigma)

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        size = self._validated_size(size)
        rng = as_generator(random_state)
        # Inverse-CDF sampling keeps the draw on our Generator instance.
        u = rng.uniform(0.0, 1.0, size=(size, 1))
        return self._dist.ppf(u)

    def mean(self) -> np.ndarray:
        return np.array([float(self._dist.mean())])

    def variance(self) -> float:
        return float(self._dist.var())

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return self._dist.pdf(np.asarray(x, dtype=float))

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return self._dist.cdf(np.asarray(x, dtype=float))

    def ppf(self, q: np.ndarray) -> np.ndarray:
        return self._dist.ppf(np.asarray(q, dtype=float))

    def __repr__(self) -> str:
        return (
            f"TruncatedGaussian(mu={self.mu:g}, sigma={self.sigma:g}, "
            f"low={self.low:g}, high={self.high:g})"
        )


class GaussianMixture1D(UnivariateDistribution):
    """Univariate Gaussian mixture, useful for multi-modal uncertain inputs."""

    def __init__(
        self,
        means: Sequence[float],
        sigmas: Sequence[float],
        weights: Sequence[float] | None = None,
    ):
        means_arr = np.asarray(means, dtype=float)
        sigmas_arr = np.asarray(sigmas, dtype=float)
        if means_arr.ndim != 1 or means_arr.size == 0:
            raise DistributionError("means must be a non-empty 1-D sequence")
        if sigmas_arr.shape != means_arr.shape:
            raise DistributionError("means and sigmas must have the same length")
        if np.any(sigmas_arr <= 0):
            raise DistributionError("all mixture sigmas must be positive")
        if weights is None:
            weights_arr = np.full(means_arr.size, 1.0 / means_arr.size)
        else:
            weights_arr = np.asarray(weights, dtype=float)
            if weights_arr.shape != means_arr.shape:
                raise DistributionError("weights must match the number of components")
            if np.any(weights_arr < 0):
                raise DistributionError("mixture weights must be non-negative")
            total = weights_arr.sum()
            if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
                if total <= 0:
                    raise DistributionError("mixture weights must sum to a positive value")
                weights_arr = weights_arr / total
        self.means = means_arr
        self.sigmas = sigmas_arr
        self.weights = weights_arr

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        size = self._validated_size(size)
        rng = as_generator(random_state)
        components = rng.choice(self.means.size, size=size, p=self.weights)
        draws = rng.normal(self.means[components], self.sigmas[components])
        return draws.reshape(-1, 1)

    def mean(self) -> np.ndarray:
        return np.array([float(np.dot(self.weights, self.means))])

    def variance(self) -> float:
        overall_mean = float(np.dot(self.weights, self.means))
        second_moment = np.dot(self.weights, self.sigmas**2 + self.means**2)
        return float(second_moment - overall_mean**2)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)[..., None]
        z = (x - self.means) / self.sigmas
        comp = np.exp(-0.5 * z**2) / (self.sigmas * math.sqrt(2 * math.pi))
        return np.sum(self.weights * comp, axis=-1)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)[..., None]
        comp = 0.5 * (1.0 + special.erf((x - self.means) / (self.sigmas * math.sqrt(2))))
        return np.sum(self.weights * comp, axis=-1)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        q = np.atleast_1d(np.asarray(q, dtype=float))
        lo = float(np.min(self.means - 10 * self.sigmas))
        hi = float(np.max(self.means + 10 * self.sigmas))
        out = np.empty_like(q)
        for i, qi in enumerate(q):
            out[i] = _bisect_cdf(self.cdf, qi, lo, hi)
        return out if out.size > 1 else out.reshape(q.shape)

    def __repr__(self) -> str:
        return f"GaussianMixture1D(k={self.means.size})"


def _bisect_cdf(cdf, target: float, lo: float, hi: float, iters: int = 80) -> float:
    """Invert a monotone CDF by bisection on ``[lo, hi]``."""
    if target <= 0.0:
        return lo
    if target >= 1.0:
        return hi
    a, b = lo, hi
    for _ in range(iters):
        mid = 0.5 * (a + b)
        if float(cdf(np.asarray(mid))) < target:
            a = mid
        else:
            b = mid
    return 0.5 * (a + b)
