"""Multivariate and composite distributions for uncertain tuples.

Query processing produces per-tuple random vectors such as
``X = {G1.pos, G1.redshift, G2.pos, G2.redshift}`` (query Q2 in the paper).
:class:`IndependentJoint` composes univariate marginals under independence —
the paper's default assumption — while :class:`MultivariateGaussian` supports
correlated Gaussian attributes, which the paper notes only changes the
sampling step.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distributions.base import Distribution, UnivariateDistribution
from repro.exceptions import DistributionError
from repro.rng import RandomState, as_generator, spawn


class MultivariateGaussian(Distribution):
    """Jointly Gaussian random vector ``N(mu, Sigma)``."""

    def __init__(self, mean: Sequence[float], cov: Sequence[Sequence[float]]):
        mean_arr = np.atleast_1d(np.asarray(mean, dtype=float))
        cov_arr = np.atleast_2d(np.asarray(cov, dtype=float))
        if mean_arr.ndim != 1:
            raise DistributionError("mean must be a 1-D vector")
        d = mean_arr.size
        if cov_arr.shape != (d, d):
            raise DistributionError(
                f"covariance shape {cov_arr.shape} does not match dimension {d}"
            )
        if not np.allclose(cov_arr, cov_arr.T, atol=1e-10):
            raise DistributionError("covariance matrix must be symmetric")
        # Positive semi-definiteness check through eigenvalues; a tiny negative
        # tolerance absorbs floating-point noise.
        eigenvalues = np.linalg.eigvalsh(cov_arr)
        if np.any(eigenvalues < -1e-10):
            raise DistributionError("covariance matrix must be positive semi-definite")
        self._mean = mean_arr
        self._cov = cov_arr
        # Cholesky of a PSD matrix with jitter for degenerate covariances.
        jitter = 0.0
        for _ in range(6):
            try:
                self._chol = np.linalg.cholesky(cov_arr + jitter * np.eye(d))
                break
            except np.linalg.LinAlgError:
                jitter = max(jitter * 10.0, 1e-12)
        else:
            raise DistributionError("could not factorise the covariance matrix")

    @property
    def dimension(self) -> int:
        return self._mean.size

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        size = self._validated_size(size)
        rng = as_generator(random_state)
        z = rng.standard_normal(size=(size, self.dimension))
        return self._mean + z @ self._chol.T

    def mean(self) -> np.ndarray:
        return self._mean.copy()

    def covariance(self) -> np.ndarray:
        """Covariance matrix of the vector."""
        return self._cov.copy()

    def support_box(self, coverage: float = 0.9999) -> tuple[np.ndarray, np.ndarray]:
        # A per-axis Gaussian quantile box; slightly conservative for the
        # joint coverage but adequate for bounding-box construction.
        from scipy import stats

        tail = (1.0 - coverage) / 2.0
        z = stats.norm.ppf(1.0 - tail)
        std = np.sqrt(np.diag(self._cov))
        return self._mean - z * std, self._mean + z * std

    def __repr__(self) -> str:
        return f"MultivariateGaussian(d={self.dimension})"


class IndependentJoint(Distribution):
    """Product distribution of independent (possibly multivariate) components.

    This is how the query engine assembles the per-tuple input vector for a
    UDF: one component per uncertain attribute referenced by the call.
    """

    def __init__(self, components: Sequence[Distribution]):
        if not components:
            raise DistributionError("IndependentJoint requires at least one component")
        self.components = list(components)
        self._dims = [c.dimension for c in self.components]

    @property
    def dimension(self) -> int:
        return int(sum(self._dims))

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        size = self._validated_size(size)
        rng = as_generator(random_state)
        child_rngs = spawn(rng, len(self.components))
        parts = [
            comp.sample(size, random_state=child)
            for comp, child in zip(self.components, child_rngs)
        ]
        return np.hstack(parts)

    def mean(self) -> np.ndarray:
        return np.concatenate([np.atleast_1d(c.mean()) for c in self.components])

    def support_box(self, coverage: float = 0.9999) -> tuple[np.ndarray, np.ndarray]:
        lows, highs = [], []
        for comp in self.components:
            lo, hi = comp.support_box(coverage)
            lows.append(np.atleast_1d(lo))
            highs.append(np.atleast_1d(hi))
        return np.concatenate(lows), np.concatenate(highs)

    def marginal(self, index: int) -> Distribution:
        """Return the ``index``-th component distribution."""
        return self.components[index]

    def __repr__(self) -> str:
        return f"IndependentJoint({self.components!r})"


class PointMass(Distribution):
    """Degenerate distribution representing a certain (non-uncertain) value.

    The query engine uses this for deterministic attributes and constants
    (e.g. the ``AREA`` argument of ``ComoveVol`` in query Q2), so every UDF
    argument can be treated uniformly as a random vector.
    """

    def __init__(self, value: float | Sequence[float]):
        arr = np.atleast_1d(np.asarray(value, dtype=float))
        if arr.ndim != 1:
            raise DistributionError("PointMass value must be a scalar or 1-D vector")
        self.value = arr

    @property
    def dimension(self) -> int:
        return self.value.size

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        size = self._validated_size(size)
        return np.tile(self.value, (size, 1))

    def mean(self) -> np.ndarray:
        return self.value.copy()

    def support_box(self, coverage: float = 0.9999) -> tuple[np.ndarray, np.ndarray]:
        return self.value.copy(), self.value.copy()

    def __repr__(self) -> str:
        return f"PointMass({self.value.tolist()})"


def joint_from_marginals(marginals: Sequence[UnivariateDistribution]) -> IndependentJoint:
    """Convenience constructor for a joint of independent scalar marginals."""
    return IndependentJoint(list(marginals))
