"""Discrete distributions for uncertain attributes.

The framework's problem statement allows the per-tuple joint distribution to
be "either continuous or discrete" (Section 1).  Discrete uncertainty
appears in practice as categorical alternatives with probabilities (x-tuples
in the Trio / MayBMS tradition) or as integer-valued noisy counts.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.distributions.base import Distribution, UnivariateDistribution
from repro.exceptions import DistributionError
from repro.rng import RandomState, as_generator


class Categorical(UnivariateDistribution):
    """Finite discrete distribution over real-valued outcomes.

    ``values[i]`` occurs with probability ``probabilities[i]``.  Values need
    not be sorted; the CDF respects numerical ordering of the outcomes.
    """

    def __init__(self, values: Sequence[float], probabilities: Sequence[float]):
        vals = np.asarray(values, dtype=float)
        probs = np.asarray(probabilities, dtype=float)
        if vals.ndim != 1 or vals.size == 0:
            raise DistributionError("values must be a non-empty 1-D sequence")
        if probs.shape != vals.shape:
            raise DistributionError("probabilities must match values in length")
        if np.any(probs < 0):
            raise DistributionError("probabilities must be non-negative")
        total = probs.sum()
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
            if total <= 0:
                raise DistributionError("probabilities must sum to a positive value")
            probs = probs / total
        order = np.argsort(vals)
        self.values = vals[order]
        self.probabilities = probs[order]
        self._cumulative = np.cumsum(self.probabilities)

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        size = self._validated_size(size)
        rng = as_generator(random_state)
        idx = rng.choice(self.values.size, size=size, p=self.probabilities)
        return self.values[idx].reshape(-1, 1)

    def mean(self) -> np.ndarray:
        return np.array([float(np.dot(self.values, self.probabilities))])

    def variance(self) -> float:
        mu = float(np.dot(self.values, self.probabilities))
        return float(np.dot(self.probabilities, (self.values - mu) ** 2))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        # Probability mass: exact matches get their probability, else zero.
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x, dtype=float)
        for value, prob in zip(self.values, self.probabilities):
            out = out + np.where(np.isclose(x, value), prob, 0.0)
        return out

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        idx = np.searchsorted(self.values, x, side="right")
        cdf_with_zero = np.concatenate([[0.0], self._cumulative])
        return cdf_with_zero[idx]

    def ppf(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        idx = np.searchsorted(self._cumulative, q, side="left")
        idx = np.clip(idx, 0, self.values.size - 1)
        return self.values[idx]

    def __repr__(self) -> str:
        return f"Categorical(k={self.values.size})"


class Poisson(UnivariateDistribution):
    """Poisson distribution with rate ``lam`` (noisy counts)."""

    def __init__(self, lam: float):
        if lam <= 0 or not math.isfinite(lam):
            raise DistributionError(f"lambda must be positive and finite, got {lam}")
        self.lam = float(lam)

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        size = self._validated_size(size)
        rng = as_generator(random_state)
        return rng.poisson(self.lam, size=(size, 1)).astype(float)

    def mean(self) -> np.ndarray:
        return np.array([self.lam])

    def variance(self) -> float:
        return self.lam

    def pdf(self, x: np.ndarray) -> np.ndarray:
        from scipy import stats

        x = np.asarray(x, dtype=float)
        return stats.poisson.pmf(np.round(x), self.lam) * np.isclose(x, np.round(x))

    def cdf(self, x: np.ndarray) -> np.ndarray:
        from scipy import stats

        return stats.poisson.cdf(np.asarray(x, dtype=float), self.lam)

    def ppf(self, q: np.ndarray) -> np.ndarray:
        from scipy import stats

        return stats.poisson.ppf(np.asarray(q, dtype=float), self.lam).astype(float)

    def __repr__(self) -> str:
        return f"Poisson(lam={self.lam:g})"


class TupleAlternatives(Distribution):
    """X-tuple style discrete uncertainty over whole attribute vectors.

    Each alternative is a complete value assignment for the vector; exactly
    one alternative is true, with the given probability.  Probabilities may
    sum to less than one, in which case the remainder is the probability
    that the tuple does not exist (maybe-tuple semantics); sampling then
    returns NaN rows for the non-existent draws so downstream code can
    compute tuple existence probabilities.
    """

    def __init__(self, alternatives: Sequence[Sequence[float]], probabilities: Sequence[float]):
        alts = np.atleast_2d(np.asarray(alternatives, dtype=float))
        probs = np.asarray(probabilities, dtype=float)
        if alts.shape[0] != probs.size:
            raise DistributionError("one probability per alternative is required")
        if np.any(probs < 0):
            raise DistributionError("probabilities must be non-negative")
        total = probs.sum()
        if total > 1.0 + 1e-9:
            raise DistributionError(f"alternative probabilities sum to {total} > 1")
        self.alternatives = alts
        self.probabilities = probs
        self.existence_probability = float(min(total, 1.0))

    @property
    def dimension(self) -> int:
        return self.alternatives.shape[1]

    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        size = self._validated_size(size)
        rng = as_generator(random_state)
        missing_prob = max(0.0, 1.0 - self.probabilities.sum())
        full_probs = np.concatenate([self.probabilities, [missing_prob]])
        full_probs = full_probs / full_probs.sum()
        idx = rng.choice(self.alternatives.shape[0] + 1, size=size, p=full_probs)
        out = np.full((size, self.dimension), np.nan)
        present = idx < self.alternatives.shape[0]
        out[present] = self.alternatives[idx[present]]
        return out

    def mean(self) -> np.ndarray:
        if self.existence_probability == 0:
            return np.full(self.dimension, np.nan)
        weights = self.probabilities / self.probabilities.sum()
        return weights @ self.alternatives

    def __repr__(self) -> str:
        return (
            f"TupleAlternatives(k={self.alternatives.shape[0]}, "
            f"existence={self.existence_probability:g})"
        )
