"""Uncertain-data distribution model (substrate S1).

Public surface:

* univariate continuous marginals — :class:`Gaussian`, :class:`Uniform`,
  :class:`Exponential`, :class:`Gamma`, :class:`TruncatedGaussian`,
  :class:`GaussianMixture1D`
* discrete marginals — :class:`Categorical`, :class:`Poisson`,
  :class:`TupleAlternatives`
* composites — :class:`MultivariateGaussian`, :class:`IndependentJoint`,
  :class:`PointMass`
* empirical outputs — :class:`EmpiricalDistribution`, :class:`TruncationResult`
"""

from repro.distributions.base import Distribution, UnivariateDistribution, ensure_2d
from repro.distributions.continuous import (
    Exponential,
    Gamma,
    Gaussian,
    GaussianMixture1D,
    TruncatedGaussian,
    Uniform,
)
from repro.distributions.discrete import Categorical, Poisson, TupleAlternatives
from repro.distributions.empirical import (
    EmpiricalDistribution,
    TruncationResult,
    ecdf_difference_sup,
)
from repro.distributions.multivariate import (
    IndependentJoint,
    MultivariateGaussian,
    PointMass,
    joint_from_marginals,
)

__all__ = [
    "Distribution",
    "UnivariateDistribution",
    "ensure_2d",
    "Gaussian",
    "Uniform",
    "Exponential",
    "Gamma",
    "TruncatedGaussian",
    "GaussianMixture1D",
    "Categorical",
    "Poisson",
    "TupleAlternatives",
    "MultivariateGaussian",
    "IndependentJoint",
    "PointMass",
    "joint_from_marginals",
    "EmpiricalDistribution",
    "TruncationResult",
    "ecdf_difference_sup",
]
