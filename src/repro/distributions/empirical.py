"""Empirical distributions (ECDFs) over Monte-Carlo output samples.

Both the MC baseline (Algorithm 1) and the GP approach (Algorithm 2) return
the output distribution of ``Y = f(X)`` as an empirical CDF over ``m``
samples.  This module provides that representation along with the operations
query processing needs on it: interval probabilities, truncation by a
selection predicate (which yields the tuple existence probability), quantiles
and density estimates for presentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.distributions.base import UnivariateDistribution
from repro.exceptions import EmptySampleError
from repro.rng import RandomState, as_generator


class EmpiricalDistribution(UnivariateDistribution):
    """Empirical CDF built from scalar output samples.

    ``Pr(Y' <= y) = (1/m) * #{ y_i <= y }`` — exactly the estimator returned
    by Algorithms 1 and 2 in the paper.
    """

    def __init__(self, samples: np.ndarray):
        arr = np.asarray(samples, dtype=float).ravel()
        # The finite-filter copy is skipped when nothing needs dropping —
        # this constructor runs three times per tuple on the envelope path.
        finite = np.isfinite(arr)
        if not finite.all():
            arr = arr[finite]
        if arr.size == 0:
            raise EmptySampleError("cannot build an empirical CDF from zero samples")
        self._sorted = np.sort(arr)

    @classmethod
    def _from_sorted(cls, sorted_samples: np.ndarray) -> "EmpiricalDistribution":
        """Construct from samples already sorted, finite and non-empty.

        The batched envelope path sorts whole ``(B, m)`` blocks along the
        sample axis and builds one ECDF per row; re-running ``np.sort`` on
        an already-sorted row would reproduce it bit-for-bit, so this
        bypass yields exactly the state ``__init__`` would.  Callers must
        guarantee the preconditions (the block paths check finiteness on
        the whole block and fall back per row otherwise).
        """
        instance = cls.__new__(cls)
        instance._sorted = sorted_samples
        return instance

    # -- basic accessors ---------------------------------------------------
    @property
    def samples(self) -> np.ndarray:
        """Sorted copy of the underlying samples."""
        return self._sorted.copy()

    @property
    def size(self) -> int:
        """Number of samples backing the ECDF."""
        return int(self._sorted.size)

    @property
    def support(self) -> tuple[float, float]:
        """Smallest and largest observed sample."""
        return float(self._sorted[0]), float(self._sorted[-1])

    # -- distribution protocol ----------------------------------------------
    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        size = self._validated_size(size)
        rng = as_generator(random_state)
        idx = rng.integers(0, self._sorted.size, size=size)
        return self._sorted[idx].reshape(-1, 1)

    def mean(self) -> np.ndarray:
        return np.array([float(np.mean(self._sorted))])

    def variance(self) -> float:
        return float(np.var(self._sorted))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Gaussian-kernel density estimate (for plotting, e.g. Fig. 6a)."""
        x = np.asarray(x, dtype=float)
        bandwidth = _silverman_bandwidth(self._sorted)
        if bandwidth == 0.0:
            return np.where(np.isclose(x, self._sorted[0]), np.inf, 0.0)
        diffs = (x[..., None] - self._sorted) / bandwidth
        kernel = np.exp(-0.5 * diffs**2) / np.sqrt(2 * np.pi)
        return kernel.mean(axis=-1) / bandwidth

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        counts = np.searchsorted(self._sorted, x, side="right")
        return counts / self._sorted.size

    def ppf(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q > 1)):
            raise ValueError("quantiles must lie in [0, 1]")
        idx = np.ceil(q * self._sorted.size).astype(int) - 1
        idx = np.clip(idx, 0, self._sorted.size - 1)
        return self._sorted[idx]

    # -- query-processing operations -----------------------------------------
    def interval_probability(self, a: float, b: float) -> float:
        """Empirical ``Pr[a <= Y <= b]``."""
        if b < a:
            raise ValueError(f"interval upper bound {b} is below lower bound {a}")
        left = np.searchsorted(self._sorted, a, side="left")
        right = np.searchsorted(self._sorted, b, side="right")
        return (right - left) / self._sorted.size

    def truncate(self, a: float, b: float) -> "TruncationResult":
        """Apply a selection predicate ``Y in [a, b]``.

        Returns the truncated (renormalised) distribution together with the
        tuple existence probability, i.e. the fraction of probability mass
        that satisfies the predicate (Section 2.1 of the paper).
        """
        if b < a:
            raise ValueError(f"interval upper bound {b} is below lower bound {a}")
        mask = (self._sorted >= a) & (self._sorted <= b)
        existence = float(mask.mean())
        truncated = EmpiricalDistribution(self._sorted[mask]) if mask.any() else None
        return TruncationResult(distribution=truncated, existence_probability=existence)

    def histogram(self, bins: int = 50) -> tuple[np.ndarray, np.ndarray]:
        """Normalised histogram (densities, bin_edges) of the samples."""
        if bins <= 0:
            raise ValueError("bins must be positive")
        densities, edges = np.histogram(self._sorted, bins=bins, density=True)
        return densities, edges

    def __repr__(self) -> str:
        lo, hi = self.support
        return f"EmpiricalDistribution(m={self.size}, support=[{lo:.4g}, {hi:.4g}])"


@dataclass(frozen=True)
class TruncationResult:
    """Outcome of applying a selection predicate to an output distribution."""

    #: Renormalised distribution of the output restricted to the predicate
    #: interval, or ``None`` when no sample satisfied the predicate.
    distribution: Optional[EmpiricalDistribution]

    #: Tuple existence probability: the estimated probability that the
    #: predicate holds.
    existence_probability: float


def ecdf_difference_sup(first: EmpiricalDistribution, second: EmpiricalDistribution) -> float:
    """Supremum of ``|F1(y) - F2(y)|`` over all y (two-sample KS statistic).

    Evaluated exactly by scanning the union of jump points of the two step
    functions; used both by the metrics module and the error-bound tests.
    """
    grid = np.union1d(first.samples, second.samples)
    return float(np.max(np.abs(first.cdf(grid) - second.cdf(grid))))


def _silverman_bandwidth(samples: np.ndarray) -> float:
    """Silverman's rule-of-thumb bandwidth for a Gaussian KDE."""
    n = samples.size
    if n < 2:
        return 0.0
    std = np.std(samples, ddof=1)
    iqr = np.subtract(*np.percentile(samples, [75, 25]))
    spread = min(std, iqr / 1.349) if iqr > 0 else std
    if spread == 0.0:
        return 0.0
    return 0.9 * spread * n ** (-0.2)
