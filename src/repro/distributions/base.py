"""Abstract interfaces for uncertain-attribute distributions.

The paper models every uncertain input tuple as a random vector ``X`` with a
joint distribution ``p(x)`` that may be continuous or discrete (Section 1).
The algorithms only ever interact with ``p(x)`` through two operations:

* drawing i.i.d. samples (Monte-Carlo integration, Algorithms 1 and 2), and
* querying simple summary statistics (mean / support) for workload set-up.

:class:`Distribution` captures exactly that contract.  Univariate marginals
additionally expose ``pdf``/``cdf`` so that tests can compare empirical
results against ground truth.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.rng import RandomState, as_generator


class Distribution(abc.ABC):
    """A (possibly multivariate) random vector that can be sampled.

    Subclasses represent the uncertain attributes of a tuple.  The key
    method is :meth:`sample`, which returns an ``(m, d)`` array of ``m``
    i.i.d. draws of the ``d``-dimensional vector.
    """

    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """Number of scalar components of the random vector."""

    @abc.abstractmethod
    def sample(self, size: int, random_state: RandomState = None) -> np.ndarray:
        """Draw ``size`` i.i.d. samples, returned with shape ``(size, dimension)``."""

    @abc.abstractmethod
    def mean(self) -> np.ndarray:
        """Mean vector with shape ``(dimension,)``."""

    def support_box(self, coverage: float = 0.9999) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned box containing at least ``coverage`` probability mass.

        Used by workload generators and by local inference to size bounding
        boxes.  The default implementation estimates the box from a moderate
        Monte-Carlo sample; subclasses with analytic quantiles override it.
        """
        rng = as_generator(0)
        samples = self.sample(4096, random_state=rng)
        lo = np.quantile(samples, (1.0 - coverage) / 2.0, axis=0)
        hi = np.quantile(samples, 1.0 - (1.0 - coverage) / 2.0, axis=0)
        return np.asarray(lo, dtype=float), np.asarray(hi, dtype=float)

    def _validated_size(self, size: int) -> int:
        if size <= 0:
            raise ValueError(f"sample size must be positive, got {size}")
        return int(size)


class UnivariateDistribution(Distribution):
    """A scalar random variable with analytic pdf / cdf / quantiles."""

    @property
    def dimension(self) -> int:
        return 1

    @abc.abstractmethod
    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Probability density (or mass) evaluated element-wise at ``x``."""

    @abc.abstractmethod
    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Cumulative distribution function evaluated element-wise at ``x``."""

    @abc.abstractmethod
    def ppf(self, q: np.ndarray) -> np.ndarray:
        """Quantile function (inverse CDF) evaluated element-wise at ``q``."""

    def variance(self) -> float:
        """Variance of the variable.  Subclasses with closed forms override."""
        rng = as_generator(0)
        return float(np.var(self.sample(8192, random_state=rng)))

    def std(self) -> float:
        """Standard deviation of the variable."""
        return float(np.sqrt(self.variance()))

    def support_box(self, coverage: float = 0.9999) -> tuple[np.ndarray, np.ndarray]:
        tail = (1.0 - coverage) / 2.0
        lo = float(self.ppf(np.asarray(tail)))
        hi = float(self.ppf(np.asarray(1.0 - tail)))
        return np.array([lo]), np.array([hi])

    def interval_probability(self, a: float, b: float) -> float:
        """Probability that the variable falls in ``[a, b]``."""
        if b < a:
            raise ValueError(f"interval upper bound {b} is below lower bound {a}")
        return float(self.cdf(np.asarray(b)) - self.cdf(np.asarray(a)))


def ensure_2d(samples: np.ndarray, dimension: int) -> np.ndarray:
    """Coerce a sample array into shape ``(m, dimension)``.

    Univariate distributions naturally produce 1-D arrays; multivariate code
    paths always expect the 2-D layout used throughout the library.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2 or arr.shape[1] != dimension:
        raise ValueError(
            f"expected samples with shape (m, {dimension}), got {arr.shape}"
        )
    return arr
