"""Succinct columnar encoding of uncertain-attribute columns.

The tuple store materialises one :class:`~repro.distributions.base.Distribution`
object per uncertain cell.  The columnar store instead keeps, per column, a
*family tag* plus a dense ``(n, k)`` parameter block — e.g. every Gaussian
cell contributes one ``(mu, sigma)`` row — and hydrates distribution objects
lazily, only at the UDF boundary (exactly the U-relations idea of separating
the succinct representation from per-tuple objects).

Two operations make the encoding useful on the hot path:

* :func:`attempt_encode` — recognise a homogeneous column of supported
  univariate families and pack it; heterogeneous / joint / unsupported
  columns return ``None`` and the caller keeps the tuple-store path.
* :func:`sample_stacked` — draw the Monte-Carlo sample block for the whole
  column through *one* broadcast call on the shared
  ``numpy.random.Generator``.  NumPy fills broadcast outputs in C element
  order, so the draw consumes the random stream exactly as the per-tuple
  loop ``[dist.sample(m, rng) for dist in column]`` does — the sliced rows
  are bit-identical, which is what lets every executor layer keep the
  repo's determinism contract.  :func:`stacking_supported` verifies that
  fill-order property (and the stacked linear-algebra identities the
  columnar inference path relies on) once per process; on a platform where
  any probe fails, callers fall back to per-tuple draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.distributions.base import Distribution
from repro.distributions.continuous import Exponential, Gamma, Gaussian, Uniform
from repro.distributions.multivariate import PointMass
from repro.exceptions import DistributionError

#: family tag -> (distribution class, parameter attribute names in pack order)
COLUMN_FAMILIES: dict[str, tuple[type, tuple[str, ...]]] = {
    "gaussian": (Gaussian, ("mu", "sigma")),
    "uniform": (Uniform, ("low", "high")),
    "exponential": (Exponential, ("rate", "shift")),
    "gamma": (Gamma, ("shape", "scale", "shift")),
    "point": (PointMass, ("value",)),
}

_CLASS_TO_FAMILY = {cls: tag for tag, (cls, _) in COLUMN_FAMILIES.items()}


@dataclass(frozen=True)
class UncertainColumn:
    """One uncertain column: a family tag plus an ``(n, k)`` parameter block."""

    #: Key into :data:`COLUMN_FAMILIES`.
    family: str
    #: ``(n, k)`` float parameter rows, one per tuple, in the family's order.
    params: np.ndarray

    def __post_init__(self) -> None:
        if self.family not in COLUMN_FAMILIES:
            raise DistributionError(f"unknown column family {self.family!r}")
        params = np.asarray(self.params, dtype=float)
        k = len(COLUMN_FAMILIES[self.family][1])
        if params.ndim != 2 or params.shape[1] != k:
            raise DistributionError(
                f"family {self.family!r} needs (n, {k}) params, got {params.shape}"
            )
        object.__setattr__(self, "params", params)

    def __len__(self) -> int:
        return int(self.params.shape[0])

    # -- hydration (the UDF boundary) ---------------------------------------------
    def hydrate(self, i: int) -> Distribution:
        """Materialise the distribution object for row ``i``.

        The constructors re-validate and re-``float()`` the parameters, so a
        hydrated object is indistinguishable from the one the column was
        encoded from.
        """
        cls, _ = COLUMN_FAMILIES[self.family]
        return cls(*self.params[i])

    def hydrate_all(self) -> list[Distribution]:
        """Materialise every row (the tuple-store round trip)."""
        return [self.hydrate(i) for i in range(len(self))]


def attempt_encode(distributions: Sequence[Distribution]) -> Optional[UncertainColumn]:
    """Pack a homogeneous column of supported distributions, or ``None``.

    Supported are the scalar continuous families of
    :mod:`repro.distributions.continuous` plus 1-D point masses.  Mixed
    families, joint/multivariate inputs and anything else (including
    ``None`` placeholders for quarantined cells) yield ``None`` — the
    caller's cue to stay on the per-tuple representation.  Subclasses are
    rejected too: hydration must reconstruct the exact type.
    """
    distributions = list(distributions)
    if not distributions:
        return None
    family = _CLASS_TO_FAMILY.get(type(distributions[0]))
    if family is None:
        return None
    if any(type(dist) is not type(distributions[0]) for dist in distributions[1:]):
        return None
    if family == "point":
        if any(dist.value.size != 1 for dist in distributions):
            return None
        params = np.array([[float(dist.value[0])] for dist in distributions])
        return UncertainColumn(family="point", params=params)
    _, names = COLUMN_FAMILIES[family]
    params = np.array(
        [[getattr(dist, name) for name in names] for dist in distributions]
    )
    return UncertainColumn(family=family, params=params)


def sample_stacked(
    column: UncertainColumn, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Column-wide Monte-Carlo draw, bit-identical to the per-row loop.

    Returns an ``(n, size, 1)`` block whose row ``i`` equals
    ``column.hydrate(i).sample(size, random_state=rng)`` under the same
    generator state; the whole column consumes one broadcast draw.  The
    caller is responsible for checking :func:`stacking_supported` first.
    """
    if size < 1:
        raise DistributionError(f"sample size must be positive, got {size}")
    p = column.params
    n = p.shape[0]
    if n == 0:
        return np.empty((0, size, 1))
    if column.family == "gaussian":
        draws = rng.normal(np.repeat(p[:, 0], size), np.repeat(p[:, 1], size))
        return draws.reshape(n, size, 1)
    if column.family == "uniform":
        draws = rng.uniform(np.repeat(p[:, 0], size), np.repeat(p[:, 1], size))
        return draws.reshape(n, size, 1)
    if column.family == "exponential":
        draws = rng.exponential(np.repeat(1.0 / p[:, 0], size)).reshape(n, size, 1)
        return p[:, 1].reshape(n, 1, 1) + draws
    if column.family == "gamma":
        draws = rng.gamma(
            np.repeat(p[:, 0], size), np.repeat(p[:, 1], size)
        ).reshape(n, size, 1)
        return p[:, 2].reshape(n, 1, 1) + draws
    # Point masses consume no randomness, matching PointMass.sample.
    return np.repeat(p[:, 0], size).reshape(n, size, 1)


_STACKING_SUPPORTED: Optional[bool] = None


def _probe_stacking() -> bool:
    """One-time platform probe of every stacking identity the fast path uses.

    All probes compare *bit-for-bit* (``array_equal`` on float outputs):

    1. Broadcast RNG draws fill in C element order, so a column-wide draw
       sliced per row equals sequential per-row draws for every supported
       family.
    2. A grouped matrix product sliced per row block equals the per-block
       products (the columnar inference path stacks per-tuple kernel rows).
    3. ``np.linalg.cholesky`` on a ``(B, n, n)`` stack equals per-matrix
       calls.
    4. A batched ``matmul`` over a ``(B, m, n)`` stack equals the per-item
       2-D products (the columnar selection path evaluates every pending
       tuple's exact-γ matvec in one call).
    """
    seed = np.random.SeedSequence(20130817)
    mus = np.array([0.5, -1.25, 3.0])
    sigmas = np.array([1.0, 0.25, 2.5])
    m = 7
    for draw in (
        lambda r, loc, scale, size: r.normal(loc, scale, size=size),
        lambda r, loc, scale, size: r.uniform(loc, loc + scale, size=size),
        lambda r, loc, scale, size: r.exponential(scale, size=size),
        lambda r, loc, scale, size: r.gamma(1.0 + np.abs(loc), scale, size=size),
    ):
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        stacked = draw(rng_a, np.repeat(mus, m), np.repeat(sigmas, m), None)
        rows = [draw(rng_b, mu, sg, (m,)) for mu, sg in zip(mus, sigmas)]
        if not np.array_equal(stacked.reshape(len(mus), m), np.vstack(rows)):
            return False
    rng = np.random.default_rng(seed)
    blocks = [rng.standard_normal((m, 5)) for _ in range(3)]
    weights = rng.standard_normal(5)
    square = rng.standard_normal((5, 5))
    tall = np.vstack(blocks)
    gemv = tall @ weights
    gemm = tall @ square
    rowsum = np.sum(gemm * tall, axis=1)
    for b, block in enumerate(blocks):
        lo, hi = b * m, (b + 1) * m
        own = block @ square
        if not (
            np.array_equal(gemv[lo:hi], block @ weights)
            and np.array_equal(gemm[lo:hi], own)
            and np.array_equal(rowsum[lo:hi], np.sum(own * block, axis=1))
        ):
            return False
    mats = rng.standard_normal((4, 6, 6))
    mats = mats @ mats.transpose(0, 2, 1) + 6.0 * np.eye(6)
    stacked_chol = np.linalg.cholesky(mats)
    if not all(
        np.array_equal(stacked_chol[i], np.linalg.cholesky(mats[i]))
        for i in range(mats.shape[0])
    ):
        return False
    stack3 = np.vstack(blocks).reshape(len(blocks), m, 5)
    vecs = rng.standard_normal((len(blocks), 5))
    batched = np.matmul(stack3, vecs[:, :, None])[:, :, 0]
    return all(
        np.array_equal(batched[b], blocks[b] @ vecs[b]) for b in range(len(blocks))
    )


def stacking_supported() -> bool:
    """Whether this platform's BLAS/RNG keep the stacking identities exact.

    Probed once per process; when ``False`` every columnar fast path falls
    back to per-tuple computation (still through the columnar store — the
    determinism gates then pass trivially).
    """
    global _STACKING_SUPPORTED
    if _STACKING_SUPPORTED is None:
        _STACKING_SUPPORTED = bool(_probe_stacking())
    return _STACKING_SUPPORTED
