"""repro — Supporting User-Defined Functions on Uncertain Data (VLDB 2013).

A from-scratch reproduction of Tran, Diao, Sutton & Liu's framework for
evaluating black-box user-defined functions on uncertain data with
(ε, δ) accuracy guarantees.  The package provides:

* an uncertain-data model (:mod:`repro.distributions`),
* a Gaussian-process regression substrate (:mod:`repro.gp`),
* a spatial index for local inference (:mod:`repro.index`),
* synthetic and astrophysics UDF libraries (:mod:`repro.udf`),
* the core contribution — Monte-Carlo baseline, GP emulation with error
  bounds, and the OLGAPRO online algorithm (:mod:`repro.core`),
* a probabilistic query-engine substrate (:mod:`repro.engine`), and
* workload generators and a benchmark harness (:mod:`repro.workloads`,
  :mod:`repro.bench`).

Quickstart::

    import numpy as np
    from repro import OLGAPRO, AccuracyRequirement, Gaussian, galage_udf

    udf = galage_udf()
    processor = OLGAPRO(udf, AccuracyRequirement(epsilon=0.1, delta=0.05),
                        random_state=0)
    result = processor.process(Gaussian(mu=0.5, sigma=0.02))
    print(result.distribution.mean(), result.error_bound.epsilon_total)
"""

from repro.config import PaperDefaults
from repro.core import (
    OLGAPRO,
    AccuracyRequirement,
    ErrorBudget,
    GPEmulator,
    HybridExecutor,
    MCResult,
    OnlineTupleResult,
    SelectionPredicate,
    discrepancy,
    ks_distance,
    lambda_discrepancy,
    monte_carlo_output,
    monte_carlo_with_filter,
    offline_gp_output,
    required_mc_samples,
)
from repro.distributions import (
    EmpiricalDistribution,
    Exponential,
    Gamma,
    Gaussian,
    IndependentJoint,
    MultivariateGaussian,
    PointMass,
    Uniform,
)
from repro.exceptions import ReproError
from repro.gp import GaussianProcess, Matern32, Matern52, SquaredExponential
from repro.udf import (
    UDF,
    Cosmology,
    angdist_udf,
    comove_vol_udf,
    galage_udf,
    reference_function,
    reference_suite,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "PaperDefaults",
    "ReproError",
    # core
    "OLGAPRO",
    "AccuracyRequirement",
    "ErrorBudget",
    "GPEmulator",
    "HybridExecutor",
    "MCResult",
    "OnlineTupleResult",
    "SelectionPredicate",
    "discrepancy",
    "ks_distance",
    "lambda_discrepancy",
    "monte_carlo_output",
    "monte_carlo_with_filter",
    "offline_gp_output",
    "required_mc_samples",
    # distributions
    "Gaussian",
    "Uniform",
    "Exponential",
    "Gamma",
    "MultivariateGaussian",
    "IndependentJoint",
    "PointMass",
    "EmpiricalDistribution",
    # GP substrate
    "GaussianProcess",
    "SquaredExponential",
    "Matern32",
    "Matern52",
    # UDFs
    "UDF",
    "Cosmology",
    "galage_udf",
    "comove_vol_udf",
    "angdist_udf",
    "reference_function",
    "reference_suite",
]
