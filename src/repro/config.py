"""Global configuration defaults for the reproduction.

The values mirror the defaults used in Section 6.1 of the paper:

* function domain ``[L, U] = [0, 10]``
* input standard deviation ``sigma_I = 0.5``
* function evaluation time ``T = 1 ms``
* accuracy requirement ``(epsilon, delta) = (0.1, 0.05)``
* minimum interval length ``lambda`` equal to 1% of the function range
* the fraction of the error budget given to Monte-Carlo sampling
  (``epsilon_MC = 0.7 * epsilon``, Profile 3)
* local-inference threshold ``Gamma = 5%`` of the function range (Expt 1)
* retraining threshold ``Delta_theta = 0.05`` (Expt 3)

These defaults are deliberately plain module-level constants (not a mutable
singleton) so that experiment code can read them while remaining explicit
about any overrides it makes.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default accuracy requirement epsilon (discrepancy measure).
DEFAULT_EPSILON: float = 0.1

#: Default confidence parameter delta.
DEFAULT_DELTA: float = 0.05

#: Default minimum interval length, as a fraction of the output range.
DEFAULT_LAMBDA_FRACTION: float = 0.01

#: Default share of the epsilon budget assigned to Monte-Carlo sampling
#: (the remainder goes to GP modelling error).  Profile 3 of the paper finds
#: 0.7 to be a good setting.
DEFAULT_MC_FRACTION: float = 0.7

#: Default share of delta assigned to the MC side.  The paper distributes
#: delta so that (1 - delta) = (1 - delta_GP)(1 - delta_MC); an even split is
#: used by default.
DEFAULT_MC_DELTA_FRACTION: float = 0.5

#: Default local-inference threshold Gamma as a fraction of the function
#: range (Section 6.2, Expt 1 recommends ~0.05).
DEFAULT_GAMMA_FRACTION: float = 0.05

#: Default retraining threshold Delta_theta (Section 6.2, Expt 3).
DEFAULT_RETRAIN_THRESHOLD: float = 0.05

#: Default simultaneous-confidence-band miss probability alpha.
DEFAULT_BAND_ALPHA: float = 0.05

#: Default function domain used by synthetic workloads.
DEFAULT_DOMAIN_LOW: float = 0.0
DEFAULT_DOMAIN_HIGH: float = 10.0

#: Default input standard deviation for synthetic uncertain attributes.
DEFAULT_INPUT_STD: float = 0.5

#: Default synthetic UDF evaluation time in seconds (1 ms).
DEFAULT_EVAL_TIME: float = 1e-3

#: Default tuple-existence-probability threshold used for filtering.
DEFAULT_TEP_THRESHOLD: float = 0.1

#: Hard cap on training points OLGAPRO may add for a single input tuple.
#: (The paper's Expt 2 restricts this to 10 for its comparison; as a default
#: a higher cap lets the first few tuples converge on harder functions.)
DEFAULT_MAX_POINTS_PER_TUPLE: int = 30

#: Hard cap on the total number of training points before OLGAPRO refuses to
#: grow the model further and reports a convergence failure.
DEFAULT_MAX_TRAINING_POINTS: int = 2000

#: Numerical jitter added to kernel matrix diagonals for stability.
DEFAULT_JITTER: float = 1e-8


@dataclass(frozen=True)
class PaperDefaults:
    """Bundle of the paper's §6.1 default experimental parameters.

    Instances are immutable; create a new instance with
    :func:`dataclasses.replace` to override individual fields.
    """

    epsilon: float = DEFAULT_EPSILON
    delta: float = DEFAULT_DELTA
    lambda_fraction: float = DEFAULT_LAMBDA_FRACTION
    mc_fraction: float = DEFAULT_MC_FRACTION
    gamma_fraction: float = DEFAULT_GAMMA_FRACTION
    retrain_threshold: float = DEFAULT_RETRAIN_THRESHOLD
    domain_low: float = DEFAULT_DOMAIN_LOW
    domain_high: float = DEFAULT_DOMAIN_HIGH
    input_std: float = DEFAULT_INPUT_STD
    eval_time: float = DEFAULT_EVAL_TIME

    @property
    def domain_range(self) -> float:
        """Width of the default synthetic function domain."""
        return self.domain_high - self.domain_low
