"""Deterministic random-number-generator plumbing.

Every stochastic component of the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None``.  This module centralises the
conversion so behaviour is reproducible when a seed is supplied and properly
independent when child generators are spawned.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RandomState = Union[None, int, np.random.Generator]


def as_generator(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for fresh OS entropy, an ``int`` seed for reproducibility,
        or an existing generator which is returned unchanged.
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Child streams are derived through ``Generator.spawn`` so that parallel
    workloads (e.g. per-tuple sampling in the query engine) do not share a
    stream and therefore do not produce correlated samples.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return list(rng.spawn(count))


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit seed from ``rng`` for handing to external code."""
    return int(rng.integers(0, 2**63 - 1))
