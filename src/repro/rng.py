"""Deterministic random-number-generator plumbing.

Every stochastic component of the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None``.  This module centralises the
conversion so behaviour is reproducible when a seed is supplied and properly
independent when child generators are spawned.

Determinism contract for sharded (parallel) execution
-----------------------------------------------------
The parallel execution layer assigns every shard of a relation its own
random stream via :func:`spawn_keyed`.  The stream for shard ``i`` is a
pure function of ``(seed, i)`` — it does not depend on which worker process
executes the shard, how many workers the pool has, or in what order shards
complete.  Consequently:

* results are bitwise reproducible for a fixed ``(seed, workers,
  batch_size, shard_size)`` configuration;
* under the ``"discard"`` merge policy (every shard computes against the
  same model snapshot) shard outputs are *invariant to the worker count*
  for any ``workers >= 2``, because neither the shard boundaries nor the
  shard streams depend on the pool size;
* ``workers=1`` deliberately bypasses sharding and consumes the engine's
  own single stream, making it numerically identical to the serial batched
  path under the same engine seed (and therefore different from the
  ``workers >= 2`` sharded streams — the documented caveat).
"""

from __future__ import annotations

from typing import Union

import numpy as np

RandomState = Union[None, int, np.random.Generator]


def as_generator(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for fresh OS entropy, an ``int`` seed for reproducibility,
        or an existing generator which is returned unchanged.
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Child streams are derived through ``Generator.spawn`` so that parallel
    workloads (e.g. per-tuple sampling in the query engine) do not share a
    stream and therefore do not produce correlated samples.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return list(rng.spawn(count))


def spawn_keyed(seed: int, shard_index: int) -> np.random.Generator:
    """Deterministic child generator for shard ``shard_index`` of run ``seed``.

    Built on :class:`numpy.random.SeedSequence` spawning: the returned
    generator is exactly ``default_rng(SeedSequence(seed).spawn(n)[shard_index])``
    for any ``n > shard_index`` (a child's entropy depends only on its spawn
    key, so constructing it directly is equivalent and O(1)).  Streams for
    different shard indices are statistically independent, and the stream for
    a given ``(seed, shard_index)`` pair never depends on how many other
    shards exist or which process consumes it — see the module docstring for
    the full determinism contract.
    """
    if shard_index < 0:
        raise ValueError(f"shard_index must be non-negative, got {shard_index}")
    sequence = np.random.SeedSequence(seed, spawn_key=(shard_index,))
    return np.random.default_rng(sequence)


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit seed from ``rng`` for handing to external code."""
    return int(rng.integers(0, 2**63 - 1))
