"""Per-phase wall-clock accounting shared by every layer.

Deliberately free of engine and bench imports: the batched execution
pipeline (engine layer) records into a :class:`PhaseTimings`, and the
benchmark harness (bench layer) reports from one, without either layer
depending on the other.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Union

from repro.exceptions import ReproError


@dataclass
class PhaseTimings:
    """Wall-clock accumulator keyed by pipeline phase.

    The batched execution pipeline records how long it spends in its
    ``sampling`` / ``inference`` / ``refinement`` phases so benchmark tables
    can attribute the speedup.  Any phase name is accepted — the object is a
    plain accumulator, deliberately free of engine imports so every layer
    can use it.
    """

    seconds: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, elapsed: float) -> None:
        """Accumulate ``elapsed`` wall-clock seconds under ``phase``."""
        if elapsed < 0:
            raise ReproError(f"elapsed time must be non-negative, got {elapsed}")
        self.seconds[phase] = self.seconds.get(phase, 0.0) + float(elapsed)

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Context manager charging the enclosed block to ``phase``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(phase, time.perf_counter() - started)

    def merge(self, other: Union["PhaseTimings", Mapping[str, float]]) -> "PhaseTimings":
        """Accumulate another accumulator (or a plain phase→seconds mapping).

        Used by the parallel execution layer to fold per-worker timings into
        one report: each worker measures its own ``sampling`` / ``inference``
        / ``refinement`` phases, and the parent merges them so the aggregate
        reflects total work performed across the pool (not wall-clock, which
        overlaps).  Phases unknown to ``self`` are created.  The
        negative-elapsed guard of :meth:`add` is checked for *every* entry
        before any entry is applied, so a rejected merge leaves ``self``
        unchanged.  Returns ``self`` for chaining.
        """
        seconds = other.seconds if isinstance(other, PhaseTimings) else other
        for phase, elapsed in seconds.items():
            if elapsed < 0:
                raise ReproError(
                    f"elapsed time must be non-negative, got {elapsed} for phase {phase!r}"
                )
        for phase, elapsed in seconds.items():
            self.add(phase, elapsed)
        return self

    def __iadd__(self, other: Union["PhaseTimings", Mapping[str, float]]) -> "PhaseTimings":
        """``timings += worker_timings`` — alias for :meth:`merge`."""
        return self.merge(other)

    def get(self, phase: str) -> float:
        """Seconds accumulated under ``phase`` (0 when never recorded)."""
        return self.seconds.get(phase, 0.0)

    def ensure(self, *phases: str) -> "PhaseTimings":
        """Materialise ``phases`` at 0.0 when not yet recorded.

        Degenerate runs (an empty relation, say) perform no work but should
        still hand consumers a *complete* phase record — readers iterating
        :attr:`seconds` directly would otherwise see the phase set vary with
        the input.  Returns ``self`` for chaining.
        """
        for phase in phases:
            self.seconds.setdefault(phase, 0.0)
        return self

    @property
    def total(self) -> float:
        """Sum over all phases."""
        return float(sum(self.seconds.values()))

    def reset(self) -> None:
        """Drop all accumulated timings."""
        self.seconds.clear()

    def as_row(self, prefix: str = "", scale: float = 1000.0) -> dict[str, float]:
        """Flatten into ``{prefix + phase: seconds * scale}`` (ms by default)."""
        return {f"{prefix}{phase}": value * scale for phase, value in sorted(self.seconds.items())}
