"""Experiment harness: result tables and text reporting.

Every experiment function in :mod:`repro.bench` returns an
:class:`ExperimentTable` — a list of homogeneous row dictionaries plus a
title — so that the pytest-benchmark wrappers, the EXPERIMENTS.md generator
and ad-hoc scripts all share one representation and one formatter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.exceptions import ReproError
from repro.timing import PhaseTimings

__all__ = ["ExperimentTable", "PhaseTimings", "print_tables", "summarize"]


@dataclass
class ExperimentTable:
    """A titled table of experiment results."""

    #: Experiment identifier, e.g. ``"expt5_eval_time"``.
    experiment_id: str
    #: Paper artifact this table reproduces, e.g. ``"Figure 5(i)"``.
    paper_artifact: str
    #: Human-readable description of what is being measured.
    description: str
    #: Homogeneous result rows.
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append one result row."""
        if self.rows and set(values) != set(self.rows[0]):
            raise ReproError(
                f"row keys {sorted(values)} do not match existing columns "
                f"{sorted(self.rows[0])}"
            )
        self.rows.append(values)

    @property
    def columns(self) -> list[str]:
        """Column names, in first-row order."""
        return list(self.rows[0]) if self.rows else []

    def column(self, name: str) -> list[Any]:
        """All values of one column."""
        if name not in self.columns:
            raise ReproError(f"unknown column {name!r}; available: {self.columns}")
        return [row[name] for row in self.rows]

    def filtered(self, **criteria: Any) -> "ExperimentTable":
        """Rows matching all the given column=value criteria."""
        subset = [
            row for row in self.rows if all(row.get(k) == v for k, v in criteria.items())
        ]
        return ExperimentTable(
            experiment_id=self.experiment_id,
            paper_artifact=self.paper_artifact,
            description=self.description,
            rows=subset,
        )

    def to_text(self, float_format: str = "{:.4g}") -> str:
        """Render the table as aligned monospace text."""
        lines = [f"== {self.experiment_id} — {self.paper_artifact} ==", self.description]
        if not self.rows:
            lines.append("(no rows)")
            return "\n".join(lines)
        columns = self.columns
        formatted_rows = []
        for row in self.rows:
            formatted_rows.append(
                [
                    float_format.format(v) if isinstance(v, float) else str(v)
                    for v in (row[c] for c in columns)
                ]
            )
        widths = [
            max(len(column), *(len(r[i]) for r in formatted_rows))
            for i, column in enumerate(columns)
        ]
        header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
        separator = "  ".join("-" * w for w in widths)
        lines.extend([header, separator])
        for formatted in formatted_rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(formatted, widths)))
        return "\n".join(lines)


def print_tables(tables: Iterable[ExperimentTable]) -> None:
    """Print a sequence of experiment tables, separated by blank lines."""
    for table in tables:
        print(table.to_text())
        print()


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Mean / min / max summary of a metric series (used in several tables)."""
    import numpy as np

    if len(values) == 0:
        raise ReproError("cannot summarise an empty series")
    arr = np.asarray(values, dtype=float)
    return {
        "mean": float(np.mean(arr)),
        "min": float(np.min(arr)),
        "max": float(np.max(arr)),
    }
