"""Benchmark harness and experiment implementations (substrate S15).

One function per paper table / figure; each returns an
:class:`~repro.bench.harness.ExperimentTable`.  The pytest-benchmark modules
under ``benchmarks/`` are thin wrappers over these functions.
"""

from repro.bench.experiments_astro import (
    astro_case_study_table,
    astro_gp_vs_mc,
    astro_output_density,
)
from repro.bench.experiments_async import (
    async_report,
    transport_report,
    udf_overlap,
    udf_transport,
)
from repro.bench.experiments_auto import auto_plan, auto_plan_report
from repro.bench.experiments_batch import batch_pipeline_speedup, smoke_report
from repro.bench.experiments_faults import fault_injection, faults_report
from repro.bench.experiments_parallel import (
    parallel_report,
    parallel_scaling,
    shared_learning,
    shared_learning_report,
)
from repro.bench.experiments_pipeline import pipeline_report, udf_pipeline
from repro.bench.experiments_profiles import (
    all_profiles,
    profile1_function_fitting,
    profile2_error_bound,
    profile3_error_allocation,
)
from repro.bench.experiments_serving import serving_load, serving_report
from repro.bench.experiments_synthetic import (
    expt1_local_inference,
    expt2_online_tuning,
    expt3_retraining,
    expt4_accuracy_requirement,
    expt5_eval_time,
    expt6_filtering,
    expt7_dimensionality,
)
from repro.bench.harness import ExperimentTable, PhaseTimings, print_tables, summarize

__all__ = [
    "ExperimentTable",
    "PhaseTimings",
    "print_tables",
    "summarize",
    "batch_pipeline_speedup",
    "smoke_report",
    "parallel_scaling",
    "parallel_report",
    "shared_learning",
    "shared_learning_report",
    "udf_overlap",
    "async_report",
    "udf_transport",
    "transport_report",
    "udf_pipeline",
    "pipeline_report",
    "auto_plan",
    "auto_plan_report",
    "serving_load",
    "serving_report",
    "fault_injection",
    "faults_report",
    "profile1_function_fitting",
    "profile2_error_bound",
    "profile3_error_allocation",
    "all_profiles",
    "expt1_local_inference",
    "expt2_online_tuning",
    "expt3_retraining",
    "expt4_accuracy_requirement",
    "expt5_eval_time",
    "expt6_filtering",
    "expt7_dimensionality",
    "astro_case_study_table",
    "astro_output_density",
    "astro_gp_vs_mc",
]
