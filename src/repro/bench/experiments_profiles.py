"""Profiling experiments of Section 6.2 (Profiles 1–3).

These establish the internal behaviour of the GP machinery: how well the GP
fits functions of different shapes (Fig. 5a), how tight the λ-discrepancy
error bound is (Fig. 5b), and how the total error budget should be split
between Monte-Carlo sampling and GP modelling (Profile 3).

All functions accept size parameters so that the pytest-benchmark wrappers
can run scaled-down versions while a full-scale run remains a single call.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.accuracy import AccuracyRequirement
from repro.core.confidence_bands import band_z_value
from repro.core.emulator import GPEmulator
from repro.core.error_bounds import build_envelope_outputs, gp_discrepancy_bound
from repro.core.metrics import lambda_discrepancy
from repro.core.olgapro import OLGAPRO
from repro.gp.regression import GaussianProcess
from repro.gp.training import fit_hyperparameters, initial_hyperparameters
from repro.index.bounding_box import BoundingBox
from repro.rng import as_generator
from repro.udf.synthetic import reference_function
from repro.workloads.generators import (
    input_stream,
    true_output_distribution,
    workload_for_udf,
)

#: Default reference-function names, in increasing order of difficulty.
DEFAULT_FUNCTIONS = ("F1", "F2", "F3", "F4")


def profile1_function_fitting(
    n_training_values: Sequence[int] = (30, 60, 100, 150, 200),
    function_names: Sequence[str] = DEFAULT_FUNCTIONS,
    n_test_points: int = 400,
    random_state=0,
) -> ExperimentTable:
    """Fig. 5(a): GP relative fitting error versus number of training points."""
    rng = as_generator(random_state)
    table = ExperimentTable(
        experiment_id="profile1_function_fitting",
        paper_artifact="Figure 5(a)",
        description="Mean relative inference error |f_hat - f| / |f| at held-out points",
    )
    for name in function_names:
        udf = reference_function(name)
        low, high = udf.domain
        test_points = rng.uniform(low, high, size=(n_test_points, udf.dimension))
        true_values = udf.with_simulated_eval_time(0.0).evaluate_batch(test_points)
        for n in n_training_values:
            train_points = rng.uniform(low, high, size=(n, udf.dimension))
            train_values = udf.with_simulated_eval_time(0.0).evaluate_batch(train_points)
            gp = GaussianProcess()
            gp.fit(train_points, train_values)
            gp.set_hyperparameters(initial_hyperparameters(train_points, train_values))
            fit_hyperparameters(gp)
            predictions = gp.predict_mean(test_points)
            relative_error = np.abs(predictions - true_values) / np.maximum(np.abs(true_values), 1e-9)
            table.add_row(
                function=name,
                n_training=int(n),
                relative_error=float(np.mean(relative_error)),
            )
    return table


def profile2_error_bound(
    lambda_fractions: Sequence[float] = (0.002, 0.01, 0.02, 0.05, 0.1),
    function_name: str = "F4",
    n_training: int = 150,
    n_tuples: int = 8,
    n_samples: int = 1200,
    n_truth_samples: int = 20000,
    random_state=1,
) -> ExperimentTable:
    """Fig. 5(b): λ-discrepancy error bound versus the actual error, varying λ."""
    rng = as_generator(random_state)
    udf = reference_function(function_name)
    emulator = GPEmulator(udf)
    emulator.train_initial(n_training, design="random", random_state=rng)
    spec = workload_for_udf(udf)
    output_range = None

    table = ExperimentTable(
        experiment_id="profile2_error_bound",
        paper_artifact="Figure 5(b)",
        description="Discrepancy error bound vs actual error as a function of lambda",
    )
    # Collect per-tuple envelopes once, then evaluate every lambda on them.
    envelopes = []
    truths = []
    for dist in input_stream(spec, n_tuples, random_state=rng):
        samples = dist.sample(n_samples, random_state=rng)
        means, stds = emulator.predict(samples)
        band = band_z_value(
            emulator.gp.kernel, BoundingBox.from_points(samples), alpha=0.05, n_points=n_samples
        )
        envelope = build_envelope_outputs(means, stds, band.z_value)
        envelopes.append(envelope)
        truths.append(true_output_distribution(udf, dist, n_truth_samples, random_state=rng))
        if output_range is None:
            y = emulator.gp.y_train
            output_range = float(np.max(y) - np.min(y))
    for fraction in lambda_fractions:
        lam = fraction * output_range
        bounds = [gp_discrepancy_bound(env, lam) for env in envelopes]
        actuals = [
            lambda_discrepancy(env.y_hat, truth, lam)
            for env, truth in zip(envelopes, truths)
        ]
        table.add_row(
            lambda_fraction=float(fraction),
            actual_error=float(np.mean(actuals)),
            error_bound=float(np.mean(bounds)),
        )
    return table


def profile3_error_allocation(
    mc_fractions: Sequence[float] = (0.3, 0.5, 0.7, 0.9),
    function_name: str = "F4",
    n_tuples: int = 8,
    epsilon: float = 0.1,
    delta: float = 0.05,
    max_points_per_tuple: int = 20,
    n_truth_samples: int = 10000,
    random_state=2,
) -> ExperimentTable:
    """Profile 3: how to split ε between the MC and GP error sources."""
    table = ExperimentTable(
        experiment_id="profile3_error_allocation",
        paper_artifact="Section 6.2, Profile 3",
        description="Runtime and realised error for different epsilon_MC shares",
    )
    for fraction in mc_fractions:
        rng = as_generator(random_state)
        udf = reference_function(function_name, simulated_eval_time=1e-3)
        processor = OLGAPRO(
            udf,
            AccuracyRequirement(epsilon=epsilon, delta=delta),
            mc_fraction=fraction,
            max_points_per_tuple=max_points_per_tuple,
            random_state=rng,
        )
        spec = workload_for_udf(udf)
        times: list[float] = []
        errors: list[float] = []
        converged_count = 0
        for dist in input_stream(spec, n_tuples, random_state=rng):
            result = processor.process(dist)
            times.append(result.charged_time)
            converged_count += int(result.converged)
            truth = true_output_distribution(udf, dist, n_truth_samples, random_state=rng)
            errors.append(
                lambda_discrepancy(result.distribution, truth, processor.lambda_value())
            )
        table.add_row(
            mc_fraction=float(fraction),
            mc_samples_per_tuple=processor.mc_samples(),
            mean_time_ms=float(np.mean(times) * 1000.0),
            mean_actual_error=float(np.mean(errors)),
            converged_fraction=converged_count / n_tuples,
        )
    return table


def all_profiles(random_state=0) -> list[ExperimentTable]:
    """Run the three profiling experiments with default (scaled) parameters."""
    return [
        profile1_function_fitting(random_state=random_state),
        profile2_error_bound(random_state=random_state),
        profile3_error_allocation(random_state=random_state),
    ]
