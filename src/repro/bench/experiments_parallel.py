"""Process-pool scaling benchmark: workers sweep over sharded execution.

Measures the wall-clock effect of :class:`~repro.engine.parallel.ParallelExecutor`
on the synthetic eval-time workload.  Unlike the paper's Expt 5 — whose
per-call cost is *simulated* (charged to an accounting clock, invisible to
wall-clock) — the UDF here carries a **real** per-call cost
(:class:`~repro.udf.synthetic.RealCostFunction`): an expensive black box
whose evaluations occupy wall-clock that worker processes overlap.  That is
the regime process-pool sharding targets; a purely CPU-bound GP workload
scales with physical cores instead.

Protocol: the same tuple stream (identical seeds) is pushed through the
serial :class:`~repro.engine.batch.BatchExecutor` and through
``ParallelExecutor`` at each worker count, under the ``"discard"`` merge
policy so every worker count computes from the same model snapshot.  The
table reports wall-clock, UDF calls and the speedup versus the serial
batched run.
"""

from __future__ import annotations

import time

from repro.bench.harness import ExperimentTable
from repro.core.accuracy import AccuracyRequirement
from repro.engine.batch import BatchExecutor
from repro.engine.executor import UDFExecutionEngine
from repro.engine.parallel import ParallelExecutor
from repro.rng import as_generator
from repro.udf.synthetic import reference_function
from repro.workloads.generators import input_stream, workload_for_udf


def parallel_scaling(
    function_name: str = "F4",
    strategies: tuple[str, ...] = ("gp", "mc"),
    workers_list: tuple[int, ...] = (1, 2, 4, 8),
    n_tuples: int = 32,
    batch_size: int = 8,
    real_eval_time: float = 2e-3,
    epsilon: float = 0.15,
    n_samples: int | None = 300,
    merge: str = "discard",
    trials: int = 1,
    random_state=11,
    stream_seed: int = 2,
    shard_seed: int = 42,
) -> ExperimentTable:
    """Speedup-versus-workers table for sharded execution.

    ``workers=1`` rows exercise the executor's serial fast path (numerically
    identical to the baseline run, so its speedup ≈ 1 by construction).
    ``trials`` repeats each timed run and keeps the fastest — the usual
    guard against scheduler noise.
    """
    table = ExperimentTable(
        experiment_id="parallel_scaling",
        paper_artifact="process-pool sharded execution (beyond the paper)",
        description=(
            "Serial batched vs process-pool sharded wall-clock on the synthetic "
            f"eval-time workload ({function_name}, real {real_eval_time * 1e3:g} ms/call, "
            f"batch_size={batch_size}, merge={merge!r})"
        ),
    )
    requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)

    def timed_run(strategy: str, workers: int | None) -> tuple[float, int]:
        """One full run; ``workers=None`` is the serial BatchExecutor baseline."""
        best = float("inf")
        calls = 0
        for _ in range(max(1, trials)):
            udf = reference_function(function_name, real_eval_time=real_eval_time)
            kwargs = {"n_samples": n_samples} if strategy == "gp" and n_samples else {}
            engine = UDFExecutionEngine(
                strategy=strategy, requirement=requirement, random_state=random_state,
                **kwargs,
            )
            dists = list(
                input_stream(
                    workload_for_udf(udf), n_tuples, random_state=as_generator(stream_seed)
                )
            )
            started = time.perf_counter()
            if workers is None:
                BatchExecutor(engine, batch_size).compute_batch(udf, dists)
            else:
                ParallelExecutor(
                    engine,
                    workers=workers,
                    batch_size=batch_size,
                    merge=merge,  # type: ignore[arg-type]
                    seed=shard_seed,
                ).compute_batch(udf, dists)
            best = min(best, time.perf_counter() - started)
            calls = udf.call_count
        return best, calls

    for strategy in strategies:
        serial_wall, serial_calls = timed_run(strategy, None)
        table.add_row(
            strategy=strategy,
            mode="serial",
            workers=1,
            n_tuples=n_tuples,
            wall_ms=float(serial_wall * 1000.0),
            udf_calls=serial_calls,
            speedup=1.0,
        )
        for workers in workers_list:
            wall, calls = timed_run(strategy, workers)
            table.add_row(
                strategy=strategy,
                mode="parallel",
                workers=workers,
                n_tuples=n_tuples,
                wall_ms=float(wall * 1000.0),
                udf_calls=calls,
                speedup=float(serial_wall / max(wall, 1e-12)),
            )
    return table


def parallel_report(table: ExperimentTable) -> dict:
    """JSON-ready summary of a :func:`parallel_scaling` run.

    ``speedup`` maps ``strategy -> {workers -> speedup}``;
    ``speedup_at_4`` pulls out the headline workers=4 number tracked by the
    CI smoke artifact (falling back to the largest measured worker count
    when 4 was not part of the sweep).
    """
    speedups: dict[str, dict[int, float]] = {}
    for row in table.rows:
        if row["mode"] != "parallel":
            continue
        speedups.setdefault(row["strategy"], {})[int(row["workers"])] = float(row["speedup"])
    headline = {}
    for strategy, by_workers in speedups.items():
        target = 4 if 4 in by_workers else max(by_workers)
        headline[strategy] = {"workers": target, "speedup": by_workers[target]}
    return {
        "experiment_id": table.experiment_id,
        "description": table.description,
        "rows": list(table.rows),
        "speedup": {s: {str(w): v for w, v in by.items()} for s, by in speedups.items()},
        "speedup_at_4": headline,
    }
