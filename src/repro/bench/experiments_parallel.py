"""Process-pool scaling benchmark: workers sweep over sharded execution.

Measures the wall-clock effect of :class:`~repro.engine.parallel.ParallelExecutor`
on the synthetic eval-time workload.  Unlike the paper's Expt 5 — whose
per-call cost is *simulated* (charged to an accounting clock, invisible to
wall-clock) — the UDF here carries a **real** per-call cost
(:class:`~repro.udf.synthetic.RealCostFunction`): an expensive black box
whose evaluations occupy wall-clock that worker processes overlap.  That is
the regime process-pool sharding targets; a purely CPU-bound GP workload
scales with physical cores instead.

Protocol: the same tuple stream (identical seeds) is pushed through the
serial :class:`~repro.engine.batch.BatchExecutor` and through
``ParallelExecutor`` at each worker count, under the ``"discard"`` merge
policy so every worker count computes from the same model snapshot.  The
table reports wall-clock, UDF calls and the speedup versus the serial
batched run.

:func:`shared_learning` measures the complementary axis: the *total UDF
charge* of the fleet.  ``merge="shared"`` routes every shard through one
live :class:`~repro.core.shared_model.SharedEmulatorStore`, so the model
cost is paid once rather than once per shard — the headline
``udf_calls_ratio`` (shared fleet calls / serial calls) is measured
within one invocation and gated on every runner.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.accuracy import AccuracyRequirement
from repro.engine.batch import BatchExecutor
from repro.engine.executor import UDFExecutionEngine
from repro.engine.parallel import ParallelExecutor
from repro.rng import as_generator
from repro.udf.synthetic import reference_function
from repro.workloads.generators import input_stream, workload_for_udf


def parallel_scaling(
    function_name: str = "F4",
    strategies: tuple[str, ...] = ("gp", "mc"),
    workers_list: tuple[int, ...] = (1, 2, 4, 8),
    n_tuples: int = 32,
    batch_size: int = 8,
    real_eval_time: float = 2e-3,
    epsilon: float = 0.15,
    n_samples: int | None = 300,
    merge: str = "discard",
    trials: int = 1,
    random_state=11,
    stream_seed: int = 2,
    shard_seed: int = 42,
) -> ExperimentTable:
    """Speedup-versus-workers table for sharded execution.

    ``workers=1`` rows exercise the executor's serial fast path (numerically
    identical to the baseline run, so its speedup ≈ 1 by construction).
    ``trials`` repeats each timed run and keeps the fastest — the usual
    guard against scheduler noise.
    """
    table = ExperimentTable(
        experiment_id="parallel_scaling",
        paper_artifact="process-pool sharded execution (beyond the paper)",
        description=(
            "Serial batched vs process-pool sharded wall-clock on the synthetic "
            f"eval-time workload ({function_name}, real {real_eval_time * 1e3:g} ms/call, "
            f"batch_size={batch_size}, merge={merge!r})"
        ),
    )
    requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)

    def timed_run(strategy: str, workers: int | None) -> tuple[float, int]:
        """One full run; ``workers=None`` is the serial BatchExecutor baseline."""
        best = float("inf")
        calls = 0
        for _ in range(max(1, trials)):
            udf = reference_function(function_name, real_eval_time=real_eval_time)
            kwargs = {"n_samples": n_samples} if strategy == "gp" and n_samples else {}
            engine = UDFExecutionEngine(
                strategy=strategy, requirement=requirement, random_state=random_state,
                **kwargs,
            )
            dists = list(
                input_stream(
                    workload_for_udf(udf), n_tuples, random_state=as_generator(stream_seed)
                )
            )
            started = time.perf_counter()
            if workers is None:
                BatchExecutor(engine, batch_size).compute_batch(udf, dists)
            else:
                ParallelExecutor(
                    engine,
                    workers=workers,
                    batch_size=batch_size,
                    merge=merge,  # type: ignore[arg-type]
                    seed=shard_seed,
                ).compute_batch(udf, dists)
            best = min(best, time.perf_counter() - started)
            calls = udf.call_count
        return best, calls

    for strategy in strategies:
        serial_wall, serial_calls = timed_run(strategy, None)
        table.add_row(
            strategy=strategy,
            mode="serial",
            workers=1,
            n_tuples=n_tuples,
            wall_ms=float(serial_wall * 1000.0),
            udf_calls=serial_calls,
            speedup=1.0,
        )
        for workers in workers_list:
            wall, calls = timed_run(strategy, workers)
            table.add_row(
                strategy=strategy,
                mode="parallel",
                workers=workers,
                n_tuples=n_tuples,
                wall_ms=float(wall * 1000.0),
                udf_calls=calls,
                speedup=float(serial_wall / max(wall, 1e-12)),
            )
    return table


def parallel_report(table: ExperimentTable) -> dict:
    """JSON-ready summary of a :func:`parallel_scaling` run.

    ``speedup`` maps ``strategy -> {workers -> speedup}``;
    ``speedup_at_4`` pulls out the headline workers=4 number tracked by the
    CI smoke artifact (falling back to the largest measured worker count
    when 4 was not part of the sweep).
    """
    speedups: dict[str, dict[int, float]] = {}
    for row in table.rows:
        if row["mode"] != "parallel":
            continue
        speedups.setdefault(row["strategy"], {})[int(row["workers"])] = float(row["speedup"])
    headline = {}
    for strategy, by_workers in speedups.items():
        target = 4 if 4 in by_workers else max(by_workers)
        headline[strategy] = {"workers": target, "speedup": by_workers[target]}
    return {
        "experiment_id": table.experiment_id,
        "description": table.description,
        "rows": list(table.rows),
        "speedup": {s: {str(w): v for w, v in by.items()} for s, by in speedups.items()},
        "speedup_at_4": headline,
    }


def _same_outputs(a_outputs, b_outputs) -> bool:
    """Bit-identity of two runs: samples, bounds and per-tuple UDF charges."""
    if a_outputs is None or b_outputs is None or len(a_outputs) != len(b_outputs):
        return False
    for a, b in zip(a_outputs, b_outputs):
        if not np.array_equal(a.distribution.samples, b.distribution.samples):
            return False
        if a.error_bound != b.error_bound or a.udf_calls != b.udf_calls:
            return False
    return True


def shared_learning(
    function_name: str = "F4",
    workers: int = 4,
    n_tuples: int = 32,
    batch_size: int = 8,
    real_eval_time: float = 2e-3,
    epsilon: float = 0.15,
    n_samples: int | None = 300,
    trials: int = 1,
    random_state=11,
    stream_seed: int = 2,
    shard_seed: int = 42,
) -> ExperimentTable:
    """Worker-count-invariant learning: ``merge="shared"`` vs the shard walls.

    Under ``merge="discard"`` each shard learns alone, so the fleet re-pays
    the model-building UDF calls once per shard; the live shared store lets
    every shard absorb the others' evaluations mid-stream, pinning the
    fleet's *total* UDF charge near the serial run's.  All runs within one
    invocation share seeds and hardware, so the headline
    ``udf_calls_ratio`` — shared-at-``workers`` calls over serial calls —
    is hardware-independent and gateable on any runner; wall-clock speedups
    still need real cores.  The ``workers=1`` shared row doubles as the
    bit-identity check against the serial batched path (the determinism
    half of the acceptance contract).
    """
    table = ExperimentTable(
        experiment_id="shared_learning",
        paper_artifact="live shared GP emulator (beyond the paper)",
        description=(
            "Serial batched vs sharded merge policies on the synthetic eval-time "
            f"workload ({function_name}, real {real_eval_time * 1e3:g} ms/call, "
            f"batch_size={batch_size}): total UDF charge under a live shared model"
        ),
    )
    requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)

    def timed_run(merge: str | None, run_workers: int | None):
        """One run; ``run_workers=None`` is the serial BatchExecutor baseline."""
        best = float("inf")
        calls = 0
        outputs = None
        refresh_ms = append_ms = 0.0
        for _ in range(max(1, trials)):
            udf = reference_function(function_name, real_eval_time=real_eval_time)
            engine = UDFExecutionEngine(
                strategy="gp", requirement=requirement, random_state=random_state,
                n_samples=n_samples,
            )
            dists = list(
                input_stream(
                    workload_for_udf(udf), n_tuples, random_state=as_generator(stream_seed)
                )
            )
            started = time.perf_counter()
            if run_workers is None:
                outputs = BatchExecutor(engine, batch_size).compute_batch(udf, dists)
            else:
                executor = ParallelExecutor(
                    engine,
                    workers=run_workers,
                    batch_size=batch_size,
                    merge=merge,  # type: ignore[arg-type]
                    seed=shard_seed,
                )
                outputs = executor.compute_batch(udf, dists)
                refresh_ms = executor.timings.get("model_refresh") * 1000.0
                append_ms = executor.timings.get("model_append") * 1000.0
            best = min(best, time.perf_counter() - started)
            calls = udf.call_count
        return best, calls, outputs, refresh_ms, append_ms

    serial_wall, serial_calls, serial_outputs, _, _ = timed_run(None, None)

    def add(mode, merge, run_workers, wall, calls, matches, refresh_ms, append_ms):
        table.add_row(
            mode=mode,
            merge=merge,
            workers=run_workers,
            n_tuples=n_tuples,
            wall_ms=float(wall * 1000.0),
            udf_calls=calls,
            udf_calls_ratio=float(calls / max(serial_calls, 1)),
            speedup=float(serial_wall / max(wall, 1e-12)),
            matches_serial=matches,
            model_refresh_ms=refresh_ms,
            model_append_ms=append_ms,
        )

    add("serial", "-", 1, serial_wall, serial_calls, True, 0.0, 0.0)

    wall, calls, outputs, refresh_ms, append_ms = timed_run("shared", 1)
    add("shared-serial", "shared", 1, wall, calls,
        _same_outputs(serial_outputs, outputs), refresh_ms, append_ms)

    wall, calls, _, refresh_ms, append_ms = timed_run("discard", workers)
    add("sharded", "discard", workers, wall, calls, None, refresh_ms, append_ms)

    wall, calls, _, refresh_ms, append_ms = timed_run("shared", workers)
    add("sharded", "shared", workers, wall, calls, None, refresh_ms, append_ms)
    return table


def shared_learning_report(table: ExperimentTable) -> dict:
    """JSON-ready summary of a :func:`shared_learning` run.

    ``udf_calls_ratio_workers4`` is the headline gated metric — the shared
    fleet's total UDF charge over the serial run's, measured in the same
    invocation so it transfers across runner hardware;
    ``identical_at_1`` records the ``workers=1`` bit-identity verdict; the
    speedups and model-exchange costs ride along for trend tracking.
    """
    ratio = speedup = None
    discard_ratio = identical_at_1 = None
    refresh_ms = append_ms = None
    for row in table.rows:
        if row["mode"] == "shared-serial":
            identical_at_1 = bool(row["matches_serial"])
        elif row["mode"] == "sharded" and row["merge"] == "shared":
            ratio = float(row["udf_calls_ratio"])
            speedup = float(row["speedup"])
            refresh_ms = float(row["model_refresh_ms"])
            append_ms = float(row["model_append_ms"])
        elif row["mode"] == "sharded" and row["merge"] == "discard":
            discard_ratio = float(row["udf_calls_ratio"])
    return {
        "experiment_id": table.experiment_id,
        "description": table.description,
        "rows": list(table.rows),
        "udf_calls_ratio_workers4": ratio,
        "discard_calls_ratio_workers4": discard_ratio,
        "speedup_at_4": speedup,
        "identical_at_1": identical_at_1,
        "model_refresh_ms": refresh_ms,
        "model_append_ms": append_ms,
    }
