"""Cross-tuple pipeline benchmark: lookahead sweep (CI smoke).

Measures the wall-clock effect of the cross-tuple pipeline scheduler
(:class:`~repro.engine.pipeline.PipelinedExecutor`) on a workload whose
black-box calls carry **real** per-call latency
(:class:`~repro.udf.synthetic.RealCostFunction`).  The comparison point is
PR 3's *within-tuple* overlap (:class:`~repro.engine.async_exec
.AsyncRefinementExecutor` at the same refinement window): that path still
serialises the window rounds of consecutive tuples — the tail of tuple *i*
blocks the sampling, first inference and first window of tuple *i + 1* —
and hiding exactly that gap is the scheduler's job.  The gap is widest at
*small* windows (the call-frugal configuration: speculative overshoot per
round is at most ``window - 1`` evaluations), which is why the default
sweep uses a modest ``inflight``.

Protocol: the same tuple stream (identical seeds, cold model) is pushed
through the serial :class:`~repro.engine.batch.BatchExecutor`, through
:class:`AsyncRefinementExecutor` at the configured window, and through
:class:`PipelinedExecutor` at each lookahead.  The table reports
wall-clock, UDF calls (the pipeline pays extra, deterministic speculative
calls) and the speedup versus the *async* run.  Two rows double as
determinism checks, both CI-enforced by ``run_all --smoke``:

* ``lookahead=1`` (scheduler disengaged, no window) must be **bit-identical
  to the serial batched run**, and
* every ``lookahead > 1`` row must be **bit-identical to the async run** —
  the scheduler's contract is that prefetching changes who pays for an
  evaluation and when it happens, never the committed trajectory.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.accuracy import AccuracyRequirement
from repro.engine.async_exec import AsyncRefinementExecutor
from repro.engine.batch import BatchExecutor
from repro.engine.executor import UDFExecutionEngine
from repro.engine.pipeline import PipelinedExecutor
from repro.rng import as_generator
from repro.udf.synthetic import reference_function
from repro.workloads.generators import input_stream, workload_for_udf


def udf_pipeline(
    function_name: str = "F1",
    lookahead_list: tuple[int, ...] = (1, 2, 4),
    inflight: int = 4,
    n_tuples: int = 16,
    batch_size: int = 16,
    real_eval_time: float = 2e-2,
    real_eval_jitter: float = 0.0,
    epsilon: float = 0.15,
    n_samples: int | None = 120,
    trials: int = 1,
    random_state=7,
    stream_seed: int = 3,
) -> ExperimentTable:
    """Speedup-versus-``pipeline_lookahead`` table for cross-tuple overlap.

    ``real_eval_time`` is the black box's genuine per-call latency;
    ``real_eval_jitter`` optionally varies it per point so concurrent calls
    complete out of submission order (the results must not change — see
    ``tests/test_pipeline.py``).  ``trials`` repeats each timed run and
    keeps the fastest, the usual guard against scheduler noise.

    The ``lookahead=1`` row runs the scheduler disengaged (and without a
    window) and records bit-identity against the serial batched baseline in
    ``matches_serial``; rows at ``lookahead > 1`` record bit-identity
    against the within-tuple async baseline in ``matches_async`` — both are
    halves of the determinism contract and expected ``True`` everywhere.
    """
    table = ExperimentTable(
        experiment_id="udf_pipeline",
        paper_artifact="cross-tuple pipelined refinement (beyond the paper)",
        description=(
            "Within-tuple async vs cross-tuple pipelined refinement wall-clock on "
            f"the real-cost workload ({function_name}, {real_eval_time * 1e3:g} ms/call, "
            f"inflight={inflight}, batch_size={batch_size})"
        ),
    )
    requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)

    def run(mode: str, lookahead: int | None = None):
        """One full run; returns (best wall-clock, udf calls, outputs, waste)."""
        best = float("inf")
        calls = 0
        outputs = None
        wasted = 0
        for _ in range(max(1, trials)):
            udf = reference_function(
                function_name,
                real_eval_time=real_eval_time,
                real_eval_jitter=real_eval_jitter,
            )
            kwargs = {"n_samples": n_samples} if n_samples else {}
            engine = UDFExecutionEngine(
                strategy="gp", requirement=requirement, random_state=random_state,
                **kwargs,
            )
            dists = list(
                input_stream(
                    workload_for_udf(udf), n_tuples, random_state=as_generator(stream_seed)
                )
            )
            started = time.perf_counter()
            if mode == "serial":
                outputs = BatchExecutor(engine, batch_size).compute_batch(udf, dists)
            elif mode == "async":
                outputs = AsyncRefinementExecutor(
                    engine, inflight=inflight, batch_size=batch_size
                ).compute_batch(udf, dists)
            else:
                executor = PipelinedExecutor(
                    engine,
                    lookahead=lookahead,
                    # lookahead=1 disengages the scheduler entirely: no
                    # window either, so the row checks bit-identity against
                    # the *serial* batched path (the acceptance contract).
                    inflight=None if lookahead == 1 else inflight,
                    batch_size=batch_size,
                )
                outputs = executor.compute_batch(udf, dists)
                wasted = executor.last_wasted_calls
            best = min(best, time.perf_counter() - started)
            calls = udf.call_count
        return best, calls, outputs, wasted

    serial_wall, serial_calls, serial_outputs, _ = run("serial")
    table.add_row(
        mode="serial", lookahead=0, n_tuples=n_tuples,
        wall_ms=float(serial_wall * 1000.0), udf_calls=serial_calls,
        wasted_calls=0, speedup=None,
        matches_serial=True, matches_async=None,
    )
    async_wall, async_calls, async_outputs, _ = run("async")
    table.add_row(
        mode="async", lookahead=0, n_tuples=n_tuples,
        wall_ms=float(async_wall * 1000.0), udf_calls=async_calls,
        wasted_calls=0, speedup=1.0,
        matches_serial=_outputs_identical(serial_outputs, async_outputs),
        matches_async=True,
    )
    for lookahead in lookahead_list:
        wall, calls, outputs, wasted = run("pipeline", lookahead)
        table.add_row(
            mode="pipeline",
            lookahead=lookahead,
            n_tuples=n_tuples,
            wall_ms=float(wall * 1000.0),
            udf_calls=calls,
            wasted_calls=wasted,
            speedup=float(async_wall / max(wall, 1e-12)),
            matches_serial=_outputs_identical(serial_outputs, outputs),
            matches_async=_outputs_identical(async_outputs, outputs),
        )
    return table


def _outputs_identical(a_outputs, b_outputs) -> bool:
    """Whether two runs produced bit-identical distributions and bounds."""
    if a_outputs is None or b_outputs is None or len(a_outputs) != len(b_outputs):
        return False
    for a, b in zip(a_outputs, b_outputs):
        if not np.array_equal(a.distribution.samples, b.distribution.samples):
            return False
        if a.error_bound != b.error_bound:
            return False
    return True


def pipeline_report(table: ExperimentTable) -> dict:
    """JSON-ready summary of a :func:`udf_pipeline` run.

    ``speedup`` maps ``lookahead -> speedup over the async baseline``;
    ``speedup_at_4`` pulls out the headline lookahead-4 number tracked by
    the CI smoke artifact (falling back to the largest measured lookahead
    when 4 was not part of the sweep).  ``identical_at_1`` records the
    bit-identity verdict of the ``lookahead=1`` row against the serial
    batched run, and ``identical_above_1`` the verdict of every deeper row
    against the async run — both halves of the determinism contract.
    """
    speedups: dict[int, float] = {}
    identical_at_1 = None
    identical_above_1 = None
    for row in table.rows:
        if row["mode"] != "pipeline":
            continue
        lookahead = int(row["lookahead"])
        speedups[lookahead] = float(row["speedup"])
        if lookahead == 1:
            identical_at_1 = bool(row["matches_serial"])
        else:
            verdict = bool(row["matches_async"])
            identical_above_1 = (
                verdict if identical_above_1 is None else (identical_above_1 and verdict)
            )
    headline = None
    deep = [k for k in speedups if k > 1]
    if deep:
        target = 4 if 4 in speedups else max(deep)
        headline = {"lookahead": target, "speedup": speedups[target]}
    return {
        "experiment_id": table.experiment_id,
        "description": table.description,
        "rows": list(table.rows),
        "speedup": {str(k): v for k, v in sorted(speedups.items())},
        "speedup_at_4": headline,
        "identical_at_1": identical_at_1,
        "identical_above_1": identical_above_1,
    }
