"""Batched versus per-tuple execution benchmark (the CI smoke workload).

Measures the wall-clock effect of the batched execution pipeline on the
synthetic eval-time workload: the same stream of uncertain tuples is pushed
through :meth:`~repro.engine.executor.UDFExecutionEngine.compute` one tuple
at a time and through :class:`~repro.engine.batch.BatchExecutor` in chunks,
with identical seeds (so both paths do identical numerical work — see
``tests/test_engine_batch.py``).  The table reports the per-mode wall-clock,
the batched pipeline's per-phase split (sampling / inference / refinement),
and the speedup.

Timing protocol: both engines first process ``warmup_tuples`` tuples
per-tuple so the GP model reaches its steady state (the interesting regime —
a cold model spends its time on UDF refinement, which is identical work in
both modes), then the next ``n_tuples`` tuples are timed.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.accuracy import AccuracyRequirement
from repro.engine.batch import BatchExecutor
from repro.engine.executor import UDFExecutionEngine
from repro.rng import as_generator
from repro.udf.synthetic import reference_function
from repro.workloads.generators import input_stream, workload_for_udf


def batch_pipeline_speedup(
    function_name: str = "F1",
    strategies: tuple[str, ...] = ("gp", "mc"),
    n_tuples: int = 96,
    warmup_tuples: int = 48,
    batch_size: int = 32,
    epsilon: float = 0.12,
    eval_time: float = 1e-3,
    n_samples: int | None = 2000,
    trials: int = 2,
    random_state=11,
) -> ExperimentTable:
    """Wall-clock of per-tuple versus batched execution on one tuple stream.

    ``n_samples`` overrides the GP processors' per-tuple Monte-Carlo budget
    (the default emphasises the steady-state inference regime the batching
    targets); the plain ``mc`` strategy always uses the (ε, δ)-derived
    sample count, so its rows are unaffected by this knob.  ``trials``
    repeats each timed run and keeps the fastest, the standard guard
    against scheduler noise on shared CI runners.
    """
    table = ExperimentTable(
        experiment_id="batch_pipeline",
        paper_artifact="batched execution pipeline (beyond the paper)",
        description=(
            "Per-tuple vs batched wall-clock on the synthetic eval-time workload "
            f"({function_name}, batch_size={batch_size}, identical seeds)"
        ),
    )
    requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)
    processor_kwargs = {} if n_samples is None else {"n_samples": n_samples}
    for strategy in strategies:
        timed: dict[str, float] = {}
        phases: dict[str, dict[str, float]] = {}
        for mode in ("per_tuple", "batched"):
            mode_times = []
            mode_phases: list[dict[str, float]] = []
            for _ in range(max(1, trials)):
                udf = reference_function(function_name, simulated_eval_time=eval_time)
                engine = UDFExecutionEngine(
                    strategy=strategy,
                    requirement=requirement,
                    random_state=random_state,
                    **processor_kwargs,
                )
                stream_rng = as_generator(random_state)
                spec = workload_for_udf(udf)
                warmup = list(input_stream(spec, warmup_tuples, random_state=stream_rng))
                tuples = list(input_stream(spec, n_tuples, random_state=stream_rng))
                for dist in warmup:
                    engine.compute(udf, dist)
                if mode == "per_tuple":
                    started = time.perf_counter()
                    for dist in tuples:
                        engine.compute(udf, dist)
                    mode_times.append(time.perf_counter() - started)
                    mode_phases.append({})
                else:
                    executor = BatchExecutor(engine, batch_size=batch_size)
                    started = time.perf_counter()
                    executor.compute_batch(udf, tuples)
                    mode_times.append(time.perf_counter() - started)
                    mode_phases.append(dict(executor.timings.seconds))
            # Keep the wall-clock and the phase split from the same (fastest)
            # trial so the per-phase attribution stays consistent.
            fastest = min(range(len(mode_times)), key=mode_times.__getitem__)
            timed[mode] = mode_times[fastest]
            phases[mode] = mode_phases[fastest]
        speedup = timed["per_tuple"] / max(timed["batched"], 1e-12)
        for mode in ("per_tuple", "batched"):
            mode_phases = phases[mode]
            table.add_row(
                strategy=strategy,
                mode=mode,
                n_tuples=n_tuples,
                batch_size=batch_size if mode == "batched" else 1,
                wall_ms=float(timed[mode] * 1000.0),
                sampling_ms=float(mode_phases.get("sampling", float("nan")) * 1000.0),
                inference_ms=float(mode_phases.get("inference", float("nan")) * 1000.0),
                refinement_ms=float(mode_phases.get("refinement", float("nan")) * 1000.0),
                speedup=float(speedup) if mode == "batched" else 1.0,
            )
    return table


def smoke_report(table: ExperimentTable) -> dict:
    """JSON-ready summary of a :func:`batch_pipeline_speedup` run.

    This is what CI uploads as ``BENCH_smoke.json`` so the performance
    trajectory of the batched pipeline is tracked from PR to PR.
    """
    speedups = {
        row["strategy"]: row["speedup"] for row in table.rows if row["mode"] == "batched"
    }
    return {
        "experiment_id": table.experiment_id,
        "description": table.description,
        "rows": [
            {k: (None if isinstance(v, float) and np.isnan(v) else v) for k, v in row.items()}
            for row in table.rows
        ],
        "speedup": speedups,
        "min_speedup": min(speedups.values()) if speedups else None,
    }
