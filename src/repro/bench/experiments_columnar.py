"""Columnar versus tuple-store execution benchmark (the CI smoke workload).

Measures the wall-clock effect of the columnar storage layout
(``ExecutionPlan(storage="columnar")``) on the steady-state batched
pipeline: the same stream of uncertain tuples is pushed through a
tuple-store :class:`~repro.engine.batch.BatchExecutor` and through a
columnar one, with identical seeds.  The columnar path replaces per-tuple
Python loops with whole-column kernels — one stacked Monte-Carlo draw per
chunk, a column-armed kernel cache serving row slices of one stacked
evaluation, grouped inference GEMMs, hoisted band calibration and a
batched envelope/bound sweep — and is gated **bit-identical** to the
tuple store, so the table doubles as the identity check the smoke gate
enforces (values, bounds and UDF charge counters must all match).

Timing protocol: both engines first process ``warmup_tuples`` tuples
through the tuple-store batched path so the GP model reaches its steady
state (the regime the columnar kernels target — a cold model spends its
time on refinement, which is identical scalar work in both layouts), then
the next ``n_tuples`` tuples are timed.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.accuracy import AccuracyRequirement
from repro.engine.batch import BatchExecutor
from repro.engine.executor import UDFExecutionEngine
from repro.rng import as_generator
from repro.udf.synthetic import high_dimensional_function
from repro.workloads.generators import input_stream, workload_for_udf


def _outputs_identical(reference, candidate) -> bool:
    """Bitwise comparison of two output lists (values, bounds, charges)."""
    if len(reference) != len(candidate):
        return False
    for ref, got in zip(reference, candidate):
        if not np.array_equal(ref.distribution.samples, got.distribution.samples):
            return False
        if ref.error_bound != got.error_bound:
            return False
        if ref.udf_calls != got.udf_calls:
            return False
    return True


def columnar_speedup(
    dimension: int = 1,
    n_tuples: int = 384,
    warmup_tuples: int = 96,
    batch_size: int = 32,
    epsilon: float = 0.35,
    eval_time: float = 5e-4,
    n_samples: int | None = 64,
    band_method: str = "bonferroni",
    trials: int = 3,
    random_state=11,
) -> ExperimentTable:
    """Wall-clock of tuple-store versus columnar batched execution.

    Both modes run the gp strategy on the same warmed-up engine state and
    the same seeds; the columnar rows additionally record whether the run
    was bit-identical to the tuple-store reference (the determinism
    contract of the storage layer).  ``n_samples`` sets the per-tuple
    Monte-Carlo budget — the per-tuple path's cost at small budgets is
    dominated by per-call dispatch (dozens of numpy calls per tuple on
    tiny arrays), which is exactly the overhead the columnar kernels
    amortise across the chunk, so the default is a small budget in the
    steady-state (zero-refinement) regime where the storage layout is the
    only difference between the runs.  ``band_method`` picks the
    confidence-band calibration both storages share; the default
    ``"bonferroni"`` is the closed-form method, so the benchmark isolates
    the storage layout rather than the euler method's per-box root-finding
    (which is identical scalar work in both layouts and would dilute the
    ratio).  ``trials`` repeats each timed run and keeps the fastest, the
    standard guard against scheduler noise.
    """
    table = ExperimentTable(
        experiment_id="columnar",
        paper_artifact="columnar U-relation execution (beyond the paper)",
        description=(
            "Tuple-store vs columnar batched wall-clock on the synthetic "
            f"workload ({dimension}-D, batch_size={batch_size}, identical seeds)"
        ),
    )
    requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)
    processor_kwargs: dict = {"band_method": band_method}
    if n_samples is not None:
        processor_kwargs["n_samples"] = n_samples
    timed: dict[str, float] = {}
    phases: dict[str, dict[str, float]] = {}
    outputs: dict[str, list] = {}
    for mode in ("tuple", "columnar"):
        mode_times = []
        mode_phases: list[dict[str, float]] = []
        for _ in range(max(1, trials)):
            udf = high_dimensional_function(dimension, simulated_eval_time=eval_time)
            engine = UDFExecutionEngine(
                strategy="gp",
                requirement=requirement,
                random_state=random_state,
                **processor_kwargs,
            )
            stream_rng = as_generator(random_state)
            spec = workload_for_udf(udf)
            warmup = list(input_stream(spec, warmup_tuples, random_state=stream_rng))
            tuples = list(input_stream(spec, n_tuples, random_state=stream_rng))
            # Warm up through the tuple-store path in *both* modes so the
            # timed region starts from identical model state.
            BatchExecutor(engine, batch_size=batch_size).compute_batch(udf, warmup)
            executor = BatchExecutor(engine, batch_size=batch_size, storage=mode)
            started = time.perf_counter()
            results = executor.compute_batch(udf, tuples)
            mode_times.append(time.perf_counter() - started)
            mode_phases.append(dict(executor.timings.seconds))
        fastest = min(range(len(mode_times)), key=mode_times.__getitem__)
        timed[mode] = mode_times[fastest]
        phases[mode] = mode_phases[fastest]
        outputs[mode] = results  # every trial is same-seed, so any trial's
        # outputs represent the mode; the last one is in hand.
    identical = _outputs_identical(outputs["tuple"], outputs["columnar"])
    speedup = timed["tuple"] / max(timed["columnar"], 1e-12)
    for mode in ("tuple", "columnar"):
        mode_phases = phases[mode]
        table.add_row(
            strategy="gp",
            storage=mode,
            n_tuples=n_tuples,
            batch_size=batch_size,
            n_samples=n_samples if n_samples is not None else -1,
            wall_ms=float(timed[mode] * 1000.0),
            sampling_ms=float(mode_phases.get("sampling", float("nan")) * 1000.0),
            inference_ms=float(mode_phases.get("inference", float("nan")) * 1000.0),
            refinement_ms=float(mode_phases.get("refinement", float("nan")) * 1000.0),
            speedup=float(speedup) if mode == "columnar" else 1.0,
            identical_to_tuple=bool(identical) if mode == "columnar" else True,
        )
    return table


def columnar_report(table: ExperimentTable) -> dict:
    """JSON-ready summary of a :func:`columnar_speedup` run.

    Feeds the smoke artifact: ``identical_to_tuple`` is the non-overridable
    identity gate, ``speedup`` the perf-gated ratio.
    """
    columnar_rows = [row for row in table.rows if row["storage"] == "columnar"]
    speedup = columnar_rows[0]["speedup"] if columnar_rows else None
    identical = columnar_rows[0]["identical_to_tuple"] if columnar_rows else None
    return {
        "experiment_id": table.experiment_id,
        "description": table.description,
        "rows": [
            {k: (None if isinstance(v, float) and np.isnan(v) else v) for k, v in row.items()}
            for row in table.rows
        ],
        "speedup": speedup,
        "identical_to_tuple": identical,
    }
