"""Profile-driven auto-planner benchmark: ``plan="auto"`` vs hand-tuning.

Measures what the UDF catalog's declared cost profiles buy: a query over a
declared high-latency async UDF service submitted with ``plan="auto"``
(:meth:`~repro.engine.plan.ExecutionPlan.auto`) against the same query on
the *naive default* plan — the serial batched path a caller gets when they
configure nothing.  On a latency-bound workload the auto-planner reads the
profile, picks the asyncio transport with a deep in-flight window plus
cross-tuple lookahead, and overlaps the awaited latency the naive plan
pays one call at a time.

Protocol: the same tuple stream (identical seeds, cold model) runs three
ways — the naive default plan, ``plan="auto"``, and the *explicit*
spelling of the very plan ``auto`` resolves to.  The table reports
wall-clock, UDF calls and the speedup versus the naive run.  The explicit
row is the experiment's correctness half: ``plan="auto"`` must be
**bit-identical** to spelling the resolved plan by hand (auto only ever
*selects* a plan, never changes evaluation semantics) — the smoke driver
enforces that verdict non-overridably, like the other identity gates,
while the speedup ratio rides the ordinary label-overridable perf gate.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.accuracy import AccuracyRequirement
from repro.engine.executor import UDFExecutionEngine
from repro.engine.plan import ExecutionPlan
from repro.rng import as_generator
from repro.udf.synthetic import async_service_udf
from repro.workloads.generators import input_stream, workload_for_udf


def auto_plan(
    function_name: str = "F4",
    n_tuples: int = 8,
    batch_size: int = 32,
    service_latency: float = 2e-2,
    service_jitter: float = 0.0,
    epsilon: float = 0.12,
    n_samples: int | None = 120,
    trials: int = 1,
    random_state=7,
    stream_seed: int = 3,
) -> ExperimentTable:
    """Auto-planned vs naive-default wall-clock on a declared-latency UDF.

    The black box is :func:`~repro.udf.synthetic.async_service_udf` with a
    declared per-request ``service_latency``, so its derived
    :class:`~repro.udf.catalog.UDFProfile` is slow and async-capable and
    the auto-planner selects the overlapped asyncio configuration.  The
    naive baseline is ``ExecutionPlan(batch_size=batch_size)`` — the
    serial batched path of an unconfigured caller.  ``trials`` repeats
    each timed run and keeps the fastest, the usual guard against
    scheduler noise.

    The ``matches_auto`` column records bit-identity against the
    ``plan="auto"`` run: trivially ``True`` on the auto row, *enforced*
    ``True`` on the explicit row (the auto≡explicit acceptance check),
    and legitimately ``False`` on the naive row whenever the auto plan's
    windowed trajectory absorbs different training points.
    """
    requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)
    probe = async_service_udf(
        function_name, latency=service_latency, jitter=service_jitter,
        random_state=random_state,
    )

    def fresh_engine() -> UDFExecutionEngine:
        """A same-seeded engine, so each mode refines from identical state."""
        kwargs = {"n_samples": n_samples} if n_samples else {}
        return UDFExecutionEngine(
            strategy="gp", requirement=requirement, random_state=random_state,
            **kwargs,
        )

    explicit_plan = ExecutionPlan.auto(
        probe, relation_size=n_tuples, engine=fresh_engine()
    )
    table = ExperimentTable(
        experiment_id="auto_plan",
        paper_artifact="profile-driven auto-planner (beyond the paper)",
        description=(
            "Naive default plan vs catalog-profile auto-planning on a "
            f"declared-latency async UDF service ({probe.name}, "
            f"{service_latency * 1e3:g} ms/request, n_tuples={n_tuples}; "
            f"auto resolves to {explicit_plan!r})"
        ),
    )

    def run(plan):
        """One full timed run of ``plan`` on the fixed same-seed stream."""
        best = float("inf")
        calls = 0
        outputs = None
        for _ in range(max(1, trials)):
            udf = async_service_udf(
                function_name, latency=service_latency, jitter=service_jitter,
                random_state=random_state,
            )
            engine = fresh_engine()
            dists = list(
                input_stream(
                    workload_for_udf(udf), n_tuples,
                    random_state=as_generator(stream_seed),
                )
            )
            started = time.perf_counter()
            outputs = engine.compute_with_plan(udf, dists, plan=plan).outputs
            best = min(best, time.perf_counter() - started)
            calls = sum(output.udf_calls for output in outputs)
        return best, calls, outputs

    naive_wall, naive_calls, naive_outputs = run(ExecutionPlan(batch_size=batch_size))
    auto_wall, auto_calls, auto_outputs = run("auto")
    explicit_wall, explicit_calls, explicit_outputs = run(explicit_plan)
    for mode, wall, calls, outputs in (
        ("naive", naive_wall, naive_calls, naive_outputs),
        ("auto", auto_wall, auto_calls, auto_outputs),
        ("explicit", explicit_wall, explicit_calls, explicit_outputs),
    ):
        table.add_row(
            mode=mode,
            n_tuples=n_tuples,
            wall_ms=float(wall * 1000.0),
            udf_calls=calls,
            speedup=float(naive_wall / max(wall, 1e-12)),
            matches_auto=_outputs_identical(auto_outputs, outputs),
        )
    return table


def auto_plan_report(table: ExperimentTable) -> dict:
    """JSON-ready summary of an :func:`auto_plan` run.

    ``speedup`` is the auto-planned run's headline ratio over the naive
    default plan (the perf-gate metric); ``identical_to_explicit`` is the
    auto≡explicit bit-identity verdict the smoke driver enforces
    non-overridably; ``resolved_plan`` records what ``auto`` chose, pulled
    from the table description for the artifact diff.
    """
    by_mode = {str(row["mode"]): row for row in table.rows}
    auto_row = by_mode.get("auto")
    explicit_row = by_mode.get("explicit")
    return {
        "experiment_id": table.experiment_id,
        "description": table.description,
        "rows": list(table.rows),
        "speedup": float(auto_row["speedup"]) if auto_row else None,
        "identical_to_explicit": (
            bool(explicit_row["matches_auto"]) if explicit_row else None
        ),
    }


def _outputs_identical(a_outputs, b_outputs) -> bool:
    """Whether two runs produced bit-identical distributions and bounds."""
    if a_outputs is None or b_outputs is None or len(a_outputs) != len(b_outputs):
        return False
    for a, b in zip(a_outputs, b_outputs):
        if not np.array_equal(a.distribution.samples, b.distribution.samples):
            return False
        if a.error_bound != b.error_bound:
            return False
    return True
