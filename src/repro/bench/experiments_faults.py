"""Fault-injection benchmark: determinism under retries (CI smoke gate).

The robustness contract of the retry machinery
(:class:`~repro.udf.retry.RetryPolicy`, :mod:`repro.udf.faults`) is that a
recovered run is indistinguishable from a lucky one: a retried evaluation
re-issues the *same* input point to a deterministic black box, failed
attempts charge nothing, and Monte-Carlo sampling is the only random-stream
consumer — so a run that survived injected transient faults must be
**bit-identical** to the fault-free run under the same seed.

Protocol: the same tuple stream (identical seeds, cold model) runs twice
per execution mode — once fault-free, once with a
:class:`~repro.udf.faults.FaultSchedule` injecting
:class:`~repro.exceptions.TransientUDFError` at a configured rate from a
seeded counter-based generator (replayable, no wall-clock randomness) —
and the outputs are compared sample-for-sample.  The sweep covers the
three transports of the unified runtime: the serial batched path, the
thread-pool overlapped path, and the asyncio-native path (whose black box
is a natively-async simulated service wrapped by
:class:`~repro.udf.faults.FaultInjectingAsyncUDF`).

The schedule caps consecutive failures per point at ``max_attempts - 1``
so every streak is recoverable by construction; without the cap a streak
of ``max_attempts`` failures (probability ``rate ** max_attempts`` per
attempt chain) would quarantine a tuple and legitimately diverge — that
regime is exercised by the quarantine tests, not this identity gate.

The ``fault_injection`` smoke entry enforces ``identical == True`` for
every mode **non-overridably** (unlike the perf gates, there is no
``REPRO_PERF_OVERRIDE`` escape hatch: a bit-identity break under retries
is a correctness bug, never noise).
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.accuracy import AccuracyRequirement
from repro.engine.executor import UDFExecutionEngine
from repro.engine.plan import ExecutionPlan
from repro.rng import as_generator
from repro.udf.faults import FaultInjectingAsyncUDF, FaultInjectingUDF, FaultSchedule
from repro.udf.retry import RetryPolicy
from repro.udf.synthetic import async_service_udf, reference_function
from repro.workloads.generators import input_stream, workload_for_udf

#: The execution modes the identity gate sweeps (unified-runtime transports).
FAULT_MODES: tuple[str, ...] = ("serial", "threads", "asyncio")


def fault_injection(
    function_name: str = "F4",
    modes: tuple[str, ...] = FAULT_MODES,
    fault_rate: float = 0.3,
    fault_seed: int = 1234,
    max_attempts: int = 3,
    n_tuples: int = 6,
    batch_size: int = 6,
    inflight: int = 4,
    service_latency: float = 5e-3,
    epsilon: float = 0.12,
    n_samples: int | None = 120,
    random_state=7,
    stream_seed: int = 3,
) -> ExperimentTable:
    """Bit-identity-under-injected-faults table across execution modes.

    Each mode contributes one row comparing the faulty run (transient
    faults injected at ``fault_rate`` from seed ``fault_seed``, retried up
    to ``max_attempts`` times per evaluation) against the fault-free run
    of the very same configuration: ``identical`` is the sample-for-sample
    output comparison, ``calls_match`` checks that failed attempts charged
    nothing (the UDF call counters agree), and ``injected_failures`` /
    ``attempts_seen`` record how much chaos the schedule actually dealt —
    a zero there would make the gate vacuous, so the smoke driver checks
    it too.
    """
    table = ExperimentTable(
        experiment_id="fault_injection",
        paper_artifact="fault-tolerant evaluation (beyond the paper)",
        description=(
            "Fault-free vs transient-fault-injected runs under deterministic "
            f"retries ({function_name}, rate={fault_rate:g}, "
            f"max_attempts={max_attempts}, batch_size={batch_size})"
        ),
    )
    requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)
    policy = RetryPolicy(max_attempts=max_attempts, backoff_base=0.0)

    def run(mode: str, inject: bool):
        """One full run of ``mode``; returns (outputs, call_count, schedule)."""
        schedule = None
        if inject:
            # Cap consecutive failures below the attempt budget so every
            # injected streak is recoverable — the precondition of the
            # bit-identity contract this experiment gates.
            schedule = FaultSchedule(
                fault_rate, seed=fault_seed,
                max_failures_per_point=max_attempts - 1,
            )
        if mode == "asyncio":
            inner = async_service_udf(
                function_name, latency=service_latency, random_state=random_state
            )
            udf = FaultInjectingAsyncUDF(inner, schedule) if inject else inner
            plan = ExecutionPlan(
                batch_size=batch_size, async_inflight=inflight,
                transport="asyncio", retry=policy,
            )
        else:
            inner = reference_function(function_name)
            udf = FaultInjectingUDF(inner, schedule) if inject else inner
            if mode == "threads":
                plan = ExecutionPlan(
                    batch_size=batch_size, async_inflight=inflight,
                    transport="threads", retry=policy,
                )
            else:
                plan = ExecutionPlan(batch_size=batch_size, retry=policy)
        kwargs = {"n_samples": n_samples} if n_samples else {}
        engine = UDFExecutionEngine(
            strategy="gp", requirement=requirement, random_state=random_state,
            **kwargs,
        )
        dists = list(
            input_stream(
                workload_for_udf(udf), n_tuples, random_state=as_generator(stream_seed)
            )
        )
        result = engine.compute_with_plan(udf, dists, plan=plan)
        return list(result.outputs), udf.call_count, schedule

    for mode in modes:
        clean_outputs, clean_calls, _ = run(mode, inject=False)
        faulty_outputs, faulty_calls, schedule = run(mode, inject=True)
        assert schedule is not None
        table.add_row(
            mode=mode,
            n_tuples=n_tuples,
            fault_rate=fault_rate,
            max_attempts=max_attempts,
            injected_failures=schedule.injected_failures,
            attempts_seen=schedule.attempts_seen,
            identical=_outputs_identical(clean_outputs, faulty_outputs),
            calls_match=bool(clean_calls == faulty_calls),
            udf_calls=faulty_calls,
        )
    return table


def faults_report(table: ExperimentTable) -> dict:
    """JSON-ready summary of a :func:`fault_injection` run.

    ``identical`` maps ``mode -> bool`` (the non-overridable smoke gate),
    ``calls_match`` the cost-accounting half of the same contract, and
    ``injected`` maps ``mode -> injected fault count`` so the driver can
    reject a vacuous run where no fault actually fired.
    """
    identical: dict[str, bool] = {}
    calls_match: dict[str, bool] = {}
    injected: dict[str, int] = {}
    for row in table.rows:
        mode = str(row["mode"])
        identical[mode] = bool(row["identical"])
        calls_match[mode] = bool(row["calls_match"])
        injected[mode] = int(row["injected_failures"])
    return {
        "experiment_id": table.experiment_id,
        "description": table.description,
        "rows": list(table.rows),
        "identical": identical,
        "calls_match": calls_match,
        "injected": injected,
    }


def _outputs_identical(a_outputs, b_outputs) -> bool:
    """Whether two runs produced bit-identical distributions and bounds."""
    if a_outputs is None or b_outputs is None or len(a_outputs) != len(b_outputs):
        return False
    for a, b in zip(a_outputs, b_outputs):
        if not np.array_equal(a.distribution.samples, b.distribution.samples):
            return False
        if a.error_bound != b.error_bound:
            return False
    return True
