"""Synthetic-workload experiments of Section 6.2–6.3 (Expts 1–7).

Each function reproduces one figure of the paper's Fig. 5 panel using the
controlled Gaussian-mixture UDFs.  Default sizes are scaled down so the
whole suite runs in minutes on a laptop; pass larger parameters for a
full-scale run.  UDF evaluation cost is charged through the simulated
per-call cost of :class:`repro.udf.base.UDF`, so sweeping the evaluation
time ``T`` does not require actually sleeping.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.accuracy import AccuracyRequirement
from repro.core.confidence_bands import band_z_value
from repro.core.emulator import GPEmulator
from repro.core.error_bounds import build_envelope_outputs, gp_discrepancy_bound
from repro.core.local_inference import LocalInferenceEngine, global_inference
from repro.core.mc_baseline import monte_carlo_output, monte_carlo_with_filter
from repro.core.metrics import lambda_discrepancy
from repro.core.olgapro import OLGAPRO
from repro.core.online_tuning import make_strategy
from repro.core.retraining import EagerRetrain, NeverRetrain, ThresholdRetrain
from repro.index.bounding_box import BoundingBox
from repro.rng import as_generator
from repro.udf.synthetic import high_dimensional_function, reference_function
from repro.workloads.generators import (
    input_stream,
    selectivity_predicate,
    true_output_distribution,
    workload_for_udf,
)

DEFAULT_FUNCTIONS = ("F1", "F2", "F3", "F4")


# ---------------------------------------------------------------------------
# Expt 1: local inference (Fig. 5c, 5d)
# ---------------------------------------------------------------------------

def expt1_local_inference(
    gamma_fractions: Sequence[float] = (0.001, 0.005, 0.02, 0.05, 0.1, 0.2),
    function_name: str = "F4",
    n_training: int = 200,
    n_tuples: int = 6,
    n_samples: int = 800,
    n_truth_samples: int = 10000,
    random_state=3,
) -> ExperimentTable:
    """Fig. 5(c, d): accuracy and runtime of local versus global inference."""
    rng = as_generator(random_state)
    udf = reference_function(function_name)
    emulator = GPEmulator(udf)
    emulator.train_initial(n_training, design="random", random_state=rng)
    spec = workload_for_udf(udf)
    output_range = float(np.max(emulator.gp.y_train) - np.min(emulator.gp.y_train))
    lam = 0.01 * output_range

    tuples = list(input_stream(spec, n_tuples, random_state=rng))
    sample_sets = [dist.sample(n_samples, random_state=rng) for dist in tuples]
    truths = [
        true_output_distribution(udf, dist, n_truth_samples, random_state=rng)
        for dist in tuples
    ]

    table = ExperimentTable(
        experiment_id="expt1_local_inference",
        paper_artifact="Figure 5(c) and 5(d)",
        description="Local vs global inference: error bound, actual error, runtime",
    )

    def evaluate(inference_fn, method: str, gamma_fraction: float) -> None:
        errors, bounds, elapsed, selected = [], [], [], []
        for samples, truth in zip(sample_sets, truths):
            started = time.perf_counter()
            result = inference_fn(samples)
            elapsed.append(time.perf_counter() - started)
            band = band_z_value(
                emulator.gp.kernel,
                BoundingBox.from_points(samples),
                alpha=0.05,
                n_points=samples.shape[0],
            )
            envelope = build_envelope_outputs(result.means, result.stds, band.z_value)
            bounds.append(gp_discrepancy_bound(envelope, lam))
            errors.append(lambda_discrepancy(envelope.y_hat, truth, lam))
            selected.append(result.n_selected)
        table.add_row(
            method=method,
            gamma_fraction=float(gamma_fraction),
            error_bound=float(np.mean(bounds)),
            actual_error=float(np.mean(errors)),
            time_ms=float(np.mean(elapsed) * 1000.0),
            mean_points_used=float(np.mean(selected)),
        )

    evaluate(lambda s: global_inference(emulator.gp, s), "global", 0.0)
    for fraction in gamma_fractions:
        engine = LocalInferenceEngine(gamma_threshold=fraction * output_range)
        evaluate(
            lambda s, engine=engine: engine.predict(emulator.gp, emulator.index, s),
            "local",
            fraction,
        )
    return table


# ---------------------------------------------------------------------------
# Expt 2: online tuning strategies (Fig. 5e)
# ---------------------------------------------------------------------------

def expt2_online_tuning(
    strategies: Sequence[str] = ("random", "largest_variance", "optimal_greedy"),
    function_name: str = "F4",
    n_tuples: int = 30,
    initial_points: int = 25,
    n_samples: int = 400,
    max_points_per_tuple: int = 10,
    epsilon: float = 0.1,
    random_state=4,
) -> ExperimentTable:
    """Fig. 5(e): cumulative training points added by each tuning heuristic."""
    table = ExperimentTable(
        experiment_id="expt2_online_tuning",
        paper_artifact="Figure 5(e)",
        description="Accumulated number of training points added over the input stream",
    )
    for strategy_name in strategies:
        rng = as_generator(random_state)
        udf = reference_function(function_name)
        strategy_kwargs = {"max_candidates": 15} if strategy_name == "optimal_greedy" else {}
        processor = OLGAPRO(
            udf,
            AccuracyRequirement(epsilon=epsilon, delta=0.05),
            tuning_strategy=make_strategy(strategy_name, **strategy_kwargs),
            initial_training_points=initial_points,
            max_points_per_tuple=max_points_per_tuple,
            n_samples=n_samples,
            random_state=rng,
        )
        spec = workload_for_udf(udf)
        cumulative = 0
        for tuple_index, dist in enumerate(input_stream(spec, n_tuples, random_state=rng)):
            result = processor.process(dist)
            cumulative += result.points_added
            table.add_row(
                strategy=strategy_name,
                tuple_index=int(tuple_index + 1),
                cumulative_points_added=int(cumulative),
            )
    return table


# ---------------------------------------------------------------------------
# Expt 3: retraining strategies (Fig. 5f, 5g)
# ---------------------------------------------------------------------------

def expt3_retraining(
    thresholds: Sequence[float] = (0.01, 0.05, 0.2, 1.0),
    function_name: str = "F4",
    n_tuples: int = 15,
    n_samples: int = 600,
    epsilon: float = 0.1,
    n_truth_samples: int = 8000,
    random_state=5,
) -> ExperimentTable:
    """Fig. 5(f, g): accuracy and runtime of the retraining strategies."""
    table = ExperimentTable(
        experiment_id="expt3_retraining",
        paper_artifact="Figure 5(f) and 5(g)",
        description="Eager / threshold / no retraining: realised error, runtime, retrain count",
    )
    policies = [("eager", None, EagerRetrain()), ("never", None, NeverRetrain())]
    policies.extend(
        ("threshold", threshold, ThresholdRetrain(threshold=threshold))
        for threshold in thresholds
    )
    for policy_name, threshold, policy in policies:
        rng = as_generator(random_state)
        udf = reference_function(function_name, simulated_eval_time=1e-3)
        processor = OLGAPRO(
            udf,
            AccuracyRequirement(epsilon=epsilon, delta=0.05),
            retraining_policy=policy,
            initial_training_points=20,
            n_samples=n_samples,
            random_state=rng,
        )
        spec = workload_for_udf(udf)
        times, errors = [], []
        n_retrains = 0
        for dist in input_stream(spec, n_tuples, random_state=rng):
            result = processor.process(dist)
            times.append(result.charged_time)
            n_retrains += int(result.retrained)
            truth = true_output_distribution(udf, dist, n_truth_samples, random_state=rng)
            errors.append(
                lambda_discrepancy(result.distribution, truth, processor.lambda_value())
            )
        table.add_row(
            policy=policy_name,
            threshold=float(threshold) if threshold is not None else float("nan"),
            mean_actual_error=float(np.mean(errors)),
            total_time_ms=float(np.sum(times) * 1000.0),
            n_retrains=int(n_retrains),
        )
    return table


# ---------------------------------------------------------------------------
# Expt 4: varying the accuracy requirement epsilon (Fig. 5h)
# ---------------------------------------------------------------------------

def expt4_accuracy_requirement(
    epsilons: Sequence[float] = (0.05, 0.1, 0.15, 0.2),
    function_names: Sequence[str] = DEFAULT_FUNCTIONS,
    n_tuples: int = 8,
    eval_time: float = 1e-3,
    input_family: str = "gaussian",
    random_state=6,
) -> ExperimentTable:
    """Fig. 5(h): per-tuple runtime of OLGAPRO as ε varies, for F1–F4."""
    table = ExperimentTable(
        experiment_id="expt4_accuracy_requirement",
        paper_artifact="Figure 5(h)",
        description="Mean per-tuple charged time of OLGAPRO versus the accuracy requirement",
    )
    for name in function_names:
        for epsilon in epsilons:
            rng = as_generator(random_state)
            udf = reference_function(name, simulated_eval_time=eval_time)
            processor = OLGAPRO(
                udf,
                AccuracyRequirement(epsilon=epsilon, delta=0.05),
                random_state=rng,
            )
            spec = workload_for_udf(udf)
            spec = type(spec)(
                dimension=spec.dimension,
                family=input_family,  # type: ignore[arg-type]
                domain_low=spec.domain_low,
                domain_high=spec.domain_high,
                input_std=spec.input_std,
            )
            times = []
            points = []
            for dist in input_stream(spec, n_tuples, random_state=rng):
                result = processor.process(dist)
                times.append(result.charged_time)
                points.append(result.points_added)
            table.add_row(
                function=name,
                epsilon=float(epsilon),
                mean_time_ms=float(np.mean(times) * 1000.0),
                mean_points_added=float(np.mean(points)),
                n_training_final=int(processor.n_training),
            )
    return table


# ---------------------------------------------------------------------------
# Expt 5: varying the UDF evaluation time T (Fig. 5i)
# ---------------------------------------------------------------------------

def expt5_eval_time(
    eval_times: Sequence[float] = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1),
    function_names: Sequence[str] = DEFAULT_FUNCTIONS,
    n_tuples: int = 6,
    epsilon: float = 0.1,
    random_state=7,
) -> ExperimentTable:
    """Fig. 5(i): GP versus MC runtime as the UDF evaluation time grows."""
    table = ExperimentTable(
        experiment_id="expt5_eval_time",
        paper_artifact="Figure 5(i)",
        description="Mean per-tuple charged time of GP and MC versus UDF evaluation time",
    )
    requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)
    for eval_time in eval_times:
        # MC: the cost model is dominated by m UDF calls per tuple.
        rng = as_generator(random_state)
        udf_mc = reference_function("F1", simulated_eval_time=eval_time)
        spec = workload_for_udf(udf_mc)
        mc_times = []
        for dist in input_stream(spec, n_tuples, random_state=rng):
            result = monte_carlo_output(udf_mc, dist, requirement=requirement, random_state=rng)
            mc_times.append(result.charged_time)
        table.add_row(
            approach="mc",
            function="any",
            eval_time_ms=float(eval_time * 1000.0),
            mean_time_ms=float(np.mean(mc_times) * 1000.0),
        )
        # GP: one processor per function; evaluation cost only matters while
        # the emulator is still collecting training points.
        for name in function_names:
            rng = as_generator(random_state)
            udf_gp = reference_function(name, simulated_eval_time=eval_time)
            processor = OLGAPRO(udf_gp, requirement, random_state=rng)
            gp_times = []
            for dist in input_stream(workload_for_udf(udf_gp), n_tuples, random_state=rng):
                result = processor.process(dist)
                gp_times.append(result.charged_time)
            table.add_row(
                approach="gp",
                function=name,
                eval_time_ms=float(eval_time * 1000.0),
                mean_time_ms=float(np.mean(gp_times) * 1000.0),
            )
    return table


# ---------------------------------------------------------------------------
# Expt 6: online filtering with selection predicates (Fig. 5j, 5k)
# ---------------------------------------------------------------------------

def expt6_filtering(
    target_filter_rates: Sequence[float] = (0.19, 0.72, 0.82, 0.97),
    function_name: str = "F4",
    n_tuples: int = 16,
    epsilon: float = 0.1,
    eval_time: float = 1e-3,
    tep_threshold: float = 0.1,
    n_truth_samples: int = 6000,
    random_state=8,
) -> ExperimentTable:
    """Fig. 5(j, k): runtime and false-positive rate of online filtering."""
    table = ExperimentTable(
        experiment_id="expt6_filtering",
        paper_artifact="Figure 5(j) and 5(k)",
        description="MC / MC+OF / GP / GP+OF under selection predicates of varying selectivity",
    )
    requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)
    for rate in target_filter_rates:
        rng = as_generator(random_state)
        udf = reference_function(function_name, simulated_eval_time=eval_time)
        spec = workload_for_udf(udf)
        predicate = selectivity_predicate(
            udf, spec, target_filter_rate=rate, threshold=tep_threshold, random_state=rng
        )
        tuples = list(input_stream(spec, n_tuples, random_state=rng))
        # Ground truth: which tuples genuinely fall below the TEP threshold.
        truth_tep = []
        for dist in tuples:
            truth = true_output_distribution(udf, dist, n_truth_samples, random_state=rng)
            truth_tep.append(truth.interval_probability(predicate.low, predicate.high))
        should_drop = np.array(truth_tep) < predicate.threshold
        actual_rate = float(np.mean(should_drop))

        def record(approach: str, times: list[float], kept: list[bool]) -> None:
            kept_arr = np.array(kept)
            false_positive = float(np.mean(kept_arr[should_drop])) if should_drop.any() else 0.0
            false_negative = (
                float(np.mean(~kept_arr[~should_drop])) if (~should_drop).any() else 0.0
            )
            table.add_row(
                approach=approach,
                target_filter_rate=float(rate),
                actual_filter_rate=actual_rate,
                mean_time_ms=float(np.mean(times) * 1000.0),
                false_positive_rate=false_positive,
                false_negative_rate=false_negative,
            )

        # Plain MC (no online filtering): full sampling then truncate.
        udf_run = reference_function(function_name, simulated_eval_time=eval_time)
        times, kept = [], []
        for dist in tuples:
            result = monte_carlo_output(udf_run, dist, requirement=requirement, random_state=rng)
            times.append(result.charged_time)
            tep = result.distribution.interval_probability(predicate.low, predicate.high)
            kept.append(tep >= predicate.threshold)
        record("mc", times, kept)

        # MC with online filtering.
        udf_run = reference_function(function_name, simulated_eval_time=eval_time)
        times, kept = [], []
        for dist in tuples:
            result = monte_carlo_with_filter(
                udf_run, dist, predicate, requirement=requirement, random_state=rng
            )
            times.append(result.charged_time)
            kept.append(not result.dropped)
        record("mc+of", times, kept)

        # GP without online filtering.
        udf_run = reference_function(function_name, simulated_eval_time=eval_time)
        processor = OLGAPRO(udf_run, requirement, random_state=rng)
        times, kept = [], []
        for dist in tuples:
            result = processor.process(dist)
            times.append(result.charged_time)
            tep = result.distribution.interval_probability(predicate.low, predicate.high)
            kept.append(tep >= predicate.threshold)
        record("gp", times, kept)

        # GP with online filtering.
        udf_run = reference_function(function_name, simulated_eval_time=eval_time)
        processor = OLGAPRO(udf_run, requirement, random_state=rng)
        times, kept = [], []
        for dist in tuples:
            result = processor.process_with_filter(dist, predicate)
            times.append(result.charged_time)
            kept.append(not result.dropped)
        record("gp+of", times, kept)
    return table


# ---------------------------------------------------------------------------
# Expt 7: varying the function dimensionality (Fig. 5l)
# ---------------------------------------------------------------------------

def expt7_dimensionality(
    dimensions: Sequence[int] = (1, 2, 4, 6),
    mc_eval_times: Sequence[float] = (1e-3, 1e-2, 1e-1, 1.0),
    gp_eval_time: float = 1.0,
    n_tuples: int = 5,
    epsilon: float = 0.1,
    random_state=9,
) -> ExperimentTable:
    """Fig. 5(l): GP versus MC runtime as the UDF dimensionality grows."""
    table = ExperimentTable(
        experiment_id="expt7_dimensionality",
        paper_artifact="Figure 5(l)",
        description="Mean per-tuple charged time versus the input dimensionality",
    )
    requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)
    for dimension in dimensions:
        rng = as_generator(random_state)
        udf_gp = high_dimensional_function(dimension, simulated_eval_time=gp_eval_time)
        processor = OLGAPRO(
            udf_gp,
            requirement,
            initial_training_points=max(5, 3 * dimension),
            max_points_per_tuple=15,
            random_state=rng,
        )
        spec = workload_for_udf(udf_gp)
        gp_times = []
        for dist in input_stream(spec, n_tuples, random_state=rng):
            result = processor.process(dist)
            gp_times.append(result.charged_time)
        table.add_row(
            approach="gp",
            dimension=int(dimension),
            eval_time_ms=float(gp_eval_time * 1000.0),
            mean_time_ms=float(np.mean(gp_times) * 1000.0),
        )
        for eval_time in mc_eval_times:
            rng = as_generator(random_state)
            udf_mc = high_dimensional_function(dimension, simulated_eval_time=eval_time)
            mc_times = []
            for dist in input_stream(workload_for_udf(udf_mc), n_tuples, random_state=rng):
                result = monte_carlo_output(udf_mc, dist, requirement=requirement, random_state=rng)
                mc_times.append(result.charged_time)
            table.add_row(
                approach="mc",
                dimension=int(dimension),
                eval_time_ms=float(eval_time * 1000.0),
                mean_time_ms=float(np.mean(mc_times) * 1000.0),
            )
    return table
