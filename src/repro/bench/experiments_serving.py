"""Serving-layer benchmark: closed-loop load against the QueryService.

Measures the always-on serving layer (:mod:`repro.engine.service`) under a
closed-loop load generator: ``clients`` concurrent client threads each
submit a query through one shared :class:`~repro.engine.session.Session`,
block for the final result, and immediately submit the next — the classic
closed loop whose offered load tracks service capacity.  The workload is
the 20 ms simulated async UDF service
(:func:`~repro.udf.synthetic.async_service_udf`), so each query's cost is
dominated by awaited request latency — the regime where concurrent queries
overlap on the shared worker budget even on a single-core runner (what is
being overlapped is sleep, not CPU).

The table reports, per client count, wall-clock, throughput
(queries/second) and the client-observed p50/p99 latency.  Two headline
numbers feed the CI perf gate:

* ``scaling_at_4`` — throughput at 4 clients over the 1-client closed
  loop (the acceptance criterion is ≥2× on this workload), and
* ``p99_at_4`` — the 4-client p99 latency (sleep-dominated, hence
  comparable across runners).

The run also executes one served query and the same query (same seed,
same plan) directly, and records whether the two were **bit-identical**
(``identical_to_serial``) — the serving determinism contract, enforced
non-overridably by the smoke driver exactly like the other identity
gates.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.accuracy import AccuracyRequirement
from repro.engine.executor import UDFExecutionEngine
from repro.engine.plan import ExecutionPlan
from repro.engine.query import Query
from repro.engine.sdss import generate_galaxy_relation
from repro.engine.session import Session
from repro.udf.synthetic import async_service_udf


def serving_load(
    function_name: str = "F4",
    clients_list: tuple[int, ...] = (1, 4, 16),
    queries_per_client: int = 3,
    n_tuples: int = 2,
    batch_size: int = 2,
    service_latency: float = 2e-2,
    service_jitter: float = 0.0,
    epsilon: float = 0.15,
    n_samples: int | None = 120,
    worker_budget: int = 8,
    queue_limit: int = 64,
    random_state=7,
    relation_seed: int = 11,
) -> ExperimentTable:
    """Closed-loop throughput/latency table for the serving layer.

    Each client thread runs ``queries_per_client`` queries back to back
    through one shared session (fresh engine and UDF instance per query,
    fixed ``random_state``, so every query is the same deterministic unit
    of work).  ``service_latency`` is the simulated per-request await of
    the async UDF service; with ``n_tuples`` small the whole query is one
    evaluation chunk, and concurrency comes purely from the service
    overlapping chunks of *different* queries on its ``worker_budget``.

    The first row (``clients=0``) is the direct serial reference: the
    same query run without the service, timed once, with its
    bit-identity verdict against the served result in
    ``identical_to_serial``.
    """
    table = ExperimentTable(
        experiment_id="serving",
        paper_artifact="always-on concurrent query serving (beyond the paper)",
        description=(
            "Closed-loop client load vs QueryService throughput/latency on a "
            f"simulated async UDF service ({function_name}, "
            f"{service_latency * 1e3:g} ms/request, n_tuples={n_tuples}, "
            f"worker_budget={worker_budget})"
        ),
    )
    requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)
    relation = generate_galaxy_relation(max(2, n_tuples), random_state=relation_seed)
    plan = ExecutionPlan(batch_size=batch_size)
    engine_kwargs = {"n_samples": n_samples} if n_samples else {}

    def make_udf():
        return async_service_udf(
            function_name, latency=service_latency, jitter=service_jitter,
            random_state=random_state,
        )

    def make_engine() -> UDFExecutionEngine:
        return UDFExecutionEngine(
            strategy="gp", requirement=requirement, random_state=random_state,
            **engine_kwargs,
        )

    def make_query() -> Query:
        return Query(relation).apply_udf(
            make_udf(), ["ra_offset", "dec_offset"], alias="f"
        )

    # -- serial reference + bit-identity verdict ----------------------------------
    started = time.perf_counter()
    serial_result = (
        Query(relation)
        .apply_udf(make_udf(), ["ra_offset", "dec_offset"], alias="f", plan=plan)
        .run(make_engine())
    )
    serial_wall = time.perf_counter() - started

    with Session(
        make_engine, plan=plan, worker_budget=worker_budget, queue_limit=queue_limit
    ) as session:
        served_result = session.run(make_query())
        identical = _relations_identical(served_result, serial_result, alias="f")
        table.add_row(
            clients=0,
            queries=1,
            wall_s=float(serial_wall),
            throughput_qps=float(1.0 / max(serial_wall, 1e-12)),
            p50_ms=float(serial_wall * 1000.0),
            p99_ms=float(serial_wall * 1000.0),
            identical_to_serial=identical,
        )

        # -- closed-loop sweep ----------------------------------------------------
        for clients in clients_list:
            latencies: list[float] = []
            lock = threading.Lock()

            def client_loop() -> None:
                for _ in range(queries_per_client):
                    begun = time.perf_counter()
                    session.run(make_query())
                    elapsed = time.perf_counter() - begun
                    with lock:
                        latencies.append(elapsed)

            threads = [
                threading.Thread(target=client_loop, name=f"client-{i}")
                for i in range(clients)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - started
            total = clients * queries_per_client
            table.add_row(
                clients=clients,
                queries=total,
                wall_s=float(wall),
                throughput_qps=float(total / max(wall, 1e-12)),
                p50_ms=float(np.percentile(latencies, 50) * 1000.0),
                p99_ms=float(np.percentile(latencies, 99) * 1000.0),
                identical_to_serial=identical,
            )
    return table


def _relations_identical(a, b, alias: str) -> bool:
    """Bit-identity of two query results' derived distributions and bounds."""
    a_rel, b_rel = a.relation, b.relation
    if len(a_rel.tuples) != len(b_rel.tuples):
        return False
    for ra, rb in zip(a_rel.tuples, b_rel.tuples):
        if not np.array_equal(ra[alias].samples, rb[alias].samples):
            return False
        if ra.annotations.get(f"{alias}_error_bound") != rb.annotations.get(
            f"{alias}_error_bound"
        ):
            return False
    return True


def serving_report(table: ExperimentTable) -> dict:
    """JSON-ready summary of a :func:`serving_load` run.

    ``throughput`` / ``p50`` / ``p99`` map ``clients -> value``;
    ``scaling_at_4`` is the 4-client-over-1-client throughput ratio (the
    gated acceptance number, ``None`` when either row is missing),
    ``p99_at_4`` the 4-client p99 in milliseconds, and
    ``identical_to_serial`` the bit-identity verdict of the served run
    against the direct serial run — enforced by the smoke driver.
    """
    throughput: dict[int, float] = {}
    p50: dict[int, float] = {}
    p99: dict[int, float] = {}
    identical = None
    for row in table.rows:
        clients = int(row["clients"])
        if clients == 0:
            identical = bool(row["identical_to_serial"])
            continue
        throughput[clients] = float(row["throughput_qps"])
        p50[clients] = float(row["p50_ms"])
        p99[clients] = float(row["p99_ms"])
    scaling_at_4 = None
    if 1 in throughput and 4 in throughput and throughput[1] > 0:
        scaling_at_4 = throughput[4] / throughput[1]
    return {
        "experiment_id": table.experiment_id,
        "description": table.description,
        "rows": list(table.rows),
        "throughput": {str(k): v for k, v in sorted(throughput.items())},
        "p50": {str(k): v for k, v in sorted(p50.items())},
        "p99": {str(k): v for k, v in sorted(p99.items())},
        "scaling_at_4": scaling_at_4,
        "p99_at_4": p99.get(4),
        "identical_to_serial": identical,
    }
