"""Astrophysics case-study experiments of Section 6.4.

Reproduces the case-study table (UDF name / dimensionality / evaluation
time), the example AngDist output density of Fig. 6(a), and the GP-vs-MC
runtime comparison of Fig. 6(b–d) on SDSS-like uncertain inputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.accuracy import AccuracyRequirement
from repro.core.mc_baseline import monte_carlo_output
from repro.core.olgapro import OLGAPRO
from repro.distributions.base import Distribution
from repro.distributions.multivariate import IndependentJoint
from repro.engine.sdss import generate_galaxy_relation
from repro.rng import as_generator
from repro.udf.astro import angdist_udf, case_study_udfs, comove_vol_udf, galage_udf
from repro.udf.base import UDF


def astro_case_study_table(n_probes: int = 50, random_state=0) -> ExperimentTable:
    """The §6.4 table: name, dimensionality and measured evaluation time."""
    table = ExperimentTable(
        experiment_id="astro_case_study_table",
        paper_artifact="Section 6.4 table (FunctName / Dim / EvalTime)",
        description="Measured per-call evaluation time of the astrophysics UDFs",
    )
    for name, udf in case_study_udfs().items():
        eval_time = udf.measure_eval_time(n_probes=n_probes, random_state=random_state)
        table.add_row(
            function=name,
            dimension=int(udf.dimension),
            eval_time_ms=float(eval_time * 1000.0),
        )
    return table


def _astro_inputs(udf_name: str, n_tuples: int, random_state) -> list[Distribution]:
    """Per-tuple input distributions for one astro UDF from the SDSS relation."""
    rng = as_generator(random_state)
    relation = generate_galaxy_relation(max(2 * n_tuples, 8), random_state=rng)
    rows = relation.tuples
    inputs: list[Distribution] = []
    if udf_name == "GalAge":
        for row in rows[:n_tuples]:
            inputs.append(row["redshift"])
    elif udf_name == "AngDist":
        for row in rows[:n_tuples]:
            inputs.append(IndependentJoint([row["ra_offset"], row["dec_offset"]]))
    elif udf_name == "ComoveVol":
        for left, right in zip(rows[:n_tuples], rows[n_tuples : 2 * n_tuples]):
            inputs.append(IndependentJoint([left["redshift"], right["redshift"]]))
    else:
        raise ValueError(f"unknown astro UDF {udf_name!r}")
    return inputs


def astro_output_density(
    n_samples: int = 4000, bins: int = 40, random_state=1
) -> ExperimentTable:
    """Fig. 6(a): example (non-Gaussian) output density of AngDist."""
    rng = as_generator(random_state)
    udf = angdist_udf()
    inputs = _astro_inputs("AngDist", 1, rng)[0]
    result = monte_carlo_output(udf, inputs, n_samples=n_samples, random_state=rng)
    densities, edges = result.distribution.histogram(bins=bins)
    table = ExperimentTable(
        experiment_id="astro_output_density",
        paper_artifact="Figure 6(a)",
        description="Histogram density of the AngDist output for one uncertain galaxy",
    )
    centers = 0.5 * (edges[:-1] + edges[1:])
    for center, density in zip(centers, densities):
        table.add_row(y=float(center), pdf=float(density))
    return table


def astro_gp_vs_mc(
    epsilons: Sequence[float] = (0.05, 0.1, 0.2),
    udf_names: Sequence[str] = ("AngDist", "GalAge", "ComoveVol"),
    n_tuples: int = 6,
    random_state=2,
) -> ExperimentTable:
    """Fig. 6(b–d): GP versus MC runtime for the real astrophysics UDFs."""
    table = ExperimentTable(
        experiment_id="astro_gp_vs_mc",
        paper_artifact="Figure 6(b), 6(c) and 6(d)",
        description="Per-tuple charged time of OLGAPRO and MC on SDSS-like inputs",
    )
    factories = {"AngDist": angdist_udf, "GalAge": galage_udf, "ComoveVol": comove_vol_udf}
    for udf_name in udf_names:
        inputs = _astro_inputs(udf_name, n_tuples, random_state)
        for epsilon in epsilons:
            requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)
            # MC baseline.
            rng = as_generator(random_state)
            udf_mc: UDF = factories[udf_name]()
            mc_times = []
            for dist in inputs:
                result = monte_carlo_output(udf_mc, dist, requirement=requirement, random_state=rng)
                mc_times.append(result.charged_time)
            table.add_row(
                function=udf_name,
                approach="mc",
                epsilon=float(epsilon),
                mean_time_ms=float(np.mean(mc_times) * 1000.0),
                n_training=0,
            )
            # GP approach.
            rng = as_generator(random_state)
            udf_gp: UDF = factories[udf_name]()
            processor = OLGAPRO(udf_gp, requirement, random_state=rng)
            gp_times = []
            for dist in inputs:
                result = processor.process(dist)
                gp_times.append(result.charged_time)
            table.add_row(
                function=udf_name,
                approach="gp",
                epsilon=float(epsilon),
                mean_time_ms=float(np.mean(gp_times) * 1000.0),
                n_training=int(processor.n_training),
            )
    return table
