"""Asynchronous UDF-overlap benchmark: in-flight window sweep (CI smoke).

Measures the wall-clock effect of the asynchronous refinement pipeline
(:class:`~repro.engine.async_exec.AsyncRefinementExecutor`) on a workload
whose black-box calls carry **real** per-call latency
(:class:`~repro.udf.synthetic.RealCostFunction`): the regime where the
serial refinement loop spends most of its time waiting on one UDF call at a
time, and a window of ``async_inflight`` concurrent calls costs roughly one
latency instead of ``async_inflight``.

Protocol: the same tuple stream (identical seeds, cold model — a cold model
spends its time in refinement, which is the loop being overlapped) is
pushed through the serial :class:`~repro.engine.batch.BatchExecutor` and
through :class:`AsyncRefinementExecutor` at each in-flight bound.  The
table reports wall-clock, UDF calls and the speedup versus the serial
batched run.  The ``async_inflight=1`` row is additionally checked for
**bit-identity** with the serial run — the determinism half of the async
pipeline's contract — and the verdict is recorded in the table.

A second experiment, :func:`udf_transport`, sweeps the *transport* axis of
the same protocol: the black box is a natively-async simulated-latency
service (:func:`~repro.udf.synthetic.async_service_udf`) and each row runs
the window over a named :mod:`~repro.engine.transport` — the thread pool
versus the event loop — against the serial batched baseline on the very
same UDF.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import ExperimentTable
from repro.core.accuracy import AccuracyRequirement
from repro.engine.async_exec import AsyncRefinementExecutor
from repro.engine.batch import BatchExecutor
from repro.engine.executor import UDFExecutionEngine
from repro.rng import as_generator
from repro.udf.synthetic import async_service_udf, reference_function
from repro.workloads.generators import input_stream, workload_for_udf


def udf_overlap(
    function_name: str = "F4",
    inflight_list: tuple[int, ...] = (1, 2, 4, 8),
    n_tuples: int = 8,
    batch_size: int = 8,
    real_eval_time: float = 2e-2,
    real_eval_jitter: float = 0.0,
    epsilon: float = 0.12,
    n_samples: int | None = 120,
    trials: int = 1,
    random_state=7,
    stream_seed: int = 3,
    transport: str = "threads",
) -> ExperimentTable:
    """Speedup-versus-``async_inflight`` table for overlapped refinement.

    ``real_eval_time`` is the black box's genuine per-call latency;
    ``real_eval_jitter`` optionally varies it per point so concurrent calls
    complete out of submission order (the results must not change — see
    ``tests/test_async_exec.py``).  ``trials`` repeats each timed run and
    keeps the fastest, the usual guard against scheduler noise.
    ``transport`` names the evaluation transport the windows ride
    (``"threads"`` by default; this experiment's blocking
    :class:`~repro.udf.synthetic.RealCostFunction` workload cannot ride
    ``"asyncio"`` — that axis is :func:`udf_transport`'s).

    Each ``async_inflight`` row's ``matches_serial`` column records whether
    the run's output distributions and error bounds were bit-identical to
    the serial baseline: expected (and CI-enforced) ``True`` at
    ``async_inflight=1``, and legitimately ``False`` above it, where the
    windowed speculative trajectory absorbs different training points.
    """
    table = ExperimentTable(
        experiment_id="udf_overlap",
        paper_artifact="async overlapped UDF evaluation (beyond the paper)",
        description=(
            "Serial batched vs async-overlapped refinement wall-clock on the "
            f"real-cost workload ({function_name}, {real_eval_time * 1e3:g} ms/call, "
            f"batch_size={batch_size}, transport={transport})"
        ),
    )
    requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)

    def run(inflight: int | None):
        """One full run; ``inflight=None`` is the serial BatchExecutor baseline."""
        best = float("inf")
        calls = 0
        outputs = None
        for _ in range(max(1, trials)):
            udf = reference_function(
                function_name,
                real_eval_time=real_eval_time,
                real_eval_jitter=real_eval_jitter,
            )
            kwargs = {"n_samples": n_samples} if n_samples else {}
            engine = UDFExecutionEngine(
                strategy="gp", requirement=requirement, random_state=random_state,
                **kwargs,
            )
            dists = list(
                input_stream(
                    workload_for_udf(udf), n_tuples, random_state=as_generator(stream_seed)
                )
            )
            started = time.perf_counter()
            if inflight is None:
                outputs = BatchExecutor(engine, batch_size).compute_batch(udf, dists)
            else:
                outputs = AsyncRefinementExecutor(
                    engine, inflight=inflight, batch_size=batch_size,
                    transport=transport,
                ).compute_batch(udf, dists)
            best = min(best, time.perf_counter() - started)
            calls = udf.call_count
        return best, calls, outputs

    serial_wall, serial_calls, serial_outputs = run(None)
    table.add_row(
        mode="serial",
        async_inflight=1,
        n_tuples=n_tuples,
        wall_ms=float(serial_wall * 1000.0),
        udf_calls=serial_calls,
        speedup=1.0,
        matches_serial=True,
    )
    for inflight in inflight_list:
        wall, calls, outputs = run(inflight)
        table.add_row(
            mode="async",
            async_inflight=inflight,
            n_tuples=n_tuples,
            wall_ms=float(wall * 1000.0),
            udf_calls=calls,
            speedup=float(serial_wall / max(wall, 1e-12)),
            matches_serial=_outputs_identical(serial_outputs, outputs),
        )
    return table


def udf_transport(
    function_name: str = "F4",
    transports: tuple[str, ...] = ("threads", "asyncio"),
    inflight_list: tuple[int, ...] = (1, 8),
    n_tuples: int = 8,
    batch_size: int = 8,
    service_latency: float = 2e-2,
    service_jitter: float = 0.0,
    epsilon: float = 0.12,
    n_samples: int | None = 120,
    trials: int = 1,
    random_state=7,
    stream_seed: int = 3,
) -> ExperimentTable:
    """Speedup-versus-transport table on a simulated async UDF service.

    The black box is :func:`~repro.udf.synthetic.async_service_udf`: a
    natively-async UDF whose every request awaits ``service_latency``
    seconds — the regime the ROADMAP's event-loop transport item targets.
    The *same* UDF runs the serial batched baseline (its blocking bridge
    pays the latency one call at a time) and then, per transport and
    in-flight bound, the overlapped refinement pipeline.

    Contract encoded in the table: every ``async_inflight=1`` row — each
    transport — is bit-identical to the serial batched baseline (this half
    is CI-enforced by the ``udf_transport`` smoke entry, like the other
    identity gates), and the event-loop transport's deeper windows clear
    ≥2× wall-clock at ``async_inflight=8`` on the 20 ms/call service (the
    speedup is *recorded* in the smoke artifact and tracked PR to PR, not
    hard-gated — matching how the other overlap speedups are handled).
    """
    table = ExperimentTable(
        experiment_id="udf_transport",
        paper_artifact="pluggable UDF evaluation transports (beyond the paper)",
        description=(
            "Serial batched vs transport-overlapped refinement wall-clock on a "
            f"simulated async UDF service ({function_name}, "
            f"{service_latency * 1e3:g} ms/request, batch_size={batch_size})"
        ),
    )
    requirement = AccuracyRequirement(epsilon=epsilon, delta=0.05)

    def run(transport: str | None, inflight: int | None):
        """One full run; ``transport=None`` is the serial batched baseline."""
        best = float("inf")
        calls = 0
        outputs = None
        for _ in range(max(1, trials)):
            udf = async_service_udf(
                function_name, latency=service_latency, jitter=service_jitter,
                random_state=random_state,
            )
            kwargs = {"n_samples": n_samples} if n_samples else {}
            engine = UDFExecutionEngine(
                strategy="gp", requirement=requirement, random_state=random_state,
                **kwargs,
            )
            dists = list(
                input_stream(
                    workload_for_udf(udf), n_tuples, random_state=as_generator(stream_seed)
                )
            )
            started = time.perf_counter()
            if transport is None:
                outputs = BatchExecutor(engine, batch_size).compute_batch(udf, dists)
            else:
                outputs = AsyncRefinementExecutor(
                    engine, inflight=inflight, batch_size=batch_size,
                    transport=transport,
                ).compute_batch(udf, dists)
            best = min(best, time.perf_counter() - started)
            calls = udf.call_count
        return best, calls, outputs

    serial_wall, serial_calls, serial_outputs = run(None, None)
    table.add_row(
        transport="serial",
        async_inflight=1,
        n_tuples=n_tuples,
        wall_ms=float(serial_wall * 1000.0),
        udf_calls=serial_calls,
        speedup=1.0,
        matches_serial=True,
    )
    for transport in transports:
        for inflight in inflight_list:
            wall, calls, outputs = run(transport, inflight)
            table.add_row(
                transport=transport,
                async_inflight=inflight,
                n_tuples=n_tuples,
                wall_ms=float(wall * 1000.0),
                udf_calls=calls,
                speedup=float(serial_wall / max(wall, 1e-12)),
                matches_serial=_outputs_identical(serial_outputs, outputs),
            )
    return table


def transport_report(table: ExperimentTable) -> dict:
    """JSON-ready summary of a :func:`udf_transport` run.

    ``speedup`` maps ``transport -> {async_inflight: speedup}``;
    ``speedup_at_8`` pulls out each transport's headline in-flight-8 number
    (falling back to its largest measured window), and ``identical_at_1``
    maps ``transport -> bool`` for the bit-identity half of the acceptance
    contract — enforced for *every* transport by the smoke driver.
    """
    speedups: dict[str, dict[int, float]] = {}
    identical_at_1: dict[str, bool] = {}
    for row in table.rows:
        transport = str(row["transport"])
        if transport == "serial":
            continue
        inflight = int(row["async_inflight"])
        speedups.setdefault(transport, {})[inflight] = float(row["speedup"])
        if inflight == 1:
            identical_at_1[transport] = bool(row["matches_serial"])
    headline: dict[str, dict] = {}
    for transport, sweep in speedups.items():
        target = 8 if 8 in sweep else max(sweep)
        headline[transport] = {"async_inflight": target, "speedup": sweep[target]}
    return {
        "experiment_id": table.experiment_id,
        "description": table.description,
        "rows": list(table.rows),
        "speedup": {
            transport: {str(k): v for k, v in sorted(sweep.items())}
            for transport, sweep in sorted(speedups.items())
        },
        "speedup_at_8": headline,
        "identical_at_1": identical_at_1,
    }


def _outputs_identical(a_outputs, b_outputs) -> bool:
    """Whether two runs produced bit-identical distributions and bounds."""
    if a_outputs is None or b_outputs is None or len(a_outputs) != len(b_outputs):
        return False
    for a, b in zip(a_outputs, b_outputs):
        if not np.array_equal(a.distribution.samples, b.distribution.samples):
            return False
        if a.error_bound != b.error_bound:
            return False
    return True


def async_report(table: ExperimentTable) -> dict:
    """JSON-ready summary of a :func:`udf_overlap` run.

    ``speedup`` maps ``async_inflight -> speedup``; ``speedup_at_8`` pulls
    out the headline in-flight-8 number tracked by the CI smoke artifact
    (falling back to the largest measured window when 8 was not part of the
    sweep), and ``identical_at_1`` records the bit-identity verdict of the
    ``async_inflight=1`` run — both halves of the acceptance contract.
    """
    speedups: dict[int, float] = {}
    identical_at_1 = None
    for row in table.rows:
        if row["mode"] != "async":
            continue
        inflight = int(row["async_inflight"])
        speedups[inflight] = float(row["speedup"])
        if inflight == 1:
            identical_at_1 = bool(row["matches_serial"])
    headline = None
    if speedups:
        target = 8 if 8 in speedups else max(speedups)
        headline = {"async_inflight": target, "speedup": speedups[target]}
    return {
        "experiment_id": table.experiment_id,
        "description": table.description,
        "rows": list(table.rows),
        "speedup": {str(k): v for k, v in sorted(speedups.items())},
        "speedup_at_8": headline,
        "identical_at_1": identical_at_1,
    }
