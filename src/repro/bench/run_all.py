"""Command-line driver that regenerates every paper table and figure.

Usage::

    python -m repro.bench.run_all              # scaled-down (minutes)
    python -m repro.bench.run_all --full       # full-scale (hours)
    python -m repro.bench.run_all --only expt5_eval_time astro_gp_vs_mc
    python -m repro.bench.run_all --output results.txt
    python -m repro.bench.run_all --smoke      # CI smoke: batched + columnar +
                                               # parallel + shared learning +
                                               # async + pipeline + transport +
                                               # auto-plan + serving
                                               # + fault injection
                                               # -> BENCH_smoke.json

Each experiment prints an :class:`~repro.bench.harness.ExperimentTable`; the
``--output`` option additionally writes the combined report to a file so it
can be diffed against EXPERIMENTS.md after code changes.

CI performance gate
-------------------
``--smoke`` also diffs the run against a committed baseline artifact
(``--baseline``, default ``BENCH_baseline.json`` when present): if the gp
strategy's batched-vs-per-tuple *speedup ratio* regressed by more than
``--max-regression`` (default 25%), the command exits non-zero and fails
the CI job.  On runners with at least four cores the gp parallel-scaling
speedup at ``workers=4`` is gated the same way, as is the shared-merge
wall-clock speedup (single-core runners skip those metrics loudly — the
ratios collapse there for hardware, not code, reasons).  The shared
learning *UDF-calls* ratio — ``merge="shared"`` fleet calls over serial
calls at ``workers=4`` — is measured within one invocation, so it arms on
every runner against the fixed :data:`SHARED_CALLS_RATIO_LIMIT` ceiling;
the ``workers=1`` shared run is additionally checked bit-identical to the
serial batched path, non-overridably, like the other identity gates.  The
ratios — not absolute wall-clock — are compared so the gate
is robust to runner hardware differences.  To land an intentional
regression, apply the ``perf-regression-ok`` label to the pull request
(the workflow maps it to ``REPRO_PERF_OVERRIDE=1``, which records the
regression in the artifact but lets the job pass), and refresh
``BENCH_baseline.json`` in the same change.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable

from repro.bench import (
    astro_case_study_table,
    astro_gp_vs_mc,
    astro_output_density,
    expt1_local_inference,
    expt2_online_tuning,
    expt3_retraining,
    expt4_accuracy_requirement,
    expt5_eval_time,
    expt6_filtering,
    expt7_dimensionality,
    profile1_function_fitting,
    profile2_error_bound,
    profile3_error_allocation,
)
from repro.bench.experiments_async import (
    async_report,
    transport_report,
    udf_overlap,
    udf_transport,
)
from repro.bench.experiments_auto import auto_plan, auto_plan_report
from repro.bench.experiments_batch import batch_pipeline_speedup, smoke_report
from repro.bench.experiments_columnar import columnar_report, columnar_speedup
from repro.bench.experiments_faults import fault_injection, faults_report
from repro.bench.experiments_parallel import (
    parallel_report,
    parallel_scaling,
    shared_learning,
    shared_learning_report,
)
from repro.bench.experiments_pipeline import pipeline_report, udf_pipeline
from repro.bench.experiments_serving import serving_load, serving_report
from repro.bench.harness import ExperimentTable

#: Scaled-down parameter overrides, mirroring the pytest-benchmark wrappers.
_SCALED_OVERRIDES: dict[str, dict] = {
    "profile1_function_fitting": {"n_training_values": (30, 60, 120), "n_test_points": 250},
    "profile2_error_bound": {"n_training": 120, "n_tuples": 5, "n_samples": 800,
                             "n_truth_samples": 12000},
    "profile3_error_allocation": {"mc_fractions": (0.5, 0.7, 0.9), "n_tuples": 4,
                                  "epsilon": 0.15, "max_points_per_tuple": 25,
                                  "n_truth_samples": 6000},
    "expt1_local_inference": {"gamma_fractions": (0.005, 0.05, 0.2), "n_training": 300,
                              "n_tuples": 4, "n_samples": 1500, "n_truth_samples": 6000},
    "expt2_online_tuning": {"strategies": ("random", "largest_variance"), "n_tuples": 15,
                            "initial_points": 20, "n_samples": 300, "max_points_per_tuple": 8,
                            "epsilon": 0.12},
    "expt3_retraining": {"thresholds": (0.05, 1.0), "n_tuples": 8, "n_samples": 400,
                         "epsilon": 0.12, "n_truth_samples": 5000},
    "expt4_accuracy_requirement": {"epsilons": (0.1, 0.2), "function_names": ("F1", "F4"),
                                   "n_tuples": 5},
    "expt5_eval_time": {"eval_times": (1e-5, 1e-3, 1e-1), "function_names": ("F1", "F4"),
                        "n_tuples": 4, "epsilon": 0.12},
    "expt6_filtering": {"target_filter_rates": (0.2, 0.8), "n_tuples": 12, "epsilon": 0.12,
                        "n_truth_samples": 4000},
    "expt7_dimensionality": {"dimensions": (1, 2, 4), "mc_eval_times": (1e-3, 1.0),
                             "n_tuples": 3, "epsilon": 0.12},
    "astro_case_study_table": {"n_probes": 30},
    "astro_output_density": {"n_samples": 3000, "bins": 30},
    "astro_gp_vs_mc": {"epsilons": (0.1, 0.2), "udf_names": ("GalAge", "ComoveVol"),
                       "n_tuples": 4},
    "batch_pipeline": {"n_tuples": 48, "warmup_tuples": 24, "trials": 1},
    "columnar": {"n_tuples": 96, "warmup_tuples": 48, "trials": 1},
    "parallel_scaling": {"workers_list": (1, 2, 4), "n_tuples": 12, "batch_size": 4,
                         "real_eval_time": 1e-3, "n_samples": 200,
                         "strategies": ("gp",)},
    "shared_learning": {"workers": 4, "n_tuples": 12, "batch_size": 4,
                        "real_eval_time": 1e-3, "n_samples": 200},
    "udf_overlap": {"inflight_list": (1, 4), "n_tuples": 4, "batch_size": 4,
                    "real_eval_time": 5e-3, "n_samples": 120},
    "udf_transport": {"transports": ("threads", "asyncio"), "inflight_list": (1, 4),
                      "n_tuples": 4, "batch_size": 4, "service_latency": 5e-3,
                      "n_samples": 120},
    "udf_pipeline": {"lookahead_list": (1, 4), "inflight": 2, "n_tuples": 8,
                     "batch_size": 8, "real_eval_time": 1e-2, "n_samples": 120},
    "auto_plan": {"n_tuples": 4, "service_latency": 5e-3, "n_samples": 120},
    "serving": {"clients_list": (1, 4), "queries_per_client": 2, "n_tuples": 2,
                "batch_size": 2, "service_latency": 1e-2, "n_samples": 120},
    "fault_injection": {"n_tuples": 4, "batch_size": 4, "fault_rate": 0.3,
                        "service_latency": 5e-3, "n_samples": 120},
}

#: Parameters of the CI smoke invocation (`--smoke`): large enough that the
#: steady-state batching speedup is measurable, small enough for a CI job.
_SMOKE_KWARGS = {"n_tuples": 96, "warmup_tuples": 48, "batch_size": 32, "trials": 2}

#: Parameters of the smoke columnar run — the bench module's defaults: a
#: long warmed-up stream at a small Monte-Carlo budget, the steady-state
#: regime where the per-tuple path is dispatch-bound and the columnar
#: layout's whole-column kernels therefore clear ≥1.5x on the same seeds.
#: The columnar row doubles as the storage layer's bit-identity check
#: (values, bounds and UDF charge counters versus the tuple store),
#: enforced non-overridably like the other identity gates.
_SMOKE_COLUMNAR_KWARGS = {"n_tuples": 384, "warmup_tuples": 96, "batch_size": 32,
                          "epsilon": 0.35, "n_samples": 64, "trials": 5}

#: Parallel-scaling configurations for the smoke artifact — one per strategy,
#: because the two are bound by different resources.  Both use a *real*
#: per-call UDF cost, so worker processes overlap it and workers=4 clears 2x
#: even on a single-core runner: the mc strategy is UDF-bound outright, and
#: the gp strategy combines overlapped refinement calls with the smaller
#: per-shard models of the "discard" policy (each shard's kernel algebra
#: stays local-sized instead of growing with the whole stream).
_SMOKE_PARALLEL_KWARGS = (
    {"strategies": ("gp",), "workers_list": (4,), "n_tuples": 32, "batch_size": 8,
     "real_eval_time": 2e-3, "epsilon": 0.15, "n_samples": 300},
    {"strategies": ("mc",), "workers_list": (4,), "n_tuples": 16, "batch_size": 4,
     "real_eval_time": 1e-3, "epsilon": 0.15},
)

#: Parameters of the smoke shared-learning run: the gp parallel-scaling
#: workload, remeasured for *total UDF charge* rather than wall-clock.
#: Serial, workers=1 shared, workers=4 discard and workers=4 shared all
#: run on the same seeds within one invocation, so the headline
#: ``udf_calls_ratio_workers4`` (shared fleet calls / serial calls) is a
#: deterministic, hardware-independent count ratio gated on every runner
#: against :data:`SHARED_CALLS_RATIO_LIMIT`; the workers=1 shared row is
#: the bit-identity check against the serial batched path.
_SMOKE_SHARED_KWARGS = {"workers": 4, "n_tuples": 32, "batch_size": 8,
                        "real_eval_time": 2e-3, "epsilon": 0.15, "n_samples": 300}

#: Parameters of the smoke udf_overlap run: a cold model on a UDF with a
#: genuinely slow per-call latency, so the refinement loop is latency-bound —
#: the regime where overlapping ``async_inflight=8`` in-flight calls clears
#: 2x even on a single-core runner (the "work" being overlapped is sleep).
#: ``inflight_list`` includes 1 because that row doubles as the bit-identity
#: check against the serial batched path.
_SMOKE_ASYNC_KWARGS = {"inflight_list": (1, 8), "n_tuples": 8, "batch_size": 8,
                       "real_eval_time": 2e-2, "epsilon": 0.12, "n_samples": 120}

#: Parameters of the smoke udf_pipeline run: the same 20 ms/call real-cost
#: regime as the async smoke, at a *small* refinement window — the
#: call-frugal configuration where the within-tuple overlap is most
#: latency-bound (a window of 2 serialises a round per two evaluations) and
#: the cross-tuple scheduler therefore has the most serial gap to hide
#: (target ≥1.5x at lookahead=4, with margin).  ``lookahead_list`` includes
#: 1 because that row doubles as the bit-identity check against the serial
#: batched path; the deeper rows are additionally checked for bit-identity
#: against the async trajectory.
_SMOKE_PIPELINE_KWARGS = {"lookahead_list": (1, 4), "inflight": 2, "n_tuples": 16,
                          "batch_size": 16, "real_eval_time": 2e-2, "epsilon": 0.15,
                          "n_samples": 120, "trials": 2}

#: Parameters of the smoke udf_transport run: every named overlap transport
#: on a 20 ms/request simulated async UDF service — the workload of the
#: event-loop transport's acceptance contract.  ``inflight_list`` includes
#: 1 because that row doubles as the bit-identity check against the serial
#: batched path (the same AsyncUDF, evaluated one awaited request at a
#: time) for *each* transport — the identity half the docs promise is
#: CI-enforced; 8 is the ≥2x overlap headline for the asyncio transport.
_SMOKE_TRANSPORT_KWARGS = {"transports": ("threads", "asyncio"),
                           "inflight_list": (1, 8),
                           "n_tuples": 6, "batch_size": 6, "service_latency": 2e-2,
                           "epsilon": 0.12, "n_samples": 120}

#: Parameters of the smoke auto_plan run: a declared 20 ms/request async UDF
#: service — the slow latency class, where the catalog profile drives the
#: auto-planner to the asyncio transport with a deep in-flight window plus
#: cross-tuple lookahead.  The naive baseline pays every request serially,
#: so the auto-planned run clears ≥2x even on a single-core runner (the
#: overlapped "work" is awaited sleep) and the ratio gates on every runner.
#: The explicit row doubles as the auto≡explicit bit-identity check,
#: enforced non-overridably like the other identity gates.
_SMOKE_AUTO_PLAN_KWARGS = {"n_tuples": 6, "batch_size": 32,
                           "service_latency": 2e-2, "epsilon": 0.12,
                           "n_samples": 120}

#: Parameters of the smoke serving run: the closed-loop load generator on
#: the 20 ms/request simulated async UDF service.  Each query's cost is
#: dominated by awaited service latency, so the 4-client throughput clears
#: 2x the 1-client closed loop even on a single-core runner (the serving
#: layer overlaps sleeps on its shared worker budget — no cores needed),
#: and the p50/p99 latencies are sleep-dominated and therefore comparable
#: across runner hardware.  The ``clients=0`` reference row doubles as the
#: served-vs-direct bit-identity check, enforced like the other identity
#: gates.
_SMOKE_SERVING_KWARGS = {"clients_list": (1, 4, 16), "queries_per_client": 3,
                         "n_tuples": 2, "batch_size": 2, "service_latency": 2e-2,
                         "epsilon": 0.15, "n_samples": 120, "worker_budget": 8}

#: Parameters of the smoke fault_injection run: transient faults injected at
#: rate 0.3 (≥ the 0.2 the acceptance contract demands) on every execution
#: mode (serial / threads / asyncio), with consecutive failures capped at
#: ``max_attempts - 1`` so every streak is recoverable by construction.  The
#: gate asserts *bit-identity* of each recovered run against the fault-free
#: same-seed run plus matching UDF charge counters — correctness properties,
#: enforced non-overridably like the other identity checks.
_SMOKE_FAULTS_KWARGS = {"fault_rate": 0.3, "max_attempts": 3, "n_tuples": 6,
                        "batch_size": 6, "inflight": 4, "service_latency": 5e-3,
                        "epsilon": 0.12, "n_samples": 120}

#: Relative drop of the gp batched speedup that fails the CI gate.
DEFAULT_MAX_REGRESSION = 0.25

#: Hard ceiling on the shared-merge UDF-calls ratio at workers=4: the
#: whole point of the live shared model is worker-count-invariant learning,
#: so the fleet's total charge may exceed the serial run's by at most 20%.
#: An absolute limit, not a baseline diff — the ratio is computed within
#: one invocation and does not drift with runner hardware.
SHARED_CALLS_RATIO_LIMIT = 1.2

#: Cores required before the parallel-scaling gate arms: the committed
#: baseline's workers=4 speedup is only reproducible with real cores to
#: overlap on, so single-core CI runners skip (loudly) instead of failing.
PARALLEL_GATE_MIN_CPUS = 4

#: Every experiment, in presentation order.
EXPERIMENTS: dict[str, Callable[..., ExperimentTable]] = {
    "profile1_function_fitting": profile1_function_fitting,
    "profile2_error_bound": profile2_error_bound,
    "profile3_error_allocation": profile3_error_allocation,
    "expt1_local_inference": expt1_local_inference,
    "expt2_online_tuning": expt2_online_tuning,
    "expt3_retraining": expt3_retraining,
    "expt4_accuracy_requirement": expt4_accuracy_requirement,
    "expt5_eval_time": expt5_eval_time,
    "expt6_filtering": expt6_filtering,
    "expt7_dimensionality": expt7_dimensionality,
    "astro_case_study_table": astro_case_study_table,
    "astro_output_density": astro_output_density,
    "astro_gp_vs_mc": astro_gp_vs_mc,
    "batch_pipeline": batch_pipeline_speedup,
    "columnar": columnar_speedup,
    "parallel_scaling": parallel_scaling,
    "shared_learning": shared_learning,
    "udf_overlap": udf_overlap,
    "udf_transport": udf_transport,
    "udf_pipeline": udf_pipeline,
    "auto_plan": auto_plan,
    "serving": serving_load,
    "fault_injection": fault_injection,
}


def _metric_verdict(
    metric: str, current, reference, max_regression: float
) -> dict:
    """Shared pass/regress/missing verdict logic for one gated ratio.

    A gated metric that cannot be found — in the fresh report *or* in the
    committed baseline — is reported with ``"missing": True`` (plus the
    legacy ``"skipped"`` reason).  Callers must treat that as a failure
    unless explicitly told otherwise: a renamed or dropped metric would
    otherwise disarm the gate forever while every run keeps reporting OK.
    """
    verdict = {
        "metric": metric,
        "current": current,
        "baseline": reference,
        "max_regression": max_regression,
        "regressed": False,
        "overridden": False,
    }
    if current is None or reference is None or reference <= 0:
        verdict["missing"] = True
        verdict["skipped"] = "metric missing from report or baseline"
        return verdict
    verdict["relative_change"] = (current - reference) / reference
    if current < (1.0 - max_regression) * reference:
        verdict["regressed"] = True
        if os.environ.get("REPRO_PERF_OVERRIDE") == "1":
            verdict["overridden"] = True
    return verdict


def check_regression(
    report: dict, baseline: dict, max_regression: float
) -> dict:
    """Compare a smoke report against the committed baseline artifact.

    The gated metric is the gp strategy's batched-vs-per-tuple speedup — a
    wall-clock-derived but hardware-normalised ratio (both runs execute on
    the same machine), so the gate transfers between the committed-baseline
    machine and CI runners.  Returns the gate verdict as a JSON-ready dict
    (see :func:`_metric_verdict` for the missing-metric semantics).
    """
    current = report.get("batch_pipeline", {}).get("speedup", {}).get("gp")
    reference = baseline.get("batch_pipeline", {}).get("speedup", {}).get("gp")
    return _metric_verdict("batch_pipeline gp speedup", current, reference, max_regression)


def check_columnar_regression(
    report: dict, baseline: dict, max_regression: float
) -> dict:
    """Gate verdict for the columnar-over-tuple-store speedup ratio.

    Hardware-normalised like the batched gate (both storages run on the
    same machine within one invocation), so it arms on every runner.  The
    storage layer's *identity* half is enforced separately and
    non-overridably through the ``identity_failures`` list.
    """
    return _metric_verdict(
        "columnar storage speedup over tuple store",
        report.get("columnar", {}).get("speedup"),
        baseline.get("columnar", {}).get("speedup"),
        max_regression,
    )


def _parallel_speedup_at_4(artifact: dict):
    """The gp workers=4 speedup recorded in a smoke artifact, or ``None``."""
    headline = (
        artifact.get("parallel_scaling", {}).get("speedup_at_4", {}).get("gp")
    )
    if not isinstance(headline, dict):
        return None
    return headline.get("speedup")


def check_parallel_regression(
    report: dict, baseline: dict, max_regression: float
) -> dict:
    """Gate verdict for the parallel-scaling gp speedup at ``workers=4``.

    Same semantics as :func:`check_regression`, on the sharded layer's
    headline ratio.  Callers arm this gate only on machines with at least
    :data:`PARALLEL_GATE_MIN_CPUS` cores (see :func:`gated_verdicts`): the
    committed baseline was measured with four real cores to overlap on,
    and on fewer cores the ratio collapses for hardware reasons the gate
    must not report as a code regression.
    """
    return _metric_verdict(
        "parallel_scaling gp speedup at workers=4",
        _parallel_speedup_at_4(report),
        _parallel_speedup_at_4(baseline),
        max_regression,
    )


def check_shared_learning_regression(
    report: dict, baseline: dict, max_regression: float
) -> dict:
    """Gate verdict for the shared-merge UDF-calls ratio at ``workers=4``.

    Unlike the other gates this one compares against the *fixed*
    :data:`SHARED_CALLS_RATIO_LIMIT` ceiling, not the committed baseline:
    the ratio is a deterministic call-count quotient measured within one
    invocation, so there is no hardware drift to normalise away and the
    gate arms on every runner.  The metric is inverted (serial calls over
    shared calls, a call *efficiency*) to reuse
    :func:`_metric_verdict`'s lower-is-regression convention at a zero
    slack margin: any ratio above the ceiling regresses.
    """
    del baseline, max_regression
    ratio = report.get("shared_learning", {}).get("udf_calls_ratio_workers4")
    efficiency = (1.0 / float(ratio)) if ratio else None
    verdict = _metric_verdict(
        "shared-merge UDF-call efficiency at workers=4 (serial/shared calls)",
        efficiency,
        1.0 / SHARED_CALLS_RATIO_LIMIT,
        0.0,
    )
    verdict["udf_calls_ratio"] = ratio
    verdict["ratio_limit"] = SHARED_CALLS_RATIO_LIMIT
    return verdict


def check_shared_speedup_regression(
    report: dict, baseline: dict, max_regression: float
) -> dict:
    """Gate verdict for the shared-merge wall-clock speedup at ``workers=4``.

    Same semantics as :func:`check_parallel_regression` — a
    wall-clock-derived ratio that needs real cores to reproduce, so
    callers arm it only at :data:`PARALLEL_GATE_MIN_CPUS` cores or more.
    It guards the store's synchronisation overhead: call savings must not
    be bought by giving the committed wall-clock speedup back.
    """
    return _metric_verdict(
        "shared-merge wall-clock speedup at workers=4",
        report.get("shared_learning", {}).get("speedup_at_4"),
        baseline.get("shared_learning", {}).get("speedup_at_4"),
        max_regression,
    )


def check_auto_plan_regression(
    report: dict, baseline: dict, max_regression: float
) -> dict:
    """Gate verdict for the auto-planned-over-naive-default speedup.

    The ratio is hardware-normalised (both plans run on the same machine
    within one invocation) and the smoke workload is sleep-dominated
    (overlapping a declared 20 ms/request await needs no cores), so the
    gate arms on every runner.  The auto≡explicit *identity* half is
    enforced separately and non-overridably through the
    ``identity_failures`` list.
    """
    return _metric_verdict(
        "auto-planned speedup over the naive default plan",
        report.get("auto_plan", {}).get("speedup"),
        baseline.get("auto_plan", {}).get("speedup"),
        max_regression,
    )


def check_serving_regression(
    report: dict, baseline: dict, max_regression: float
) -> dict:
    """Gate verdict for the serving throughput scaling at 4 clients.

    The ratio — 4-client closed-loop throughput over 1-client — is
    hardware-normalised like the other gated speedups, and the smoke
    workload is sleep-dominated, so the gate arms on every runner (no
    core-count guard: overlapping awaited service latency needs no
    cores).
    """
    return _metric_verdict(
        "serving throughput scaling at 4 clients",
        report.get("serving", {}).get("scaling_at_4"),
        baseline.get("serving", {}).get("scaling_at_4"),
        max_regression,
    )


def _inverse_p99(artifact: dict):
    """1/p99 (in 1/ms) of the 4-client serving row, or ``None``.

    Inverted so :func:`_metric_verdict`'s lower-is-regression convention
    gates a latency *increase*: a p99 that grows past the allowed margin
    shrinks ``1/p99`` below the baseline threshold.
    """
    p99 = artifact.get("serving", {}).get("p99_at_4")
    if not isinstance(p99, (int, float)) or p99 <= 0:
        return None
    return 1.0 / float(p99)


def check_serving_latency_regression(
    report: dict, baseline: dict, max_regression: float
) -> dict:
    """Gate verdict for the 4-client p99 latency (as its inverse).

    On the smoke workload the p99 is dominated by the UDF service's
    simulated 20 ms/request await, so — unlike raw CPU wall-clock — the
    absolute number transfers across runner hardware well enough to gate.
    """
    return _metric_verdict(
        "serving 4-client p99 latency (inverse, 1/ms)",
        _inverse_p99(report),
        _inverse_p99(baseline),
        max_regression,
    )


def gated_verdicts(
    report: dict, baseline: dict, max_regression: float, cpu_count: int
) -> list[tuple[str, dict]]:
    """Every perf-gate verdict that applies on a ``cpu_count``-core machine.

    Always the batched-speedup gate, the columnar gate, the shared-learning
    calls-ratio gate (a same-invocation count quotient, hardware-blind by
    construction), the auto-planner gate and both serving gates (throughput
    scaling and p99 latency — the smoke auto-plan and serving workloads
    overlap awaited latency, so those arm regardless of cores); plus the
    parallel-scaling and shared-merge wall-clock speedup gates when the
    machine has at least :data:`PARALLEL_GATE_MIN_CPUS` cores — the
    core-count guard that keeps single-core CI runners from disarming (or
    spuriously failing) those metrics.  Returns ``(report_key, verdict)``
    pairs in evaluation order.
    """
    verdicts = [("gate", check_regression(report, baseline, max_regression))]
    verdicts.append(
        ("gate_columnar", check_columnar_regression(report, baseline, max_regression))
    )
    verdicts.append(
        ("gate_shared_learning",
         check_shared_learning_regression(report, baseline, max_regression))
    )
    if cpu_count >= PARALLEL_GATE_MIN_CPUS:
        verdicts.append(
            ("gate_parallel", check_parallel_regression(report, baseline, max_regression))
        )
        verdicts.append(
            ("gate_shared_speedup",
             check_shared_speedup_regression(report, baseline, max_regression))
        )
    verdicts.append(
        ("gate_auto_plan", check_auto_plan_regression(report, baseline, max_regression))
    )
    verdicts.append(
        ("gate_serving", check_serving_regression(report, baseline, max_regression))
    )
    verdicts.append(
        ("gate_serving_p99",
         check_serving_latency_regression(report, baseline, max_regression))
    )
    return verdicts


def run_smoke(
    output_path: str,
    baseline_path: str,
    max_regression: float,
    allow_missing_baseline: bool = False,
) -> int:
    """Run the CI smoke benchmarks, write the JSON artifact, apply the gate.

    ``allow_missing_baseline`` downgrades a *missing gated metric* (absent
    from the fresh report or from the committed baseline artifact — e.g.
    mid-migration of the artifact schema) from a failure to a loud warning.
    Without it a missing metric fails the run: a silently disarmed gate
    reports OK forever.
    """
    parent = os.path.dirname(os.path.abspath(output_path))
    if not os.path.isdir(parent):
        print(f"error: cannot write {output_path}: directory {parent} does not exist",
              file=sys.stderr)
        return 2
    started = time.perf_counter()
    batch_table = batch_pipeline_speedup(**_SMOKE_KWARGS)
    batch_elapsed = time.perf_counter() - started
    batch = smoke_report(batch_table)
    print(batch_table.to_text())
    print(f"(ran batch_pipeline smoke in {batch_elapsed:.1f} s)")
    print(f"min speedup across strategies: {batch['min_speedup']:.2f}x")

    started = time.perf_counter()
    columnar_table = columnar_speedup(**_SMOKE_COLUMNAR_KWARGS)
    columnar_elapsed = time.perf_counter() - started
    columnar = columnar_report(columnar_table)
    print()
    print(columnar_table.to_text())
    print(f"(ran columnar smoke in {columnar_elapsed:.1f} s)")
    if columnar["speedup"] is not None:
        print(f"columnar speedup over the tuple-store batched path: "
              f"{columnar['speedup']:.2f}x")
    print(f"columnar storage bit-identical to tuple store: "
          f"{columnar['identical_to_tuple']}")

    # One parallel-scaling run per strategy config, merged into one report.
    parallel: dict = {"experiment_id": "parallel_scaling", "rows": [],
                      "speedup": {}, "speedup_at_4": {}}
    for kwargs in _SMOKE_PARALLEL_KWARGS:
        started = time.perf_counter()
        parallel_table = parallel_scaling(**kwargs)
        parallel_elapsed = time.perf_counter() - started
        partial = parallel_report(parallel_table)
        parallel["rows"].extend(partial["rows"])
        parallel["speedup"].update(partial["speedup"])
        parallel["speedup_at_4"].update(partial["speedup_at_4"])
        print()
        print(parallel_table.to_text())
        print(f"(ran parallel_scaling smoke in {parallel_elapsed:.1f} s)")
    for strategy, headline in parallel["speedup_at_4"].items():
        print(f"parallel speedup [{strategy}] at workers={headline['workers']}: "
              f"{headline['speedup']:.2f}x")

    started = time.perf_counter()
    shared_table = shared_learning(**_SMOKE_SHARED_KWARGS)
    shared_elapsed = time.perf_counter() - started
    shared = shared_learning_report(shared_table)
    print()
    print(shared_table.to_text())
    print(f"(ran shared_learning smoke in {shared_elapsed:.1f} s)")
    if shared["udf_calls_ratio_workers4"] is not None:
        print(f"shared-merge UDF-calls ratio at workers=4: "
              f"{shared['udf_calls_ratio_workers4']:.3f} "
              f"(discard pays {shared['discard_calls_ratio_workers4']:.3f}, "
              f"ceiling {SHARED_CALLS_RATIO_LIMIT:.1f})")
    print(f'merge="shared" workers=1 bit-identical to serial batched: '
          f"{shared['identical_at_1']}")

    started = time.perf_counter()
    async_table = udf_overlap(**_SMOKE_ASYNC_KWARGS)
    async_elapsed = time.perf_counter() - started
    overlap = async_report(async_table)
    print()
    print(async_table.to_text())
    print(f"(ran udf_overlap smoke in {async_elapsed:.1f} s)")
    if overlap["speedup_at_8"] is not None:
        headline = overlap["speedup_at_8"]
        print(f"async speedup at inflight={headline['async_inflight']}: "
              f"{headline['speedup']:.2f}x")
    print(f"async_inflight=1 bit-identical to serial batched: "
          f"{overlap['identical_at_1']}")

    started = time.perf_counter()
    pipeline_table = udf_pipeline(**_SMOKE_PIPELINE_KWARGS)
    pipeline_elapsed = time.perf_counter() - started
    pipeline = pipeline_report(pipeline_table)
    print()
    print(pipeline_table.to_text())
    print(f"(ran udf_pipeline smoke in {pipeline_elapsed:.1f} s)")
    if pipeline["speedup_at_4"] is not None:
        headline = pipeline["speedup_at_4"]
        print(f"pipeline speedup at lookahead={headline['lookahead']}: "
              f"{headline['speedup']:.2f}x")
    print(f"pipeline_lookahead=1 bit-identical to serial batched: "
          f"{pipeline['identical_at_1']}")
    print(f"pipeline_lookahead>1 bit-identical to async trajectory: "
          f"{pipeline['identical_above_1']}")

    started = time.perf_counter()
    transport_table = udf_transport(**_SMOKE_TRANSPORT_KWARGS)
    transport_elapsed = time.perf_counter() - started
    transport = transport_report(transport_table)
    print()
    print(transport_table.to_text())
    print(f"(ran udf_transport smoke in {transport_elapsed:.1f} s)")
    for name, headline in sorted(transport["speedup_at_8"].items()):
        print(f"transport speedup [{name}] at inflight="
              f"{headline['async_inflight']}: {headline['speedup']:.2f}x")
    for name, identical in sorted(transport["identical_at_1"].items()):
        print(f"transport [{name}] inflight=1 bit-identical to serial batched: "
              f"{identical}")
    started = time.perf_counter()
    auto_table = auto_plan(**_SMOKE_AUTO_PLAN_KWARGS)
    auto_elapsed = time.perf_counter() - started
    auto = auto_plan_report(auto_table)
    print()
    print(auto_table.to_text())
    print(f"(ran auto_plan smoke in {auto_elapsed:.1f} s)")
    if auto["speedup"] is not None:
        print(f"auto-planned speedup over the naive default plan: "
              f"{auto['speedup']:.2f}x")
    print(f"plan=\"auto\" bit-identical to the explicit resolved plan: "
          f"{auto['identical_to_explicit']}")

    started = time.perf_counter()
    serving_table = serving_load(**_SMOKE_SERVING_KWARGS)
    serving_elapsed = time.perf_counter() - started
    serving = serving_report(serving_table)
    print()
    print(serving_table.to_text())
    print(f"(ran serving smoke in {serving_elapsed:.1f} s)")
    if serving["scaling_at_4"] is not None:
        print(f"serving throughput scaling at 4 clients: "
              f"{serving['scaling_at_4']:.2f}x")
    for clients, p99 in sorted(serving["p99"].items(), key=lambda kv: int(kv[0])):
        print(f"serving p99 latency at {clients} client(s): {p99:.0f} ms")
    print(f"served query bit-identical to direct serial run: "
          f"{serving['identical_to_serial']}")

    started = time.perf_counter()
    faults_table = fault_injection(**_SMOKE_FAULTS_KWARGS)
    faults_elapsed = time.perf_counter() - started
    faults = faults_report(faults_table)
    print()
    print(faults_table.to_text())
    print(f"(ran fault_injection smoke in {faults_elapsed:.1f} s)")
    for mode in sorted(faults["identical"]):
        print(f"fault-injected [{mode}] bit-identical to fault-free run: "
              f"{faults['identical'][mode]} "
              f"({faults['injected'][mode]} fault(s) injected, "
              f"charge counters match: {faults['calls_match'][mode]})")

    report = {"batch_pipeline": batch, "columnar": columnar,
              "parallel_scaling": parallel, "shared_learning": shared,
              "udf_overlap": overlap, "udf_pipeline": pipeline,
              "udf_transport": transport, "auto_plan": auto,
              "serving": serving, "fault_injection": faults}

    identity_failures = []
    if columnar["identical_to_tuple"] is not True:
        identity_failures.append(
            "columnar storage diverged from the tuple-store batched path "
            "(values, bounds or UDF charge counters)"
        )
    if shared["identical_at_1"] is not True:
        identity_failures.append(
            'merge="shared" at workers=1 diverged from the serial batched '
            "path (samples, bounds or per-tuple UDF charges)"
        )
    if overlap["identical_at_1"] is not True:
        identity_failures.append(
            "async_inflight=1 diverged from the serial batched path"
        )
    if pipeline["identical_at_1"] is not True:
        identity_failures.append(
            "pipeline_lookahead=1 diverged from the serial batched path"
        )
    if pipeline["identical_above_1"] is not True:
        identity_failures.append(
            "pipeline_lookahead>1 diverged from the async trajectory"
        )
    if not transport["identical_at_1"]:
        identity_failures.append(
            "udf_transport ran no transport's inflight=1 identity row"
        )
    for name, identical in sorted(transport["identical_at_1"].items()):
        if identical is not True:
            identity_failures.append(
                f"transport {name!r} at async_inflight=1 diverged from the "
                "serial batched path"
            )
    if auto["identical_to_explicit"] is not True:
        identity_failures.append(
            'plan="auto" diverged from the explicitly spelled plan it '
            "resolves to (auto must select a plan, never change semantics)"
        )
    if serving["identical_to_serial"] is not True:
        identity_failures.append(
            "served query diverged from the direct serial run"
        )
    if not faults["identical"]:
        identity_failures.append(
            "fault_injection ran no execution mode's identity row"
        )
    for mode in sorted(faults["identical"]):
        if faults["injected"].get(mode, 0) <= 0:
            identity_failures.append(
                f"fault_injection mode {mode!r} injected no faults — the "
                "recovery gate would be vacuous"
            )
        if faults["identical"][mode] is not True:
            identity_failures.append(
                f"fault-injected {mode!r} run with retries diverged from "
                "the fault-free same-seed run"
            )
        if faults["calls_match"].get(mode) is not True:
            identity_failures.append(
                f"fault-injected {mode!r} run charged a different UDF call "
                "count than the fault-free run (failed attempts must charge "
                "nothing)"
            )
    if identity_failures:
        # Determinism half of the async/pipeline acceptance contracts.
        # These are correctness properties, not perf ratios, so they are
        # not label-overridable.
        for failure in identity_failures:
            print(f"IDENTITY CHECK FAILED: {failure}", file=sys.stderr)
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {output_path}")
        return 1

    exit_code = 0
    if os.path.isfile(baseline_path):
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        cpu_count = os.cpu_count() or 1
        verdicts = gated_verdicts(report, baseline, max_regression, cpu_count)
        if cpu_count < PARALLEL_GATE_MIN_CPUS:
            # Guarded, not disarmed: the skip is recorded in the artifact
            # and printed, so a fleet of small runners cannot silently
            # retire the metric.
            for key, name in (("gate_parallel", "parallel-scaling"),
                              ("gate_shared_speedup", "shared-merge speedup")):
                report[key] = {
                    "skipped": (f"{name} gate needs >= "
                                f"{PARALLEL_GATE_MIN_CPUS} cores, runner has "
                                f"{cpu_count}")
                }
                print(f"({name} perf gate skipped: {cpu_count} core(s) < "
                      f"{PARALLEL_GATE_MIN_CPUS})")
        for key, verdict in verdicts:
            report[key] = verdict
            metric = verdict["metric"]
            if verdict["regressed"]:
                change = verdict.get("relative_change", 0.0)
                message = (f"{metric} regressed {-change * 100.0:.0f}% vs baseline "
                           f"({verdict['current']:.2f}x vs {verdict['baseline']:.2f}x, "
                           f"limit {max_regression * 100.0:.0f}%)")
                if verdict["overridden"]:
                    print(f"PERF GATE: {message} — overridden via REPRO_PERF_OVERRIDE "
                          "(perf-regression-ok label)")
                else:
                    print(f"PERF GATE FAILED: {message}", file=sys.stderr)
                    print("(apply the perf-regression-ok PR label to override, and "
                          "refresh BENCH_baseline.json)", file=sys.stderr)
                    exit_code = 1
            elif verdict.get("missing"):
                # A silently disabled gate would report OK forever: a renamed
                # metric must fail the run, not skip it.  Baseline-format
                # migrations pass --allow-missing-baseline explicitly (and
                # refresh the committed artifact in the same change).
                if allow_missing_baseline:
                    print(f"PERF GATE SKIPPED (allowed): {verdict['skipped']} — "
                          f"{metric} was NOT checked against {baseline_path}",
                          file=sys.stderr)
                else:
                    print(f"PERF GATE FAILED: {verdict['skipped']} — {metric} "
                          f"could not be compared against {baseline_path}; pass "
                          "--allow-missing-baseline if this is an intentional "
                          "artifact-schema migration", file=sys.stderr)
                    exit_code = 1
            else:
                print(f"perf gate OK [{metric}] vs {baseline_path}")
    else:
        report["gate"] = {"skipped": f"no baseline at {baseline_path}"}
        print(f"(no baseline at {baseline_path}; perf gate skipped)")

    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {output_path}")
    return exit_code


def run(names: list[str], full_scale: bool) -> list[tuple[str, ExperimentTable, float]]:
    """Run the selected experiments and return (name, table, seconds) triples."""
    results = []
    for name in names:
        factory = EXPERIMENTS[name]
        kwargs = {} if full_scale else _SCALED_OVERRIDES.get(name, {})
        started = time.perf_counter()
        table = factory(**kwargs)
        elapsed = time.perf_counter() - started
        results.append((name, table, elapsed))
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--full", action="store_true",
                        help="run with the experiments' full-scale default parameters")
    parser.add_argument("--only", nargs="+", metavar="NAME", choices=sorted(EXPERIMENTS),
                        help="run only the named experiments")
    parser.add_argument("--output", metavar="PATH",
                        help="also write the combined report to this file")
    parser.add_argument("--smoke", action="store_true",
                        help="run only the fast smoke benchmarks (batched pipeline + "
                             "parallel scaling + shared learning + async udf overlap + "
                             "pipeline + udf transports + auto-planner + serving load + "
                             "fault injection) and write a JSON artifact")
    parser.add_argument("--smoke-output", metavar="PATH", default="BENCH_smoke.json",
                        help="where --smoke writes its JSON artifact")
    parser.add_argument("--baseline", metavar="PATH", default="BENCH_baseline.json",
                        help="committed baseline artifact the smoke run is diffed "
                             "against (skipped when the file does not exist)")
    parser.add_argument("--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
                        help="relative gp-speedup drop that fails the perf gate "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--allow-missing-baseline", action="store_true",
                        help="do not fail the smoke run when the gated metric is "
                             "missing from the report or baseline (artifact-schema "
                             "migrations only; refresh the baseline in the same "
                             "change)")
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke(args.smoke_output, args.baseline, args.max_regression,
                         allow_missing_baseline=args.allow_missing_baseline)

    names = args.only if args.only else list(EXPERIMENTS)
    results = run(names, full_scale=args.full)

    lines: list[str] = []
    for name, table, elapsed in results:
        lines.append(table.to_text())
        lines.append(f"(ran {name} in {elapsed:.1f} s)")
        lines.append("")
    report = "\n".join(lines)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
