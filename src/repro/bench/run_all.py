"""Command-line driver that regenerates every paper table and figure.

Usage::

    python -m repro.bench.run_all              # scaled-down (minutes)
    python -m repro.bench.run_all --full       # full-scale (hours)
    python -m repro.bench.run_all --only expt5_eval_time astro_gp_vs_mc
    python -m repro.bench.run_all --output results.txt
    python -m repro.bench.run_all --smoke      # CI smoke: batched-vs-per-tuple
                                               # wall-clock -> BENCH_smoke.json

Each experiment prints an :class:`~repro.bench.harness.ExperimentTable`; the
``--output`` option additionally writes the combined report to a file so it
can be diffed against EXPERIMENTS.md after code changes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable

from repro.bench import (
    astro_case_study_table,
    astro_gp_vs_mc,
    astro_output_density,
    expt1_local_inference,
    expt2_online_tuning,
    expt3_retraining,
    expt4_accuracy_requirement,
    expt5_eval_time,
    expt6_filtering,
    expt7_dimensionality,
    profile1_function_fitting,
    profile2_error_bound,
    profile3_error_allocation,
)
from repro.bench.experiments_batch import batch_pipeline_speedup, smoke_report
from repro.bench.harness import ExperimentTable

#: Scaled-down parameter overrides, mirroring the pytest-benchmark wrappers.
_SCALED_OVERRIDES: dict[str, dict] = {
    "profile1_function_fitting": {"n_training_values": (30, 60, 120), "n_test_points": 250},
    "profile2_error_bound": {"n_training": 120, "n_tuples": 5, "n_samples": 800,
                             "n_truth_samples": 12000},
    "profile3_error_allocation": {"mc_fractions": (0.5, 0.7, 0.9), "n_tuples": 4,
                                  "epsilon": 0.15, "max_points_per_tuple": 25,
                                  "n_truth_samples": 6000},
    "expt1_local_inference": {"gamma_fractions": (0.005, 0.05, 0.2), "n_training": 300,
                              "n_tuples": 4, "n_samples": 1500, "n_truth_samples": 6000},
    "expt2_online_tuning": {"strategies": ("random", "largest_variance"), "n_tuples": 15,
                            "initial_points": 20, "n_samples": 300, "max_points_per_tuple": 8,
                            "epsilon": 0.12},
    "expt3_retraining": {"thresholds": (0.05, 1.0), "n_tuples": 8, "n_samples": 400,
                         "epsilon": 0.12, "n_truth_samples": 5000},
    "expt4_accuracy_requirement": {"epsilons": (0.1, 0.2), "function_names": ("F1", "F4"),
                                   "n_tuples": 5},
    "expt5_eval_time": {"eval_times": (1e-5, 1e-3, 1e-1), "function_names": ("F1", "F4"),
                        "n_tuples": 4, "epsilon": 0.12},
    "expt6_filtering": {"target_filter_rates": (0.2, 0.8), "n_tuples": 12, "epsilon": 0.12,
                        "n_truth_samples": 4000},
    "expt7_dimensionality": {"dimensions": (1, 2, 4), "mc_eval_times": (1e-3, 1.0),
                             "n_tuples": 3, "epsilon": 0.12},
    "astro_case_study_table": {"n_probes": 30},
    "astro_output_density": {"n_samples": 3000, "bins": 30},
    "astro_gp_vs_mc": {"epsilons": (0.1, 0.2), "udf_names": ("GalAge", "ComoveVol"),
                       "n_tuples": 4},
    "batch_pipeline": {"n_tuples": 48, "warmup_tuples": 24, "trials": 1},
}

#: Parameters of the CI smoke invocation (`--smoke`): large enough that the
#: steady-state batching speedup is measurable, small enough for a CI job.
_SMOKE_KWARGS = {"n_tuples": 96, "warmup_tuples": 48, "batch_size": 32, "trials": 2}

#: Every experiment, in presentation order.
EXPERIMENTS: dict[str, Callable[..., ExperimentTable]] = {
    "profile1_function_fitting": profile1_function_fitting,
    "profile2_error_bound": profile2_error_bound,
    "profile3_error_allocation": profile3_error_allocation,
    "expt1_local_inference": expt1_local_inference,
    "expt2_online_tuning": expt2_online_tuning,
    "expt3_retraining": expt3_retraining,
    "expt4_accuracy_requirement": expt4_accuracy_requirement,
    "expt5_eval_time": expt5_eval_time,
    "expt6_filtering": expt6_filtering,
    "expt7_dimensionality": expt7_dimensionality,
    "astro_case_study_table": astro_case_study_table,
    "astro_output_density": astro_output_density,
    "astro_gp_vs_mc": astro_gp_vs_mc,
    "batch_pipeline": batch_pipeline_speedup,
}


def run_smoke(output_path: str) -> int:
    """Run the batched-vs-per-tuple smoke benchmark and write its JSON artifact."""
    import os

    parent = os.path.dirname(os.path.abspath(output_path))
    if not os.path.isdir(parent):
        print(f"error: cannot write {output_path}: directory {parent} does not exist",
              file=sys.stderr)
        return 2
    started = time.perf_counter()
    table = batch_pipeline_speedup(**_SMOKE_KWARGS)
    elapsed = time.perf_counter() - started
    report = smoke_report(table)
    print(table.to_text())
    print(f"(ran batch_pipeline smoke in {elapsed:.1f} s)")
    print(f"min speedup across strategies: {report['min_speedup']:.2f}x")
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {output_path}")
    return 0


def run(names: list[str], full_scale: bool) -> list[tuple[str, ExperimentTable, float]]:
    """Run the selected experiments and return (name, table, seconds) triples."""
    results = []
    for name in names:
        factory = EXPERIMENTS[name]
        kwargs = {} if full_scale else _SCALED_OVERRIDES.get(name, {})
        started = time.perf_counter()
        table = factory(**kwargs)
        elapsed = time.perf_counter() - started
        results.append((name, table, elapsed))
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--full", action="store_true",
                        help="run with the experiments' full-scale default parameters")
    parser.add_argument("--only", nargs="+", metavar="NAME", choices=sorted(EXPERIMENTS),
                        help="run only the named experiments")
    parser.add_argument("--output", metavar="PATH",
                        help="also write the combined report to this file")
    parser.add_argument("--smoke", action="store_true",
                        help="run only the fast batched-vs-per-tuple smoke benchmark "
                             "and write a JSON artifact")
    parser.add_argument("--smoke-output", metavar="PATH", default="BENCH_smoke.json",
                        help="where --smoke writes its JSON artifact")
    args = parser.parse_args(argv)

    if args.smoke:
        return run_smoke(args.smoke_output)

    names = args.only if args.only else list(EXPERIMENTS)
    results = run(names, full_scale=args.full)

    lines: list[str] = []
    for name, table, elapsed in results:
        lines.append(table.to_text())
        lines.append(f"(ran {name} in {elapsed:.1f} s)")
        lines.append("")
    report = "\n".join(lines)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
