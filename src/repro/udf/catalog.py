"""UDF catalog: declared cost profiles that drive the auto-planner.

The paper's cost model is *UDF calls* — every optimisation in this repo
exists to spend fewer, better-overlapped calls — yet until this module the
engine required hand-tuning every :class:`~repro.engine.plan.ExecutionPlan`
knob per query, and the registry was a bare name→object map.  The catalog
closes that gap: each registered UDF carries a frozen :class:`UDFProfile`
describing what the planner needs to know (declared per-call cost and the
latency class it implies, vectorised-batch capability, async capability,
determinism, input dimensionality, tags, and an optional evaluation
``backend``).  Profiles are derived automatically from the existing
:class:`~repro.udf.base.UDF` / :class:`~repro.udf.base.AsyncUDF`
attributes, with explicit overrides at registration for what the wrapper
cannot see (a declared service latency, a non-deterministic black box, a
preferred out-of-process backend).

:meth:`ExecutionPlan.auto <repro.engine.plan.ExecutionPlan.auto>` consumes
these profiles to choose ``batch_size`` / ``transport`` /
``async_inflight`` / ``pipeline_lookahead`` / ``speculative_k`` /
``storage`` instead of requiring hand-tuning; ``plan="auto"`` on the
operators, the query builder and :class:`~repro.engine.session.Session`
routes through the same resolution.  A *neutral* profile (negligible
per-call cost, no declared backend) must resolve to the serial batched
path — the bit-identity anchor every other resolution is gated against.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Optional, Tuple

from repro.exceptions import UDFError
from repro.udf.base import UDF, AsyncUDF
from repro.udf.registry import UDFRegistry

#: Latency classes a declared per-call cost maps to, in increasing order.
LATENCY_NEGLIGIBLE = "negligible"
LATENCY_MODERATE = "moderate"
LATENCY_SLOW = "slow"
LATENCY_CLASSES = (LATENCY_NEGLIGIBLE, LATENCY_MODERATE, LATENCY_SLOW)

#: Per-call seconds at which a UDF stops being "negligible": below this the
#: call is cheaper than the overlap machinery it would ride, so the planner
#: keeps the serial batched path.
MODERATE_THRESHOLD_SECONDS = 1e-3
#: Per-call seconds at which a UDF is "slow": every call is worth
#: overlapping *and* pipelining across tuples (an RPC-class latency).
SLOW_THRESHOLD_SECONDS = 1e-2


def canonical_udf_name(name: str) -> str:
    """The catalog's canonical spelling of a UDF name.

    One normalisation shared by registry keys, profile names and the
    serving layer's circuit-breaker keys, so "GalAge", "galage" and
    "GALAGE" always denote the same breaker state and catalog entry.
    """
    return str(name).lower()


def latency_class_for(per_call_seconds: float) -> str:
    """Map a declared per-call cost to its latency class."""
    if per_call_seconds >= SLOW_THRESHOLD_SECONDS:
        return LATENCY_SLOW
    if per_call_seconds >= MODERATE_THRESHOLD_SECONDS:
        return LATENCY_MODERATE
    return LATENCY_NEGLIGIBLE


def _declared_per_call_seconds(udf: UDF) -> float:
    """Best-effort per-call cost derived from the UDF's own attributes.

    Sums the accounting cost (``simulated_eval_time``) with any *real*
    per-call latency the wrapped black box declares: the synthetic
    :class:`~repro.udf.synthetic.RealCostFunction` exposes ``eval_time``
    and the async :class:`~repro.udf.synthetic.SimulatedServiceFunction`
    exposes ``latency``.  Unknown black boxes contribute zero — their
    cost must be declared as a registration override.
    """
    seconds = float(getattr(udf, "simulated_eval_time", 0.0) or 0.0)
    inner = getattr(udf, "_coro_func", None) or getattr(udf, "_func", None)
    for attribute in ("eval_time", "latency"):
        declared = getattr(inner, attribute, None)
        if declared is not None:
            try:
                seconds += float(declared)
            except (TypeError, ValueError):
                pass
    return seconds


@dataclass(frozen=True)
class UDFProfile:
    """Declared planner-facing metadata of one registered UDF.

    Frozen: a profile is a *declaration*, shared freely between the
    catalog, the planner and the serving layer; changing one means
    registering a new profile.

    Parameters
    ----------
    name:
        Canonical (lower-case) catalog name of the UDF.
    dimension:
        Input dimensionality of the black box.
    per_call_seconds:
        Declared cost of one evaluation — wall-clock for a real black box,
        accounting cost for a simulated one.  Drives :attr:`latency_class`.
    vectorized:
        Whether the black box accepts whole ``(n, d)`` batches.
    async_capable:
        Whether the UDF is natively async (an
        :class:`~repro.udf.base.AsyncUDF`), i.e. may ride the asyncio
        transport.
    deterministic:
        Whether repeated evaluation at one point returns the same value.
        The planner only selects the columnar fast path for deterministic
        UDFs.
    tags:
        Free-form labels (``"astro"``, ``"synthetic"``, ...).
    backend:
        Preferred evaluation backend (a transport registry name, e.g.
        ``"subprocess"``); ``None`` lets the planner choose from the
        latency class.  Validated lazily against the engine's transport
        registry so this module never imports the engine at import time.
    """

    name: str
    dimension: int
    per_call_seconds: float = 0.0
    vectorized: bool = False
    async_capable: bool = False
    deterministic: bool = True
    tags: Tuple[str, ...] = ()
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        """Validate the declaration (raises :class:`UDFError`)."""
        object.__setattr__(self, "name", canonical_udf_name(self.name))
        object.__setattr__(self, "tags", tuple(self.tags))
        if not self.name:
            raise UDFError("a UDF profile needs a non-empty name")
        if int(self.dimension) < 1:
            raise UDFError(
                f"profile {self.name!r}: dimension must be positive, got "
                f"{self.dimension}"
            )
        if not self.per_call_seconds >= 0.0:
            raise UDFError(
                f"profile {self.name!r}: per_call_seconds must be "
                f"non-negative, got {self.per_call_seconds}"
            )
        if self.backend is not None:
            # Lazy import: the engine's transport module imports the UDF
            # package, so validating eagerly at import time would cycle.
            from repro.engine.transport import transport_name

            try:
                transport_name(self.backend)
            except Exception as exc:
                raise UDFError(
                    f"profile {self.name!r}: unknown backend "
                    f"{self.backend!r}: {exc}"
                ) from exc

    @property
    def latency_class(self) -> str:
        """``"negligible"`` / ``"moderate"`` / ``"slow"`` from the cost."""
        return latency_class_for(self.per_call_seconds)

    @property
    def is_neutral(self) -> bool:
        """Whether the auto-planner must keep the serial batched path.

        Neutral means there is nothing to overlap (negligible per-call
        cost) and nowhere else to evaluate (no declared backend) — the
        profile of every plain in-process numpy UDF.  This is the
        bit-identity anchor: ``plan="auto"`` for a neutral profile is the
        serial batched plan, gated identical to every other resolution.
        """
        return self.latency_class == LATENCY_NEGLIGIBLE and self.backend is None

    @classmethod
    def from_udf(cls, udf: UDF, **overrides: Any) -> "UDFProfile":
        """Derive a profile from a UDF's own attributes, plus overrides.

        Derivation reads ``name`` / ``dimension`` / ``vectorized`` /
        ``simulated_eval_time`` (and the synthetic wrappers' declared
        real latencies) straight off the wrapper; ``async_capable`` is the
        :class:`~repro.udf.base.AsyncUDF` type check.  ``overrides`` may
        replace any field — unknown keys raise :class:`UDFError` rather
        than being dropped.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(overrides) - known
        if unknown:
            raise UDFError(
                f"unknown profile field(s) for {udf.name!r}: {sorted(unknown)}; "
                f"choose from {sorted(known)}"
            )
        derived: dict[str, Any] = dict(
            name=udf.name,
            dimension=udf.dimension,
            per_call_seconds=_declared_per_call_seconds(udf),
            vectorized=bool(getattr(udf, "vectorized", False)),
            async_capable=isinstance(udf, AsyncUDF),
        )
        derived.update(overrides)
        return cls(**derived)

    def with_overrides(self, **overrides: Any) -> "UDFProfile":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **overrides)

    def describe(self) -> str:
        """Compact one-line summary used by reprs and diagnostics."""
        parts = [
            f"{self.name}: {self.latency_class}",
            f"{self.per_call_seconds:g}s/call",
            f"d={self.dimension}",
        ]
        if self.vectorized:
            parts.append("vectorized")
        if self.async_capable:
            parts.append("async")
        if not self.deterministic:
            parts.append("non-deterministic")
        if self.backend is not None:
            parts.append(f"backend={self.backend}")
        return ", ".join(parts)


class UDFCatalog(UDFRegistry):
    """A :class:`~repro.udf.registry.UDFRegistry` that also stores profiles.

    Every entry carries a :class:`UDFProfile`, derived automatically at
    registration (:meth:`UDFProfile.from_udf`) unless an explicit profile
    or per-field overrides are supplied.  The profile's ``name`` is always
    the canonical catalog key, so planner decisions, registry lookups and
    the serving layer's circuit-breaker keys all agree on one spelling.
    """

    def __init__(self) -> None:
        """Create an empty catalog."""
        super().__init__()
        self._profiles: dict[str, UDFProfile] = {}

    def register(
        self,
        udf: UDF,
        name: str | None = None,
        replace: bool = False,
        profile: UDFProfile | None = None,
        backend: str | None = None,
        **overrides: Any,
    ) -> UDFProfile:
        """Register ``udf`` with a profile; returns the stored profile.

        ``profile`` supplies a complete declaration; ``backend`` and the
        remaining keyword ``overrides`` patch the automatically derived
        one.  Passing both a full profile and overrides is rejected — two
        sources of truth for the same declaration cannot be reconciled
        silently.
        """
        if profile is not None and (backend is not None or overrides):
            raise UDFError(
                "pass either a complete profile= or per-field overrides "
                f"(got profile= and {sorted(overrides) + (['backend'] if backend else [])})"
            )
        super().register(udf, name=name, replace=replace)
        key = canonical_udf_name(name or udf.name)
        if profile is None:
            if backend is not None:
                overrides["backend"] = backend
            profile = UDFProfile.from_udf(udf, **overrides)
        if profile.name != key:
            profile = profile.with_overrides(name=key)
        self._profiles[key] = profile
        return profile

    def profile(self, name: str) -> UDFProfile:
        """The stored profile of a registered UDF (:class:`UDFError` if unknown)."""
        key = canonical_udf_name(name)
        if key not in self._profiles:
            raise UDFError(
                f"no profile for UDF {name!r}; registered: "
                f"{sorted(self._profiles)}"
            )
        return self._profiles[key]

    def profile_for(self, udf: UDF) -> UDFProfile:
        """The profile the planner should use for ``udf``.

        The stored profile when this exact object is registered under its
        name (declared overrides win over derivation); otherwise a profile
        derived on the spot — an unregistered UDF still auto-plans, it
        just cannot carry declarations the wrapper does not expose.
        """
        key = canonical_udf_name(udf.name)
        if key in self._profiles and self._udfs.get(key) is udf:
            return self._profiles[key]
        return UDFProfile.from_udf(udf)

    def profiles(self) -> Tuple[UDFProfile, ...]:
        """Every stored profile, in name order."""
        return tuple(self._profiles[key] for key in sorted(self._profiles))


_DEFAULT_CATALOG: Optional[UDFCatalog] = None


def _build_default_catalog() -> UDFCatalog:
    """Construct the astrophysics case-study catalog from scratch."""
    from repro.udf.astro import case_study_udfs, sky_distance_udf

    catalog = UDFCatalog()
    for udf in case_study_udfs().values():
        catalog.register(udf, tags=("astro", "case-study"))
    catalog.register(sky_distance_udf(), tags=("astro", "case-study"))
    return catalog


def default_catalog(fresh: bool = False) -> UDFCatalog:
    """The memoized catalog of the astrophysics case-study UDFs.

    Instantiating the case-study UDFs builds cosmology interpolation
    tables, so the default catalog is constructed once and shared —
    repeated calls return the same object (and the same UDF instances,
    the idempotent-registration contract the regression tests pin).
    ``fresh=True`` is the escape hatch: a brand-new, independent catalog
    whose mutations never leak into the shared one.
    """
    global _DEFAULT_CATALOG
    if fresh:
        return _build_default_catalog()
    if _DEFAULT_CATALOG is None:
        _DEFAULT_CATALOG = _build_default_catalog()
    return _DEFAULT_CATALOG


__all__ = [
    "LATENCY_CLASSES",
    "LATENCY_NEGLIGIBLE",
    "LATENCY_MODERATE",
    "LATENCY_SLOW",
    "MODERATE_THRESHOLD_SECONDS",
    "SLOW_THRESHOLD_SECONDS",
    "UDFCatalog",
    "UDFProfile",
    "canonical_udf_name",
    "default_catalog",
    "latency_class_for",
]
