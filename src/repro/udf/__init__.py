"""User-defined-function substrate (S11, S12).

Public surface: the instrumented black-box :class:`UDF` wrapper, synthetic
Gaussian-mixture functions of controlled shape (F1–F4 and the
dimensionality-sweep family), the astrophysics cosmology UDFs of the §6.4
case study, and the name registry plus the profile-carrying catalog the
query engine's auto-planner consults.
"""

from repro.udf.astro import (
    Cosmology,
    angdist_udf,
    angular_separation_deg,
    case_study_udfs,
    comove_vol_udf,
    distance_modulus_udf,
    galage_udf,
    lookback_time_udf,
    sky_distance_udf,
)
from repro.udf.base import UDF, AsyncUDF, as_udf
from repro.udf.catalog import (
    LATENCY_CLASSES,
    UDFCatalog,
    UDFProfile,
    canonical_udf_name,
    default_catalog,
    latency_class_for,
)
from repro.udf.faults import (
    FaultInjectingAsyncUDF,
    FaultInjectingUDF,
    FaultSchedule,
)
from repro.udf.registry import UDFRegistry, default_registry
from repro.udf.retry import RetryPolicy
from repro.udf.synthetic import (
    GaussianMixtureFunction,
    MixtureSpec,
    high_dimensional_function,
    make_mixture_udf,
    reference_function,
    reference_suite,
)

__all__ = [
    "UDF",
    "AsyncUDF",
    "as_udf",
    "RetryPolicy",
    "FaultSchedule",
    "FaultInjectingUDF",
    "FaultInjectingAsyncUDF",
    "UDFRegistry",
    "default_registry",
    "UDFCatalog",
    "UDFProfile",
    "LATENCY_CLASSES",
    "canonical_udf_name",
    "default_catalog",
    "latency_class_for",
    "GaussianMixtureFunction",
    "MixtureSpec",
    "make_mixture_udf",
    "reference_function",
    "reference_suite",
    "high_dimensional_function",
    "Cosmology",
    "galage_udf",
    "comove_vol_udf",
    "angdist_udf",
    "sky_distance_udf",
    "lookback_time_udf",
    "distance_modulus_udf",
    "angular_separation_deg",
    "case_study_udfs",
]
