"""Black-box UDF abstraction.

The framework treats every user-defined function as an opaque callable
``f: R^d -> R`` (Section 1).  :class:`UDF` wraps such a callable and adds the
instrumentation the algorithms and experiments rely on:

* **call counting** — the central cost model of the paper is "how many times
  did we have to evaluate the UDF?", so every evaluation is counted;
* **wall-clock accounting and simulated evaluation time** — Expt 5 sweeps
  the per-call evaluation time ``T`` from 1 µs to 1 s.  Rather than
  busy-waiting (which would make the benchmark suite take hours), a UDF can
  declare a *simulated* per-call cost that is charged to an accounting clock;
  benchmarks report ``charged_time`` which combines real and simulated cost;
* **vectorised evaluation** — the underlying implementation may accept a
  batch ``(m, d)`` array; if not, the wrapper falls back to a Python loop,
  which is exactly how an external black box would behave;
* **concurrent (async-capable) evaluation** — the asynchronous refinement
  pipeline (:mod:`repro.engine.async_exec`) evaluates several points at once
  through a thread pool while the caller keeps doing GP work.  Charge
  accounting is therefore guarded by a lock, the number of *in-flight*
  evaluations is tracked, and :meth:`UDF.submit_rows` /
  :meth:`UDF.evaluate_many` expose the concurrent entry points.  Both
  accept either a plain :class:`concurrent.futures.Executor` or an
  :class:`~repro.engine.transport.EvaluationTransport` (recognised by its
  ``submit_rows`` method — duck-typed so this module never imports the
  engine layer), which is how the pluggable-transport seam reaches every
  existing evaluation path without changing its callers;
* **natively-async UDFs** — :class:`AsyncUDF` wraps a coroutine function
  (an HTTP-service client, an ``asyncio``-based simulator).  It remains a
  drop-in :class:`UDF` — the blocking call path runs the coroutine to
  completion — while exposing :meth:`AsyncUDF.evaluate_async` for the
  event-loop transport, with identical validation and charge accounting.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Executor, Future, ThreadPoolExecutor
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import TransientUDFError, UDFError
from repro.udf.retry import RetryPolicy


class UDF:
    """An instrumented black-box scalar function of a d-dimensional input."""

    def __init__(
        self,
        func: Callable[[np.ndarray], float | np.ndarray],
        dimension: int,
        name: str = "udf",
        vectorized: bool = False,
        simulated_eval_time: float = 0.0,
        domain: Optional[tuple[np.ndarray, np.ndarray]] = None,
    ):
        if dimension <= 0:
            raise UDFError(f"dimension must be positive, got {dimension}")
        if simulated_eval_time < 0:
            raise UDFError("simulated_eval_time must be non-negative")
        self._func = func
        self.dimension = int(dimension)
        self.name = str(name)
        self.vectorized = bool(vectorized)
        self.simulated_eval_time = float(simulated_eval_time)
        if domain is not None:
            low = np.atleast_1d(np.asarray(domain[0], dtype=float))
            high = np.atleast_1d(np.asarray(domain[1], dtype=float))
            if low.shape != (self.dimension,) or high.shape != (self.dimension,):
                raise UDFError("domain bounds must match the UDF dimension")
            if np.any(high <= low):
                raise UDFError("domain upper bounds must exceed lower bounds")
            self.domain: Optional[tuple[np.ndarray, np.ndarray]] = (low, high)
        else:
            self.domain = None

        self._call_count = 0
        self._real_time = 0.0
        #: Guards the charge counters: worker threads of the async pipeline
        #: evaluate points concurrently and each completion charges through
        #: :meth:`_charge`, so the read-modify-write must be atomic.
        self._charge_lock = threading.Lock()
        self._inflight = 0
        self._max_inflight = 0
        #: Retry policy installed for the duration of one computation by
        #: :meth:`_install_retry_policy` (the engine's plan seam); ``None``
        #: means transient failures propagate on the first occurrence.
        self._retry_policy: Optional[RetryPolicy] = None
        self._retries_used = 0

    # -- pickling ----------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Pickle support: locks are process-local and cannot be pickled.

        The in-flight gauges are process-local too: an evaluation in flight
        in this process will never complete in the unpickled copy, so
        carrying the counters over would leave the copy's ``in_flight``
        permanently non-zero (and its high-water mark claiming concurrency
        that never happened there).  Worker copies start at zero.

        The snapshot is taken under the charge lock: concurrent completions
        charge calls and seconds as one atomic pair, and a copy must never
        capture the pair half-applied.
        """
        with self._charge_lock:
            state = dict(self.__dict__)
        del state["_charge_lock"]
        state["_inflight"] = 0
        state["_max_inflight"] = 0
        # Worker copies keep the retry *policy* (pool workers must retry
        # exactly like the parent) but start a fresh budget window: the
        # parent's consumed retries happened in the parent process.
        state["_retries_used"] = 0
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        """Recreate the process-local charge lock after unpickling."""
        self.__dict__.update(state)
        self._charge_lock = threading.Lock()
        self.__dict__.setdefault("_retry_policy", None)
        self.__dict__.setdefault("_retries_used", 0)

    # -- instrumentation ---------------------------------------------------------
    @property
    def call_count(self) -> int:
        """Number of scalar evaluations performed so far."""
        return self._call_count

    @property
    def real_time(self) -> float:
        """Actual wall-clock seconds spent inside the black box."""
        return self._real_time

    @property
    def charged_time(self) -> float:
        """Wall-clock plus simulated per-call cost (the experiment cost model)."""
        return self._real_time + self._call_count * self.simulated_eval_time

    @property
    def in_flight(self) -> int:
        """Evaluations currently submitted but not yet completed."""
        with self._charge_lock:
            return self._inflight

    @property
    def max_in_flight(self) -> int:
        """High-water mark of concurrently in-flight evaluations.

        After a :meth:`reset_counters`, the mark restarts at the number of
        evaluations that were still outstanding at the reset (they continue
        to occupy the pipeline, so they are the new window's floor).
        """
        with self._charge_lock:
            return self._max_inflight

    def _charge(self, calls: int, seconds: float) -> None:
        """Atomically credit ``calls`` evaluations costing ``seconds`` wall-clock."""
        with self._charge_lock:
            self._call_count += calls
            self._real_time += seconds

    def _enter_flight(self) -> None:
        with self._charge_lock:
            self._inflight += 1
            self._max_inflight = max(self._max_inflight, self._inflight)

    def _exit_flight(self) -> None:
        with self._charge_lock:
            # Clamp rather than go negative: an unbalanced exit (e.g. an
            # executor that ran a task it also reported as cancelled) must
            # not corrupt the gauge for every later window.
            self._inflight = max(0, self._inflight - 1)

    def reset_counters(self) -> None:
        """Zero the call counter and timing accumulators.

        Safe to call while evaluations are outstanding: the counter reset
        and the in-flight high-water reseed happen in one critical section
        with the enter/exit tracking, so however completions interleave the
        mark can never end up below the number of evaluations still in
        flight at the reset, and a window that grows afterwards raises it
        from that floor exactly as a fresh UDF would.
        """
        with self._charge_lock:
            self._call_count = 0
            self._real_time = 0.0
            self._max_inflight = self._inflight

    def absorb_charges(self, calls: int, real_time: float) -> None:
        """Credit evaluations performed by an external copy of this UDF.

        Parallel workers evaluate pickled *copies* whose counters advance in
        their own process; the parent calls this with each worker's deltas so
        the paper's cost model (total UDF calls, charged time) stays accurate
        under sharded execution.
        """
        if calls < 0 or real_time < 0:
            raise UDFError("absorbed charges must be non-negative")
        self._charge(int(calls), float(real_time))

    # -- retry machinery -----------------------------------------------------------
    @property
    def retries_used(self) -> int:
        """Retries consumed since the current policy was installed."""
        with self._charge_lock:
            return self._retries_used

    def _install_retry_policy(self, policy: Optional[RetryPolicy]) -> None:
        """Arm (or, with ``None``, disarm) retries for one computation.

        Called by the engine around each plan execution; the budget window
        restarts with each installation.  Pickled worker copies carry the
        installed policy with them (see :meth:`__getstate__`), so every
        transport and the process-pool shards retry identically.
        """
        with self._charge_lock:
            self._retry_policy = policy
            self._retries_used = 0

    def _consume_retry(self) -> bool:
        """Atomically spend one retry from the policy's budget.

        Returns ``False`` — leaving the budget untouched — when no policy
        is installed or the cross-point ``retry_budget`` is exhausted;
        concurrent evaluation threads contend on the same budget, so the
        check-and-increment is one critical section.
        """
        policy = self._retry_policy
        if policy is None:
            return False
        with self._charge_lock:
            if (
                policy.retry_budget is not None
                and self._retries_used >= policy.retry_budget
            ):
                return False
            self._retries_used += 1
            return True

    def _retry_delay(self, failure_count: int) -> Optional[float]:
        """Delay before re-attempting after the ``failure_count``-th failure.

        ``None`` means "do not retry" — no policy installed, per-point
        attempts exhausted, or cross-point budget spent (the budget is only
        consumed when a retry is actually granted).
        """
        policy = self._retry_policy
        if policy is None or failure_count >= policy.max_attempts:
            return None
        if not self._consume_retry():
            return None
        return policy.delay_for(failure_count)

    def with_simulated_eval_time(self, seconds: float) -> "UDF":
        """Copy of this UDF charged at a different simulated per-call cost."""
        return UDF(
            self._func,
            self.dimension,
            name=self.name,
            vectorized=self.vectorized,
            simulated_eval_time=seconds,
            domain=self.domain,
        )

    # -- evaluation -----------------------------------------------------------------
    def __call__(self, x: np.ndarray) -> float:
        """Evaluate the UDF at a single point ``x`` of shape ``(d,)``.

        Transient failures (:class:`~repro.exceptions.TransientUDFError`)
        are retried under the installed :class:`~repro.udf.retry
        .RetryPolicy` — the same point, re-issued after a deterministic
        backoff — so a recovered evaluation is bit-identical to one that
        never failed.  Fatal and untyped failures propagate immediately.
        """
        x = np.atleast_1d(np.asarray(x, dtype=float))
        if x.shape != (self.dimension,):
            raise UDFError(
                f"{self.name}: input has shape {x.shape}, expected ({self.dimension},)"
            )
        failures = 0
        while True:
            try:
                return self._call_validated(x)
            except TransientUDFError:
                failures += 1
                delay = self._retry_delay(failures)
                if delay is None:
                    raise
                if delay > 0.0:
                    time.sleep(delay)

    def _call_validated(self, x: np.ndarray) -> float:
        """One attempt at a shape-checked point: evaluate, charge, validate.

        Typed :class:`UDFError` subclasses raised by the black box pass
        through unwrapped — the transient/fatal split must survive to the
        retry loop — while arbitrary exceptions are wrapped as before.
        Failed attempts charge nothing, so a run that recovers via retries
        reports the same ``call_count`` as the fault-free run.
        """
        start = time.perf_counter()
        try:
            if self.vectorized:
                value = self._func(x.reshape(1, -1))
                value = float(np.asarray(value).ravel()[0])
            else:
                value = float(self._func(x))
        except UDFError:
            raise
        except Exception as exc:  # noqa: BLE001 - black-box code can raise anything
            raise UDFError(f"{self.name}: evaluation failed at {x!r}: {exc}") from exc
        self._charge(1, time.perf_counter() - start)
        if not np.isfinite(value):
            raise UDFError(f"{self.name}: evaluation returned non-finite value {value}")
        return value

    def evaluate_batch(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the UDF at every row of ``X`` (shape ``(m, d)``)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.dimension:
            raise UDFError(
                f"{self.name}: batch has {X.shape[1]} columns, expected {self.dimension}"
            )
        start = time.perf_counter()
        if self.vectorized:
            failures = 0
            while True:
                try:
                    return self._batch_validated(X)
                except TransientUDFError:
                    failures += 1
                    delay = self._retry_delay(failures)
                    if delay is None:
                        raise
                    if delay > 0.0:
                        time.sleep(delay)
        # Non-vectorised path goes through __call__ so per-call accounting is
        # identical to how an external black box would be charged (and so
        # transient failures are retried per point, not per batch).
        self._charge(0, time.perf_counter() - start)
        return np.array([self(row) for row in X])

    def _batch_validated(self, X: np.ndarray) -> np.ndarray:
        """One attempt at a vectorised batch: evaluate, charge, validate.

        The typed-passthrough twin of :meth:`_call_validated`; failed
        attempts charge nothing.
        """
        start = time.perf_counter()
        try:
            values = np.asarray(self._func(X), dtype=float).ravel()
        except UDFError:
            raise
        except Exception as exc:  # noqa: BLE001
            raise UDFError(f"{self.name}: batch evaluation failed: {exc}") from exc
        if values.shape[0] != X.shape[0]:
            raise UDFError(
                f"{self.name}: vectorised implementation returned {values.shape[0]} "
                f"values for {X.shape[0]} inputs"
            )
        self._charge(X.shape[0], time.perf_counter() - start)
        if not np.all(np.isfinite(values)):
            raise UDFError(f"{self.name}: batch evaluation returned non-finite values")
        return values

    # -- concurrent evaluation ----------------------------------------------------
    def _evaluate_row_tracked(self, row: np.ndarray) -> float:
        """One point through :meth:`__call__`, bracketed by in-flight tracking."""
        try:
            return self(row)
        finally:
            self._exit_flight()

    def submit_rows(self, executor: Any, X: np.ndarray) -> List[Future]:
        """Submit one evaluation per row of ``X`` to ``executor``.

        Parameters
        ----------
        executor:
            A :class:`concurrent.futures.Executor` (typically a bounded
            thread pool) that runs the black-box calls, or an
            :class:`~repro.engine.transport.EvaluationTransport` — any
            non-Executor object with a ``submit_rows(udf, X)`` method —
            which then carries the evaluations itself (its own gauge and
            charge integration; e.g. coroutines on an event loop).
        X:
            Points to evaluate, shape ``(k, d)``.

        Returns
        -------
        list[concurrent.futures.Future]
            One future per row, **in row order** — completion order is up to
            the executor, so callers that need determinism must consume
            results by index, not by completion.  Each future resolves to the
            scalar UDF value; charge accounting happens on the worker thread
            at completion (thread-safe), and :attr:`in_flight` counts the
            submitted-but-not-finished evaluations.

        Raises
        ------
        UDFError
            From the resolved future, when the black box fails or returns a
            non-finite value (the submission itself never raises it).
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if not isinstance(executor, Executor) and hasattr(executor, "submit_rows"):
            # An EvaluationTransport: it owns submission, gauge and charge
            # integration (the thread transport routes back through this
            # method with its real pool, so dispatch terminates).
            return executor.submit_rows(self, X)
        futures: List[Future] = []
        for row in X:
            self._enter_flight()
            try:
                futures.append(executor.submit(self._evaluate_row_tracked, row))
            except BaseException:
                self._exit_flight()
                raise
        return futures

    def evaluate_many(
        self,
        X: np.ndarray,
        executor: Optional[Any] = None,
        max_inflight: Optional[int] = None,
    ) -> np.ndarray:
        """Evaluate the rows of ``X``, overlapping the black-box calls.

        The async-capable sibling of :meth:`evaluate_batch`: rows are
        dispatched to a thread pool and evaluated concurrently, which hides
        per-call latency of genuinely slow black boxes (network services,
        external simulations, :class:`~repro.udf.synthetic.RealCostFunction`
        wrappers) without changing the values returned.

        Parameters
        ----------
        X:
            Points to evaluate, shape ``(k, d)``.
        executor:
            Executor — or :class:`~repro.engine.transport
            .EvaluationTransport` (see :meth:`submit_rows`) — to run the
            calls on.  ``None`` creates a temporary thread pool sized
            ``max_inflight``.
        max_inflight:
            Bound on concurrently *submitted* evaluations, honoured whether
            or not an ``executor`` is supplied (submissions happen in waves
            of at most this many rows).  ``1`` short-circuits to the serial
            :meth:`evaluate_batch`, which is bit-identical in values *and*
            accounting; ``None`` means "no bound beyond the executor's own
            worker count" (and, with no executor either, is serial too).

        Returns
        -------
        numpy.ndarray
            The UDF values in row order, independent of completion order.

        Raises
        ------
        UDFError
            When any evaluation fails or returns a non-finite value.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[0] == 0:
            return np.empty(0)
        if max_inflight is not None and max_inflight <= 1:
            return self.evaluate_batch(X)
        if executor is None and max_inflight is None:
            return self.evaluate_batch(X)
        if executor is not None:
            return self._collect_in_waves(executor, X, max_inflight)
        with ThreadPoolExecutor(max_workers=int(max_inflight)) as pool:
            return self._collect_in_waves(pool, X, max_inflight)

    def _collect_in_waves(
        self, executor: Any, X: np.ndarray, max_inflight: Optional[int]
    ) -> np.ndarray:
        """Submit rows in waves of at most ``max_inflight`` and gather values.

        A shared executor may have far more workers than the caller's
        concurrency bound allows for this UDF (a rate-limited service, say);
        waiting out each wave before submitting the next keeps the number of
        simultaneously submitted evaluations at or below the bound.
        """
        wave = X.shape[0] if max_inflight is None else int(max_inflight)
        values = np.empty(X.shape[0])
        for start in range(0, X.shape[0], wave):
            futures = self.submit_rows(executor, X[start : start + wave])
            for offset, future in enumerate(futures):
                values[start + offset] = future.result()
        return values

    def measure_eval_time(self, n_probes: int = 20, random_state: Any = None) -> float:
        """Estimate the real per-call evaluation time by probing the domain.

        The hybrid GP/MC selector (Section 5.4) measures evaluation time
        while obtaining training data; this helper provides the same
        measurement for stand-alone use.  Simulated cost is included.
        """
        from repro.rng import as_generator

        rng = as_generator(random_state)
        if self.domain is not None:
            low, high = self.domain
        else:
            low = np.zeros(self.dimension)
            high = np.ones(self.dimension)
        probes = rng.uniform(low, high, size=(max(1, n_probes), self.dimension))
        count_before = self._call_count
        time_before = self._real_time
        for row in probes:
            self(row)
        elapsed = self._real_time - time_before
        calls = self._call_count - count_before
        return elapsed / calls + self.simulated_eval_time

    def __repr__(self) -> str:
        return (
            f"UDF(name={self.name!r}, dimension={self.dimension}, "
            f"simulated_eval_time={self.simulated_eval_time:g})"
        )


class AsyncUDF(UDF):
    """A UDF whose implementation is a native coroutine function.

    Models black boxes that are *naturally* asynchronous — an HTTP service
    behind an async client, an ``asyncio``-based simulation — where the
    per-call latency is awaited rather than slept in a thread.  An
    ``AsyncUDF`` is a drop-in :class:`UDF`: the blocking entry points
    (:meth:`UDF.__call__`, :meth:`UDF.evaluate_batch`) run the coroutine to
    completion on a private event loop, so every serial execution path —
    and therefore every bit-identity contract against the serial batched
    path — works unchanged.  The asynchronous entry point,
    :meth:`evaluate_async`, is what the
    :class:`~repro.engine.transport.AsyncioTransport` schedules on its
    event-loop thread: a refinement window of ``k`` calls then awaits its
    latencies concurrently, without ``k`` pool threads.

    Validation and instrumentation are identical on both paths: the same
    shape check, the same non-finite rejection, the same thread-safe
    per-call charge (each call charges its own awaited duration — the same
    rule threaded calls follow), the same in-flight gauge (maintained by
    the transports around submission/completion).

    Parameters
    ----------
    coro_func:
        ``async def f(x: ndarray) -> float`` — the black box.  Must be
        picklable (a module-level coroutine function or a callable object)
        for the UDF to ship into pool workers.
    dimension, name, simulated_eval_time, domain:
        As on :class:`UDF`.  ``vectorized`` is not offered: the service
        model is one request per point, concurrency comes from the
        transport.
    """

    def __init__(
        self,
        coro_func: Callable[[np.ndarray], Awaitable[float]],
        dimension: int,
        name: str = "async_udf",
        simulated_eval_time: float = 0.0,
        domain: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ):
        self._coro_func = coro_func
        super().__init__(
            self._run_blocking,
            dimension,
            name=name,
            vectorized=False,
            simulated_eval_time=simulated_eval_time,
            domain=domain,
        )

    def _run_blocking(self, x: np.ndarray) -> float:
        """Bridge for the blocking paths: run the coroutine to completion.

        Runs on whatever thread called it (a refinement loop, a pool
        worker), each call on a fresh private event loop —
        :func:`asyncio.run` — so blocking callers never need a loop of
        their own and concurrent blocking calls stay independent.
        """
        return float(asyncio.run(self._coro_func(np.asarray(x, dtype=float))))

    async def evaluate_async(self, x: np.ndarray) -> float:
        """Evaluate one point on the *current* event loop.

        The coroutine counterpart of :meth:`UDF.__call__`: identical
        validation, identical charging (the awaited duration of this call),
        identical failure wrapping.  Scheduled by
        :class:`~repro.engine.transport.AsyncioTransport`; await it
        directly when composing with user-owned loops.

        Raises
        ------
        UDFError
            When the input shape is wrong, the black box raises, or the
            value is non-finite.  Transient failures are retried under the
            installed :class:`~repro.udf.retry.RetryPolicy` exactly as on
            the blocking path, with the backoff awaited
            (``asyncio.sleep``) instead of slept.
        """
        x = np.atleast_1d(np.asarray(x, dtype=float))
        if x.shape != (self.dimension,):
            raise UDFError(
                f"{self.name}: input has shape {x.shape}, expected ({self.dimension},)"
            )
        failures = 0
        while True:
            try:
                return await self._async_attempt(x)
            except TransientUDFError:
                failures += 1
                delay = self._retry_delay(failures)
                if delay is None:
                    raise
                if delay > 0.0:
                    await asyncio.sleep(delay)

    async def _async_attempt(self, x: np.ndarray) -> float:
        """One awaited attempt: evaluate, charge, validate (typed passthrough)."""
        start = time.perf_counter()
        try:
            value = float(await self._coro_func(x))
        except UDFError:
            raise
        except Exception as exc:  # noqa: BLE001 - black-box code can raise anything
            raise UDFError(f"{self.name}: evaluation failed at {x!r}: {exc}") from exc
        self._charge(1, time.perf_counter() - start)
        if not np.isfinite(value):
            raise UDFError(f"{self.name}: evaluation returned non-finite value {value}")
        return value

    def with_simulated_eval_time(self, seconds: float) -> "AsyncUDF":
        """Copy of this UDF charged at a different simulated per-call cost."""
        return AsyncUDF(
            self._coro_func,
            self.dimension,
            name=self.name,
            simulated_eval_time=seconds,
            domain=self.domain,
        )

    def __repr__(self) -> str:
        return (
            f"AsyncUDF(name={self.name!r}, dimension={self.dimension}, "
            f"simulated_eval_time={self.simulated_eval_time:g})"
        )


def as_udf(
    func: Callable[[np.ndarray], float] | UDF,
    dimension: int | None = None,
    name: str | None = None,
    **kwargs,
) -> UDF:
    """Coerce a plain callable (or an existing UDF) into a :class:`UDF`."""
    if isinstance(func, UDF):
        return func
    if dimension is None:
        raise UDFError("dimension is required when wrapping a plain callable")
    return UDF(func, dimension, name=name or getattr(func, "__name__", "udf"), **kwargs)
