"""Deterministic fault injection for black-box UDFs.

The fault-tolerance layer needs failures it can *replay*: a chaos test that
fails randomly from the wall clock cannot assert bit-identity against a
fault-free run, and a flake it surfaces cannot be reproduced.  This module
injects failures from a :class:`FaultSchedule` — a pure function of a seed,
the evaluation point, and the per-point attempt number — so two runs with
the same schedule fail at exactly the same places, and a run that recovers
via retries produces exactly the values of a run that never failed.

Two injection seams are provided:

* :class:`FaultInjectingUDF` / :class:`FaultInjectingAsyncUDF` — wrap a UDF
  so scheduled attempts raise :class:`~repro.exceptions.TransientUDFError`
  (or, opted in, :class:`~repro.exceptions.FatalUDFError`) *inside* the
  UDF's own retry loop.  This exercises every execution path — serial,
  thread pool, asyncio, process-pool shards — because the wrapper **is** a
  UDF and pickles into workers with its schedule.
* :class:`~repro.engine.faults.FaultInjectingTransport` — the transport-seam
  sibling, injecting failures where an evaluation rides to the black box.

Neither consumes the Monte-Carlo random stream, so sampling trajectories
are untouched by injection.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Awaitable, Callable, Dict, Optional

import numpy as np

from repro.exceptions import FatalUDFError, TransientUDFError, UDFError
from repro.udf.base import UDF, AsyncUDF


def point_key(x: np.ndarray) -> bytes:
    """Canonical hashable key of an evaluation point (its float64 bytes)."""
    return np.ascontiguousarray(np.asarray(x, dtype=float)).tobytes()


class FaultSchedule:
    """A replayable failure schedule keyed by ``(point_key, attempt)``.

    Each evaluation of a point advances that point's private attempt
    counter; whether attempt ``i`` of point ``k`` fails is a pure hash draw
    of ``(seed, k, i)`` against ``rate`` — no wall clock, no shared RNG.
    Because counters are per point, interleaving evaluations of *different*
    points (thread pools, event loops) cannot perturb the schedule, and a
    retry of the same point deterministically advances to its next attempt.

    Parameters
    ----------
    rate:
        Marginal failure probability of each attempt, in ``[0, 1]``.
    seed:
        Schedule seed; same seed + same per-point call sequences = same
        failures.
    max_failures_per_point:
        Cap on injected failures per point, or ``None`` for no cap.  Set it
        to ``max_attempts - 1`` of the active retry policy to *guarantee*
        every point recovers within its attempts — the configuration the
        bit-identity smoke gate uses (independent per-attempt draws would
        otherwise exhaust retries with probability ``rate**max_attempts``
        per point).

    Notes
    -----
    Thread-safe; picklable (the lock is recreated, counters travel with the
    copy so a pool worker replays its shard's schedule from wherever the
    parent left that shard's points — in practice shards start fresh, since
    schedules are pickled before any evaluation).
    """

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        max_failures_per_point: Optional[int] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise UDFError(f"fault rate must be within [0, 1], got {rate}")
        if max_failures_per_point is not None and max_failures_per_point < 0:
            raise UDFError("max_failures_per_point must be non-negative (or None)")
        self.rate = float(rate)
        self.seed = int(seed)
        self.max_failures_per_point = max_failures_per_point
        self._lock = threading.Lock()
        self._attempts: Dict[bytes, int] = {}
        self._failures: Dict[bytes, int] = {}
        self._attempts_total = 0
        self._injected_total = 0

    # -- pickling ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Drop the process-local lock (recreated on unpickle)."""
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        """Recreate the process-local lock."""
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- the schedule ----------------------------------------------------------------
    def _draw(self, key: bytes, attempt: int) -> float:
        """Deterministic uniform draw in ``[0, 1)`` for ``(key, attempt)``."""
        digest = hashlib.blake2b(digest_size=8)
        digest.update(self.seed.to_bytes(8, "little", signed=True))
        digest.update(attempt.to_bytes(8, "little"))
        digest.update(key)
        return int.from_bytes(digest.digest(), "little") / 2.0**64

    def should_fail(self, key: bytes) -> bool:
        """Advance ``key``'s attempt counter; ``True`` if this attempt fails."""
        with self._lock:
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
            self._attempts_total += 1
            fail = self._draw(key, attempt) < self.rate
            if (
                fail
                and self.max_failures_per_point is not None
                and self._failures.get(key, 0) >= self.max_failures_per_point
            ):
                fail = False
            if fail:
                self._failures[key] = self._failures.get(key, 0) + 1
                self._injected_total += 1
            return fail

    def consume_failures(self, key: bytes, limit: int) -> int:
        """Consecutive scheduled failures of ``key``, up to ``limit``.

        Used by the transport-seam injector: it advances the schedule
        through the failed attempts (at most ``limit``) and, when a
        successful draw ends the streak, leaves that success consumed —
        it *is* the attempt the real evaluation rides on.
        """
        count = 0
        while count < limit and self.should_fail(key):
            count += 1
        return count

    @property
    def attempts_seen(self) -> int:
        """Total attempts the schedule has adjudicated."""
        with self._lock:
            return self._attempts_total

    @property
    def injected_failures(self) -> int:
        """Total failures the schedule has injected so far."""
        with self._lock:
            return self._injected_total


class _FaultyFunc:
    """Picklable blocking callable: scheduled failures, else the black box."""

    def __init__(
        self,
        inner: Callable[[np.ndarray], Any],
        schedule: FaultSchedule,
        name: str,
        fatal: bool,
    ) -> None:
        self._inner = inner
        self._schedule = schedule
        self._name = name
        self._fatal = fatal

    def __call__(self, x: np.ndarray) -> Any:
        if self._schedule.should_fail(point_key(x)):
            if self._fatal:
                raise FatalUDFError(f"{self._name}: injected fatal fault")
            raise TransientUDFError(f"{self._name}: injected transient fault")
        return self._inner(x)


class _FaultyCoroFunc:
    """Picklable coroutine callable twin of :class:`_FaultyFunc`."""

    def __init__(
        self,
        inner: Callable[[np.ndarray], Awaitable[float]],
        schedule: FaultSchedule,
        name: str,
        fatal: bool,
    ) -> None:
        self._inner = inner
        self._schedule = schedule
        self._name = name
        self._fatal = fatal

    async def __call__(self, x: np.ndarray) -> float:
        if self._schedule.should_fail(point_key(x)):
            if self._fatal:
                raise FatalUDFError(f"{self._name}: injected fatal fault")
            raise TransientUDFError(f"{self._name}: injected transient fault")
        return await self._inner(x)


class FaultInjectingUDF(UDF):
    """A drop-in UDF whose scheduled attempts raise typed failures.

    Wraps a blocking :class:`UDF`: same name (so per-UDF machinery like the
    serving circuit breaker keys identically), same dimension, domain,
    vectorisation and simulated cost — but each underlying call first asks
    the :class:`FaultSchedule` whether *this attempt of this point* fails.
    Injected failures raise **before** the black box runs (no value, no
    charge), exactly like a connection that never reached the service; the
    UDF retry loop then re-attempts per the installed policy.

    Parameters
    ----------
    inner:
        The UDF to wrap.  Must be a blocking UDF; wrap
        :class:`~repro.udf.base.AsyncUDF` with
        :class:`FaultInjectingAsyncUDF` instead.
    schedule:
        The deterministic failure schedule (shared: inspect it afterwards
        for :attr:`FaultSchedule.injected_failures`).
    fatal:
        Inject :class:`~repro.exceptions.FatalUDFError` (never retried)
        instead of :class:`~repro.exceptions.TransientUDFError`.
    """

    def __init__(self, inner: UDF, schedule: FaultSchedule, fatal: bool = False) -> None:
        if isinstance(inner, AsyncUDF):
            raise UDFError(
                "wrap a natively-async UDF with FaultInjectingAsyncUDF so the "
                "event-loop path is injected too"
            )
        self.schedule = schedule
        super().__init__(
            _FaultyFunc(inner._func, schedule, inner.name, fatal),
            inner.dimension,
            name=inner.name,
            vectorized=inner.vectorized,
            simulated_eval_time=inner.simulated_eval_time,
            domain=inner.domain,
        )


class FaultInjectingAsyncUDF(AsyncUDF):
    """The :class:`FaultInjectingUDF` twin for natively-async UDFs.

    Injection happens inside the coroutine, so both the awaited path
    (:meth:`~repro.udf.base.AsyncUDF.evaluate_async`, ridden by the asyncio
    transport) and the blocking bridge observe the same schedule.
    """

    def __init__(
        self, inner: AsyncUDF, schedule: FaultSchedule, fatal: bool = False
    ) -> None:
        self.schedule = schedule
        super().__init__(
            _FaultyCoroFunc(inner._coro_func, schedule, inner.name, fatal),
            inner.dimension,
            name=inner.name,
            simulated_eval_time=inner.simulated_eval_time,
            domain=inner.domain,
        )
