"""Registry mapping UDF names to implementations for the query engine.

Query text such as ``GalAge(G.redshift)`` refers to UDFs by name; the engine
resolves those names through a :class:`UDFRegistry`.  A default registry
pre-populated with the astrophysics case-study functions is available via
:func:`default_registry`.
"""

from __future__ import annotations

from typing import Iterator

from repro.exceptions import UDFError
from repro.udf.base import UDF


class UDFRegistry:
    """Name -> :class:`UDF` mapping with case-insensitive lookup."""

    def __init__(self) -> None:
        self._udfs: dict[str, UDF] = {}

    def register(self, udf: UDF, name: str | None = None, replace: bool = False) -> None:
        """Register ``udf`` under ``name`` (defaults to ``udf.name``)."""
        key = (name or udf.name).lower()
        if not key:
            raise UDFError("UDF name must be non-empty")
        if key in self._udfs and not replace:
            raise UDFError(f"UDF {key!r} is already registered")
        self._udfs[key] = udf

    def get(self, name: str) -> UDF:
        """Look up a UDF by name; raises :class:`UDFError` if unknown."""
        key = name.lower()
        if key not in self._udfs:
            raise UDFError(
                f"unknown UDF {name!r}; registered: {sorted(self._udfs)}"
            )
        return self._udfs[key]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._udfs

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._udfs))

    def __len__(self) -> int:
        return len(self._udfs)


_DEFAULT_REGISTRY: UDFRegistry | None = None


def _build_default_registry() -> UDFRegistry:
    """Instantiate the case-study UDFs into a brand-new registry."""
    from repro.udf.astro import case_study_udfs, sky_distance_udf

    registry = UDFRegistry()
    for udf in case_study_udfs().values():
        registry.register(udf)
    registry.register(sky_distance_udf())
    return registry


def default_registry(fresh: bool = False) -> UDFRegistry:
    """Registry pre-populated with the astrophysics case-study UDFs.

    Memoized: instantiating the case-study UDFs rebuilds the cosmology
    interpolation tables, so repeated calls return the same registry (and
    the same UDF instances) instead of re-instantiating everything per
    call.  ``fresh=True`` is the escape hatch for callers that need an
    independent registry to mutate.
    """
    global _DEFAULT_REGISTRY
    if fresh:
        return _build_default_registry()
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = _build_default_registry()
    return _DEFAULT_REGISTRY
