"""Deterministic retry policy for transient UDF failures.

A :class:`RetryPolicy` describes how the engine responds when a black-box
evaluation raises :class:`~repro.exceptions.TransientUDFError`: how many
times the *same* point is re-issued, how long to back off between attempts,
how many retries the whole computation may spend, and whether a tuple whose
evaluations remain failing is quarantined (surfaced as a *degraded* result
carrying the last bound the online algorithm had) instead of aborting the
query.

Determinism contract
--------------------
Nothing in this module consumes the Monte-Carlo random stream or the wall
clock for *decisions*: the backoff delay is a pure function of the attempt
number (exponential doubling from ``backoff_base``, capped at
``backoff_cap``), and a retried evaluation re-issues the identical input
point.  Because UDF evaluation is deterministic in its input, a run that
recovers via retries is bit-identical to the fault-free run with the same
seed — the property the ``fault_injection`` smoke entry enforces in CI.

The policy rides on :class:`~repro.engine.plan.ExecutionPlan` (the
``retry=`` knob) and is installed on the UDF for the duration of one
computation by the engine; pickled worker copies inherit it, so the
process-pool, thread-pool, and asyncio paths all retry identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import UDFError


@dataclass(frozen=True)
class RetryPolicy:
    """How transient UDF failures are retried, budgeted, and quarantined.

    Parameters
    ----------
    max_attempts:
        Total attempts per evaluation point, including the first (so
        ``max_attempts=3`` allows two retries).  Must be at least 1.
    backoff_base:
        Delay in seconds before the first retry; each further retry doubles
        it.  ``0.0`` (the default) retries immediately — appropriate for
        the simulated-fault harness, where the "outage" is injected rather
        than real.
    backoff_cap:
        Upper bound in seconds on any single backoff delay.
    retry_budget:
        Total retries one computation may spend across *all* points, or
        ``None`` for no cross-point bound.  A exhausted budget turns the
        next transient failure terminal even when ``max_attempts`` would
        allow another attempt — the lever that keeps a widespread outage
        from multiplying the query's cost by ``max_attempts``.
    quarantine:
        When ``True`` (the default), a tuple whose evaluation still fails
        after retries is *quarantined*: the query continues, and the tuple
        surfaces in the result as a ``degraded`` verdict carrying the last
        error bound the online algorithm had.  ``False`` restores the
        pre-policy behaviour of failing the whole query.
    shard_attempts:
        Total attempts per parallel shard when a pool worker dies
        (``BrokenProcessPool``), including the first.  Shard re-execution
        replays the same ``spawn_keyed`` stream, so a recovered shard is
        bit-identical to one that never crashed.
    """

    max_attempts: int = 3
    backoff_base: float = 0.0
    backoff_cap: float = 1.0
    retry_budget: Optional[int] = None
    quarantine: bool = True
    shard_attempts: int = 2

    def __post_init__(self) -> None:
        """Validate every field; raises :class:`UDFError` on bad values."""
        if self.max_attempts < 1:
            raise UDFError(
                f"retry max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0:
            raise UDFError("retry backoff_base must be non-negative")
        if self.backoff_cap < 0:
            raise UDFError("retry backoff_cap must be non-negative")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise UDFError("retry_budget must be non-negative (or None)")
        if self.shard_attempts < 1:
            raise UDFError(
                f"retry shard_attempts must be at least 1, got {self.shard_attempts}"
            )

    def delay_for(self, failure_count: int) -> float:
        """Backoff delay in seconds after the ``failure_count``-th failure.

        Deterministic capped exponential: ``backoff_base * 2**(n-1)``,
        clipped to ``backoff_cap``.  No jitter — two runs with the same
        failure schedule sleep the same delays.
        """
        if failure_count < 1:
            raise UDFError("failure_count starts at 1 (the first failure)")
        if self.backoff_base == 0.0:
            return 0.0
        return float(min(self.backoff_cap, self.backoff_base * 2.0 ** (failure_count - 1)))
