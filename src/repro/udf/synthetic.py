"""Synthetic UDFs with controlled shape, dimensionality and cost (§6.1A).

The paper generates test functions as Gaussian mixtures: the number of
components controls the number of peaks ("bumpiness"), the component
covariance controls how spiky / stretched the peaks are, and the component
means set the domain.  Four reference two-dimensional functions F1–F4 are
the combinations of {1, 5} components x {large, small} component variance;
Expt 7 additionally varies the input dimensionality from 1 to 10.

The evaluation-time knob ``T`` of Expt 5 maps to
:attr:`repro.udf.base.UDF.simulated_eval_time`.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import DEFAULT_DOMAIN_HIGH, DEFAULT_DOMAIN_LOW
from repro.exceptions import UDFError
from repro.rng import RandomState, as_generator
from repro.udf.base import AsyncUDF, UDF


def _jitter_factor(row: np.ndarray, jitter: float) -> float:
    """Deterministic per-point latency factor ``1 + jitter * u(x)``.

    ``u(x) in [-1, 1)`` is a stable 64-bit hash of the raw float bytes, so
    the latency of a given point is reproducible while concurrent
    evaluations of *different* points genuinely complete out of submission
    order — the adversarial schedule the overlap layers' determinism
    contracts are tested against.  Shared by the blocking
    (:class:`RealCostFunction`) and async (:class:`SimulatedServiceFunction`)
    cost models so the two spread latency identically.
    """
    if jitter == 0.0:
        return 1.0
    digest = int.from_bytes(
        hashlib.blake2b(row.tobytes(), digest_size=8).digest(), "little"
    )
    return 1.0 + jitter * (digest / 2.0**63 - 1.0)


@dataclass(frozen=True)
class MixtureSpec:
    """Parameters of a synthetic Gaussian-mixture function."""

    dimension: int
    n_components: int
    component_std: float
    amplitude: float = 1.0
    domain_low: float = DEFAULT_DOMAIN_LOW
    domain_high: float = DEFAULT_DOMAIN_HIGH


class GaussianMixtureFunction:
    """Deterministic scalar function built as a sum of Gaussian bumps.

    ``f(x) = sum_i a_i * exp(-||x - c_i||^2 / (2 s_i^2)) + baseline``

    The baseline keeps the function strictly positive, which makes relative
    errors (Profile 1 in the paper) well defined everywhere.
    """

    def __init__(
        self,
        centers: np.ndarray,
        stds: np.ndarray,
        amplitudes: np.ndarray,
        baseline: float = 0.5,
        domain: Optional[tuple[np.ndarray, np.ndarray]] = None,
    ):
        centers = np.atleast_2d(np.asarray(centers, dtype=float))
        stds = np.asarray(stds, dtype=float).ravel()
        amplitudes = np.asarray(amplitudes, dtype=float).ravel()
        if centers.shape[0] != stds.size or centers.shape[0] != amplitudes.size:
            raise UDFError("centers, stds and amplitudes must have matching lengths")
        if np.any(stds <= 0):
            raise UDFError("component stds must be positive")
        self.centers = centers
        self.stds = stds
        self.amplitudes = amplitudes
        self.baseline = float(baseline)
        self.domain = domain

    @property
    def dimension(self) -> int:
        """Input dimensionality d."""
        return self.centers.shape[1]

    def __call__(self, X: np.ndarray) -> np.ndarray:
        """Vectorised evaluation at the rows of ``X`` (or a single point)."""
        X = np.asarray(X, dtype=float)
        single = X.ndim == 1
        X = np.atleast_2d(X)
        if X.shape[1] != self.dimension:
            raise UDFError(
                f"input has {X.shape[1]} columns, expected {self.dimension}"
            )
        diffs = X[:, None, :] - self.centers[None, :, :]
        sq = np.sum(diffs**2, axis=-1)
        values = self.baseline + np.sum(
            self.amplitudes * np.exp(-0.5 * sq / self.stds**2), axis=-1
        )
        return float(values[0]) if single else values

    def value_range(self, n_grid: int = 4096, random_state: RandomState = 0) -> tuple[float, float]:
        """Approximate (min, max) of the function over its domain.

        Used to express λ, Γ and relative errors "as a percentage of the
        function range", exactly as the paper's experiments do.
        """
        rng = as_generator(random_state)
        if self.domain is not None:
            low, high = self.domain
        else:
            low = self.centers.min(axis=0) - 3 * self.stds.max()
            high = self.centers.max(axis=0) + 3 * self.stds.max()
        probes = rng.uniform(low, high, size=(n_grid, self.dimension))
        # Include the component centres: the maxima live there.
        probes = np.vstack([probes, self.centers])
        values = self(probes)
        return float(np.min(values)), float(np.max(values))


class RealCostFunction:
    """Vectorised function wrapper that *actually spends* a per-call cost.

    ``simulated_eval_time`` only charges an accounting clock — perfect for
    the paper's cost model, invisible to wall-clock benchmarks.  The
    parallel-scaling experiments need the opposite: a black box whose calls
    occupy real time that worker processes can overlap (an expensive
    simulation, a remote service).  This wrapper sleeps
    ``eval_time * n_rows`` before delegating, so each evaluation costs
    exactly the declared per-call time without burning CPU.  Because the
    cost is a sleep (not CPU work), thread pools overlap it too — this is
    the workload the asynchronous refinement pipeline
    (:mod:`repro.engine.async_exec`) targets.

    ``jitter`` makes the latency *point-dependent*: each call sleeps
    ``eval_time * (1 + jitter * u(x))`` where ``u(x) in [-1, 1)`` is a
    deterministic hash of the input bytes.  Concurrent evaluations of
    different points then genuinely complete out of submission order — the
    adversarial schedule the async pipeline's determinism contract is tested
    against — while the latency of a given point stays reproducible.

    Defined at module level (not a closure) so UDFs built from it pickle
    cleanly into pool workers.
    """

    def __init__(self, inner, eval_time: float, jitter: float = 0.0):
        if eval_time < 0:
            raise UDFError("eval_time must be non-negative")
        if not 0.0 <= jitter <= 1.0:
            raise UDFError("jitter must be within [0, 1]")
        self.inner = inner
        self.eval_time = float(eval_time)
        self.jitter = float(jitter)

    def _latency(self, X: np.ndarray) -> float:
        """Total sleep for this call: per-row cost, optionally point-hashed."""
        rows = np.atleast_2d(X)
        if self.jitter == 0.0:
            return self.eval_time * rows.shape[0]
        return sum(self.eval_time * _jitter_factor(row, self.jitter) for row in rows)

    def __call__(self, X: np.ndarray):
        X = np.asarray(X)
        if self.eval_time > 0.0:
            time.sleep(self._latency(X))
        return self.inner(X)


class SimulatedServiceFunction:
    """HTTP-style *async* black box: awaits a per-request latency, then answers.

    The natively-async sibling of :class:`RealCostFunction`: where that
    wrapper ``time.sleep``\\ s its per-call cost (so only extra threads or
    processes can overlap it), this one ``await asyncio.sleep``\\ s it — the
    cost model of a remote UDF service whose round-trip time dominates and
    whose client is a coroutine.  The event-loop transport
    (:class:`~repro.engine.transport.AsyncioTransport`) can then hold many
    such requests in flight on a single thread.

    The *value* is computed by the wrapped deterministic function, so an
    async-service UDF built from the same mixture spec returns bit-identical
    observations to its blocking twin — which is what lets the transport
    acceptance contract compare the asyncio path against the serial batched
    path at all.  ``jitter`` spreads the latency per point exactly like
    :class:`RealCostFunction` does (same hash, same factor).

    Defined at module level (not a closure) so UDFs built from it pickle
    cleanly into pool workers.
    """

    def __init__(self, inner, latency: float, jitter: float = 0.0):
        if latency < 0:
            raise UDFError("latency must be non-negative")
        if not 0.0 <= jitter <= 1.0:
            raise UDFError("jitter must be within [0, 1]")
        self.inner = inner
        self.latency = float(latency)
        self.jitter = float(jitter)

    async def __call__(self, x: np.ndarray) -> float:
        """One simulated request: await the round trip, return the value."""
        x = np.asarray(x, dtype=float)
        if self.latency > 0.0:
            await asyncio.sleep(self.latency * _jitter_factor(x, self.jitter))
        return float(self.inner(x))


def _build_mixture_function(
    spec: MixtureSpec, random_state: RandomState
) -> GaussianMixtureFunction:
    """Draw a :class:`GaussianMixtureFunction` from a spec's random stream.

    The single source of the mixture's random draws (centres, then
    amplitudes — in that order), shared by :func:`make_mixture_udf` and
    :func:`async_service_udf` so a blocking UDF and its async-service twin
    built from the same ``(spec, random_state)`` compute the bit-identical
    function — the property the transport identity contracts compare
    against.
    """
    if spec.dimension <= 0:
        raise UDFError("dimension must be positive")
    if spec.n_components <= 0:
        raise UDFError("n_components must be positive")
    rng = as_generator(random_state)
    low = np.full(spec.dimension, spec.domain_low)
    high = np.full(spec.dimension, spec.domain_high)
    span = spec.domain_high - spec.domain_low
    # Keep component centres away from the very edge of the domain so that
    # the interesting structure is where input distributions will live.
    centers = rng.uniform(
        spec.domain_low + 0.1 * span,
        spec.domain_high - 0.1 * span,
        size=(spec.n_components, spec.dimension),
    )
    stds = np.full(spec.n_components, spec.component_std)
    amplitudes = spec.amplitude * rng.uniform(0.5, 1.5, size=spec.n_components)
    return GaussianMixtureFunction(centers, stds, amplitudes, domain=(low, high))


def async_service_udf(
    name: str,
    latency: float = 0.0,
    jitter: float = 0.0,
    random_state: RandomState = 7,
) -> AsyncUDF:
    """A reference function served as a simulated-latency async service.

    Builds the same Gaussian-mixture function as
    :func:`reference_function` (same spec, same ``random_state``, through
    the shared :func:`_build_mixture_function` draw — so the observed
    *values* are bit-identical) but wraps it as an
    :class:`~repro.udf.base.AsyncUDF` whose every evaluation awaits
    ``latency`` seconds — the workload of the asyncio UDF transport.
    ``jitter`` varies the latency per point so concurrent requests complete
    out of submission order (determinism must survive; see
    ``tests/test_transport.py``).
    """
    key = name.upper()
    if key not in _F_SPECS:
        raise UDFError(f"unknown reference function {name!r}; choose from F1..F4")
    spec = _F_SPECS[key]
    function = _build_mixture_function(spec, random_state)
    return AsyncUDF(
        SimulatedServiceFunction(function, latency, jitter=jitter),
        dimension=spec.dimension,
        name=f"{key}-service",
        domain=function.domain,
    )


def make_mixture_udf(
    spec: MixtureSpec,
    simulated_eval_time: float = 0.0,
    real_eval_time: float = 0.0,
    real_eval_jitter: float = 0.0,
    name: Optional[str] = None,
    random_state: RandomState = 0,
) -> UDF:
    """Build an instrumented :class:`UDF` from a :class:`MixtureSpec`.

    ``simulated_eval_time`` charges the accounting clock only (Expt 5);
    ``real_eval_time`` makes every call *occupy* that much wall-clock via
    :class:`RealCostFunction` (the parallel-scaling and async-overlap
    workloads), and ``real_eval_jitter`` spreads that latency per point so
    concurrent calls complete out of submission order.
    """
    function = _build_mixture_function(spec, random_state)
    implementation = (
        RealCostFunction(function, real_eval_time, jitter=real_eval_jitter)
        if real_eval_time > 0.0
        else function
    )
    return UDF(
        implementation,
        dimension=spec.dimension,
        name=name or f"gmm_d{spec.dimension}_k{spec.n_components}",
        vectorized=True,
        simulated_eval_time=simulated_eval_time,
        domain=function.domain,
    )


# ---------------------------------------------------------------------------
# The four reference functions of Fig. 4: combinations of {1, 5} components and
# {large, small} component variance over the default [0, 10]^2 domain.
# ---------------------------------------------------------------------------

_F_SPECS = {
    "F1": MixtureSpec(dimension=2, n_components=1, component_std=3.0, amplitude=2.0),
    "F2": MixtureSpec(dimension=2, n_components=1, component_std=0.8, amplitude=2.0),
    "F3": MixtureSpec(dimension=2, n_components=5, component_std=3.0, amplitude=2.0),
    "F4": MixtureSpec(dimension=2, n_components=5, component_std=0.8, amplitude=2.0),
}


def reference_function(
    name: str,
    simulated_eval_time: float = 0.0,
    real_eval_time: float = 0.0,
    real_eval_jitter: float = 0.0,
    random_state: RandomState = 7,
) -> UDF:
    """One of the paper's reference functions ``F1``–``F4`` (Fig. 4).

    F1: one flat peak (smooth); F2: one narrow peak (spiky); F3: five broad
    peaks (bumpy); F4: five narrow peaks (the hardest case, used as the
    default function in Expts 1–3 and 6).  ``real_eval_time`` makes every
    call occupy real wall-clock and ``real_eval_jitter`` varies that latency
    per point (see :class:`RealCostFunction`).
    """
    key = name.upper()
    if key not in _F_SPECS:
        raise UDFError(f"unknown reference function {name!r}; choose from F1..F4")
    return make_mixture_udf(
        _F_SPECS[key],
        simulated_eval_time=simulated_eval_time,
        real_eval_time=real_eval_time,
        real_eval_jitter=real_eval_jitter,
        name=key,
        random_state=random_state,
    )


def reference_suite(simulated_eval_time: float = 0.0) -> dict[str, UDF]:
    """All four reference functions keyed by name."""
    return {
        name: reference_function(name, simulated_eval_time=simulated_eval_time)
        for name in _F_SPECS
    }


def high_dimensional_function(
    dimension: int,
    n_components: int = 5,
    component_std: float = 2.0,
    simulated_eval_time: float = 0.0,
    random_state: RandomState = 11,
) -> UDF:
    """Synthetic function for the dimensionality sweep of Expt 7 (d = 1..10)."""
    spec = MixtureSpec(
        dimension=dimension,
        n_components=n_components,
        component_std=component_std,
        amplitude=2.0,
    )
    return make_mixture_udf(
        spec,
        simulated_eval_time=simulated_eval_time,
        name=f"synthetic_d{dimension}",
        random_state=random_state,
    )
