"""Astrophysics UDFs (Section 6.4 case study).

The paper evaluates three scalar UDFs taken from the IDL Astronomy Library
and applied to SDSS data: ``AngDist`` (2-D, very fast), ``GalAge`` (1-D,
~0.3 ms) and ``ComoveVol`` (2-D, ~1.8 ms).  The IDL library is proprietary /
external code; this module implements the same standard flat-ΛCDM cosmology
quantities from first principles (numerical quadrature of the Friedmann
equation), so that the functions have the same mathematical shape and the
same "expensive numerical integration" character.  They are exposed as
black-box :class:`~repro.udf.base.UDF` objects exactly as the framework
expects.

Cosmological conventions: flat universe with matter density ``omega_m``,
dark-energy density ``1 - omega_m``, Hubble constant ``h0`` in km/s/Mpc.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import integrate

from repro.exceptions import UDFError
from repro.udf.base import UDF

#: Speed of light in km/s.
SPEED_OF_LIGHT_KM_S = 299_792.458

#: Conversion from 1/H0 (s Mpc / km) to Gyr.
_HUBBLE_TIME_GYR_PER_100 = 9.778  # 1/(100 km/s/Mpc) expressed in Gyr


@dataclass(frozen=True)
class Cosmology:
    """Flat ΛCDM cosmological model."""

    h0: float = 70.0
    omega_m: float = 0.3

    def __post_init__(self) -> None:
        if self.h0 <= 0:
            raise UDFError(f"H0 must be positive, got {self.h0}")
        if not (0.0 < self.omega_m < 1.0):
            raise UDFError(f"omega_m must be in (0, 1), got {self.omega_m}")

    @property
    def omega_lambda(self) -> float:
        """Dark-energy density of the flat model."""
        return 1.0 - self.omega_m

    @property
    def hubble_time_gyr(self) -> float:
        """``1 / H0`` expressed in Gyr."""
        return _HUBBLE_TIME_GYR_PER_100 * 100.0 / self.h0

    @property
    def hubble_distance_mpc(self) -> float:
        """``c / H0`` in Mpc."""
        return SPEED_OF_LIGHT_KM_S / self.h0

    def efunc(self, z: float) -> float:
        """Dimensionless Hubble parameter ``E(z) = H(z)/H0``."""
        zp1 = 1.0 + z
        return math.sqrt(self.omega_m * zp1**3 + self.omega_lambda)

    # -- integrated quantities ------------------------------------------------
    def galaxy_age_gyr(self, z: float) -> float:
        """Age of the universe (Gyr) at redshift ``z`` — the GalAge UDF.

        ``t(z) = (1/H0) * ∫_z^∞ dz' / [(1+z') E(z')]`` computed by adaptive
        quadrature after the substitution ``a = 1/(1+z')`` which maps the
        infinite redshift range onto ``a ∈ (0, 1/(1+z)]``.
        """
        if z < 0:
            raise UDFError(f"redshift must be non-negative, got {z}")

        def integrand(a: float) -> float:
            # dt = da / (a H(a)); H(a)/H0 = sqrt(Om a^-3 + OL)
            return 1.0 / (a * math.sqrt(self.omega_m / a**3 + self.omega_lambda))

        upper = 1.0 / (1.0 + z)
        value, _ = integrate.quad(integrand, 0.0, upper, limit=200)
        return self.hubble_time_gyr * value

    def comoving_distance_mpc(self, z: float) -> float:
        """Line-of-sight comoving distance (Mpc) to redshift ``z``."""
        if z < 0:
            raise UDFError(f"redshift must be non-negative, got {z}")
        value, _ = integrate.quad(lambda zp: 1.0 / self.efunc(zp), 0.0, z, limit=200)
        return self.hubble_distance_mpc * value

    def comoving_distance_mpc_dense(self, z: float, n_steps: int = 20001) -> float:
        """Comoving distance via dense composite Simpson integration.

        This mirrors the tabulated-integration style of the original IDL
        astronomy routines, which makes ``ComoveVol`` markedly slower than
        ``GalAge`` (the ordering reported in the paper's case-study table).
        Accuracy matches :meth:`comoving_distance_mpc` to many digits.
        """
        if z < 0:
            raise UDFError(f"redshift must be non-negative, got {z}")
        if z == 0:
            return 0.0
        grid = np.linspace(0.0, z, n_steps)
        integrand = 1.0 / np.sqrt(self.omega_m * (1.0 + grid) ** 3 + self.omega_lambda)
        value = float(integrate.simpson(integrand, x=grid))
        return self.hubble_distance_mpc * value

    def comoving_volume_mpc3(self, z_low: float, z_high: float, area_sr: float) -> float:
        """Comoving volume (Mpc^3) between two redshifts over ``area_sr`` steradians.

        This is the ComoveVol UDF of query Q2.  The order of the redshift
        arguments does not matter; the volume of the shell between them is
        returned.
        """
        if area_sr <= 0:
            raise UDFError(f"area must be positive steradians, got {area_sr}")
        z_lo, z_hi = sorted((float(z_low), float(z_high)))
        d_lo = self.comoving_distance_mpc_dense(z_lo)
        d_hi = self.comoving_distance_mpc_dense(z_hi)
        return area_sr / 3.0 * (d_hi**3 - d_lo**3)

    def luminosity_distance_mpc(self, z: float) -> float:
        """Luminosity distance (Mpc): ``(1+z) * D_C`` in a flat universe."""
        return (1.0 + z) * self.comoving_distance_mpc(z)

    def angular_diameter_distance_mpc(self, z: float) -> float:
        """Angular-diameter distance (Mpc): ``D_C / (1+z)`` in a flat universe."""
        return self.comoving_distance_mpc(z) / (1.0 + z)

    def distance_modulus(self, z: float) -> float:
        """Distance modulus ``5 log10(D_L / 10 pc)``."""
        d_l = self.luminosity_distance_mpc(z)
        if d_l <= 0:
            raise UDFError("distance modulus undefined at z = 0")
        return 5.0 * math.log10(d_l * 1e5)

    def lookback_time_gyr(self, z: float) -> float:
        """Lookback time (Gyr) to redshift ``z``."""
        return self.galaxy_age_gyr(0.0) - self.galaxy_age_gyr(z)


def angular_separation_deg(ra1: float, dec1: float, ra2: float, dec2: float) -> float:
    """Great-circle separation (degrees) of two sky positions given in degrees.

    Uses the Vincenty formula, which is numerically stable for both very
    small and near-antipodal separations (this is the ``gcirc``-style
    computation behind the paper's ``Distance`` / ``AngDist`` UDFs).
    """
    ra1_r, dec1_r, ra2_r, dec2_r = np.radians([ra1, dec1, ra2, dec2])
    d_ra = ra2_r - ra1_r
    sin_d1, cos_d1 = math.sin(dec1_r), math.cos(dec1_r)
    sin_d2, cos_d2 = math.sin(dec2_r), math.cos(dec2_r)
    num = math.hypot(cos_d2 * math.sin(d_ra), cos_d1 * sin_d2 - sin_d1 * cos_d2 * math.cos(d_ra))
    den = sin_d1 * sin_d2 + cos_d1 * cos_d2 * math.cos(d_ra)
    return math.degrees(math.atan2(num, den))


# ---------------------------------------------------------------------------
# Black-box UDF factories matching the paper's case-study table.
# ---------------------------------------------------------------------------

#: Default survey area for ComoveVol, in steradians (a few hundred square
#: degrees, typical of an SDSS stripe).
DEFAULT_AREA_SR = 0.1

#: Redshift range of the synthetic SDSS workload.
REDSHIFT_RANGE = (0.01, 1.5)

#: Sky-offset range (degrees) for the AngDist workload.
ANGLE_OFFSET_RANGE = (-2.0, 2.0)


def galage_udf(cosmology: Cosmology | None = None) -> UDF:
    """``GalAge(redshift)`` — 1-D UDF returning the galaxy age in Gyr (Q1)."""
    cosmo = cosmology or Cosmology()
    low = np.array([REDSHIFT_RANGE[0]])
    high = np.array([REDSHIFT_RANGE[1]])
    return UDF(
        lambda x: cosmo.galaxy_age_gyr(float(np.asarray(x).ravel()[0])),
        dimension=1,
        name="GalAge",
        vectorized=False,
        domain=(low, high),
    )


def comove_vol_udf(area_sr: float = DEFAULT_AREA_SR, cosmology: Cosmology | None = None) -> UDF:
    """``ComoveVol(z1, z2, AREA)`` — 2-D UDF returning comoving volume (Q2)."""
    cosmo = cosmology or Cosmology()

    def _eval(x: np.ndarray) -> float:
        z1, z2 = np.asarray(x, dtype=float).ravel()[:2]
        return cosmo.comoving_volume_mpc3(z1, z2, area_sr)

    low = np.array([REDSHIFT_RANGE[0], REDSHIFT_RANGE[0]])
    high = np.array([REDSHIFT_RANGE[1], REDSHIFT_RANGE[1]])
    return UDF(_eval, dimension=2, name="ComoveVol", vectorized=False, domain=(low, high))


def angdist_udf(ra_center: float = 180.0, dec_center: float = 30.0) -> UDF:
    """``AngDist(d_ra, d_dec)`` — 2-D UDF for the angular separation (degrees).

    The inputs are a galaxy's RA/Dec offsets (degrees) from a reference
    direction; the output is the great-circle separation from that reference.
    This mirrors the fast trigonometric sky-distance computation of the
    paper's table (dimension 2, microsecond evaluation time).
    """

    def _eval(x: np.ndarray) -> float:
        d_ra, d_dec = np.asarray(x, dtype=float).ravel()[:2]
        return angular_separation_deg(ra_center, dec_center, ra_center + d_ra, dec_center + d_dec)

    low = np.array([ANGLE_OFFSET_RANGE[0], ANGLE_OFFSET_RANGE[0]])
    high = np.array([ANGLE_OFFSET_RANGE[1], ANGLE_OFFSET_RANGE[1]])
    return UDF(_eval, dimension=2, name="AngDist", vectorized=False, domain=(low, high))


def sky_distance_udf() -> UDF:
    """``Distance(ra1, dec1, ra2, dec2)`` — 4-D pairwise sky separation (Q2)."""

    def _eval(x: np.ndarray) -> float:
        ra1, dec1, ra2, dec2 = np.asarray(x, dtype=float).ravel()[:4]
        return angular_separation_deg(ra1, dec1, ra2, dec2)

    low = np.array([0.0, -10.0, 0.0, -10.0])
    high = np.array([360.0, 70.0, 360.0, 70.0])
    return UDF(_eval, dimension=4, name="Distance", vectorized=False, domain=(low, high))


def lookback_time_udf(cosmology: Cosmology | None = None) -> UDF:
    """``LookbackTime(redshift)`` — additional 1-D cosmology UDF."""
    cosmo = cosmology or Cosmology()
    low = np.array([REDSHIFT_RANGE[0]])
    high = np.array([REDSHIFT_RANGE[1]])
    return UDF(
        lambda x: cosmo.lookback_time_gyr(float(np.asarray(x).ravel()[0])),
        dimension=1,
        name="LookbackTime",
        vectorized=False,
        domain=(low, high),
    )


def distance_modulus_udf(cosmology: Cosmology | None = None) -> UDF:
    """``DistMod(redshift)`` — additional 1-D cosmology UDF (magnitudes)."""
    cosmo = cosmology or Cosmology()
    low = np.array([REDSHIFT_RANGE[0]])
    high = np.array([REDSHIFT_RANGE[1]])
    return UDF(
        lambda x: cosmo.distance_modulus(float(np.asarray(x).ravel()[0])),
        dimension=1,
        name="DistMod",
        vectorized=False,
        domain=(low, high),
    )


def case_study_udfs() -> dict[str, UDF]:
    """The three UDFs of the §6.4 case-study table, keyed by name."""
    return {
        "AngDist": angdist_udf(),
        "GalAge": galage_udf(),
        "ComoveVol": comove_vol_udf(),
    }
