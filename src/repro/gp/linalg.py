"""Numerical linear-algebra helpers for Gaussian-process inference.

Two concerns are centralised here:

* numerically robust Cholesky factorisation of kernel matrices (adding the
  smallest jitter that makes the matrix positive definite), and
* the incremental block-matrix inverse update of Section 5.2 — when online
  tuning adds one training point, the inverse covariance matrix is updated
  in ``O(n^2)`` instead of being recomputed from scratch in ``O(n^3)``; the
  blocked variant absorbs ``k`` new points at once in ``O(n^2 k)``, which is
  what batched execution uses when several training points arrive together.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GPError


def jittered_cholesky(matrix: np.ndarray, initial_jitter: float = 1e-10, max_tries: int = 8) -> tuple[np.ndarray, float]:
    """Cholesky factor of ``matrix`` with the smallest workable jitter.

    Returns ``(L, jitter)`` where ``L @ L.T == matrix + jitter * I``.  Kernel
    matrices of tightly clustered training points are frequently singular to
    machine precision; escalating jitter is the standard remedy.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise GPError(f"expected a square matrix, got shape {matrix.shape}")
    try:
        return np.linalg.cholesky(matrix), 0.0
    except np.linalg.LinAlgError:
        pass
    jitter = initial_jitter * max(1.0, float(np.mean(np.diag(matrix))))
    identity = np.eye(matrix.shape[0])
    last_tried = jitter
    for _ in range(max_tries):
        try:
            return np.linalg.cholesky(matrix + jitter * identity), jitter
        except np.linalg.LinAlgError:
            last_tried = jitter
            jitter *= 10.0
    raise GPError(
        f"matrix of shape {matrix.shape} is not positive definite even with "
        f"final jitter {last_tried:g} (escalated over {max_tries} tries); "
        "check for duplicate training points or a degenerate kernel"
    )


def stacked_jittered_cholesky(
    matrices: np.ndarray, initial_jitter: float = 1e-10, max_tries: int = 8
) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`jittered_cholesky` over a ``(B, n, n)`` stack.

    Returns ``(L, jitter)`` with ``L`` of shape ``(B, n, n)`` and ``jitter``
    of shape ``(B,)``.  The common all-positive-definite case is one LAPACK
    call on the stack (elementwise identical to per-matrix factorisations —
    batched Cholesky factorises each matrix independently); only when the
    stacked call fails does each matrix fall back to the scalar escalation
    loop, preserving its exact jitter sequence.
    """
    matrices = np.asarray(matrices, dtype=float)
    if matrices.ndim != 3 or matrices.shape[1] != matrices.shape[2]:
        raise GPError(f"expected a (B, n, n) stack, got shape {matrices.shape}")
    if matrices.shape[0] == 0:
        return matrices.copy(), np.zeros(0)
    try:
        return np.linalg.cholesky(matrices), np.zeros(matrices.shape[0])
    except np.linalg.LinAlgError:
        pass
    factors = np.empty_like(matrices)
    jitters = np.zeros(matrices.shape[0])
    for b in range(matrices.shape[0]):
        factors[b], jitters[b] = jittered_cholesky(
            matrices[b], initial_jitter=initial_jitter, max_tries=max_tries
        )
    return factors, jitters


def solve_lower(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L x = b`` for lower-triangular ``L``."""
    from scipy.linalg import solve_triangular

    return solve_triangular(L, b, lower=True)


def solve_cholesky(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``(L L^T) x = b`` given the lower Cholesky factor ``L``."""
    from scipy.linalg import solve_triangular

    y = solve_triangular(L, b, lower=True)
    return solve_triangular(L.T, y, lower=False)


def inverse_from_cholesky(L: np.ndarray) -> np.ndarray:
    """Explicit inverse of ``L L^T`` (needed for incremental updates)."""
    identity = np.eye(L.shape[0])
    return solve_cholesky(L, identity)


def log_det_from_cholesky(L: np.ndarray) -> float:
    """``log |L L^T|`` computed stably from the Cholesky factor."""
    return float(2.0 * np.sum(np.log(np.diag(L))))


def block_inverse_update(K_inv: np.ndarray, k_new: np.ndarray, k_self: float) -> np.ndarray:
    """Grow an inverse covariance matrix by one row/column.

    Given ``K_inv = K^{-1}`` for the current ``n`` training points, the
    covariance vector ``k_new`` between the new point and the existing
    points, and the new point's self-covariance ``k_self`` (including any
    noise/jitter), return the inverse of the ``(n+1) x (n+1)`` matrix

    ``[[K, k_new], [k_new^T, k_self]]``

    using the standard block-matrix (Schur-complement) identity referenced
    in Section 5.2.  Cost is ``O(n^2)``.
    """
    K_inv = np.asarray(K_inv, dtype=float)
    k_new = np.asarray(k_new, dtype=float).reshape(-1)
    n = K_inv.shape[0]
    if k_new.shape != (n,):
        raise GPError(f"k_new has shape {k_new.shape}, expected ({n},)")
    v = K_inv @ k_new
    schur = float(k_self - k_new @ v)
    if schur <= 0:
        raise GPError(
            "Schur complement is non-positive; the new training point is "
            "numerically identical to an existing one"
        )
    top_left = K_inv + np.outer(v, v) / schur
    top_right = (-v / schur).reshape(n, 1)
    bottom = np.array([[1.0 / schur]])
    return np.block([[top_left, top_right], [top_right.T, bottom]])


def block_inverse_update_multi(
    K_inv: np.ndarray, K_cross: np.ndarray, K_block: np.ndarray
) -> np.ndarray:
    """Grow an inverse covariance matrix by ``k`` rows/columns at once.

    Given ``K_inv = K^{-1}`` for the current ``n`` training points, the
    cross-covariance ``K_cross`` (shape ``(n, k)``) between the existing and
    the ``k`` new points, and the new points' own covariance block
    ``K_block`` (shape ``(k, k)``, including any noise/jitter on its
    diagonal), return the inverse of the ``(n+k) x (n+k)`` matrix

    ``[[K, K_cross], [K_cross^T, K_block]]``

    via the block (Schur-complement) identity.  Cost is ``O(n^2 k)`` — the
    blocked generalisation of :func:`block_inverse_update` used when batched
    execution absorbs several training points in one step.

    Raises :class:`~repro.exceptions.GPError` when the Schur complement is
    not positive definite, i.e. the new points are (numerically) linearly
    dependent on each other or on the existing training set.
    """
    K_inv = np.asarray(K_inv, dtype=float)
    K_cross = np.asarray(K_cross, dtype=float)
    K_block = np.asarray(K_block, dtype=float)
    n = K_inv.shape[0]
    if K_cross.ndim != 2 or K_cross.shape[0] != n:
        raise GPError(f"K_cross has shape {K_cross.shape}, expected ({n}, k)")
    k = K_cross.shape[1]
    if K_block.shape != (k, k):
        raise GPError(f"K_block has shape {K_block.shape}, expected ({k}, {k})")
    V = K_inv @ K_cross
    schur = symmetrize(K_block - K_cross.T @ V)
    try:
        L = np.linalg.cholesky(schur)
    except np.linalg.LinAlgError as exc:
        raise GPError(
            "Schur complement block is not positive definite; the new training "
            "points are rank-deficient against the existing training set "
            "(duplicate or linearly dependent points)"
        ) from exc
    schur_inv = inverse_from_cholesky(L)
    W = V @ schur_inv
    top_left = K_inv + W @ V.T
    return np.block([[top_left, -W], [-W.T, schur_inv]])


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part of ``matrix`` (damps accumulation of drift)."""
    return 0.5 * (matrix + matrix.T)
