"""Gaussian-process regression substrate (S4), built from scratch on numpy.

Public surface: kernels (:class:`SquaredExponential`, :class:`Matern32`,
:class:`Matern52`), the exact :class:`GaussianProcess` regressor with
incremental updates, and MLE hyperparameter training utilities.
"""

from repro.gp.kernels import (
    KERNELS,
    Kernel,
    Matern32,
    Matern52,
    SquaredExponential,
    make_kernel,
    pairwise_sq_dists,
)
from repro.gp.linalg import (
    block_inverse_update,
    inverse_from_cholesky,
    jittered_cholesky,
    log_det_from_cholesky,
    solve_cholesky,
)
from repro.gp.regression import GaussianProcess
from repro.gp.training import (
    TrainingResult,
    fit_hyperparameters,
    gradient_step,
    initial_hyperparameters,
    newton_step,
)

__all__ = [
    "Kernel",
    "SquaredExponential",
    "Matern32",
    "Matern52",
    "KERNELS",
    "make_kernel",
    "pairwise_sq_dists",
    "GaussianProcess",
    "jittered_cholesky",
    "solve_cholesky",
    "inverse_from_cholesky",
    "log_det_from_cholesky",
    "block_inverse_update",
    "TrainingResult",
    "fit_hyperparameters",
    "initial_hyperparameters",
    "gradient_step",
    "newton_step",
]
