"""Exact Gaussian-process regression with incremental updates.

Implements Section 3.3 (inference for new input points), the marginal
likelihood and its derivatives used in Section 3.4 / 5.3, and the
incremental inverse-covariance update of Section 5.2 that lets OLGAPRO add
training points online in ``O(n^2)``.

The model follows the paper's choices: zero mean function and a stationary
kernel; a small observation-noise variance is kept on the diagonal for
numerical stability (UDFs are deterministic, so this acts as jitter).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import DEFAULT_JITTER
from repro.exceptions import GPError, NotTrainedError
from repro.gp.kernels import Kernel, SquaredExponential
from repro.gp.linalg import (
    block_inverse_update,
    block_inverse_update_multi,
    inverse_from_cholesky,
    jittered_cholesky,
    log_det_from_cholesky,
    symmetrize,
)

_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass(frozen=True)
class GPStateSnapshot:
    """Frozen copy of a GP's trained state (§5.2 speculative tuning support).

    Captures everything :meth:`GaussianProcess.restore` needs to roll the
    model back after a speculative multi-point addition overshoots: the
    training data, the incrementally maintained inverse factorization, the
    weight vector, and the kernel hyperparameters.  The arrays are *shared*
    with the model rather than copied — :class:`GaussianProcess` only ever
    rebinds its arrays (vstack / append / fresh inverse), never mutates them
    in place, so a snapshot stays valid however the live model evolves, and
    restoring rebinds the exact original buffers (bitwise-identical
    predictions, no copy cost).
    """

    X: Optional[np.ndarray]
    y: Optional[np.ndarray]
    offset: float
    K_inv: Optional[np.ndarray]
    alpha: Optional[np.ndarray]
    log_det: Optional[float]
    adds_since_refresh: int
    #: A clone of the kernel, preserving hyperparameters in natural space —
    #: round-tripping through the log-space ``theta`` vector would perturb
    #: them by an ulp and break bitwise restore.
    kernel: Kernel
    #: The model's :attr:`GaussianProcess.version` at capture time.  Callers
    #: that absorb observations selected *against* this snapshot can pass it
    #: as a fence: if the model mutated in between, the absorb is rejected
    #: instead of silently applying against a different base state.
    version: int = 0

    @property
    def n_training(self) -> int:
        """Number of training points captured in this snapshot."""
        return 0 if self.X is None else int(self.X.shape[0])


class GaussianProcess:
    """Zero-mean GP regressor over a black-box scalar function.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to the paper's squared-exponential.
    noise_variance:
        Diagonal noise / jitter added to the training covariance matrix.
    refresh_every:
        After this many incremental point additions the inverse covariance
        matrix is recomputed from a fresh Cholesky factorisation to stop
        floating-point drift from accumulating.
    center_targets:
        When true (default) the GP is fitted to the training targets minus
        their mean and the mean is added back at prediction time.  This is
        equivalent to using a constant mean function and removes the
        degenerate maximum-likelihood modes a strict zero-mean model exhibits
        on targets with a large offset.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise_variance: float = DEFAULT_JITTER,
        refresh_every: int = 64,
        center_targets: bool = True,
    ):
        if noise_variance < 0:
            raise GPError("noise_variance must be non-negative")
        if refresh_every <= 0:
            raise GPError("refresh_every must be positive")
        self.kernel = kernel if kernel is not None else SquaredExponential()
        self.noise_variance = float(noise_variance)
        self.refresh_every = int(refresh_every)
        self.center_targets = bool(center_targets)

        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._offset = 0.0
        self._K_inv: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._log_det: Optional[float] = None
        self._adds_since_refresh = 0
        #: Monotone state-version counter, bumped by every mutation (fit,
        #: point additions, hyperparameter changes, restore).  Snapshots
        #: record it so deferred absorbs can *fence* on "unchanged since the
        #: snapshot" — see :meth:`snapshot` and
        #: :meth:`repro.core.emulator.GPEmulator.absorb_observations`.
        self._version = 0
        #: Serialises mutations: the async refinement pipeline keeps all GP
        #: updates on the coordinating thread by design, but the lock makes
        #: an accidental concurrent absorb corrupt nothing.
        self._update_lock = threading.RLock()
        #: Counts of factorization-grade operations performed over the model's
        #: lifetime: full Cholesky recomputes, O(n^2) rank-1 inverse updates,
        #: and O(n^2 k) blocked inverse updates.  The speculative tuning tests
        #: and benchmarks read these to quantify refinement-loop savings.
        self.op_counts: dict[str, int] = {"cholesky": 0, "rank1_update": 0, "block_update": 0}

    # -- pickling ----------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle support: the update lock is process-local and not picklable."""
        state = dict(self.__dict__)
        del state["_update_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        """Recreate the process-local update lock after unpickling."""
        self.__dict__.update(state)
        self._update_lock = threading.RLock()

    # -- training-set accessors -------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone counter identifying the current model state.

        Every mutation — :meth:`fit`, :meth:`add_point`, :meth:`add_points`,
        :meth:`set_hyperparameters`, :meth:`restore` — increments it, so two
        equal readings bracket a window in which the model was untouched.
        """
        return self._version

    @property
    def n_training(self) -> int:
        """Number of training points currently in the model."""
        return 0 if self._X is None else int(self._X.shape[0])

    @property
    def X_train(self) -> np.ndarray:
        """Training inputs with shape ``(n, d)``."""
        self._require_trained()
        return self._X.copy()

    @property
    def y_train(self) -> np.ndarray:
        """Training targets with shape ``(n,)``."""
        self._require_trained()
        return self._y.copy()

    @property
    def alpha(self) -> np.ndarray:
        """The weight vector ``K^{-1} (y - offset)`` used for O(n) mean prediction (§5.1)."""
        self._require_trained()
        return self._alpha.copy()

    @property
    def mean_offset(self) -> float:
        """Constant added back to every mean prediction (0 when not centering)."""
        return self._offset

    @property
    def K_inv(self) -> np.ndarray:
        """Inverse of the (noise-augmented) training covariance matrix."""
        self._require_trained()
        return self._K_inv.copy()

    @property
    def dimension(self) -> int:
        """Input dimensionality of the modelled function."""
        self._require_trained()
        return int(self._X.shape[1])

    # -- fitting -----------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """(Re)build the model from scratch on the given training data.

        Cost is ``O(n^3)`` for the Cholesky factorisation, matching the
        training-complexity discussion in Section 3.3.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise GPError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} values"
            )
        if X.shape[0] == 0:
            raise GPError("cannot fit a GP on zero training points")
        with self._update_lock:
            self._X = X.copy()
            self._y = y.copy()
            self._recompute()
            self._version += 1
        return self

    def add_point(self, x: np.ndarray, y: float) -> None:
        """Add one training point, updating ``K^{-1}`` incrementally (§5.2)."""
        x = np.atleast_1d(np.asarray(x, dtype=float))
        if self._X is None:
            self.fit(x.reshape(1, -1), np.array([y]))
            return
        if x.shape != (self._X.shape[1],):
            raise GPError(
                f"point has shape {x.shape}, expected ({self._X.shape[1]},)"
            )
        with self._update_lock:
            k_new = self.kernel(self._X, x.reshape(1, -1)).ravel()
            k_self = float(self.kernel.diag(x.reshape(1, -1))[0]) + self.effective_noise()
            try:
                new_inv = block_inverse_update(self._K_inv, k_new, k_self)
            except GPError:
                # Degenerate update (duplicate point); fall back to a full refit
                # which applies escalating jitter.
                self._X = np.vstack([self._X, x])
                self._y = np.append(self._y, y)
                self._recompute()
                self._version += 1
                return
            self._X = np.vstack([self._X, x])
            self._y = np.append(self._y, y)
            self._K_inv = symmetrize(new_inv)
            self.op_counts["rank1_update"] += 1
            # Keep the existing offset for incremental updates; it is refreshed on
            # the next full recompute.
            self._alpha = self._K_inv @ (self._y - self._offset)
            self._log_det = None  # recomputed lazily when the likelihood is needed
            self._adds_since_refresh += 1
            if self._adds_since_refresh >= self.refresh_every:
                self._recompute()
            self._version += 1

    def add_points(self, X_new: np.ndarray, y_new: np.ndarray) -> None:
        """Add ``k`` training points in one blocked ``O(n^2 k)`` update.

        Generalises :meth:`add_point`: the inverse covariance matrix absorbs
        the whole block at once via the Schur-complement identity instead of
        ``k`` successive rank-1 updates.  A rank-deficient block (duplicate
        or linearly dependent points) falls back to a full refit, which
        applies escalating jitter.
        """
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        y_new = np.asarray(y_new, dtype=float).ravel()
        if X_new.shape[0] != y_new.shape[0]:
            raise GPError(
                f"X_new has {X_new.shape[0]} rows but y_new has {y_new.shape[0]} values"
            )
        if X_new.shape[0] == 0:
            return
        if self._X is None:
            self.fit(X_new, y_new)
            return
        if X_new.shape[1] != self._X.shape[1]:
            raise GPError(
                f"points have {X_new.shape[1]} columns, expected {self._X.shape[1]}"
            )
        if X_new.shape[0] == 1:
            self.add_point(X_new[0], float(y_new[0]))
            return
        with self._update_lock:
            K_cross = self.kernel(self._X, X_new)
            K_block = self.kernel(X_new, X_new) + self.effective_noise() * np.eye(X_new.shape[0])
            try:
                new_inv = block_inverse_update_multi(self._K_inv, K_cross, K_block)
            except GPError:
                self._X = np.vstack([self._X, X_new])
                self._y = np.append(self._y, y_new)
                self._recompute()
                self._version += 1
                return
            self._X = np.vstack([self._X, X_new])
            self._y = np.append(self._y, y_new)
            self._K_inv = symmetrize(new_inv)
            self.op_counts["block_update"] += 1
            self._alpha = self._K_inv @ (self._y - self._offset)
            self._log_det = None
            self._adds_since_refresh += X_new.shape[0]
            if self._adds_since_refresh >= self.refresh_every:
                self._recompute()
            self._version += 1

    def set_hyperparameters(self, theta: np.ndarray) -> None:
        """Set kernel hyperparameters (log space) and refit the matrices."""
        with self._update_lock:
            self.kernel.theta = np.asarray(theta, dtype=float)
            if self._X is not None:
                self._recompute()
            self._version += 1

    # -- state snapshot / rollback -------------------------------------------------
    @property
    def factorization_count(self) -> int:
        """Total factorization-grade operations performed so far.

        Sums full Cholesky recomputes, rank-1 inverse updates and blocked
        inverse updates — the quantity the speculative multi-point tuning
        strategy reduces by absorbing ``k`` points per operation.
        """
        return int(sum(self.op_counts.values()))

    def snapshot(self) -> GPStateSnapshot:
        """Capture the current trained state for a later :meth:`restore`.

        O(1): the snapshot shares the model's (never-mutated-in-place)
        arrays instead of copying them, and spends no factorization work —
        the point of the speculative tuning loop is to save factorizations,
        so rolling back must not spend one.
        """
        return GPStateSnapshot(
            X=self._X,
            y=self._y,
            offset=self._offset,
            K_inv=self._K_inv,
            alpha=self._alpha,
            log_det=self._log_det,
            adds_since_refresh=self._adds_since_refresh,
            kernel=self.kernel.clone(),
            version=self._version,
        )

    def restore(self, state: GPStateSnapshot) -> None:
        """Roll the model back to a previously captured snapshot.

        Restores the training data, factorization, weight vector and kernel
        hyperparameters without recomputing anything.  Operation counters are
        deliberately *not* rolled back: they account for work performed, and
        a rolled-back speculative step still performed its update.
        """
        # Mutate the live kernel in place (components hold references to it)
        # with natural-space values from the snapshot's clone, and rebind the
        # snapshot's shared buffers — the restored state is bitwise the state
        # that was captured.
        with self._update_lock:
            self.kernel.__dict__.update(state.kernel.clone().__dict__)
            self._X = state.X
            self._y = state.y
            self._offset = state.offset
            self._K_inv = state.K_inv
            self._alpha = state.alpha
            self._log_det = state.log_det
            self._adds_since_refresh = state.adds_since_refresh
            # The version moves *forward*: a rollback is itself a mutation, so
            # fences captured before the rolled-back step must not silently
            # match the post-rollback state.
            self._version += 1

    # -- prediction ----------------------------------------------------------------
    def predict(
        self, X_test: np.ndarray, return_std: bool = True
    ) -> tuple[np.ndarray, np.ndarray] | np.ndarray:
        """Posterior mean (and standard deviation) at the test inputs.

        Implements Eq. (2): ``m = K(X, X*) K(X*, X*)^{-1} f*`` and
        ``Sigma = K(X, X) - K(X, X*) K(X*, X*)^{-1} K(X*, X)`` (diagonal only).
        """
        self._require_trained()
        X_test = np.atleast_2d(np.asarray(X_test, dtype=float))
        K_star = self.kernel(X_test, self._X)
        mean = K_star @ self._alpha + self._offset
        if not return_std:
            return mean
        # Only the marginal variances are needed by the framework.
        tmp = K_star @ self._K_inv
        var = self.kernel.diag(X_test) - np.sum(tmp * K_star, axis=1)
        var = np.maximum(var, 0.0)
        return mean, np.sqrt(var)

    def predict_mean(self, X_test: np.ndarray) -> np.ndarray:
        """Posterior mean only — ``O(n)`` per test point via the cached alpha."""
        self._require_trained()
        X_test = np.atleast_2d(np.asarray(X_test, dtype=float))
        return self.kernel(X_test, self._X) @ self._alpha + self._offset

    def sample_posterior(
        self, X_test: np.ndarray, n_samples: int = 1, random_state=None
    ) -> np.ndarray:
        """Draw sample functions from the posterior at the test inputs.

        Returns an array with shape ``(n_samples, len(X_test))``.  Used by
        tests to validate that the simultaneous confidence band actually
        contains posterior sample paths with the advertised probability.
        """
        from repro.rng import as_generator

        self._require_trained()
        X_test = np.atleast_2d(np.asarray(X_test, dtype=float))
        K_star = self.kernel(X_test, self._X)
        mean = K_star @ self._alpha + self._offset
        cov = self.kernel(X_test, X_test) - K_star @ self._K_inv @ K_star.T
        cov = symmetrize(cov)
        L, _ = jittered_cholesky(cov + 1e-12 * np.eye(cov.shape[0]))
        rng = as_generator(random_state)
        z = rng.standard_normal(size=(n_samples, X_test.shape[0]))
        return mean + z @ L.T

    # -- marginal likelihood and derivatives ------------------------------------------
    def log_marginal_likelihood(self) -> float:
        """``log p(y | X, theta)`` for the current hyperparameters (§3.4)."""
        self._require_trained()
        if self._log_det is None:
            self._refresh_log_det()
        n = self.n_training
        fit_term = float((self._y - self._offset) @ self._alpha)
        return -0.5 * fit_term - 0.5 * self._log_det - 0.5 * n * _LOG_2PI

    def log_marginal_likelihood_gradient(self) -> np.ndarray:
        """Gradient of the log marginal likelihood w.r.t. ``kernel.theta``.

        Uses the standard identity ``dL/dtheta_j = 0.5 tr[(alpha alpha^T -
        K^{-1}) dK/dtheta_j]``.
        """
        self._require_trained()
        grads = self.kernel.gradients(self._X)
        outer = np.outer(self._alpha, self._alpha)
        inner = outer - self._K_inv
        return np.array([0.5 * np.sum(inner * dK) for dK in grads])

    def log_marginal_likelihood_hessian_diag(self) -> np.ndarray:
        """Per-hyperparameter second derivatives ``d^2 L / d theta_j^2``.

        Follows the formula quoted in Section 5.3 of the paper, with
        ``dK^{-1}/dtheta_j = -K^{-1} (dK/dtheta_j) K^{-1}``.  These feed the
        Newton-step retraining heuristic.
        """
        self._require_trained()
        grads = self.kernel.gradients(self._X)
        seconds = self.kernel.second_derivatives(self._X)
        K_inv = self._K_inv
        y = self._y - self._offset
        yyT = np.outer(y, y)
        K_inv_yyT = K_inv @ yyT
        hessian = np.empty(len(grads))
        for j, (dK, d2K) in enumerate(zip(grads, seconds)):
            dK_inv = -K_inv @ dK @ K_inv
            term1 = dK_inv @ K_inv_yyT.T  # (dK^{-1} y y^T K^{-1})
            term2 = K_inv_yyT @ dK_inv  # (K^{-1} y y^T dK^{-1})
            first = (term1 + term2 - dK_inv) @ dK
            second = (K_inv @ yyT @ K_inv - K_inv) @ d2K
            hessian[j] = 0.5 * float(np.trace(first) + np.trace(second))
        return hessian

    # -- internals -----------------------------------------------------------------
    def effective_noise(self) -> float:
        """Diagonal nugget actually added to the training covariance matrix.

        The configured noise is treated as a floor; an additional relative
        jitter proportional to the signal variance keeps the condition number
        of the kernel matrix bounded (and the weight vector α well behaved)
        even when maximum-likelihood training drives the signal variance to
        large values or training points cluster tightly.
        """
        return max(self.noise_variance, 1e-7 * self.kernel.signal_std**2)

    def _recompute(self) -> None:
        self._offset = float(np.mean(self._y)) if self.center_targets else 0.0
        K = self.kernel(self._X, self._X) + self.effective_noise() * np.eye(self._X.shape[0])
        self.op_counts["cholesky"] += 1
        L, _ = jittered_cholesky(K)
        self._K_inv = inverse_from_cholesky(L)
        self._alpha = self._K_inv @ (self._y - self._offset)
        self._log_det = log_det_from_cholesky(L)
        self._adds_since_refresh = 0

    def _refresh_log_det(self) -> None:
        K = self.kernel(self._X, self._X) + self.effective_noise() * np.eye(self._X.shape[0])
        L, _ = jittered_cholesky(K)
        self._log_det = log_det_from_cholesky(L)

    def _require_trained(self) -> None:
        if self._X is None:
            raise NotTrainedError("the GP has no training data yet")

    def __repr__(self) -> str:
        return (
            f"GaussianProcess(kernel={self.kernel!r}, n_training={self.n_training})"
        )
