"""Hyperparameter learning for GP emulators (Section 3.4 and 5.3).

The paper learns kernel hyperparameters by maximum likelihood.  Three entry
points are provided:

* :func:`initial_hyperparameters` — data-driven starting point
  (signal std = std of targets, lengthscale = median pairwise distance).
* :func:`fit_hyperparameters` — full MLE optimisation, either via L-BFGS on
  the analytic gradient (default; robust) or plain gradient ascent (the
  paper's description).
* :func:`gradient_step` / :func:`newton_step` — a *single* optimiser step,
  used by the online retraining heuristic of Section 5.3, which only triggers
  a full retrain when the first step proposes a large hyperparameter move.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.exceptions import GPError
from repro.gp.kernels import pairwise_sq_dists
from repro.gp.regression import GaussianProcess

#: Fallback bounds (log space) used when no data-driven bounds are available.
_LOG_BOUNDS = (-10.0, 10.0)


def hyperparameter_bounds(X: np.ndarray, y: np.ndarray) -> list[tuple[float, float]]:
    """Data-driven log-space bounds ``[(signal), (lengthscale)]`` for the MLE.

    Unconstrained maximum likelihood on noise-free data with few points has a
    well-known degenerate mode: a near-zero lengthscale with a huge signal
    variance explains the data as white noise and leaves the emulator unable
    to generalise at all.  Restricting the lengthscale to lie between half
    the smallest training-point spacing and ten times the data diameter (and
    the signal standard deviation to a broad band around the target spread)
    removes that mode without affecting sensible optima.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    y = np.asarray(y, dtype=float).ravel()
    signal = float(np.std(y))
    if signal <= 0 or not np.isfinite(signal):
        signal = 1.0
    # The GP is fitted to centred targets, so the signal standard deviation
    # should be on the order of std(y); a factor-3 headroom is ample.
    signal_bounds = (np.log(signal * 1e-1), np.log(signal * 3.0))
    if X.shape[0] >= 2:
        sq = pairwise_sq_dists(X, X)
        upper = np.sqrt(sq[np.triu_indices_from(sq, k=1)])
        positive = upper[upper > 0]
        if positive.size:
            lengthscale_bounds = (
                np.log(max(0.5 * float(np.min(positive)), 1e-8)),
                np.log(2.0 * float(np.max(positive))),
            )
        else:
            lengthscale_bounds = _LOG_BOUNDS
    else:
        lengthscale_bounds = _LOG_BOUNDS
    return [signal_bounds, lengthscale_bounds]


@dataclass(frozen=True)
class TrainingResult:
    """Outcome of a hyperparameter optimisation."""

    theta: np.ndarray
    log_likelihood: float
    n_iterations: int
    converged: bool


def initial_hyperparameters(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Heuristic log-space initialisation ``[log sigma_f, log l]``."""
    X = np.atleast_2d(np.asarray(X, dtype=float))
    y = np.asarray(y, dtype=float).ravel()
    signal = float(np.std(y))
    if signal <= 0 or not np.isfinite(signal):
        signal = 1.0
    if X.shape[0] >= 2:
        sq = pairwise_sq_dists(X, X)
        upper = sq[np.triu_indices_from(sq, k=1)]
        positive = upper[upper > 0]
        lengthscale = float(np.sqrt(np.median(positive))) if positive.size else 1.0
    else:
        lengthscale = 1.0
    if lengthscale <= 0 or not np.isfinite(lengthscale):
        lengthscale = 1.0
    return np.log(np.array([signal, lengthscale]))


def fit_hyperparameters(
    gp: GaussianProcess,
    method: str = "lbfgs",
    max_iterations: int = 100,
    learning_rate: float = 0.1,
    tolerance: float = 1e-5,
) -> TrainingResult:
    """Maximise the log marginal likelihood of ``gp`` in place.

    Parameters
    ----------
    gp:
        A fitted :class:`GaussianProcess`; its kernel hyperparameters are
        updated to the optimum found.
    method:
        ``"lbfgs"`` (default) uses scipy's L-BFGS-B with the analytic
        gradient; ``"gradient"`` performs plain gradient ascent with a
        backtracking step size, mirroring the paper's description.
    """
    if gp.n_training == 0:
        raise GPError("cannot train a GP without training data")
    if method not in ("lbfgs", "gradient"):
        raise GPError(f"unknown training method {method!r}")

    if method == "lbfgs":
        return _fit_lbfgs(gp, max_iterations)
    return _fit_gradient_ascent(gp, max_iterations, learning_rate, tolerance)


def gradient_step(gp: GaussianProcess, learning_rate: float = 0.1) -> np.ndarray:
    """One gradient-ascent step; returns the *proposed* theta (not applied)."""
    gradient = gp.log_marginal_likelihood_gradient()
    return gp.kernel.theta + learning_rate * gradient


def newton_step(gp: GaussianProcess, max_step: float = 2.0) -> np.ndarray:
    """One (diagonal) Newton step; returns the *proposed* theta (not applied).

    The paper's retraining heuristic (Section 5.3) inspects how far the very
    first Newton step would move the hyperparameters.  Coordinates whose
    second derivative is non-negative (locally non-concave) fall back to a
    gradient step, and each coordinate's move is clipped to ``max_step`` so a
    nearly flat likelihood cannot propose an absurd jump.
    """
    gradient = gp.log_marginal_likelihood_gradient()
    hessian_diag = gp.log_marginal_likelihood_hessian_diag()
    step = np.empty_like(gradient)
    for j in range(gradient.size):
        if hessian_diag[j] < -1e-12:
            step[j] = -gradient[j] / hessian_diag[j]
        else:
            step[j] = 0.1 * gradient[j]
    step = np.clip(step, -max_step, max_step)
    return gp.kernel.theta + step


def _fit_lbfgs(gp: GaussianProcess, max_iterations: int) -> TrainingResult:
    def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
        gp.set_hyperparameters(theta)
        return -gp.log_marginal_likelihood(), -gp.log_marginal_likelihood_gradient()

    bounds = hyperparameter_bounds(gp.X_train, gp.y_train)
    theta0 = np.clip(
        gp.kernel.theta,
        [b[0] for b in bounds],
        [b[1] for b in bounds],
    )
    result = optimize.minimize(
        objective,
        theta0,
        jac=True,
        method="L-BFGS-B",
        bounds=bounds,
        options={"maxiter": max_iterations},
    )
    gp.set_hyperparameters(result.x)
    return TrainingResult(
        theta=np.asarray(result.x, dtype=float),
        log_likelihood=float(-result.fun),
        n_iterations=int(result.nit),
        converged=bool(result.success),
    )


def _fit_gradient_ascent(
    gp: GaussianProcess, max_iterations: int, learning_rate: float, tolerance: float
) -> TrainingResult:
    theta = gp.kernel.theta
    best_ll = gp.log_marginal_likelihood()
    step = learning_rate
    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):
        gradient = gp.log_marginal_likelihood_gradient()
        if float(np.max(np.abs(gradient))) < tolerance:
            converged = True
            break
        proposal = np.clip(theta + step * gradient, *_LOG_BOUNDS)
        gp.set_hyperparameters(proposal)
        new_ll = gp.log_marginal_likelihood()
        if new_ll > best_ll:
            theta = proposal
            best_ll = new_ll
            step = min(step * 1.2, 1.0)
        else:
            # Backtrack: restore previous hyperparameters and shrink the step.
            gp.set_hyperparameters(theta)
            step *= 0.5
            if step < 1e-6:
                converged = True
                break
    gp.set_hyperparameters(theta)
    return TrainingResult(
        theta=theta,
        log_likelihood=best_ll,
        n_iterations=iterations,
        converged=converged,
    )
