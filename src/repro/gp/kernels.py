"""Covariance functions (kernels) for Gaussian-process emulators.

The paper's default kernel is the isotropic squared-exponential
``k(x, x') = sigma_f^2 * exp(-||x - x'||^2 / (2 l^2))`` (Section 3.2) and it
points to Matérn kernels for less smooth UDFs.  Hyperparameters are handled
in log space throughout (``theta = [log sigma_f, log l]``) so that the MLE
optimisation of Section 3.4 is unconstrained.

Each kernel exposes, in addition to evaluation:

* ``gradients``   — ``dK/dtheta_j`` for the marginal-likelihood gradient,
* ``second_derivatives`` — ``d^2K/dtheta_j^2`` for the Newton-step retraining
  heuristic of Section 5.3, and
* ``second_spectral_moment`` — the variance of the derivative of the
  standardised process, needed by the Euler-characteristic approximation of
  the simultaneous confidence band (Section 4.2).
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

from repro.exceptions import GPError


def pairwise_sq_dists(X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
    """Matrix of squared Euclidean distances between rows of ``X1`` and ``X2``."""
    X1 = np.atleast_2d(np.asarray(X1, dtype=float))
    X2 = np.atleast_2d(np.asarray(X2, dtype=float))
    if X1.shape[1] != X2.shape[1]:
        raise GPError(
            f"dimension mismatch: {X1.shape[1]} vs {X2.shape[1]} columns"
        )
    sq1 = np.sum(X1**2, axis=1)[:, None]
    sq2 = np.sum(X2**2, axis=1)[None, :]
    sq = sq1 + sq2 - 2.0 * X1 @ X2.T
    return np.maximum(sq, 0.0)


class Kernel(abc.ABC):
    """Stationary covariance function with log-space hyperparameters."""

    #: Human-readable hyperparameter names, in the order used by ``theta``.
    hyperparameter_names: tuple[str, ...] = ("log_signal_std", "log_lengthscale")

    def __init__(self, signal_std: float = 1.0, lengthscale: float = 1.0):
        if signal_std <= 0 or lengthscale <= 0:
            raise GPError("signal_std and lengthscale must be positive")
        self.signal_std = float(signal_std)
        self.lengthscale = float(lengthscale)

    # -- hyperparameter vector -------------------------------------------------
    @property
    def theta(self) -> np.ndarray:
        """Log-space hyperparameter vector ``[log sigma_f, log l]``."""
        return np.array([math.log(self.signal_std), math.log(self.lengthscale)])

    @theta.setter
    def theta(self, value: Sequence[float]) -> None:
        value = np.asarray(value, dtype=float)
        if value.shape != (2,):
            raise GPError(f"theta must have shape (2,), got {value.shape}")
        self.signal_std = float(np.exp(value[0]))
        self.lengthscale = float(np.exp(value[1]))

    @property
    def n_hyperparameters(self) -> int:
        """Number of tunable hyperparameters."""
        return 2

    def clone(self) -> "Kernel":
        """Copy with the same hyperparameters."""
        return type(self)(self.signal_std, self.lengthscale)

    # -- evaluation ---------------------------------------------------------
    @abc.abstractmethod
    def _from_scaled_distance(self, u: np.ndarray) -> np.ndarray:
        """Correlation as a function of ``u = r / lengthscale`` (unit signal)."""

    def __call__(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        """Covariance matrix ``K[i, j] = k(X1[i], X2[j])``."""
        r = np.sqrt(pairwise_sq_dists(X1, X2))
        return self.signal_std**2 * self._from_scaled_distance(r / self.lengthscale)

    def diag(self, X: np.ndarray) -> np.ndarray:
        """Diagonal of ``k(X, X)`` without forming the full matrix."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.full(X.shape[0], self.signal_std**2)

    # -- derivatives for training -------------------------------------------
    @abc.abstractmethod
    def _dcorr_dlog_lengthscale(self, u: np.ndarray) -> np.ndarray:
        """d corr / d(log l) expressed through ``u = r/l`` (unit signal)."""

    @abc.abstractmethod
    def _d2corr_dlog_lengthscale2(self, u: np.ndarray) -> np.ndarray:
        """d^2 corr / d(log l)^2 expressed through ``u = r/l`` (unit signal)."""

    def gradients(self, X: np.ndarray) -> list[np.ndarray]:
        """``[dK/d(log sigma_f), dK/d(log l)]`` evaluated at ``K(X, X)``."""
        r = np.sqrt(pairwise_sq_dists(X, X))
        u = r / self.lengthscale
        s2 = self.signal_std**2
        K = s2 * self._from_scaled_distance(u)
        dK_dlog_sf = 2.0 * K
        dK_dlog_l = s2 * self._dcorr_dlog_lengthscale(u)
        return [dK_dlog_sf, dK_dlog_l]

    def second_derivatives(self, X: np.ndarray) -> list[np.ndarray]:
        """``[d2K/d(log sigma_f)^2, d2K/d(log l)^2]`` at ``K(X, X)``."""
        r = np.sqrt(pairwise_sq_dists(X, X))
        u = r / self.lengthscale
        s2 = self.signal_std**2
        K = s2 * self._from_scaled_distance(u)
        d2K_dlog_sf2 = 4.0 * K
        d2K_dlog_l2 = s2 * self._d2corr_dlog_lengthscale2(u)
        return [d2K_dlog_sf2, d2K_dlog_l2]

    # -- spectral information for confidence bands -------------------------------
    @abc.abstractmethod
    def second_spectral_moment(self) -> float:
        """Variance of the derivative of the standardised (unit-variance) process.

        For an isotropic kernel ``k(r)`` this equals ``-k''(0) / k(0)``; it
        drives the expected Euler characteristic of excursion sets used to
        calibrate simultaneous confidence bands.
        """

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(signal_std={self.signal_std:.4g}, "
            f"lengthscale={self.lengthscale:.4g})"
        )


class SquaredExponential(Kernel):
    """Squared-exponential (RBF) kernel — the paper's default (Section 3.2)."""

    def _from_scaled_distance(self, u: np.ndarray) -> np.ndarray:
        return np.exp(-0.5 * u**2)

    def _dcorr_dlog_lengthscale(self, u: np.ndarray) -> np.ndarray:
        return u**2 * np.exp(-0.5 * u**2)

    def _d2corr_dlog_lengthscale2(self, u: np.ndarray) -> np.ndarray:
        u2 = u**2
        return (u2**2 - 2.0 * u2) * np.exp(-0.5 * u2)

    def second_spectral_moment(self) -> float:
        return 1.0 / self.lengthscale**2


class Matern32(Kernel):
    """Matérn kernel with smoothness 3/2 (once mean-square differentiable)."""

    _SQRT3 = math.sqrt(3.0)

    def _from_scaled_distance(self, u: np.ndarray) -> np.ndarray:
        v = self._SQRT3 * u
        return (1.0 + v) * np.exp(-v)

    def _dcorr_dlog_lengthscale(self, u: np.ndarray) -> np.ndarray:
        v = self._SQRT3 * u
        return v**2 * np.exp(-v)

    def _d2corr_dlog_lengthscale2(self, u: np.ndarray) -> np.ndarray:
        v = self._SQRT3 * u
        return v**2 * (v - 2.0) * np.exp(-v)

    def second_spectral_moment(self) -> float:
        return 3.0 / self.lengthscale**2


class Matern52(Kernel):
    """Matérn kernel with smoothness 5/2 (twice mean-square differentiable)."""

    _SQRT5 = math.sqrt(5.0)

    def _from_scaled_distance(self, u: np.ndarray) -> np.ndarray:
        v = self._SQRT5 * u
        return (1.0 + v + v**2 / 3.0) * np.exp(-v)

    def _dcorr_dlog_lengthscale(self, u: np.ndarray) -> np.ndarray:
        v = self._SQRT5 * u
        return v**2 * (1.0 + v) / 3.0 * np.exp(-v)

    def _d2corr_dlog_lengthscale2(self, u: np.ndarray) -> np.ndarray:
        v = self._SQRT5 * u
        return v**2 * (v**2 - 2.0 * v - 2.0) / 3.0 * np.exp(-v)

    def second_spectral_moment(self) -> float:
        return 5.0 / (3.0 * self.lengthscale**2)


KERNELS = {
    "squared_exponential": SquaredExponential,
    "rbf": SquaredExponential,
    "matern32": Matern32,
    "matern52": Matern52,
}


def make_kernel(name: str, signal_std: float = 1.0, lengthscale: float = 1.0) -> Kernel:
    """Construct a kernel by name (``squared_exponential``, ``matern32``, ...)."""
    key = name.lower()
    if key not in KERNELS:
        raise GPError(f"unknown kernel {name!r}; choose one of {sorted(set(KERNELS))}")
    return KERNELS[key](signal_std=signal_std, lengthscale=lengthscale)
