"""Workload generators: streams of uncertain input tuples (§6.1B).

The paper's default workload draws, for every input tuple, a Gaussian input
vector whose mean lies in the function domain ``[L, U]`` and whose standard
deviation is ``sigma_I`` (0.5 by default); exponential and Gamma inputs are
used in the sensitivity study of Expt 4.  These generators produce exactly
those streams for any dimensionality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Literal

import numpy as np

from repro.config import DEFAULT_DOMAIN_HIGH, DEFAULT_DOMAIN_LOW, DEFAULT_INPUT_STD
from repro.distributions.base import Distribution
from repro.distributions.continuous import Exponential, Gamma, Gaussian
from repro.distributions.multivariate import IndependentJoint
from repro.exceptions import DistributionError
from repro.rng import RandomState, as_generator
from repro.udf.base import UDF

InputFamily = Literal["gaussian", "exponential", "gamma"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a synthetic uncertain-input workload."""

    dimension: int
    family: InputFamily = "gaussian"
    domain_low: float = DEFAULT_DOMAIN_LOW
    domain_high: float = DEFAULT_DOMAIN_HIGH
    input_std: float = DEFAULT_INPUT_STD

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise DistributionError("dimension must be positive")
        if self.domain_high <= self.domain_low:
            raise DistributionError("domain_high must exceed domain_low")
        if self.input_std <= 0:
            raise DistributionError("input_std must be positive")


def input_distribution(spec: WorkloadSpec, rng: np.random.Generator) -> Distribution:
    """One uncertain input tuple drawn according to ``spec``.

    The *location* of the tuple (the mean) is uniform over the domain —
    different tuples land in different regions of the UDF, which is what
    forces the online algorithm to keep adapting its training data.
    """
    margin = 2.0 * spec.input_std
    means = rng.uniform(spec.domain_low + margin, spec.domain_high - margin, size=spec.dimension)
    components: list[Distribution] = []
    for mean in means:
        if spec.family == "gaussian":
            components.append(Gaussian(mu=float(mean), sigma=spec.input_std))
        elif spec.family == "exponential":
            # Shift so the bulk of the mass sits near the drawn location.
            components.append(Exponential(rate=1.0 / spec.input_std, shift=float(mean) - spec.input_std))
        elif spec.family == "gamma":
            shape = 2.0
            scale = spec.input_std / np.sqrt(shape)
            components.append(Gamma(shape=shape, scale=scale, shift=float(mean) - shape * scale))
        else:
            raise DistributionError(f"unknown input family {spec.family!r}")
    if len(components) == 1:
        return components[0]
    return IndependentJoint(components)


def input_stream(
    spec: WorkloadSpec, n_tuples: int, random_state: RandomState = None
) -> Iterator[Distribution]:
    """A stream of ``n_tuples`` uncertain input tuples."""
    if n_tuples <= 0:
        raise DistributionError("n_tuples must be positive")
    rng = as_generator(random_state)
    for _ in range(n_tuples):
        yield input_distribution(spec, rng)


def workload_for_udf(
    udf: UDF,
    family: InputFamily = "gaussian",
    input_std: float | None = None,
) -> WorkloadSpec:
    """Workload matching a UDF's declared domain and dimensionality."""
    if udf.domain is not None:
        low = float(np.min(udf.domain[0]))
        high = float(np.max(udf.domain[1]))
    else:
        low, high = DEFAULT_DOMAIN_LOW, DEFAULT_DOMAIN_HIGH
    if input_std is None:
        # Scale the default sigma_I = 0.5 on a [0, 10] domain to this domain.
        input_std = DEFAULT_INPUT_STD * (high - low) / (DEFAULT_DOMAIN_HIGH - DEFAULT_DOMAIN_LOW)
    return WorkloadSpec(
        dimension=udf.dimension,
        family=family,
        domain_low=low,
        domain_high=high,
        input_std=input_std,
    )


def true_output_distribution(
    udf: UDF,
    input_dist: Distribution,
    n_samples: int = 20000,
    random_state: RandomState = None,
):
    """Ground-truth output distribution by brute-force simulation.

    Uses a *fresh* copy of the UDF (separate call counters and zero simulated
    cost) so that computing the reference answer for accuracy measurement
    does not distort the cost accounting of the algorithm under test.
    """
    from repro.distributions.empirical import EmpiricalDistribution

    reference_udf = udf.with_simulated_eval_time(0.0)
    rng = as_generator(random_state)
    samples = input_dist.sample(n_samples, random_state=rng)
    values = reference_udf.evaluate_batch(samples)
    return EmpiricalDistribution(values)


def selectivity_predicate(
    udf: UDF,
    spec: WorkloadSpec,
    target_filter_rate: float,
    threshold: float = 0.1,
    n_probe_tuples: int = 30,
    n_samples: int = 400,
    random_state: RandomState = None,
):
    """Construct a range predicate achieving roughly a target filtering rate.

    Expt 6 varies "the rate that the output is filtered" (0.19 … 0.97).  The
    helper probes the UDF on a pilot stream, finds the output interval around
    the upper quantiles such that approximately ``target_filter_rate`` of the
    tuples have existence probability below the threshold, and returns the
    corresponding :class:`SelectionPredicate`.
    """
    from repro.core.filtering import SelectionPredicate

    if not (0.0 < target_filter_rate < 1.0):
        raise DistributionError("target_filter_rate must be in (0, 1)")
    rng = as_generator(random_state)
    reference_udf = udf.with_simulated_eval_time(0.0)
    per_tuple_means: list[float] = []
    pooled: list[np.ndarray] = []
    for dist in input_stream(spec, n_probe_tuples, random_state=rng):
        samples = dist.sample(n_samples, random_state=rng)
        values = reference_udf.evaluate_batch(samples)
        pooled.append(values)
        per_tuple_means.append(float(np.mean(values)))
    all_values = np.concatenate(pooled)
    # Keep tuples whose typical output is above the (target) quantile of the
    # per-tuple means: predicates of the form "output in the top tail".
    cut = float(np.quantile(per_tuple_means, target_filter_rate))
    high = float(np.max(all_values)) + 1.0
    return SelectionPredicate(low=cut, high=high, threshold=threshold)
