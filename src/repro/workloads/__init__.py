"""Workload generators for the evaluation experiments (substrate S15)."""

from repro.workloads.generators import (
    InputFamily,
    WorkloadSpec,
    input_distribution,
    input_stream,
    selectivity_predicate,
    true_output_distribution,
    workload_for_udf,
)

__all__ = [
    "WorkloadSpec",
    "InputFamily",
    "input_distribution",
    "input_stream",
    "workload_for_udf",
    "true_output_distribution",
    "selectivity_predicate",
]
