"""Online retraining strategies for the GP hyperparameters (§5.3).

Full maximum-likelihood retraining costs ``O(n^3)`` per optimiser iteration,
so OLGAPRO retrains only when the training data has drifted enough that the
current hyperparameters are likely stale.  The paper's heuristic runs a
*single* optimiser step and triggers a full retrain only when that step
proposes a hyperparameter move larger than a threshold ``Δθ``; it further
observes that a plain gradient step "does not move far enough" and uses a
Newton step (first and second derivatives of the log likelihood) instead.

Three policies are provided for the Expt 3 comparison: never retrain, retrain
eagerly whenever training points were added, and the threshold heuristic
(with either a Newton or a gradient probe step).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.config import DEFAULT_RETRAIN_THRESHOLD
from repro.exceptions import GPError
from repro.gp.regression import GaussianProcess
from repro.gp.training import fit_hyperparameters, gradient_step, newton_step


@dataclass(frozen=True)
class RetrainDecision:
    """Outcome of consulting a retraining policy."""

    should_retrain: bool
    #: Norm of the proposed one-step hyperparameter move (NaN when the policy
    #: does not probe the likelihood).
    step_norm: float


class RetrainingPolicy(abc.ABC):
    """Decides whether a full hyperparameter retrain is worthwhile."""

    name: str = "base"

    @abc.abstractmethod
    def decide(self, gp: GaussianProcess, points_added: int) -> RetrainDecision:
        """Consult the policy after ``points_added`` new training points."""

    def retrain(self, gp: GaussianProcess) -> None:
        """Perform the full MLE retrain (shared by all policies)."""
        if gp.n_training == 0:
            raise GPError("cannot retrain a GP without training data")
        fit_hyperparameters(gp)


class NeverRetrain(RetrainingPolicy):
    """Keep the initial hyperparameters forever (Expt 3 lower baseline)."""

    name = "never"

    def decide(self, gp: GaussianProcess, points_added: int) -> RetrainDecision:
        return RetrainDecision(should_retrain=False, step_norm=float("nan"))


class EagerRetrain(RetrainingPolicy):
    """Retrain whenever at least one training point was added (upper baseline)."""

    name = "eager"

    def decide(self, gp: GaussianProcess, points_added: int) -> RetrainDecision:
        return RetrainDecision(should_retrain=points_added > 0, step_norm=float("nan"))


class ThresholdRetrain(RetrainingPolicy):
    """The paper's heuristic: retrain only if a one-step probe moves far.

    ``probe="newton"`` uses the diagonal Newton step built from the first and
    second derivatives of the log marginal likelihood; ``probe="gradient"``
    uses a plain gradient step (included to reproduce the paper's observation
    that it under-reacts).
    """

    name = "threshold"

    def __init__(
        self,
        threshold: float = DEFAULT_RETRAIN_THRESHOLD,
        probe: Literal["newton", "gradient"] = "newton",
        learning_rate: float = 0.1,
    ):
        if threshold <= 0:
            raise GPError("threshold must be positive")
        if probe not in ("newton", "gradient"):
            raise GPError(f"unknown probe {probe!r}")
        self.threshold = float(threshold)
        self.probe = probe
        self.learning_rate = float(learning_rate)

    def decide(self, gp: GaussianProcess, points_added: int) -> RetrainDecision:
        if points_added <= 0 or gp.n_training < 3:
            return RetrainDecision(should_retrain=False, step_norm=0.0)
        current = gp.kernel.theta
        if self.probe == "newton":
            proposed = newton_step(gp)
        else:
            proposed = gradient_step(gp, learning_rate=self.learning_rate)
        step_norm = float(np.linalg.norm(proposed - current))
        return RetrainDecision(should_retrain=step_norm > self.threshold, step_norm=step_norm)


POLICIES = {
    "never": NeverRetrain,
    "eager": EagerRetrain,
    "threshold": ThresholdRetrain,
}


def make_policy(name: str, **kwargs) -> RetrainingPolicy:
    """Construct a retraining policy by name."""
    key = name.lower()
    if key not in POLICIES:
        raise GPError(f"unknown retraining policy {name!r}; choose from {sorted(POLICIES)}")
    return POLICIES[key](**kwargs)
