"""Approximation metrics between output distributions (Section 2.1).

Implements the three distance measures the framework is built on:

* the **KS measure** ``KS(Y, Y') = sup_y |F(y) - G(y)|``,
* the **discrepancy measure**
  ``D(Y, Y') = sup_{a<=b} |Pr[Y in [a,b]] - Pr[Y' in [a,b]]``, and
* the **λ-discrepancy**, the same supremum restricted to intervals of length
  at least λ.

All three are computed exactly for empirical distributions (step-function
CDFs) by scanning the union of their jump points.  A reference quadratic
implementation of the λ-discrepancy is kept for property tests against the
efficient scan.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.distributions.empirical import EmpiricalDistribution

CDFLike = Callable[[np.ndarray], np.ndarray]


def _as_cdf(dist: EmpiricalDistribution | CDFLike) -> CDFLike:
    if isinstance(dist, EmpiricalDistribution):
        return dist.cdf
    return dist


def _union_grid(
    first: EmpiricalDistribution | np.ndarray, second: EmpiricalDistribution | np.ndarray
) -> np.ndarray:
    def points(obj) -> np.ndarray:
        if isinstance(obj, EmpiricalDistribution):
            return obj.samples
        return np.asarray(obj, dtype=float).ravel()

    return np.union1d(points(first), points(second))


def ks_distance(
    first: EmpiricalDistribution,
    second: EmpiricalDistribution | CDFLike,
    grid: np.ndarray | None = None,
) -> float:
    """Kolmogorov–Smirnov distance ``sup_y |F(y) - G(y)|`` (Definition 2).

    ``second`` may be another empirical distribution or any callable CDF
    (e.g. the analytic ground truth in tests).  For two step functions the
    supremum is attained at a jump point of either, so scanning the union of
    sample values is exact; for a continuous ``second`` we additionally
    evaluate just below each jump of ``first``.
    """
    cdf2 = _as_cdf(second)
    if grid is None:
        if isinstance(second, EmpiricalDistribution):
            grid = _union_grid(first, second)
        else:
            grid = first.samples
    grid = np.asarray(grid, dtype=float)
    diffs = np.abs(first.cdf(grid) - cdf2(grid))
    best = float(np.max(diffs)) if grid.size else 0.0
    if not isinstance(second, EmpiricalDistribution):
        # F jumps while G is continuous: check the left limit of F at jumps.
        left = np.abs(first.cdf(np.nextafter(grid, -np.inf)) - cdf2(grid))
        best = max(best, float(np.max(left)))
    return best


def discrepancy(
    first: EmpiricalDistribution, second: EmpiricalDistribution
) -> float:
    """Discrepancy measure ``sup_{a<=b} |P1[a,b] - P2[a,b]|`` (Definition 1).

    Writing ``h = F1 - F2``, the discrepancy equals the largest rise or fall
    of ``h`` over ordered pairs of evaluation points, with the convention
    that ``h = 0`` at ±infinity.  A single left-to-right scan that tracks the
    running minimum and maximum of ``h`` therefore computes it exactly.
    """
    grid = _union_grid(first, second)
    h = first.cdf(grid) - second.cdf(grid)
    running_min = 0.0
    running_max = 0.0
    best_rise = 0.0
    best_fall = 0.0
    for value in h:
        best_rise = max(best_rise, value - running_min)
        best_fall = max(best_fall, running_max - value)
        running_min = min(running_min, value)
        running_max = max(running_max, value)
    # b may also be +infinity where h returns to 0.
    best_rise = max(best_rise, 0.0 - running_min)
    best_fall = max(best_fall, running_max - 0.0)
    return float(max(best_rise, best_fall))


def lambda_discrepancy(
    first: EmpiricalDistribution,
    second: EmpiricalDistribution,
    lam: float,
) -> float:
    """λ-discrepancy ``sup_{b-a>=lam} |P1[a,b] - P2[a,b]|`` (Definition 3).

    Interval endpoints are taken over the union of observed sample values
    plus ±infinity (the same candidate set the paper's Algorithm 3 uses).
    Implemented with a two-pointer sweep: for every right endpoint ``b`` we
    know the prefix of candidate left endpoints ``a <= b - lam`` and track
    the running extrema of ``h = F1 - F2`` over that prefix.
    """
    if lam < 0:
        raise ValueError(f"lambda must be non-negative, got {lam}")
    if lam == 0:
        return discrepancy(first, second)
    grid = _union_grid(first, second)
    h = first.cdf(grid) - second.cdf(grid)
    n = grid.size
    best = 0.0
    # Candidate left endpoints include a = -infinity (h = 0), always feasible.
    prefix_min = 0.0
    prefix_max = 0.0
    left = 0
    for right in range(n):
        while left < n and grid[left] <= grid[right] - lam:
            prefix_min = min(prefix_min, h[left])
            prefix_max = max(prefix_max, h[left])
            left += 1
        best = max(best, h[right] - prefix_min, prefix_max - h[right])
    # Right endpoint at +infinity (h = 0) with any left endpoint is feasible.
    best = max(best, 0.0 - float(np.min(h)), float(np.max(h)) - 0.0, 0.0)
    return float(best)


def lambda_discrepancy_naive(
    first: EmpiricalDistribution,
    second: EmpiricalDistribution,
    lam: float,
) -> float:
    """Quadratic reference implementation of :func:`lambda_discrepancy`.

    Enumerates every candidate interval explicitly.  Kept for property-based
    testing of the efficient sweep; do not use on large sample sets.
    """
    if lam < 0:
        raise ValueError(f"lambda must be non-negative, got {lam}")
    grid = _union_grid(first, second)
    # Finite stand-ins for ±infinity keep every endpoint pair well defined
    # while still being far enough away that the λ constraint never binds.
    pad = 2.0 * max(lam, 1.0) + 1.0
    h = np.concatenate([[0.0], first.cdf(grid) - second.cdf(grid), [0.0]])
    positions = np.concatenate([[grid[0] - pad], grid, [grid[-1] + pad]])
    best = 0.0
    for i in range(positions.size):
        for j in range(i, positions.size):
            if positions[j] - positions[i] >= lam:
                best = max(best, abs(h[j] - h[i]))
    return float(best)


def discrepancy_against_cdf(
    empirical: EmpiricalDistribution,
    reference_cdf: CDFLike,
    grid: np.ndarray | None = None,
) -> float:
    """Discrepancy between an ECDF and an analytic reference CDF.

    Evaluated on the ECDF jump points (plus an optional extra grid); used in
    tests and profiling experiments where the true output distribution is
    known in closed form or via exhaustive sampling.
    """
    points = empirical.samples if grid is None else np.union1d(empirical.samples, grid)
    h = empirical.cdf(points) - np.asarray(reference_cdf(points), dtype=float)
    running_min = 0.0
    running_max = 0.0
    best = 0.0
    for value in h:
        best = max(best, value - running_min, running_max - value)
        running_min = min(running_min, value)
        running_max = max(running_max, value)
    best = max(best, -running_min, running_max)
    return float(best)


def interval_probability_error(
    first: EmpiricalDistribution,
    second: EmpiricalDistribution,
    intervals: Sequence[tuple[float, float]],
) -> float:
    """Largest |P1[a,b] - P2[a,b]| over an explicit list of intervals.

    Convenience helper for experiments that only care about a handful of
    query ranges rather than the full supremum.
    """
    worst = 0.0
    for a, b in intervals:
        p1 = first.interval_probability(a, b)
        p2 = second.interval_probability(a, b)
        worst = max(worst, abs(p1 - p2))
    return worst
