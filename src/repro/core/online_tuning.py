"""Online tuning: choosing where to add the next training point (§5.2).

When the error bound for the current input tuple exceeds the GP error
budget, OLGAPRO evaluates the UDF at one more input location and absorbs the
new pair into the model.  The paper's heuristic picks the cached Monte-Carlo
sample with the largest predictive variance; Expt 2 compares it against a
random choice and against a hypothetical "optimal greedy" strategy that
simulates every candidate and keeps the one reducing the error bound most.
All three are implemented here behind a common interface so the experiment
is a straight swap.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

import numpy as np

from repro.exceptions import GPError
from repro.rng import RandomState, as_generator

#: Callback used by the optimal-greedy strategy: given the index of a
#: candidate sample, return the error bound that would result from adding a
#: training point there.
ErrorEvaluator = Callable[[int], float]


class TuningStrategy(abc.ABC):
    """Strategy for selecting the next training-point location."""

    #: Short name used in experiment tables.
    name: str = "base"

    @abc.abstractmethod
    def select(
        self,
        samples: np.ndarray,
        means: np.ndarray,
        stds: np.ndarray,
        random_state: RandomState = None,
        error_evaluator: Optional[ErrorEvaluator] = None,
    ) -> int:
        """Index (into ``samples``) of the input location to evaluate next."""

    @staticmethod
    def _validate(samples: np.ndarray, means: np.ndarray, stds: np.ndarray) -> None:
        samples = np.atleast_2d(samples)
        if samples.shape[0] == 0:
            raise GPError("no candidate samples to choose from")
        if means.shape[0] != samples.shape[0] or stds.shape[0] != samples.shape[0]:
            raise GPError("samples, means and stds must have matching lengths")


class LargestVarianceStrategy(TuningStrategy):
    """Pick the sample whose prediction is most uncertain (the paper's choice)."""

    name = "largest_variance"

    def select(
        self,
        samples: np.ndarray,
        means: np.ndarray,
        stds: np.ndarray,
        random_state: RandomState = None,
        error_evaluator: Optional[ErrorEvaluator] = None,
    ) -> int:
        self._validate(samples, means, stds)
        return int(np.argmax(np.asarray(stds)))


class RandomStrategy(TuningStrategy):
    """Pick a candidate uniformly at random (Expt 2 baseline)."""

    name = "random"

    def select(
        self,
        samples: np.ndarray,
        means: np.ndarray,
        stds: np.ndarray,
        random_state: RandomState = None,
        error_evaluator: Optional[ErrorEvaluator] = None,
    ) -> int:
        self._validate(samples, means, stds)
        rng = as_generator(random_state)
        return int(rng.integers(0, np.atleast_2d(samples).shape[0]))


class OptimalGreedyStrategy(TuningStrategy):
    """Simulate adding every candidate and keep the best (Expt 2 upper bound).

    Prohibitively expensive in practice — it requires one full inference and
    error-bound computation per candidate — but it quantifies how close the
    cheap largest-variance heuristic gets.  ``max_candidates`` caps the
    number of candidates actually simulated (the highest-variance ones are
    tried first) so the experiment remains tractable.
    """

    name = "optimal_greedy"

    def __init__(self, max_candidates: int | None = None):
        self.max_candidates = max_candidates

    def select(
        self,
        samples: np.ndarray,
        means: np.ndarray,
        stds: np.ndarray,
        random_state: RandomState = None,
        error_evaluator: Optional[ErrorEvaluator] = None,
    ) -> int:
        self._validate(samples, means, stds)
        if error_evaluator is None:
            raise GPError("OptimalGreedyStrategy requires an error_evaluator callback")
        order = np.argsort(-np.asarray(stds))
        if self.max_candidates is not None:
            order = order[: self.max_candidates]
        best_index = int(order[0])
        best_error = float("inf")
        for candidate in order:
            error = float(error_evaluator(int(candidate)))
            if error < best_error:
                best_error = error
                best_index = int(candidate)
        return best_index


STRATEGIES = {
    "largest_variance": LargestVarianceStrategy,
    "random": RandomStrategy,
    "optimal_greedy": OptimalGreedyStrategy,
}


def make_strategy(name: str, **kwargs) -> TuningStrategy:
    """Construct a tuning strategy by name."""
    key = name.lower()
    if key not in STRATEGIES:
        raise GPError(f"unknown tuning strategy {name!r}; choose from {sorted(STRATEGIES)}")
    return STRATEGIES[key](**kwargs)
