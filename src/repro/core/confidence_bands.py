"""Simultaneous confidence bands for GP sample paths (§4.2).

The error-bound machinery needs an envelope ``f̂(x) ± z_α σ(x)`` that
contains a random posterior sample function ``f̃`` at *all* inputs
simultaneously with probability ``1 − α``.  A per-point Gaussian quantile is
not enough; the paper calibrates ``z_α`` through the expected Euler
characteristic of the excursion set ``A_z = {x : |f̃(x) − f̂(x)| / σ(x) ≥ z}``
(Adler's approximation).

For a standardised, approximately stationary field on a ``d``-dimensional
box with side lengths ``T_i`` and second spectral moment ``λ₂`` (a property
of the kernel), the expected Euler characteristic of the one-sided excursion
set is

``E[φ(A_z)] = Σ_{j=0..d} L_j ρ_j(z)``

with Lipschitz–Killing curvatures ``L_j = Σ_{|S|=j} Π_{i∈S} T_i`` and EC
densities ``ρ_0(z) = 1 − Φ(z)``,
``ρ_j(z) = λ₂^{j/2} (2π)^{-(j+1)/2} He_{j-1}(z) exp(-z²/2)`` where ``He`` are
probabilists' Hermite polynomials.  The two-sided band doubles the
expectation.  ``z_α`` solves ``E[φ(A_z)] = α``.

Two conservative fallbacks are provided: a Bonferroni (union-bound) band
over the finite set of Monte-Carlo sample locations, and a naive point-wise
band (not simultaneous; useful only for ablation comparisons).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Literal, Sequence

import numpy as np
from scipy import optimize, special

from repro.config import DEFAULT_BAND_ALPHA
from repro.exceptions import GPError
from repro.gp.kernels import Kernel
from repro.index.bounding_box import BoundingBox

BandMethod = Literal["euler", "bonferroni", "pointwise"]

#: Search interval for the band multiplier z.
_Z_MIN, _Z_MAX = 0.1, 15.0

#: Point-wise Gaussian quantiles ``z = Phi^{-1}(1 - alpha/2)`` per alpha.
#: alpha is fixed per processor, so this is computed once per process.
_POINTWISE_Z: dict[float, float] = {}


def _pointwise_z(alpha: float) -> float:
    """Cached two-sided point-wise quantile (identical to ``stats.norm.ppf``)."""
    z = _POINTWISE_Z.get(alpha)
    if z is None:
        z = float(special.ndtri(1.0 - alpha / 2.0))
        _POINTWISE_Z[alpha] = z
    return z


@dataclass(frozen=True)
class SimultaneousBand:
    """A calibrated envelope multiplier and how it was obtained."""

    z_value: float
    alpha: float
    method: BandMethod

    def envelope(self, means: np.ndarray, stds: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Lower and upper envelope values ``mean ∓ z σ`` at sample locations."""
        means = np.asarray(means, dtype=float)
        stds = np.asarray(stds, dtype=float)
        return means - self.z_value * stds, means + self.z_value * stds


def _hermite_prob(order: int, z: float) -> float:
    """Probabilists' Hermite polynomial ``He_order(z)``."""
    if order < 0:
        raise GPError("Hermite order must be non-negative")
    if order == 0:
        return 1.0
    prev, curr = 1.0, z
    for k in range(1, order):
        prev, curr = curr, z * curr - k * prev
    return curr


def lipschitz_killing_curvatures(box: BoundingBox) -> np.ndarray:
    """``L_0 .. L_d`` of an axis-aligned box (elementary symmetric sums)."""
    lengths = box.lengths
    d = lengths.size
    curvatures = np.zeros(d + 1)
    curvatures[0] = 1.0
    for j in range(1, d + 1):
        total = 0.0
        for subset in combinations(range(d), j):
            total += float(np.prod(lengths[list(subset)]))
        curvatures[j] = total
    return curvatures


def expected_euler_characteristic(
    z: float,
    box: BoundingBox,
    second_spectral_moment: float,
    curvatures: np.ndarray | None = None,
) -> float:
    """One-sided ``E[φ(A_z)]`` for a standardised field on ``box``.

    ``curvatures`` may carry the box's precomputed Lipschitz–Killing
    curvatures — the band calibration evaluates this function many times per
    root-finding solve on a fixed box, and the curvatures only depend on the
    box.  ``special.ndtr`` is used directly (bitwise identical to
    ``stats.norm.sf``) because this sits on the per-tuple hot path and the
    distribution-infrastructure wrapper costs ~100x the actual tail
    computation.
    """
    if z <= 0:
        raise GPError("z must be positive")
    if second_spectral_moment <= 0:
        raise GPError("second spectral moment must be positive")
    if curvatures is None:
        curvatures = lipschitz_killing_curvatures(box)
    lam = second_spectral_moment
    total = curvatures[0] * float(special.ndtr(-z))
    gaussian_tail = math.exp(-0.5 * z**2)
    for j in range(1, curvatures.size):
        density = (
            lam ** (j / 2.0)
            * (2.0 * math.pi) ** (-(j + 1) / 2.0)
            * _hermite_prob(j - 1, z)
            * gaussian_tail
        )
        total += curvatures[j] * density
    return total


def band_z_value(
    kernel: Kernel,
    box: BoundingBox,
    alpha: float = DEFAULT_BAND_ALPHA,
    method: BandMethod = "euler",
    n_points: int | None = None,
) -> SimultaneousBand:
    """Calibrate the envelope multiplier ``z_α`` for a (1 − α) simultaneous band.

    Parameters
    ----------
    kernel:
        The GP kernel; only its second spectral moment enters the Euler
        characteristic approximation.
    box:
        Region over which the band must hold simultaneously — in the online
        algorithm this is the bounding box of the input samples.
    alpha:
        Target probability that the band is violated anywhere.
    method:
        ``"euler"`` (paper's choice), ``"bonferroni"`` over ``n_points``
        discrete locations, or ``"pointwise"`` (not simultaneous).
    n_points:
        Number of discrete locations for the Bonferroni method.
    """
    if not (0.0 < alpha < 1.0):
        raise GPError(f"alpha must be in (0, 1), got {alpha}")
    if method == "pointwise":
        return SimultaneousBand(z_value=_pointwise_z(alpha), alpha=alpha, method=method)
    if method == "bonferroni":
        if n_points is None or n_points <= 0:
            raise GPError("bonferroni band requires a positive n_points")
        z = float(special.ndtri(1.0 - alpha / (2.0 * n_points)))
        return SimultaneousBand(z_value=z, alpha=alpha, method=method)
    if method != "euler":
        raise GPError(f"unknown band method {method!r}")
    return _euler_band(box, alpha, kernel.second_spectral_moment())


def band_z_values(
    kernel: Kernel,
    boxes: Sequence[BoundingBox],
    alpha: float = DEFAULT_BAND_ALPHA,
    method: BandMethod = "euler",
    n_points: int | None = None,
) -> list[SimultaneousBand]:
    """Calibrate :func:`band_z_value` for a whole column of boxes at once.

    Produces exactly the per-box results — the Euler root-solve is
    inherently scalar (``brentq`` per box), but the kernel's second
    spectral moment, a per-call constant the scalar path recomputes for
    every tuple, is hoisted out of the column loop.  Used by the columnar
    first pass in :mod:`repro.core.olgapro`.
    """
    boxes = list(boxes)
    if not boxes:
        return []
    if not (0.0 < alpha < 1.0):
        raise GPError(f"alpha must be in (0, 1), got {alpha}")
    if method != "euler":
        return [
            band_z_value(kernel, box, alpha=alpha, method=method, n_points=n_points)
            for box in boxes
        ]
    lam = kernel.second_spectral_moment()
    return [_euler_band(box, alpha, lam) for box in boxes]


def _euler_band(box: BoundingBox, alpha: float, lam: float) -> SimultaneousBand:
    """The Euler-characteristic calibration for one box and spectral moment."""
    curvatures = lipschitz_killing_curvatures(box)

    def objective(z: float) -> float:
        # Two-sided band: the excursion sets above +z and below -z are
        # disjoint and symmetric, doubling the expected Euler characteristic.
        return 2.0 * expected_euler_characteristic(z, box, lam, curvatures=curvatures) - alpha

    low, high = _Z_MIN, _Z_MAX
    f_low = objective(low)
    f_high = objective(high)
    if f_low < 0.0:
        # Even the smallest z already satisfies the target (tiny box or very
        # smooth kernel): fall back to the point-wise quantile as a floor.
        return SimultaneousBand(z_value=_pointwise_z(alpha), alpha=alpha, method="euler")
    if f_high > 0.0:
        raise GPError(
            "could not calibrate the confidence band: the expected Euler "
            "characteristic stays above alpha even at z = 15; the domain box "
            "is too large relative to the kernel lengthscale"
        )
    z = float(optimize.brentq(objective, low, high, xtol=1e-6))
    # Never report a simultaneous band narrower than the point-wise one.
    z = max(z, _pointwise_z(alpha))
    return SimultaneousBand(z_value=z, alpha=alpha, method="euler")
