"""Accuracy requirements, error budgets, and MC sample-size bounds.

Captures the (ε, δ)-approximation objective of Definition 4, the DKW-based
sample-size formula of Section 2.2 (``m = ln(2/δ) / (2 ε²)`` for the KS
measure, and twice the KS budget for discrepancy because
``D <= 2 KS``), and the split of the total error budget between Monte-Carlo
sampling and GP modelling required by Theorem 4.1
(``ε = ε_MC + ε_GP`` and ``1 - δ = (1 - δ_MC)(1 - δ_GP)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Literal

from repro.config import (
    DEFAULT_DELTA,
    DEFAULT_EPSILON,
    DEFAULT_LAMBDA_FRACTION,
    DEFAULT_MC_DELTA_FRACTION,
    DEFAULT_MC_FRACTION,
)
from repro.exceptions import AccuracyError

Metric = Literal["discrepancy", "ks"]


@dataclass(frozen=True)
class AccuracyRequirement:
    """User-specified accuracy goal ``(ε, δ)`` for a chosen metric.

    ``lambda_value`` is the minimum interval length of the λ-discrepancy; it
    is expressed in output units.  When ``None`` the plain discrepancy (all
    interval lengths) is intended and callers typically derive a value as a
    fraction of the observed output range.
    """

    epsilon: float = DEFAULT_EPSILON
    delta: float = DEFAULT_DELTA
    metric: Metric = "discrepancy"
    lambda_value: float | None = None

    def __post_init__(self) -> None:
        if not (0.0 < self.epsilon < 1.0):
            raise AccuracyError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if not (0.0 < self.delta < 1.0):
            raise AccuracyError(f"delta must be in (0, 1), got {self.delta}")
        if self.metric not in ("discrepancy", "ks"):
            raise AccuracyError(f"unknown metric {self.metric!r}")
        if self.lambda_value is not None and self.lambda_value < 0:
            raise AccuracyError("lambda_value must be non-negative")

    def with_lambda_fraction(self, output_range: float, fraction: float = DEFAULT_LAMBDA_FRACTION) -> "AccuracyRequirement":
        """Requirement with λ set to ``fraction`` of ``output_range``."""
        if output_range <= 0:
            raise AccuracyError("output_range must be positive")
        return replace(self, lambda_value=fraction * output_range)

    def split(
        self,
        mc_fraction: float = DEFAULT_MC_FRACTION,
        mc_delta_fraction: float = DEFAULT_MC_DELTA_FRACTION,
    ) -> "ErrorBudget":
        """Allocate the budget between MC sampling and GP modelling.

        ``mc_fraction`` is the share of ε given to the sampling error
        (Profile 3 of the paper recommends 0.7).  δ is split so that
        ``(1 - δ_MC)(1 - δ_GP) = 1 - δ``.
        """
        if not (0.0 < mc_fraction < 1.0):
            raise AccuracyError("mc_fraction must be in (0, 1)")
        if not (0.0 < mc_delta_fraction < 1.0):
            raise AccuracyError("mc_delta_fraction must be in (0, 1)")
        epsilon_mc = mc_fraction * self.epsilon
        epsilon_gp = self.epsilon - epsilon_mc
        # Split the log of the joint confidence between the two sources.
        log_keep = math.log1p(-self.delta)
        delta_mc = -math.expm1(mc_delta_fraction * log_keep)
        delta_gp = -math.expm1((1.0 - mc_delta_fraction) * log_keep)
        return ErrorBudget(
            requirement=self,
            epsilon_mc=epsilon_mc,
            epsilon_gp=epsilon_gp,
            delta_mc=delta_mc,
            delta_gp=delta_gp,
        )


@dataclass(frozen=True)
class ErrorBudget:
    """Split of a requirement's (ε, δ) between MC sampling and GP modelling."""

    requirement: AccuracyRequirement
    epsilon_mc: float
    epsilon_gp: float
    delta_mc: float
    delta_gp: float

    def __post_init__(self) -> None:
        if self.epsilon_mc <= 0 or self.epsilon_gp <= 0:
            raise AccuracyError("both epsilon shares must be positive")
        total = self.epsilon_mc + self.epsilon_gp
        if not math.isclose(total, self.requirement.epsilon, rel_tol=1e-9, abs_tol=1e-12):
            raise AccuracyError(
                f"epsilon shares ({total}) must sum to the requirement ({self.requirement.epsilon})"
            )
        joint = (1.0 - self.delta_mc) * (1.0 - self.delta_gp)
        if joint + 1e-9 < 1.0 - self.requirement.delta:
            raise AccuracyError(
                "delta split provides less confidence than the requirement demands"
            )

    @property
    def mc_samples(self) -> int:
        """Monte-Carlo sample count satisfying the MC share of the budget."""
        return required_mc_samples(self.epsilon_mc, self.delta_mc, self.requirement.metric)


def required_mc_samples(epsilon: float, delta: float, metric: Metric = "discrepancy") -> int:
    """Sample count for an (ε, δ)-approximation by plain Monte Carlo (§2.2).

    The DKW-type bound gives ``m = ln(2/δ) / (2 ε²)`` for the KS measure.
    Because ``D(Y, Y') <= 2 * KS(Y, Y')``, achieving discrepancy ε requires
    targeting KS ε/2, i.e. four times as many samples.  The paper's worked
    example (ε = 0.02, δ = 0.05, discrepancy) requires m > 18 000, which this
    formula reproduces.
    """
    if not (0.0 < epsilon < 1.0):
        raise AccuracyError(f"epsilon must be in (0, 1), got {epsilon}")
    if not (0.0 < delta < 1.0):
        raise AccuracyError(f"delta must be in (0, 1), got {delta}")
    if metric == "discrepancy":
        ks_epsilon = epsilon / 2.0
    elif metric == "ks":
        ks_epsilon = epsilon
    else:
        raise AccuracyError(f"unknown metric {metric!r}")
    return int(math.ceil(math.log(2.0 / delta) / (2.0 * ks_epsilon**2)))


def ks_epsilon_for_samples(m: int, delta: float) -> float:
    """Invert :func:`required_mc_samples`: KS error achievable with ``m`` samples."""
    if m <= 0:
        raise AccuracyError("m must be positive")
    if not (0.0 < delta < 1.0):
        raise AccuracyError(f"delta must be in (0, 1), got {delta}")
    return math.sqrt(math.log(2.0 / delta) / (2.0 * m))
