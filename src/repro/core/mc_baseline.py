"""Monte-Carlo baseline for computing UDF output distributions (§2.2).

Algorithm 1 of the paper: sample the input distribution, evaluate the UDF on
every sample, and return the empirical CDF of the outputs.  The number of
samples required for an (ε, δ) guarantee comes from
:func:`repro.core.accuracy.required_mc_samples`.

When a selection predicate is present, :func:`monte_carlo_with_filter`
evaluates the UDF in batches and applies the Hoeffding early-drop test of
Remark 2.1 after every batch, so uninteresting tuples are discarded without
paying for the full sample budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.accuracy import AccuracyRequirement, required_mc_samples
from repro.core.filtering import FilterDecision, SelectionPredicate, filtering_decision
from repro.distributions.base import Distribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.exceptions import AccuracyError
from repro.rng import RandomState, as_generator
from repro.udf.base import UDF


@dataclass(frozen=True)
class MCResult:
    """Result of running the Monte-Carlo baseline on one input tuple."""

    #: Empirical output distribution Y'.
    distribution: EmpiricalDistribution
    #: Number of input samples drawn (= number of UDF evaluations).
    n_samples: int
    #: Number of UDF calls charged for this tuple.
    udf_calls: int
    #: Wall-clock plus simulated UDF cost in seconds.
    charged_time: float


@dataclass(frozen=True)
class FilteredMCResult:
    """Result of the MC baseline with online filtering (Remark 2.1)."""

    #: Output distribution, or ``None`` when the tuple was dropped early.
    distribution: Optional[EmpiricalDistribution]
    #: Final filtering decision.
    decision: FilterDecision
    n_samples: int
    udf_calls: int
    charged_time: float

    @property
    def dropped(self) -> bool:
        """Whether the tuple was filtered out."""
        return self.decision.action == "drop"


def mc_sample_count(requirement: AccuracyRequirement) -> int:
    """Sample count for Algorithm 1 under the full (un-split) requirement."""
    return required_mc_samples(requirement.epsilon, requirement.delta, requirement.metric)


def monte_carlo_output(
    udf: UDF,
    input_distribution: Distribution,
    requirement: AccuracyRequirement | None = None,
    n_samples: int | None = None,
    random_state: RandomState = None,
) -> MCResult:
    """Algorithm 1: compute the output distribution by direct simulation.

    Exactly one of ``requirement`` and ``n_samples`` selects the sample
    budget; providing a requirement uses the (ε, δ) sample-size formula.
    """
    if (requirement is None) == (n_samples is None):
        raise AccuracyError("provide exactly one of requirement / n_samples")
    m = n_samples if n_samples is not None else mc_sample_count(requirement)
    if m <= 0:
        raise AccuracyError("sample count must be positive")
    rng = as_generator(random_state)

    calls_before = udf.call_count
    time_before = udf.charged_time
    inputs = input_distribution.sample(m, random_state=rng)
    outputs = udf.evaluate_batch(inputs)
    return MCResult(
        distribution=EmpiricalDistribution(outputs),
        n_samples=m,
        udf_calls=udf.call_count - calls_before,
        charged_time=udf.charged_time - time_before,
    )


def monte_carlo_with_filter(
    udf: UDF,
    input_distribution: Distribution,
    predicate: SelectionPredicate,
    requirement: AccuracyRequirement | None = None,
    n_samples: int | None = None,
    batch_size: int = 100,
    random_state: RandomState = None,
) -> FilteredMCResult:
    """Algorithm 1 + Remark 2.1: simulate with early dropping of dull tuples.

    Samples are drawn in batches of ``batch_size``.  After each batch the
    Hoeffding confidence interval for the predicate probability ρ is
    recomputed from all samples seen so far; if its upper end is below the
    predicate threshold the tuple is dropped immediately.
    """
    if (requirement is None) == (n_samples is None):
        raise AccuracyError("provide exactly one of requirement / n_samples")
    if batch_size <= 0:
        raise AccuracyError("batch_size must be positive")
    m = n_samples if n_samples is not None else mc_sample_count(requirement)
    delta = requirement.delta if requirement is not None else 0.05
    rng = as_generator(random_state)

    calls_before = udf.call_count
    time_before = udf.charged_time
    outputs: list[np.ndarray] = []
    drawn = 0
    decision = FilterDecision(action="undecided", estimate=0.0, half_width=1.0, n_samples=0)
    while drawn < m:
        batch = min(batch_size, m - drawn)
        inputs = input_distribution.sample(batch, random_state=rng)
        outputs.append(udf.evaluate_batch(inputs))
        drawn += batch
        all_outputs = np.concatenate(outputs)
        decision = filtering_decision(predicate.indicator(all_outputs), predicate, delta)
        if decision.action == "drop":
            return FilteredMCResult(
                distribution=None,
                decision=decision,
                n_samples=drawn,
                udf_calls=udf.call_count - calls_before,
                charged_time=udf.charged_time - time_before,
            )
    all_outputs = np.concatenate(outputs)
    return FilteredMCResult(
        distribution=EmpiricalDistribution(all_outputs),
        decision=decision,
        n_samples=drawn,
        udf_calls=udf.call_count - calls_before,
        charged_time=udf.charged_time - time_before,
    )
