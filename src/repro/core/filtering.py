"""Selection predicates on UDF outputs and online filtering (§2.2B, §5.5).

A query such as Q2 keeps a tuple only if ``f(X) ∈ [a, b]`` with sufficient
probability.  While sampling, the probability ``ρ = Pr[f(X) ∈ [a, b]]`` is
estimated by the fraction of samples inside the interval; Hoeffding's
inequality gives a confidence interval around that estimate (Remark 2.1).
If the upper end of the interval is already below the user's threshold θ the
tuple can be dropped early, saving the remaining evaluations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.config import DEFAULT_TEP_THRESHOLD
from repro.exceptions import AccuracyError


@dataclass(frozen=True)
class SelectionPredicate:
    """Predicate ``output ∈ [low, high]`` with a minimum-probability threshold.

    A tuple whose existence probability (the probability that the predicate
    holds) is below ``threshold`` is considered uninteresting and filtered
    from the query result.
    """

    low: float
    high: float
    threshold: float = DEFAULT_TEP_THRESHOLD

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise AccuracyError(
                f"predicate upper bound {self.high} is below lower bound {self.low}"
            )
        if not (0.0 <= self.threshold <= 1.0):
            raise AccuracyError("threshold must be in [0, 1]")

    def indicator(self, values: np.ndarray) -> np.ndarray:
        """Bernoulli indicator ``1[low <= value <= high]`` per sample."""
        values = np.asarray(values, dtype=float)
        return ((values >= self.low) & (values <= self.high)).astype(float)

    def selectivity(self, values: np.ndarray) -> float:
        """Fraction of samples satisfying the predicate."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return 0.0
        return float(self.indicator(values).mean())


def hoeffding_half_width(n_samples: int, delta: float) -> float:
    """Half-width of the (1 - δ) Hoeffding confidence interval (Remark 2.1).

    For the mean of ``n`` i.i.d. Bernoulli samples the deviation exceeds
    ``sqrt(ln(2/δ) / (2 n))`` with probability at most δ.
    """
    if n_samples <= 0:
        raise AccuracyError("n_samples must be positive")
    if not (0.0 < delta < 1.0):
        raise AccuracyError(f"delta must be in (0, 1), got {delta}")
    return math.sqrt(math.log(2.0 / delta) / (2.0 * n_samples))


@dataclass(frozen=True)
class FilterDecision:
    """Outcome of an online filtering check."""

    #: ``"drop"`` — confidently below the threshold, ``"keep"`` — confidently
    #: above it, ``"undecided"`` — the confidence interval straddles θ.
    action: Literal["drop", "keep", "undecided"]
    estimate: float
    half_width: float
    n_samples: int

    @property
    def lower(self) -> float:
        """Lower end of the confidence interval (clipped to [0, 1])."""
        return max(0.0, self.estimate - self.half_width)

    @property
    def upper(self) -> float:
        """Upper end of the confidence interval (clipped to [0, 1])."""
        return min(1.0, self.estimate + self.half_width)


def filtering_decision(
    indicator_samples: np.ndarray,
    predicate: SelectionPredicate,
    delta: float,
) -> FilterDecision:
    """Decide drop / keep / undecided from the Bernoulli samples seen so far.

    ``indicator_samples`` are the 0/1 evaluations ``h_i = 1[a <= f(x_i) <= b]``
    of the samples drawn so far.  The tuple is dropped when even the upper
    confidence limit is below θ, and can be confidently kept when the lower
    confidence limit is at or above θ.
    """
    samples = np.asarray(indicator_samples, dtype=float).ravel()
    if samples.size == 0:
        return FilterDecision(action="undecided", estimate=0.0, half_width=1.0, n_samples=0)
    estimate = float(samples.mean())
    half_width = hoeffding_half_width(samples.size, delta)
    if estimate + half_width < predicate.threshold:
        action: Literal["drop", "keep", "undecided"] = "drop"
    elif estimate - half_width >= predicate.threshold:
        action = "keep"
    else:
        action = "undecided"
    return FilterDecision(
        action=action, estimate=estimate, half_width=half_width, n_samples=samples.size
    )


def upper_bound_decision(
    rho_upper: float,
    rho_estimate: float,
    predicate: SelectionPredicate,
    n_samples: int,
    delta: float,
) -> FilterDecision:
    """Filtering decision from a GP-derived upper bound ``ρ_U`` (§5.5).

    With GP sampling the tuple existence probability is bounded above by
    ``ρ_U`` (Proposition 4.1) plus the Hoeffding sampling slack; the tuple is
    dropped when that combined upper bound is still below the threshold.
    """
    half_width = hoeffding_half_width(n_samples, delta)
    if rho_upper + half_width < predicate.threshold:
        action: Literal["drop", "keep", "undecided"] = "drop"
    elif rho_estimate - half_width >= predicate.threshold:
        action = "keep"
    else:
        action = "undecided"
    return FilterDecision(
        action=action,
        estimate=rho_estimate,
        half_width=half_width,
        n_samples=n_samples,
    )
