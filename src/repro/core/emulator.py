"""GP emulation of black-box UDFs and the offline Algorithm 2 (§3, §4.1).

:class:`GPEmulator` owns the pieces shared by the offline and online
algorithms: the wrapped UDF, the Gaussian process fitted to the UDF's
input/output pairs, the R-tree over training inputs used by local inference,
and hyperparameter training.  :func:`offline_gp_output` is the paper's
Algorithm 2 — collect a fixed training set, learn the GP once, then compute
output distributions for uncertain inputs by sampling the emulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from repro.config import DEFAULT_BAND_ALPHA
from repro.core.confidence_bands import BandMethod, band_z_value
from repro.core.error_bounds import EnvelopeOutputs, build_envelope_outputs
from repro.distributions.base import Distribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.exceptions import GPError, UDFError
from repro.gp.kernels import Kernel, SquaredExponential
from repro.gp.regression import GaussianProcess, GPStateSnapshot
from repro.gp.training import fit_hyperparameters, initial_hyperparameters
from repro.index.bounding_box import BoundingBox
from repro.index.rtree import RTree
from repro.rng import RandomState, as_generator
from repro.udf.base import UDF

Design = Literal["random", "grid", "halton"]


@dataclass(frozen=True)
class EmulatorSnapshot:
    """Emulator-level rollback state: the GP state plus emulator flags.

    The hyperparameter-trained flag lives on the emulator, not the GP, so a
    :meth:`GPEmulator.restore` that reverts kernel values must revert the
    flag with them — otherwise retraining logic would run against restored
    hyperparameters while believing a retrain already happened.
    """

    gp_state: GPStateSnapshot
    trained_hyperparameters: bool


class GPEmulator:
    """A Gaussian-process emulator of one black-box UDF.

    The emulator owns the UDF's accumulated training data (input/output
    pairs obtained by actually calling the UDF), the fitted GP, and a
    spatial index over the training inputs for local inference.
    """

    def __init__(
        self,
        udf: UDF,
        kernel: Optional[Kernel] = None,
        noise_variance: float = 1e-8,
    ):
        self.udf = udf
        self.gp = GaussianProcess(
            kernel=kernel if kernel is not None else SquaredExponential(),
            noise_variance=noise_variance,
        )
        self.index = RTree(dimension=udf.dimension)
        self._trained_hyperparameters = False

    # -- training data management ---------------------------------------------------
    @property
    def n_training(self) -> int:
        """Number of UDF evaluations collected as training data."""
        return self.gp.n_training

    def add_training_point(self, x: np.ndarray) -> float:
        """Evaluate the UDF at ``x`` and absorb the pair into the model."""
        x = np.atleast_1d(np.asarray(x, dtype=float))
        if x.shape != (self.udf.dimension,):
            raise UDFError(
                f"training point has shape {x.shape}, expected ({self.udf.dimension},)"
            )
        y = self.udf(x)
        self.gp.add_point(x, y)
        self.index.insert(x, self.gp.n_training - 1)
        return y

    def add_training_points(self, X: np.ndarray) -> np.ndarray:
        """Evaluate the UDF at every row of ``X`` and absorb them in one step.

        Uses the blocked incremental-inverse update (``O(n^2 k)`` for ``k``
        new points) instead of ``k`` rank-1 updates, and keeps the spatial
        index in sync.  Returns the UDF values observed.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[0] == 0:
            return np.empty(0)
        if X.shape[1] != self.udf.dimension:
            raise UDFError(
                f"training points have {X.shape[1]} columns, expected {self.udf.dimension}"
            )
        y = self.udf.evaluate_batch(X)
        self.absorb_observations(X, y)
        return y

    def absorb_observations(
        self, X: np.ndarray, y: np.ndarray, fence: Optional["EmulatorSnapshot"] = None
    ) -> None:
        """Absorb already-evaluated ``(x, y)`` pairs without calling the UDF.

        This is how training points obtained *elsewhere* enter the model: a
        parallel worker merging its shard's additions back into the parent
        emulator, the speculative tuning loop re-committing observations it
        already paid for before a rollback, or the asynchronous refinement
        pipeline landing UDF results that were in flight.  Uses the blocked
        incremental update and keeps the spatial index in sync, exactly like
        :meth:`add_training_points` — minus the UDF evaluations.

        ``fence``, when given, must be the :meth:`snapshot` the observations
        were *selected against*: if the model mutated since that snapshot was
        taken (its GP state version moved on), the absorb raises
        :class:`~repro.exceptions.GPError` instead of silently applying
        observations chosen for a state that no longer exists.  This is the
        guard the async pipeline relies on — results completing out of order
        are only absorbed while the snapshot they speculate against is still
        the live state.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] == 0:
            return
        if X.shape[1] != self.udf.dimension:
            raise UDFError(
                f"observations have {X.shape[1]} columns, expected {self.udf.dimension}"
            )
        if X.shape[0] != y.shape[0]:
            raise UDFError(f"X has {X.shape[0]} rows but y has {y.shape[0]} values")
        if fence is not None and fence.gp_state.version != self.gp.version:
            raise GPError(
                "stale snapshot fence: the model mutated since the snapshot "
                f"(version {fence.gp_state.version} -> {self.gp.version}); "
                "the observations were selected against a state that no longer exists"
            )
        first_row = self.gp.n_training
        self.gp.add_points(X, y)
        for offset, row in enumerate(X):
            self.index.insert(row, first_row + offset)

    def snapshot(self) -> "EmulatorSnapshot":
        """Capture the model state for a later :meth:`restore` (rollback)."""
        return EmulatorSnapshot(
            gp_state=self.gp.snapshot(),
            trained_hyperparameters=self._trained_hyperparameters,
        )

    def restore(self, state: "EmulatorSnapshot") -> None:
        """Roll the model (and its spatial index) back to a snapshot.

        The GP restore itself is free of factorization work; the R-tree does
        not support deletion, so the index is rebuilt from the surviving
        training inputs — O(n log n) inserts, acceptable because rollbacks
        are the rare path of the speculative tuning loop.
        """
        self.gp.restore(state.gp_state)
        self._trained_hyperparameters = state.trained_hyperparameters
        index = RTree(dimension=self.udf.dimension)
        if self.gp.n_training:
            for row_index, row in enumerate(self.gp.X_train):
                index.insert(row, row_index)
        self.index = index

    def train_initial(
        self,
        n_points: int,
        design: Design = "random",
        domain: Optional[tuple[np.ndarray, np.ndarray]] = None,
        random_state: RandomState = None,
        optimize_hyperparameters: bool = True,
        evaluation_executor=None,
        max_inflight: Optional[int] = None,
    ) -> None:
        """Collect an initial training design and learn hyperparameters.

        ``domain`` defaults to the UDF's declared domain.  Designs:
        ``"random"`` (uniform), ``"grid"`` (regular lattice, rounded up to a
        full grid), or ``"halton"`` (low-discrepancy; better space filling
        for the same budget).

        ``evaluation_executor`` / ``max_inflight`` overlap the design's UDF
        evaluations on a thread pool (:meth:`~repro.udf.base.UDF
        .evaluate_many`): with a genuinely slow black box the initial design
        otherwise costs ``n_points`` serial latencies before the first tuple
        can start.  The observed values — and the model trained on them —
        are identical either way; only wall-clock changes.
        """
        if n_points <= 0:
            raise GPError("n_points must be positive")
        low, high = self._resolve_domain(domain)
        points = _design_points(n_points, low, high, design, random_state)
        if evaluation_executor is not None or (max_inflight or 0) > 1:
            values = self.udf.evaluate_many(
                points, executor=evaluation_executor, max_inflight=max_inflight
            )
        else:
            values = self.udf.evaluate_batch(points)
        self.gp.fit(points, values)
        for row_index, row in enumerate(points):
            self.index.insert(row, row_index)
        if optimize_hyperparameters:
            self.retrain()

    def retrain(self) -> None:
        """Maximum-likelihood refit of the kernel hyperparameters (§3.4)."""
        if self.gp.n_training == 0:
            raise GPError("cannot retrain an emulator with no training data")
        self.gp.set_hyperparameters(
            initial_hyperparameters(self.gp.X_train, self.gp.y_train)
        )
        fit_hyperparameters(self.gp)
        self._trained_hyperparameters = True

    # -- inference --------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Global GP inference: posterior mean and std at the rows of ``X``."""
        return self.gp.predict(X, return_std=True)

    def _resolve_domain(
        self, domain: Optional[tuple[np.ndarray, np.ndarray]]
    ) -> tuple[np.ndarray, np.ndarray]:
        if domain is not None:
            return np.asarray(domain[0], dtype=float), np.asarray(domain[1], dtype=float)
        if self.udf.domain is not None:
            return self.udf.domain
        raise GPError(
            "no training domain available: pass one explicitly or declare it on the UDF"
        )


@dataclass(frozen=True)
class GPOutputResult:
    """Output of computing one uncertain tuple through a GP emulator."""

    #: The distribution of ``Ŷ'`` returned to the user.
    distribution: EmpiricalDistribution
    #: The three empirical variables used for error bounding.
    envelope: EnvelopeOutputs
    #: Number of Monte-Carlo input samples used.
    n_samples: int
    #: Number of UDF calls charged while processing this tuple.
    udf_calls: int
    #: Wall-clock plus simulated UDF cost in seconds.
    charged_time: float
    #: Number of training points in the model after processing the tuple.
    n_training: int


def emulate_output(
    emulator: GPEmulator,
    input_distribution: Distribution,
    n_samples: int,
    band_alpha: float = DEFAULT_BAND_ALPHA,
    band_method: BandMethod = "euler",
    random_state: RandomState = None,
) -> GPOutputResult:
    """Propagate one uncertain input through a *trained* emulator.

    This is the inference part of Algorithm 2: draw input samples, predict
    with the GP, and build the empirical output variables plus envelope.
    """
    if n_samples <= 0:
        raise GPError("n_samples must be positive")
    rng = as_generator(random_state)
    calls_before = emulator.udf.call_count
    time_before = emulator.udf.charged_time

    samples = input_distribution.sample(n_samples, random_state=rng)
    means, stds = emulator.predict(samples)
    band = band_z_value(
        emulator.gp.kernel,
        BoundingBox.from_points(samples),
        alpha=band_alpha,
        method=band_method,
        n_points=n_samples,
    )
    envelope = build_envelope_outputs(means, stds, band.z_value)
    return GPOutputResult(
        distribution=envelope.y_hat,
        envelope=envelope,
        n_samples=n_samples,
        udf_calls=emulator.udf.call_count - calls_before,
        charged_time=emulator.udf.charged_time - time_before,
        n_training=emulator.n_training,
    )


def offline_gp_output(
    udf: UDF,
    input_distribution: Distribution,
    n_training: int,
    n_samples: int,
    kernel: Optional[Kernel] = None,
    design: Design = "random",
    band_alpha: float = DEFAULT_BAND_ALPHA,
    band_method: BandMethod = "euler",
    random_state: RandomState = None,
) -> GPOutputResult:
    """Algorithm 2 end-to-end: train offline on ``n_training`` points, then infer."""
    from dataclasses import replace

    rng = as_generator(random_state)
    calls_before = udf.call_count
    charged_before = udf.charged_time
    emulator = GPEmulator(udf, kernel=kernel)
    emulator.train_initial(n_training, design=design, random_state=rng)
    result = emulate_output(
        emulator,
        input_distribution,
        n_samples,
        band_alpha=band_alpha,
        band_method=band_method,
        random_state=rng,
    )
    # Charge the offline training phase to this result as well, so the cost
    # accounting covers the full Algorithm 2 run.
    return replace(
        result,
        udf_calls=udf.call_count - calls_before,
        charged_time=udf.charged_time - charged_before,
    )


def _design_points(
    n_points: int,
    low: np.ndarray,
    high: np.ndarray,
    design: Design,
    random_state: RandomState,
) -> np.ndarray:
    """Generate an initial training design inside ``[low, high]``."""
    d = low.size
    if design == "random":
        rng = as_generator(random_state)
        return rng.uniform(low, high, size=(n_points, d))
    if design == "grid":
        per_dim = int(np.ceil(n_points ** (1.0 / d)))
        axes = [np.linspace(low[i], high[i], per_dim) for i in range(d)]
        mesh = np.meshgrid(*axes, indexing="ij")
        points = np.stack([m.ravel() for m in mesh], axis=1)
        return points[:n_points] if points.shape[0] >= n_points else points
    if design == "halton":
        from scipy.stats import qmc

        sampler = qmc.Halton(d=d, scramble=True, seed=as_generator(random_state))
        unit = sampler.random(n_points)
        return qmc.scale(unit, low, high)
    raise GPError(f"unknown design {design!r}")
