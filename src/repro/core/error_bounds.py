"""Error bounds for GP-emulated output distributions (§4.2–4.3).

Given the Monte-Carlo samples of the emulator's predictive mean and standard
deviation at the input samples, and a simultaneous band multiplier ``z``,
the three empirical output variables of the paper are

* ``Ŷ'``  — outputs of the posterior-mean emulator (what is returned to the
  user),
* ``Y'_S`` — outputs of the lower envelope function ``f̂ - z σ``, and
* ``Y'_L`` — outputs of the upper envelope function ``f̂ + z σ``.

Because the envelope contains any posterior sample function ``f̃`` with high
probability, the probability ``ρ̃`` that ``f̃(X)`` falls in an interval
``[a, b]`` is bracketed by ``ρ_L ≤ ρ̃ ≤ ρ_U`` (Proposition 4.1) with

``ρ_U = Pr[Y_S ≤ b] − Pr[Y_L ≤ a]`` and
``ρ_L = max(0, Pr[Y_L ≤ b] − Pr[Y_S ≤ a])``.

The GP-modelling contribution to the λ-discrepancy error is then

``ε_GP = sup_{b−a ≥ λ} max(ρ'_U − ρ̂', ρ̂' − ρ'_L)``,

computed here both by the paper's efficient sweep (Algorithm 3,
O(m log m)) and by a quadratic reference used in tests.  The KS-metric bound
follows Proposition 4.2, and :func:`combine_bounds` applies Theorem 4.1 to
merge the GP and Monte-Carlo error contributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import ks_distance
from repro.distributions.empirical import EmpiricalDistribution
from repro.exceptions import AccuracyError, GPError


@dataclass(frozen=True)
class EnvelopeOutputs:
    """The three empirical output variables derived from one GP inference."""

    #: Output of the posterior-mean emulator (returned to the user).
    y_hat: EmpiricalDistribution
    #: Output of the lower envelope function ``f̂ - z σ``.
    y_lower: EmpiricalDistribution
    #: Output of the upper envelope function ``f̂ + z σ``.
    y_upper: EmpiricalDistribution
    #: Simultaneous band multiplier used to build the envelope.
    z_value: float

    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo samples backing the empirical variables."""
        return self.y_hat.size

    def output_range(self) -> float:
        """Width of the support of the mean-function output."""
        lo, hi = self.y_hat.support
        return hi - lo


def build_envelope_outputs(means: np.ndarray, stds: np.ndarray, z_value: float) -> EnvelopeOutputs:
    """Construct ``Ŷ'``, ``Y'_S`` and ``Y'_L`` from per-sample GP predictions."""
    means = np.asarray(means, dtype=float).ravel()
    stds = np.asarray(stds, dtype=float).ravel()
    if means.shape != stds.shape:
        raise GPError("means and stds must have the same shape")
    if np.any(stds < 0):
        raise GPError("standard deviations must be non-negative")
    if z_value < 0:
        raise GPError("z_value must be non-negative")
    return EnvelopeOutputs(
        y_hat=EmpiricalDistribution(means),
        y_lower=EmpiricalDistribution(means - z_value * stds),
        y_upper=EmpiricalDistribution(means + z_value * stds),
        z_value=z_value,
    )


def interval_probability_bounds(
    envelope: EnvelopeOutputs, a: float, b: float
) -> tuple[float, float, float]:
    """``(ρ'_L, ρ̂', ρ'_U)`` for a single interval ``[a, b]`` (Proposition 4.1)."""
    if b < a:
        raise AccuracyError(f"interval upper bound {b} is below lower bound {a}")
    f_s = envelope.y_lower.cdf
    f_l = envelope.y_upper.cdf
    f_h = envelope.y_hat.cdf
    rho_upper = float(f_s(np.asarray(b)) - f_l(np.asarray(a)))
    rho_lower = max(0.0, float(f_l(np.asarray(b)) - f_s(np.asarray(a))))
    rho_hat = float(f_h(np.asarray(b)) - f_h(np.asarray(a)))
    return rho_lower, rho_hat, min(1.0, rho_upper)


def _augmented_grid(envelope: EnvelopeOutputs, lam: float) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Union grid of the three sample sets plus virtual ±infinity points."""
    # One unique pass over the concatenation — identical to the nested
    # union1d (which is defined as unique of a concatenation) at half the
    # sorting work; this sits on the per-tuple hot path.
    grid = np.unique(
        np.concatenate(
            [envelope.y_hat.samples, envelope.y_lower.samples, envelope.y_upper.samples]
        )
    )
    pad = max(lam, 1.0) * 2.0 + 1.0
    grid = np.concatenate([[grid[0] - pad], grid, [grid[-1] + pad]])
    f_s = envelope.y_lower.cdf(grid)
    f_h = envelope.y_hat.cdf(grid)
    f_l = envelope.y_upper.cdf(grid)
    return grid, f_s, f_h, f_l


def gp_discrepancy_bound(envelope: EnvelopeOutputs, lam: float) -> float:
    """Algorithm 3: the GP share ``ε_GP`` of the λ-discrepancy error bound.

    Sweeps left endpoints ``a`` over the union grid; for each, the supremum
    over right endpoints ``b ≥ a + λ`` decomposes into terms that only need
    pre-computed suffix maxima of ``F_S − F̂`` and ``F̂ − F_L`` plus one
    binary search, giving O(m log m) overall.
    """
    if lam < 0:
        raise AccuracyError(f"lambda must be non-negative, got {lam}")
    grid, f_s, f_h, f_l = _augmented_grid(envelope, lam)
    n = grid.size
    d_sh = f_s - f_h  # >= 0 up to MC noise
    d_hl = f_h - f_l  # >= 0 up to MC noise

    # Suffix maxima: sufmax[i] = max over j >= i.
    sufmax_sh = np.maximum.accumulate(d_sh[::-1])[::-1]
    sufmax_hl = np.maximum.accumulate(d_hl[::-1])[::-1]

    # Indices of the first feasible right endpoint for every left endpoint.
    first_feasible = np.searchsorted(grid, grid + lam, side="left")
    # For the rho_L > 0 region: first index where F_L(b) >= F_S(a).
    crossing = np.searchsorted(f_l, f_s, side="left")

    # The sweep over left endpoints is fully data-parallel; evaluating the
    # three candidate terms with masked array expressions keeps the values
    # identical to the scalar sweep while running at numpy speed.
    valid = first_feasible < n
    if not np.any(valid):
        return 0.0
    ia = np.flatnonzero(valid)
    ib_min = first_feasible[ia]
    best = 0.0
    # Term A: rho'_U - rho_hat' = d_hl(a) + max_{b} d_sh(b).
    best = max(best, float(np.max(d_hl[ia] + sufmax_sh[ib_min])))
    # Term B, region where rho'_L > 0: d_sh(a) + max_{b} d_hl(b).
    ib1 = np.maximum(ib_min, crossing[ia])
    in_range = ib1 < n
    if np.any(in_range):
        best = max(best, float(np.max(d_sh[ia[in_range]] + sufmax_hl[ib1[in_range]])))
    # Term B, region where rho'_L = 0 (b below the crossing): the bound is
    # rho_hat' itself, maximised at the largest feasible b in the region
    # because the mean CDF is non-decreasing.
    ib2 = np.minimum(crossing[ia], n) - 1
    feasible = ib2 >= ib_min
    if np.any(feasible):
        best = max(best, float(np.max(f_h[ib2[feasible]] - f_h[ia[feasible]])))
    return float(min(1.0, best))


def gp_discrepancy_bound_naive(envelope: EnvelopeOutputs, lam: float) -> float:
    """Quadratic reference implementation of :func:`gp_discrepancy_bound`.

    Enumerates every feasible interval on the augmented grid.  Used by tests
    to validate the efficient sweep; O(m^2).
    """
    if lam < 0:
        raise AccuracyError(f"lambda must be non-negative, got {lam}")
    grid, f_s, f_h, f_l = _augmented_grid(envelope, lam)
    n = grid.size
    best = 0.0
    for ia in range(n):
        for ib in range(ia, n):
            if grid[ib] - grid[ia] < lam:
                continue
            rho_upper = f_s[ib] - f_l[ia]
            rho_lower = max(0.0, f_l[ib] - f_s[ia])
            rho_hat = f_h[ib] - f_h[ia]
            best = max(best, rho_upper - rho_hat, rho_hat - rho_lower)
    return float(min(1.0, best))


def gp_ks_bound(envelope: EnvelopeOutputs) -> float:
    """KS-metric GP error bound (Proposition 4.2).

    The KS distance between the mean-function output and any envelope-
    constrained sample-function output is maximised when the sample function
    sits on one of the envelope boundaries, so the bound is the larger of
    the KS distances to ``Y'_S`` and ``Y'_L``.
    """
    return max(
        ks_distance(envelope.y_hat, envelope.y_lower),
        ks_distance(envelope.y_hat, envelope.y_upper),
    )


@dataclass(frozen=True)
class CombinedErrorBound:
    """Theorem 4.1: total error bound from the GP and MC contributions."""

    epsilon_gp: float
    epsilon_mc: float
    delta_gp: float
    delta_mc: float

    @property
    def epsilon_total(self) -> float:
        """Total error bound ``ε_GP + ε_MC``."""
        return self.epsilon_gp + self.epsilon_mc

    @property
    def confidence(self) -> float:
        """Probability with which the total bound holds: ``(1-δ_GP)(1-δ_MC)``."""
        return (1.0 - self.delta_gp) * (1.0 - self.delta_mc)

    def satisfies(self, epsilon: float, delta: float) -> bool:
        """Whether this bound meets a user requirement ``(ε, δ)``."""
        return self.epsilon_total <= epsilon + 1e-12 and self.confidence >= (1.0 - delta) - 1e-12


def combine_bounds(
    epsilon_gp: float, epsilon_mc: float, delta_gp: float, delta_mc: float
) -> CombinedErrorBound:
    """Apply Theorem 4.1 to merge the two independent error sources."""
    for name, value in (("epsilon_gp", epsilon_gp), ("epsilon_mc", epsilon_mc)):
        if value < 0:
            raise AccuracyError(f"{name} must be non-negative, got {value}")
    for name, value in (("delta_gp", delta_gp), ("delta_mc", delta_mc)):
        if not (0.0 <= value < 1.0):
            raise AccuracyError(f"{name} must be in [0, 1), got {value}")
    return CombinedErrorBound(
        epsilon_gp=epsilon_gp,
        epsilon_mc=epsilon_mc,
        delta_gp=delta_gp,
        delta_mc=delta_mc,
    )
