"""Error bounds for GP-emulated output distributions (§4.2–4.3).

Given the Monte-Carlo samples of the emulator's predictive mean and standard
deviation at the input samples, and a simultaneous band multiplier ``z``,
the three empirical output variables of the paper are

* ``Ŷ'``  — outputs of the posterior-mean emulator (what is returned to the
  user),
* ``Y'_S`` — outputs of the lower envelope function ``f̂ - z σ``, and
* ``Y'_L`` — outputs of the upper envelope function ``f̂ + z σ``.

Because the envelope contains any posterior sample function ``f̃`` with high
probability, the probability ``ρ̃`` that ``f̃(X)`` falls in an interval
``[a, b]`` is bracketed by ``ρ_L ≤ ρ̃ ≤ ρ_U`` (Proposition 4.1) with

``ρ_U = Pr[Y_S ≤ b] − Pr[Y_L ≤ a]`` and
``ρ_L = max(0, Pr[Y_L ≤ b] − Pr[Y_S ≤ a])``.

The GP-modelling contribution to the λ-discrepancy error is then

``ε_GP = sup_{b−a ≥ λ} max(ρ'_U − ρ̂', ρ̂' − ρ'_L)``,

computed here both by the paper's efficient sweep (Algorithm 3,
O(m log m)) and by a quadratic reference used in tests.  The KS-metric bound
follows Proposition 4.2, and :func:`combine_bounds` applies Theorem 4.1 to
merge the GP and Monte-Carlo error contributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import ks_distance
from repro.distributions.empirical import EmpiricalDistribution
from repro.exceptions import AccuracyError, GPError


@dataclass(frozen=True)
class EnvelopeOutputs:
    """The three empirical output variables derived from one GP inference."""

    #: Output of the posterior-mean emulator (returned to the user).
    y_hat: EmpiricalDistribution
    #: Output of the lower envelope function ``f̂ - z σ``.
    y_lower: EmpiricalDistribution
    #: Output of the upper envelope function ``f̂ + z σ``.
    y_upper: EmpiricalDistribution
    #: Simultaneous band multiplier used to build the envelope.
    z_value: float

    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo samples backing the empirical variables."""
        return self.y_hat.size

    def output_range(self) -> float:
        """Width of the support of the mean-function output."""
        lo, hi = self.y_hat.support
        return hi - lo


def build_envelope_outputs(means: np.ndarray, stds: np.ndarray, z_value: float) -> EnvelopeOutputs:
    """Construct ``Ŷ'``, ``Y'_S`` and ``Y'_L`` from per-sample GP predictions."""
    means = np.asarray(means, dtype=float).ravel()
    stds = np.asarray(stds, dtype=float).ravel()
    if means.shape != stds.shape:
        raise GPError("means and stds must have the same shape")
    if np.any(stds < 0):
        raise GPError("standard deviations must be non-negative")
    if z_value < 0:
        raise GPError("z_value must be non-negative")
    return EnvelopeOutputs(
        y_hat=EmpiricalDistribution(means),
        y_lower=EmpiricalDistribution(means - z_value * stds),
        y_upper=EmpiricalDistribution(means + z_value * stds),
        z_value=z_value,
    )


def interval_probability_bounds(
    envelope: EnvelopeOutputs, a: float, b: float
) -> tuple[float, float, float]:
    """``(ρ'_L, ρ̂', ρ'_U)`` for a single interval ``[a, b]`` (Proposition 4.1)."""
    if b < a:
        raise AccuracyError(f"interval upper bound {b} is below lower bound {a}")
    f_s = envelope.y_lower.cdf
    f_l = envelope.y_upper.cdf
    f_h = envelope.y_hat.cdf
    rho_upper = float(f_s(np.asarray(b)) - f_l(np.asarray(a)))
    rho_lower = max(0.0, float(f_l(np.asarray(b)) - f_s(np.asarray(a))))
    rho_hat = float(f_h(np.asarray(b)) - f_h(np.asarray(a)))
    return rho_lower, rho_hat, min(1.0, rho_upper)


def _augmented_grid(envelope: EnvelopeOutputs, lam: float) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Union grid of the three sample sets plus virtual ±infinity points."""
    # One unique pass over the concatenation — identical to the nested
    # union1d (which is defined as unique of a concatenation) at half the
    # sorting work; this sits on the per-tuple hot path.
    grid = np.unique(
        np.concatenate(
            [envelope.y_hat.samples, envelope.y_lower.samples, envelope.y_upper.samples]
        )
    )
    pad = max(lam, 1.0) * 2.0 + 1.0
    grid = np.concatenate([[grid[0] - pad], grid, [grid[-1] + pad]])
    f_s = envelope.y_lower.cdf(grid)
    f_h = envelope.y_hat.cdf(grid)
    f_l = envelope.y_upper.cdf(grid)
    return grid, f_s, f_h, f_l


def gp_discrepancy_bound(envelope: EnvelopeOutputs, lam: float) -> float:
    """Algorithm 3: the GP share ``ε_GP`` of the λ-discrepancy error bound.

    Sweeps left endpoints ``a`` over the union grid; for each, the supremum
    over right endpoints ``b ≥ a + λ`` decomposes into terms that only need
    pre-computed suffix maxima of ``F_S − F̂`` and ``F̂ − F_L`` plus one
    binary search, giving O(m log m) overall.
    """
    if lam < 0:
        raise AccuracyError(f"lambda must be non-negative, got {lam}")
    grid, f_s, f_h, f_l = _augmented_grid(envelope, lam)
    return _sweep_on_grid(grid, f_s, f_h, f_l, lam)


def gp_discrepancy_bound_block(envelopes, lam: float) -> np.ndarray:
    """Column-wise :func:`gp_discrepancy_bound` over many envelopes.

    Returns one bound per envelope, each bit-identical to the scalar call.
    One argsort of the ``(B, 3m)`` concatenation yields both the per-row
    union grids and, through each element's source (``Ŷ'``/``Y'_S``/
    ``Y'_L``), the three CDFs as cumulative source counts (the same integer
    counts ``searchsorted`` returns, divided by the same sample size).  The
    suffix maxima and the three candidate terms of Algorithm 3 are then
    evaluated for every row at once with masked ``take_along_axis`` gathers
    — the per-row values entering each maximum are exactly the scalar
    sweep's, so the maxima agree bitwise.  Only the feasibility
    ``searchsorted`` stays per row (it searches row-specific sorted
    arrays).  A ragged column (sample counts differing from the first)
    falls back to scalar calls wholesale.
    """
    envelopes = list(envelopes)
    if lam < 0:
        raise AccuracyError(f"lambda must be non-negative, got {lam}")
    if not envelopes:
        return np.zeros(0)
    m = envelopes[0].n_samples
    uniform = all(
        env.y_hat.size == m and env.y_lower.size == m and env.y_upper.size == m
        for env in envelopes
    )
    if not uniform or m == 0:
        return np.array([gp_discrepancy_bound(env, lam) for env in envelopes])
    concat = np.concatenate(
        [
            np.stack([env.y_hat._sorted for env in envelopes]),
            np.stack([env.y_lower._sorted for env in envelopes]),
            np.stack([env.y_upper._sorted for env in envelopes]),
        ],
        axis=1,
    )
    perm = np.argsort(concat, axis=1)
    stacked = np.take_along_axis(concat, perm, axis=1)
    pad = max(lam, 1.0) * 2.0 + 1.0
    return _sweep_block(stacked, perm, m, lam, pad)


def _sweep_block(
    rows: np.ndarray, perm: np.ndarray, m: int, lam: float, pad: float
) -> np.ndarray:
    """Batched Algorithm-3 sweep over the sorted union-grid rows.

    ``rows`` holds each envelope's sorted 3m-value union grid interior and
    ``perm`` an argsort that produced it; ``perm // m`` recovers which of
    the three sample sets each grid value came from, so cumulative source
    counts reproduce ``searchsorted(side="right")`` on the original sorted
    sample arrays exactly.  Tied values need one correction: the cumulative
    count midway through an equal-value run undercounts "values ≤ v", so
    every position of a run is assigned the run-final counts (gathered at
    the run-end index).  Each tied position then carries the exact CDF
    triple of its value — a duplicate of the entry the scalar path's
    deduplicated grid holds once — and duplicated candidates never change a
    maximum, so the sweep still matches the scalar result bitwise.  (With
    run-final counts the intra-run ordering of ``perm`` is irrelevant,
    which is also why a non-stable argsort is safe.)
    """
    n_rows, width = rows.shape
    n = width + 2
    grid = np.empty((n_rows, n))
    grid[:, 0] = rows[:, 0] - pad
    grid[:, 1:-1] = rows
    grid[:, -1] = rows[:, -1] + pad
    source = perm // m  # 0 = y_hat, 1 = y_lower, 2 = y_upper
    cum_s = np.cumsum(source == 1, axis=1)
    cum_l = np.cumsum(source == 2, axis=1)
    is_end = np.empty((n_rows, width), dtype=bool)
    is_end[:, -1] = True
    np.not_equal(rows[:, 1:], rows[:, :-1], out=is_end[:, :-1])
    if is_end.all():
        run_end = None
        cs, cl = cum_s, cum_l
        ch = np.arange(1, width + 1)[None, :] - cs - cl
    else:
        run_end = np.minimum.accumulate(
            np.where(is_end, np.arange(width), width)[:, ::-1], axis=1
        )[:, ::-1]
        cs = np.take_along_axis(cum_s, run_end, axis=1)
        cl = np.take_along_axis(cum_l, run_end, axis=1)
        ch = (run_end + 1) - cs - cl
    icounts_s = np.empty((n_rows, n), dtype=np.int64)
    icounts_l = np.empty((n_rows, n), dtype=np.int64)
    icounts_h = np.empty((n_rows, n), dtype=np.int64)
    for icounts, interior in ((icounts_s, cs), (icounts_l, cl), (icounts_h, ch)):
        icounts[:, 0] = 0
        icounts[:, 1:-1] = interior
        icounts[:, -1] = m
    f_s = icounts_s / m
    f_h = icounts_h / m
    f_l = icounts_l / m
    d_sh = f_s - f_h
    d_hl = f_h - f_l
    sufmax_sh = np.maximum.accumulate(d_sh[:, ::-1], axis=1)[:, ::-1]
    sufmax_hl = np.maximum.accumulate(d_hl[:, ::-1], axis=1)[:, ::-1]
    targets = grid + lam
    first_feasible = np.empty((n_rows, n), dtype=np.intp)
    for b in range(n_rows):
        first_feasible[b] = np.searchsorted(grid[b], targets[b], side="left")
    # ``crossing`` compares CDF values that are integer counts over the same
    # sample size, so the search runs in the count domain — where shifting
    # each row by ``row * (m + 1)`` is exact int64 arithmetic that makes the
    # flattened matrix globally sorted and every query land inside its own
    # row's segment.  One flat ``searchsorted`` then answers all rows with
    # exactly the per-row comparison outcomes.
    shift = (m + 1) * np.arange(n_rows, dtype=np.int64)[:, None]
    flat_pos = np.searchsorted(
        (icounts_l + shift).ravel(), (icounts_s + shift).ravel(), side="left"
    )
    crossing = flat_pos.reshape(n_rows, n) - n * np.arange(n_rows, dtype=np.intp)[:, None]
    valid = first_feasible < n
    ff = np.minimum(first_feasible, n - 1)
    # Term A: rho'_U - rho_hat' = d_hl(a) + max_{b} d_sh(b).  Invalid left
    # endpoints are masked to -inf in place — the row maxima then range over
    # exactly the candidate values the scalar sweep maximises.
    term_a = np.take_along_axis(sufmax_sh, ff, axis=1)
    term_a += d_hl
    term_a[~valid] = -np.inf
    best = term_a.max(axis=1)
    # Term B, rho'_L > 0 region: d_sh(a) + max_{b} d_hl(b).
    ib1 = np.maximum(ff, crossing)
    mask_b1 = valid & (ib1 < n)
    np.minimum(ib1, n - 1, out=ib1)
    term_b1 = np.take_along_axis(sufmax_hl, ib1, axis=1)
    term_b1 += d_sh
    term_b1[~mask_b1] = -np.inf
    np.maximum(best, term_b1.max(axis=1), out=best)
    # Term B, rho'_L = 0 region: rho_hat' at the largest feasible b below
    # the crossing.
    ib2 = np.minimum(crossing, n) - 1
    mask_b2 = valid & (ib2 >= ff)
    np.clip(ib2, 0, n - 1, out=ib2)
    term_b2 = np.take_along_axis(f_h, ib2, axis=1)
    term_b2 -= f_h
    term_b2[~mask_b2] = -np.inf
    np.maximum(best, term_b2.max(axis=1), out=best)
    np.maximum(best, 0.0, out=best)
    return np.minimum(best, 1.0)


def _sweep_on_grid(
    grid: np.ndarray, f_s: np.ndarray, f_h: np.ndarray, f_l: np.ndarray, lam: float
) -> float:
    """The Algorithm-3 sweep given an augmented grid and its three CDFs."""
    n = grid.size
    d_sh = f_s - f_h  # >= 0 up to MC noise
    d_hl = f_h - f_l  # >= 0 up to MC noise

    # Suffix maxima: sufmax[i] = max over j >= i.
    sufmax_sh = np.maximum.accumulate(d_sh[::-1])[::-1]
    sufmax_hl = np.maximum.accumulate(d_hl[::-1])[::-1]

    # Indices of the first feasible right endpoint for every left endpoint.
    first_feasible = np.searchsorted(grid, grid + lam, side="left")
    # For the rho_L > 0 region: first index where F_L(b) >= F_S(a).
    crossing = np.searchsorted(f_l, f_s, side="left")

    # The sweep over left endpoints is fully data-parallel; evaluating the
    # three candidate terms with masked array expressions keeps the values
    # identical to the scalar sweep while running at numpy speed.
    valid = first_feasible < n
    if not np.any(valid):
        return 0.0
    ia = np.flatnonzero(valid)
    ib_min = first_feasible[ia]
    best = 0.0
    # Term A: rho'_U - rho_hat' = d_hl(a) + max_{b} d_sh(b).
    best = max(best, float(np.max(d_hl[ia] + sufmax_sh[ib_min])))
    # Term B, region where rho'_L > 0: d_sh(a) + max_{b} d_hl(b).
    ib1 = np.maximum(ib_min, crossing[ia])
    in_range = ib1 < n
    if np.any(in_range):
        best = max(best, float(np.max(d_sh[ia[in_range]] + sufmax_hl[ib1[in_range]])))
    # Term B, region where rho'_L = 0 (b below the crossing): the bound is
    # rho_hat' itself, maximised at the largest feasible b in the region
    # because the mean CDF is non-decreasing.
    ib2 = np.minimum(crossing[ia], n) - 1
    feasible = ib2 >= ib_min
    if np.any(feasible):
        best = max(best, float(np.max(f_h[ib2[feasible]] - f_h[ia[feasible]])))
    return float(min(1.0, best))


def gp_discrepancy_bound_naive(envelope: EnvelopeOutputs, lam: float) -> float:
    """Quadratic reference implementation of :func:`gp_discrepancy_bound`.

    Enumerates every feasible interval on the augmented grid.  Used by tests
    to validate the efficient sweep; O(m^2).
    """
    if lam < 0:
        raise AccuracyError(f"lambda must be non-negative, got {lam}")
    grid, f_s, f_h, f_l = _augmented_grid(envelope, lam)
    n = grid.size
    best = 0.0
    for ia in range(n):
        for ib in range(ia, n):
            if grid[ib] - grid[ia] < lam:
                continue
            rho_upper = f_s[ib] - f_l[ia]
            rho_lower = max(0.0, f_l[ib] - f_s[ia])
            rho_hat = f_h[ib] - f_h[ia]
            best = max(best, rho_upper - rho_hat, rho_hat - rho_lower)
    return float(min(1.0, best))


def gp_ks_bound(envelope: EnvelopeOutputs) -> float:
    """KS-metric GP error bound (Proposition 4.2).

    The KS distance between the mean-function output and any envelope-
    constrained sample-function output is maximised when the sample function
    sits on one of the envelope boundaries, so the bound is the larger of
    the KS distances to ``Y'_S`` and ``Y'_L``.
    """
    return max(
        ks_distance(envelope.y_hat, envelope.y_lower),
        ks_distance(envelope.y_hat, envelope.y_upper),
    )


@dataclass(frozen=True)
class CombinedErrorBound:
    """Theorem 4.1: total error bound from the GP and MC contributions."""

    epsilon_gp: float
    epsilon_mc: float
    delta_gp: float
    delta_mc: float

    @property
    def epsilon_total(self) -> float:
        """Total error bound ``ε_GP + ε_MC``."""
        return self.epsilon_gp + self.epsilon_mc

    @property
    def confidence(self) -> float:
        """Probability with which the total bound holds: ``(1-δ_GP)(1-δ_MC)``."""
        return (1.0 - self.delta_gp) * (1.0 - self.delta_mc)

    def satisfies(self, epsilon: float, delta: float) -> bool:
        """Whether this bound meets a user requirement ``(ε, δ)``."""
        return self.epsilon_total <= epsilon + 1e-12 and self.confidence >= (1.0 - delta) - 1e-12


def combine_bounds(
    epsilon_gp: float, epsilon_mc: float, delta_gp: float, delta_mc: float
) -> CombinedErrorBound:
    """Apply Theorem 4.1 to merge the two independent error sources."""
    for name, value in (("epsilon_gp", epsilon_gp), ("epsilon_mc", epsilon_mc)):
        if value < 0:
            raise AccuracyError(f"{name} must be non-negative, got {value}")
    for name, value in (("delta_gp", delta_gp), ("delta_mc", delta_mc)):
        if not (0.0 <= value < 1.0):
            raise AccuracyError(f"{name} must be in [0, 1), got {value}")
    return CombinedErrorBound(
        epsilon_gp=epsilon_gp,
        epsilon_mc=epsilon_mc,
        delta_gp=delta_gp,
        delta_mc=delta_mc,
    )
