"""Live shared GP emulator state for concurrent learners (``merge="shared"``).

The sharded executor historically made every worker relearn the emulator
from scratch and reconciled training points only *after* the run
(``"union"`` / ``"refit-threshold"``).  This module promotes the emulator's
training matrix to a **live shared model**:

- :class:`SharedEmulatorStore` — a lock-protected, version-fenced,
  deduplicating append-only matrix of ``(x, y)`` training observations.
  The version is simply the number of committed rows, so ``fetch_since``
  is an O(delta) slice and two equal readings bracket a window in which
  nothing was learned anywhere.
- :class:`EmulatorSync` — binds one store to one
  :class:`~repro.core.emulator.GPEmulator`: ``sync()`` publishes the
  emulator's locally-evaluated rows and absorbs everything other learners
  committed since the last sync (one store round-trip), using the blocked
  incremental inverse update of
  :meth:`~repro.gp.regression.GaussianProcess.add_points`.  Wall-clock
  spent is recorded under the ``model_append`` / ``model_refresh`` phases.
- :class:`SharedModelManager` / :func:`serve_shared_store` — a lightweight
  model-server endpoint for process-pool shards: the authoritative store
  lives in a manager process and workers exchange rows through a picklable
  proxy.  Thread-level consumers (pipeline walks, the serving layer) use
  the store object directly.

Values absorbed from the store are never re-charged to the UDF — the
learner that evaluated them already paid — so exact charge accounting is
preserved: every UDF call is charged exactly once, in the shard that made
it.
"""

from __future__ import annotations

import threading
import time
from multiprocessing.managers import BaseManager
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.timing import PhaseTimings

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.emulator import GPEmulator

_EMPTY_ROWS: tuple[int, ...] = (0, 0)


def _as_matrix(X: Optional[np.ndarray]) -> np.ndarray:
    """Coerce ``X`` to a float ``(k, d)`` matrix (``(0, 0)`` when empty)."""
    if X is None:
        return np.empty(_EMPTY_ROWS, dtype=float)
    X = np.asarray(X, dtype=float)
    if X.size == 0:
        return X.reshape((0, X.shape[1] if X.ndim == 2 else 0))
    return np.atleast_2d(X)


class SharedEmulatorStore:
    """Version-fenced shared training matrix with a deduplicating append.

    The store is the single source of truth for what has been *learned* —
    each committed row is one UDF evaluation some learner paid for.  Rows
    are deduplicated on the input point's byte representation, commits are
    serialised under one lock, and the monotone :meth:`current_version`
    equals the number of committed rows, so consumers fence with "give me
    everything after version ``v``" and absorption order is identical for
    every consumer.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._keys: set[bytes] = set()
        self._rows: list[np.ndarray] = []
        self._values: list[float] = []
        self._dimension: int = 0
        self._initialization_claimed = False
        self._theta: Optional[np.ndarray] = None

    # -- commit protocol ---------------------------------------------------------
    def current_version(self) -> int:
        """Number of committed rows (the fence consumers synchronise on)."""
        with self._lock:
            return len(self._rows)

    def append(self, X: np.ndarray, y: np.ndarray) -> int:
        """Commit observation rows, skipping duplicates; returns the new version.

        Duplicate inputs (bytewise-equal rows already committed) are
        dropped silently: two learners racing to publish the same point is
        the expected case, not an error, and the first commit wins.
        """
        X = _as_matrix(X)
        y = np.asarray(y, dtype=float).ravel()
        with self._lock:
            if X.shape[0]:
                if self._dimension == 0:
                    self._dimension = int(X.shape[1])
                for row, value in zip(X, y):
                    key = row.tobytes()
                    if key in self._keys:
                        continue
                    self._keys.add(key)
                    self._rows.append(row.copy())
                    self._values.append(float(value))
            return len(self._rows)

    def fetch_since(self, version: int) -> tuple[int, np.ndarray, np.ndarray]:
        """Rows committed after ``version``, in commit order, plus the new fence."""
        with self._lock:
            current = len(self._rows)
            start = max(0, min(int(version), current))
            if start >= current:
                return current, np.empty((0, self._dimension), dtype=float), np.empty(0)
            X = np.array(self._rows[start:current], dtype=float)
            y = np.array(self._values[start:current], dtype=float)
            return current, X, y

    def exchange(
        self, X: np.ndarray, y: np.ndarray, seen_version: int
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """Atomically publish ``(X, y)`` and fetch rows committed by *others*.

        One round-trip replacement for :meth:`append` + :meth:`fetch_since`:
        the returned rows are exactly those committed between
        ``seen_version`` and the start of this call, so the caller never
        receives back the rows it just published.
        """
        with self._lock:
            version_before = len(self._rows)
            _, remote_X, remote_y = self.fetch_since(seen_version)
            if remote_X.shape[0] > version_before - max(0, int(seen_version)):
                remote_X = remote_X[: version_before - max(0, int(seen_version))]
                remote_y = remote_y[: remote_X.shape[0]]
            new_version = self.append(X, y)
            return new_version, remote_X, remote_y

    # -- cold-start coordination ---------------------------------------------------
    def claim_initialization(self) -> bool:
        """Atomically claim the right to pay for the initial training design.

        Concurrent cold learners would otherwise all spend
        ``initial_training_points`` UDF calls on near-identical designs.
        The first caller gets ``True`` and must train-and-publish; later
        callers get ``False`` and should :meth:`await_version` instead
        (falling back to their own design on timeout, for liveness).
        """
        with self._lock:
            if self._initialization_claimed:
                return False
            self._initialization_claimed = True
            return True

    def await_version(
        self, min_version: int, timeout: float = 5.0, poll: float = 0.01
    ) -> int:
        """Block until at least ``min_version`` rows are committed, or timeout.

        Returns the version observed last; callers must re-check it against
        ``min_version`` — a timeout is not an error, just a signal to stop
        waiting on a learner that may have crashed.
        """
        deadline = time.monotonic() + max(0.0, float(timeout))
        while True:
            current = self.current_version()
            if current >= min_version or time.monotonic() >= deadline:
                return current
            time.sleep(poll)

    # -- hyperparameter sharing ----------------------------------------------------
    def publish_hyperparameters(self, theta: np.ndarray) -> None:
        """Publish trained kernel hyperparameters (log space) for cold learners."""
        with self._lock:
            self._theta = np.asarray(theta, dtype=float).copy()

    def hyperparameters(self) -> Optional[np.ndarray]:
        """Most recently published kernel hyperparameters, or ``None``."""
        with self._lock:
            return None if self._theta is None else self._theta.copy()


class EmulatorSync:
    """Two-way synchronisation between one emulator and a shared store.

    Install an instance on an :class:`~repro.core.olgapro.OLGAPRO`
    processor (its ``model_sync`` seam) and every tuple boundary becomes a
    learning exchange: locally-evaluated training rows are published and
    rows other learners committed since the last exchange are absorbed via
    the blocked incremental inverse update.  Absorption never calls the
    UDF, so charge accounting stays exact.

    Wall-clock is recorded into :attr:`timings` under ``model_append``
    (gathering/publishing local rows) and ``model_refresh`` (the store
    round-trip plus absorbing remote rows), which executors surface as
    ``model_append_ms`` / ``model_refresh_ms`` in bench rows.
    """

    def __init__(
        self,
        store: "SharedEmulatorStore",
        emulator: "GPEmulator",
        max_training_points: Optional[int] = None,
        timings: Optional[PhaseTimings] = None,
    ) -> None:
        self.store = store
        self.emulator = emulator
        self.max_training_points = max_training_points
        self.timings = timings if timings is not None else PhaseTimings()
        self.timings.ensure("model_refresh", "model_append")
        #: Store version up to which remote rows have been absorbed.
        self.seen_version = 0
        #: Local model row count up to which rows have been published.
        self._cursor = 0
        #: Keys already exchanged with the store (published or absorbed) —
        #: the guard that keeps a row from ping-ponging between learners.
        self._synced_keys: set[bytes] = set()
        #: Totals for observability and tests.
        self.refresh_count = 0
        self.absorbed_rows = 0
        self.published_rows = 0
        #: Remote rows that did not fit under ``max_training_points``.
        self.dropped_rows = 0

    # -- internals ---------------------------------------------------------------
    def _gather_unpublished(self) -> tuple[np.ndarray, np.ndarray]:
        """Local model rows beyond the publish cursor not yet exchanged."""
        emulator = self.emulator
        n = emulator.n_training
        if n <= self._cursor:
            return np.empty(_EMPTY_ROWS, dtype=float), np.empty(0)
        X = emulator.gp.X_train[self._cursor:]
        y = emulator.gp.y_train[self._cursor:]
        keep = [i for i, row in enumerate(X) if row.tobytes() not in self._synced_keys]
        self._cursor = n
        if len(keep) != X.shape[0]:
            X = X[keep]
            y = y[keep]
        return X, y

    def _absorb(self, X: np.ndarray, y: np.ndarray) -> int:
        """Absorb remote rows the local model lacks, respecting the cap."""
        if X.shape[0] == 0:
            return 0
        emulator = self.emulator
        local: set[bytes] = set()
        if emulator.n_training:
            local = {row.tobytes() for row in emulator.gp.X_train}
        keep = [
            i
            for i, row in enumerate(X)
            if row.tobytes() not in local
        ]
        if self.max_training_points is not None:
            room = max(0, int(self.max_training_points) - emulator.n_training)
            if len(keep) > room:
                self.dropped_rows += len(keep) - room
                keep = keep[:room]
        for i in keep:
            self._synced_keys.add(X[i].tobytes())
        if not keep:
            return 0
        emulator.absorb_observations(X[keep], y[keep])
        self._cursor = emulator.n_training
        self.absorbed_rows += len(keep)
        return len(keep)

    # -- the exchange protocol ------------------------------------------------------
    def publish(self) -> int:
        """Push locally-evaluated rows to the store; returns rows committed."""
        with self.timings.measure("model_append"):
            X, y = self._gather_unpublished()
            if X.shape[0] == 0:
                return 0
            for row in X:
                self._synced_keys.add(row.tobytes())
            self.store.append(X, y)
            self.published_rows += X.shape[0]
            return int(X.shape[0])

    def refresh(self) -> int:
        """Absorb rows other learners committed since the last exchange."""
        with self.timings.measure("model_refresh"):
            version, X, y = self.store.fetch_since(self.seen_version)
            self.seen_version = version
            self.refresh_count += 1
            return self._absorb(X, y)

    def sync(self) -> tuple[int, int]:
        """One full exchange: publish then refresh in a single store round-trip.

        Returns ``(published, absorbed)`` row counts.  This is the call
        executors place at tuple boundaries — one lock acquisition (one
        proxy round-trip for process shards) covers both directions.
        """
        with self.timings.measure("model_append"):
            X_out, y_out = self._gather_unpublished()
            for row in X_out:
                self._synced_keys.add(row.tobytes())
        with self.timings.measure("model_refresh"):
            version, X_in, y_in = self.store.exchange(X_out, y_out, self.seen_version)
            self.seen_version = version
            self.refresh_count += 1
            self.published_rows += int(X_out.shape[0])
            absorbed = self._absorb(X_in, y_in)
        return int(X_out.shape[0]), absorbed

    # -- cold start -----------------------------------------------------------------
    def seed(self, min_rows: int) -> bool:
        """Try to warm-start the bound emulator entirely from the store.

        Absorbs everything currently committed; succeeds when the model
        ends up with at least ``min_rows`` training rows (a store seeded by
        another learner's initial design).  On success the kernel
        hyperparameters are taken from the store when published there, and
        refit locally otherwise — CPU-only either way, zero UDF calls.
        """
        self.sync()
        emulator = self.emulator
        if emulator.n_training < max(1, int(min_rows)):
            return False
        if not emulator._trained_hyperparameters:
            theta = self.store.hyperparameters()
            if theta is not None:
                emulator.gp.set_hyperparameters(theta)
                emulator._trained_hyperparameters = True
            else:
                emulator.retrain()
        return True

    def seed_or_wait(self, min_rows: int, timeout: float = 5.0) -> bool:
        """Seed from the store, waiting for a claimed initializer if needed.

        Returns ``True`` when the emulator was warm-started without paying
        any UDF calls.  Returns ``False`` when this learner should pay for
        the initial design itself — either it won the initialization claim
        or the claimed initializer failed to publish before ``timeout``.
        """
        if self.seed(min_rows):
            return True
        if self.store.claim_initialization():
            return False
        self.store.await_version(min_rows, timeout=timeout)
        return self.seed(min_rows)

    def publish_hyperparameters(self) -> None:
        """Publish the bound emulator's trained kernel hyperparameters."""
        if self.emulator._trained_hyperparameters:
            self.store.publish_hyperparameters(self.emulator.gp.kernel.theta)


class SharedModelManager(BaseManager):
    """Model-server endpoint exporting :class:`SharedEmulatorStore` proxies.

    Process-pool shards cannot share a Python object, so the authoritative
    store lives in a small manager process started on the parent;
    :func:`serve_shared_store` hands back a proxy that pickles into worker
    processes, where every store method becomes one IPC round-trip.
    """


SharedModelManager.register("SharedEmulatorStore", SharedEmulatorStore)


def serve_shared_store() -> "tuple[SharedModelManager, SharedEmulatorStore]":
    """Start a model-server process and return ``(manager, store_proxy)``.

    The proxy behaves like a :class:`SharedEmulatorStore` and survives
    pickling into pool workers.  Callers own the manager's lifetime:
    ``manager.shutdown()`` when the run completes.
    """
    manager = SharedModelManager()
    manager.start()
    store = manager.SharedEmulatorStore()  # type: ignore[attr-defined]
    return manager, store
