"""OLGAPRO — the complete online GP algorithm (Algorithm 5, §5.4).

For every uncertain input tuple the algorithm:

1. draws the number of Monte-Carlo input samples dictated by the sampling
   share of the error budget,
2. runs (local) GP inference at those samples,
3. computes the λ-discrepancy (or KS) error bound of the GP modelling error
   using a simultaneous confidence band,
4. while the bound exceeds the GP share of the budget, evaluates the real
   UDF at the sample chosen by the online-tuning strategy and absorbs the
   new training point incrementally (or, with ``speculative_k > 1``, at the
   top-k highest-variance samples at once through a single blocked inverse
   update with snapshot-based rollback — see :meth:`OLGAPRO._tune_speculative`),
5. once the tuple is finished, consults the retraining policy and, when it
   fires, refits the kernel hyperparameters and re-runs inference.

The training data, the GP, the R-tree index and the hyperparameters persist
across tuples — that is what makes the algorithm online: the model warms up
on the first tuples and afterwards rarely needs to call the UDF at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import (
    DEFAULT_BAND_ALPHA,
    DEFAULT_GAMMA_FRACTION,
    DEFAULT_LAMBDA_FRACTION,
    DEFAULT_MAX_POINTS_PER_TUPLE,
    DEFAULT_MAX_TRAINING_POINTS,
    DEFAULT_MC_FRACTION,
)
from repro.core.accuracy import AccuracyRequirement, ErrorBudget
from repro.core.confidence_bands import BandMethod, band_z_value, band_z_values
from repro.core.emulator import GPEmulator
from repro.core.error_bounds import (
    CombinedErrorBound,
    EnvelopeOutputs,
    build_envelope_outputs,
    combine_bounds,
    gp_discrepancy_bound,
    gp_discrepancy_bound_block,
    gp_ks_bound,
    interval_probability_bounds,
)
from repro.core.filtering import FilterDecision, SelectionPredicate, upper_bound_decision
from repro.core.local_inference import (
    BatchKernelCache,
    ColumnarKernelCache,
    LocalInferenceEngine,
    global_inference,
    global_inference_cached,
    global_inference_cached_block,
)
from repro.core.online_tuning import LargestVarianceStrategy, TuningStrategy
from repro.core.retraining import RetrainingPolicy, ThresholdRetrain
from repro.distributions.base import Distribution
from repro.distributions.columns import attempt_encode, sample_stacked, stacking_supported
from repro.distributions.empirical import EmpiricalDistribution
from repro.exceptions import GPError, UDFError
from repro.gp.kernels import Kernel
from repro.index.bounding_box import BoundingBox
from repro.rng import RandomState, as_generator
from repro.udf.base import UDF


@dataclass(frozen=True)
class OnlineTupleResult:
    """Result of processing one uncertain input tuple with OLGAPRO."""

    #: Output distribution ``Ŷ'`` returned to the user.
    distribution: EmpiricalDistribution
    #: The empirical envelope variables behind the error bound.
    envelope: EnvelopeOutputs
    #: Combined GP + MC error bound (Theorem 4.1).
    error_bound: CombinedErrorBound
    #: Whether the GP error bound met its budget within the point cap.
    converged: bool
    #: Training points added while processing this tuple.
    points_added: int
    #: Total training points in the model after the tuple.
    n_training: int
    #: Monte-Carlo input samples used.
    n_samples: int
    #: UDF calls charged to this tuple.
    udf_calls: int
    #: Wall-clock plus simulated UDF cost attributable to this tuple (seconds).
    charged_time: float
    #: Pure wall-clock processing time of this tuple (seconds).
    elapsed_time: float
    #: Whether a full hyperparameter retrain was performed for this tuple.
    retrained: bool
    #: Whether the tuple was quarantined: its refinement UDF calls kept
    #: failing after the installed retry policy was exhausted, so the
    #: result carries the last bound the algorithm had (recomputed from
    #: the surviving GP state — a pure-inference step, no UDF calls)
    #: instead of a converged one.
    quarantined: bool = False


@dataclass(frozen=True)
class FilteredOnlineResult:
    """Result of processing a tuple that carries a selection predicate."""

    #: Full result when the tuple survived, ``None`` when it was dropped early.
    result: Optional[OnlineTupleResult]
    #: Filtering decision (drop / keep / undecided).
    decision: FilterDecision
    #: Estimated tuple existence probability (NaN when dropped before a full pass).
    existence_probability: float
    charged_time: float
    elapsed_time: float

    @property
    def dropped(self) -> bool:
        """Whether the tuple was filtered out."""
        return self.result is None


@dataclass
class ChunkPrologue:
    """Shared up-front state of one batched (or pipelined) chunk.

    Produced by :meth:`OLGAPRO.begin_chunk`: the initialisation charges for
    the first tuple, the ordered per-tuple Monte-Carlo draws with their
    individual durations, and the chunk-wide kernel cache with its per-tuple
    construction share.  Keeping the construction in one place is what keeps
    the batched pipeline and the cross-tuple scheduler charging (and
    sampling!) identically.
    """

    init_calls: int
    init_charged: float
    init_elapsed: float
    n_samples: int
    sample_sets: list
    sample_seconds: list
    boxes: list
    cache: "BatchKernelCache"
    cache_share: float


def select_top_k_distinct(samples: np.ndarray, stds: np.ndarray, k: int) -> list[int]:
    """Indices of the ``k`` highest-variance *distinct* sample rows.

    The stable order makes the speculative (and asynchronous) refinement
    trajectories deterministic; duplicate rows are skipped because empirical
    input distributions resample their support with replacement, and a
    duplicated row would spend two UDF calls on one location and absorb a
    numerically repeated row into the covariance.
    """
    order: list[int] = []
    seen_rows: set[bytes] = set()
    for candidate in np.argsort(-np.asarray(stds), kind="stable"):
        key = samples[candidate].tobytes()
        if key in seen_rows:
            continue
        seen_rows.add(key)
        order.append(int(candidate))
        if len(order) == k:
            break
    return order


class OLGAPRO:
    """Online GP processor for one UDF (Algorithm 5)."""

    def __init__(
        self,
        udf: UDF,
        requirement: AccuracyRequirement | None = None,
        kernel: Optional[Kernel] = None,
        tuning_strategy: Optional[TuningStrategy] = None,
        retraining_policy: Optional[RetrainingPolicy] = None,
        mc_fraction: float = DEFAULT_MC_FRACTION,
        lambda_fraction: float = DEFAULT_LAMBDA_FRACTION,
        lambda_value: Optional[float] = None,
        gamma_fraction: float = DEFAULT_GAMMA_FRACTION,
        gamma: Optional[float] = None,
        band_alpha: float = DEFAULT_BAND_ALPHA,
        band_method: BandMethod = "euler",
        initial_training_points: int = 5,
        max_points_per_tuple: int = DEFAULT_MAX_POINTS_PER_TUPLE,
        max_training_points: int = DEFAULT_MAX_TRAINING_POINTS,
        use_local_inference: bool = True,
        subdivisions: int = 2,
        n_samples: Optional[int] = None,
        speculative_k: int = 1,
        random_state: RandomState = None,
    ):
        self.udf = udf
        self.requirement = requirement if requirement is not None else AccuracyRequirement()
        self.budget: ErrorBudget = self.requirement.split(mc_fraction)
        #: Optional override of the per-tuple Monte-Carlo sample count.  When
        #: ``None`` the count follows the sampling share of the error budget.
        self.n_samples_override = n_samples
        self.emulator = GPEmulator(udf, kernel=kernel)
        self.tuning_strategy = tuning_strategy or LargestVarianceStrategy()
        self.retraining_policy = retraining_policy or ThresholdRetrain()
        self.lambda_fraction = float(lambda_fraction)
        self._lambda_value = lambda_value
        self.gamma_fraction = float(gamma_fraction)
        self._gamma = gamma
        self.band_alpha = float(band_alpha)
        self.band_method: BandMethod = band_method
        self.initial_training_points = int(initial_training_points)
        self.max_points_per_tuple = int(max_points_per_tuple)
        self.max_training_points = int(max_training_points)
        self.use_local_inference = bool(use_local_inference)
        self.subdivisions = int(subdivisions)
        #: Number of training points proposed per refinement iteration.  With
        #: the default 1 the loop is the paper's Algorithm 5 (one point, one
        #: bound re-check, one O(n^2) inverse update per iteration).  With
        #: ``k > 1`` the loop turns speculative: the top-k highest-variance
        #: Monte-Carlo samples are evaluated and absorbed through a single
        #: blocked O(n^2 k) inverse update, and the bound is re-checked once
        #: per block — cutting factorization and inference work in the
        #: refinement loop by roughly k× at the risk of adding up to k - 1
        #: more points than strictly needed.  NOTE: the speculative loop's
        #: selection rule is fixed to stable top-k-by-variance (the natural
        #: multi-point generalisation of the paper's largest-variance rule);
        #: a configured ``tuning_strategy`` only applies when
        #: ``speculative_k == 1``.
        self.speculative_k = int(speculative_k)
        #: Injectable refinement-evaluation driver.  ``None`` keeps the
        #: built-in loops (serial Algorithm 5, or the speculative block loop
        #: when ``speculative_k > 1``).  When set — and the driver reports
        #: itself engaged — :meth:`_tune_until_bounded` delegates the whole
        #: "add training points until the bound fits" step to it; this is how
        #: :class:`~repro.engine.async_exec.AsyncRefinementExecutor` overlaps
        #: in-flight UDF calls with GP work without OLGAPRO knowing about
        #: thread pools, event loops, or any other
        #: :class:`~repro.engine.transport.EvaluationTransport` the driver's
        #: window rides — the transport seam ends at the driver, and OLGAPRO
        #: only ever sees observed values.  Drivers are installed
        #: per-computation (and removed afterwards), so a pickled OLGAPRO
        #: never carries one.
        self.evaluation_driver = None
        #: Injectable source of already-paid-for UDF values, consulted by
        #: :meth:`_absorb_candidate` before spending a fresh evaluation.  The
        #: cross-tuple pipeline scheduler
        #: (:class:`~repro.engine.pipeline.PipelinedExecutor`) installs one so
        #: refinement candidates whose evaluations were speculatively
        #: submitted while *earlier* tuples were still refining are reused
        #: instead of re-evaluated.  ``None`` (the default) keeps every
        #: candidate a direct UDF call.  Like the driver, the hook is
        #: installed per computation, so a pickled OLGAPRO never carries one.
        self.value_source = None
        #: Injectable live-model synchroniser
        #: (:class:`~repro.core.shared_model.EmulatorSync`), the seam behind
        #: ``merge="shared"``.  When set, tuple boundaries become learning
        #: exchanges with a :class:`~repro.core.shared_model
        #: .SharedEmulatorStore`: rows this processor evaluated are
        #: published, rows other learners committed are absorbed (never
        #: re-charged — the learner that evaluated them already paid), and
        #: a cold model seeds itself from the store instead of paying for
        #: its own initial design.  Like the driver and the value source,
        #: the hook is installed per computation, so a pickled OLGAPRO
        #: never carries one.
        self.model_sync = None
        self._rng = as_generator(random_state)
        self._tuples_processed = 0
        #: Factorization-grade GP operations (Cholesky / rank-1 / blocked
        #: inverse updates) performed *inside the refinement loop* across all
        #: tuples — excludes initial training and hyperparameter retraining,
        #: so serial and speculative tuning are directly comparable.
        self.refinement_factorizations = 0
        #: UDF evaluations *consumed* by the refinement loops across all
        #: tuples (window submissions, speculative blocks — rolled back or
        #: not — and single-point absorptions; reused prefetched values
        #: count too, since the committed trajectory asked for them).  The
        #: pipeline scheduler reads per-tuple deltas of this counter for
        #: call attribution: unlike raw UDF call-count deltas it is updated
        #: only on the coordinating thread, so concurrent speculative
        #: completions for *other* tuples cannot pollute it.
        self.refinement_evaluations = 0

        if self.initial_training_points < 2:
            raise GPError("initial_training_points must be at least 2")
        if self.max_points_per_tuple < 1:
            raise GPError("max_points_per_tuple must be at least 1")
        if self.speculative_k < 1:
            raise GPError("speculative_k must be at least 1")
        if self.speculative_k > 1 and tuning_strategy is not None:
            raise GPError(
                "speculative_k > 1 fixes the selection rule to top-k largest "
                "variance and cannot be combined with a custom tuning_strategy"
            )

    # -- pickling -------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle support: per-computation seams never cross process boundaries.

        The driver, value source and model synchroniser are installed for
        the duration of one computation and may hold thread pools, locks or
        manager proxies; a pickled processor (the parallel layer's shard
        payload) always starts with the seams empty.
        """
        state = dict(self.__dict__)
        state["evaluation_driver"] = None
        state["value_source"] = None
        state["model_sync"] = None
        return state

    # -- introspection --------------------------------------------------------------
    @property
    def n_training(self) -> int:
        """Training points accumulated so far across all tuples."""
        return self.emulator.n_training

    @property
    def tuples_processed(self) -> int:
        """Number of input tuples processed so far."""
        return self._tuples_processed

    def output_range(self) -> float:
        """Current estimate of the UDF output range (from the training data)."""
        return self.output_range_of(self.emulator.gp)

    def output_range_of(self, gp) -> float:
        """Output-range estimate read from an explicit GP state.

        The pipeline scheduler's speculative stages evaluate bounds against a
        snapshot-restored *view* of the model rather than the live emulator;
        parameterising the model-derived quantities on the GP keeps those
        computations bitwise identical to the live ones at the same state.
        """
        if gp.n_training == 0:
            return 1.0
        y = gp.y_train
        return max(float(np.max(y) - np.min(y)), 1e-12)

    def lambda_value(self) -> float:
        """Minimum interval length λ in output units."""
        return self.lambda_value_for(self.emulator.gp)

    def lambda_value_for(self, gp) -> float:
        """λ derived from an explicit GP state (see :meth:`output_range_of`)."""
        if self._lambda_value is not None:
            return self._lambda_value
        return self.lambda_fraction * self.output_range_of(gp)

    def gamma_threshold(self) -> float:
        """Local-inference threshold Γ in output units."""
        return self.gamma_threshold_for(self.emulator.gp)

    def gamma_threshold_for(self, gp) -> float:
        """Γ derived from an explicit GP state (see :meth:`output_range_of`)."""
        if self._gamma is not None:
            return self._gamma
        return max(self.gamma_fraction * self.output_range_of(gp), 1e-12)

    def mc_samples(self) -> int:
        """Per-tuple Monte-Carlo sample count actually used."""
        if self.n_samples_override is not None:
            return int(self.n_samples_override)
        return self.budget.mc_samples

    def reseed(self, rng: np.random.Generator) -> None:
        """Point every random-stream consumer of this processor at ``rng``.

        Kept next to the fields it touches so a future stochastic component
        (a strategy or policy holding its own generator) is reseeded where
        it is added — the parallel layer relies on this switching *all*
        consumers onto a shard's keyed stream.
        """
        self._rng = rng

    # -- main entry points -------------------------------------------------------------
    def process(
        self, input_distribution: Distribution, random_state: RandomState = None
    ) -> OnlineTupleResult:
        """Compute the output distribution for one uncertain input tuple."""
        if self.model_sync is not None:
            self.model_sync.sync()
        started = time.perf_counter()
        rng = as_generator(random_state) if random_state is not None else self._rng
        calls_before = self.udf.call_count
        charged_before = self.udf.charged_time

        self._ensure_initialized(input_distribution, rng)
        m = self.mc_samples()
        samples = input_distribution.sample(m, random_state=rng)
        box = BoundingBox.from_points(samples)

        quarantined = False
        try:
            envelope, gp_bound, points_added, converged = self._tune_until_bounded(
                samples, box, rng
            )
        except UDFError:
            if not self._quarantine_enabled():
                raise
            # Quarantine: the refinement loop died on a terminal UDF
            # failure, but the GP state it left behind is consistent —
            # recompute the honest (unconverged) bound from it with pure
            # inference, no further UDF calls.
            envelope, gp_bound = self._infer_and_bound(samples, box)
            points_added, converged, quarantined = 0, False, True

        retrained = self._maybe_retrain(points_added)
        if retrained:
            envelope, gp_bound = self._infer_and_bound(samples, box)

        elapsed = time.perf_counter() - started
        self._tuples_processed += 1
        if self.model_sync is not None:
            self.model_sync.sync()
        return self._tuple_result(
            envelope,
            gp_bound,
            converged=converged,
            points_added=points_added,
            n_samples=m,
            udf_calls=self.udf.call_count - calls_before,
            charged_time=self.udf.charged_time - charged_before + elapsed,
            elapsed_time=elapsed,
            retrained=retrained,
            quarantined=quarantined,
        )

    def process_batch(
        self,
        input_distributions,
        random_state: RandomState = None,
        timings=None,
        columnar: bool = False,
    ) -> list[OnlineTupleResult]:
        """Process a chunk of uncertain tuples through the batched pipeline.

        Semantics match calling :meth:`process` once per tuple, in order —
        with a deterministic tuning strategy (the default) the results are
        numerically identical under the same seed, because Monte-Carlo
        sampling is the only consumer of the random stream and the samples
        are drawn in the same tuple order.  The speedup comes from sharing
        the kernel algebra across the chunk through a
        :class:`~repro.core.local_inference.BatchKernelCache` (one stacked
        cross-covariance evaluation, vectorised R-tree-equivalent retrieval,
        cached local factorisations); only tuples whose error bound misses
        the GP budget fall back to the per-tuple refinement loop, and even
        that loop re-infers through the cache, which absorbs new training
        points as appended kernel columns.

        ``timings``, when given, must expose ``add(phase, seconds)`` and
        receives per-phase wall-clock spent in ``"sampling"``,
        ``"inference"`` and ``"refinement"``.

        ``columnar=True`` selects the columnar execution path: the chunk's
        Monte-Carlo block is drawn through one stacked call when the inputs
        encode as a homogeneous column, the kernel cache arms whole-column
        row stacks, and a vectorised *first pass* computes every tuple's
        initial envelope and bound with grouped kernel algebra.  Each
        per-tuple precomputation is consumed only while the model
        fingerprint still matches the state it was computed under, so the
        results are bit-identical to ``columnar=False`` under the same
        seed (the determinism contract every executor layer is gated on).
        """
        distributions = list(input_distributions)
        if not distributions:
            if timings is not None:
                for phase in ("sampling", "inference", "refinement"):
                    timings.add(phase, 0.0)
            return []
        rng = as_generator(random_state) if random_state is not None else self._rng

        prologue = self.begin_chunk(distributions, rng, timings=timings, columnar=columnar)
        init_calls = prologue.init_calls
        init_charged = prologue.init_charged
        init_elapsed = prologue.init_elapsed
        m = prologue.n_samples
        sample_sets = prologue.sample_sets
        sample_seconds = prologue.sample_seconds
        boxes = prologue.boxes
        cache = prologue.cache
        cache_share = prologue.cache_share

        first_pass: Optional[list[tuple[EnvelopeOutputs, float]]] = None
        first_fp: Optional[tuple[bytes, int]] = None
        first_share = 0.0
        if columnar:
            phase_started = time.perf_counter()
            first_pass, first_fp = self._columnar_first_pass(cache, boxes, m)
            first_elapsed = time.perf_counter() - phase_started
            if first_pass is not None:
                first_share = first_elapsed / len(sample_sets)
                if timings is not None:
                    timings.add("inference", first_elapsed)

        results: list[OnlineTupleResult] = []
        for i, samples in enumerate(sample_sets):
            # Tuple-boundary learning exchange (merge="shared"): publish the
            # rows the previous tuple's refinement paid for and absorb what
            # other learners committed meanwhile.  Placed before the tuple's
            # clock starts — sync cost is accounted under its own
            # model_refresh / model_append phases, not the tuple's elapsed.
            if self.model_sync is not None:
                self.model_sync.sync()
            started = time.perf_counter()
            calls_before = self.udf.call_count
            charged_before = self.udf.charged_time
            infer = self._make_cached_infer(cache, i)
            phase_started = time.perf_counter()
            if first_pass is not None and self._model_fingerprint() != first_fp:
                # Mid-chunk refinement moved the model, so the precomputed
                # tail is stale.  Redo it as one column operation against
                # the new state (bit-identical to re-inferring each
                # remaining tuple, which is what the tuple-store loop does)
                # rather than degrading to per-tuple algebra for the rest
                # of the chunk.
                refreshed, refreshed_fp = self._columnar_first_pass(
                    cache, boxes, m, start=i
                )
                if refreshed is not None:
                    first_pass[i:] = refreshed
                    first_fp = refreshed_fp
                else:
                    first_pass = None
            if first_pass is not None and self._model_fingerprint() == first_fp:
                envelope, bound = first_pass[i]
                # Seed the cache's single-row memo with this tuple's slice so
                # a later cached re-inference (the retrained branch) absorbs
                # new training points as appended kernel columns — exactly
                # the trajectory the tuple-store path takes.
                cache.rows(self.emulator.gp, i)
            else:
                envelope, bound = self._infer_and_bound(samples, boxes[i], infer=infer)
            if timings is not None:
                timings.add("inference", time.perf_counter() - phase_started)
            points_added = 0
            converged = True
            quarantined = False
            if bound > self.budget.epsilon_gp:
                refine_started = time.perf_counter()
                try:
                    envelope, bound, points_added, converged = self._tune_until_bounded(
                        samples, boxes[i], rng, initial=(envelope, bound)
                    )
                except UDFError:
                    if not self._quarantine_enabled():
                        raise
                    # Per-tuple quarantine inside a chunk: keep the honest
                    # bound recomputed from the surviving GP state (fresh
                    # stock inference — the cache may lag points the failed
                    # refinement absorbed) and carry on with the next tuple.
                    envelope, bound = self._infer_and_bound(samples, boxes[i])
                    points_added, converged, quarantined = 0, False, True
                if timings is not None:
                    timings.add("refinement", time.perf_counter() - refine_started)
            retrained = self._maybe_retrain(points_added)
            if retrained:
                envelope, bound = self._infer_and_bound(samples, boxes[i], infer=infer)
            # Cover this tuple's share of the up-front work: its own sample
            # draw plus an even share of the chunk's cache construction (and,
            # for the first tuple, model initialisation — matching where the
            # per-tuple path charges it).
            elapsed = (
                time.perf_counter() - started + sample_seconds[i] + cache_share + first_share
            )
            if i == 0:
                elapsed += init_elapsed
            self._tuples_processed += 1
            results.append(
                self._tuple_result(
                    envelope,
                    bound,
                    converged=converged,
                    points_added=points_added,
                    n_samples=m,
                    udf_calls=self.udf.call_count - calls_before + (init_calls if i == 0 else 0),
                    charged_time=self.udf.charged_time - charged_before + elapsed
                    + (init_charged if i == 0 else 0.0),
                    elapsed_time=elapsed,
                    retrained=retrained,
                    quarantined=quarantined,
                )
            )
        if self.model_sync is not None:
            # Publish the final tuple's rows so other learners (and the
            # parent's post-run refresh) see the whole shard's learning.
            self.model_sync.sync()
        return results

    def begin_chunk(
        self,
        distributions,
        rng: np.random.Generator,
        timings=None,
        evaluation_executor=None,
        max_inflight=None,
        columnar: bool = False,
    ) -> ChunkPrologue:
        """Run one chunk's shared prologue: initialise, sample, build the cache.

        Initialisation cost is charged to the first tuple, exactly as the
        per-tuple path would (it initialises inside the first ``process()``),
        and per-tuple sampling durations are kept so each tuple's elapsed /
        charged time covers its own draw.  Monte-Carlo draws happen strictly
        in tuple order — sampling is the shared random stream's only
        consumer, which is what makes every batch-level executor consume it
        identically.  ``evaluation_executor`` / ``max_inflight`` forward to
        :meth:`_ensure_initialized` so a concurrency-aware caller can
        overlap the initial design's UDF calls; the executor may be a plain
        :class:`concurrent.futures.Executor` or an
        :class:`~repro.engine.transport.EvaluationTransport` (the UDF's
        ``evaluate_many`` dispatches on which it received).

        ``columnar=True`` draws the whole chunk's Monte-Carlo block through
        one stacked generator call when the inputs encode as a homogeneous
        column (bit-identical to the per-tuple draws — see
        :func:`repro.distributions.columns.sample_stacked`) and builds a
        :class:`~repro.core.local_inference.ColumnarKernelCache` whose row
        blocks are slices of one stacked kernel evaluation.
        """
        distributions = list(distributions)
        m = self.mc_samples()
        if not distributions:
            # A zero-length column block is a legal chunk: nothing is
            # initialised, sampled or cached, and the phases report zero.
            if timings is not None:
                timings.add("sampling", 0.0)
                timings.add("inference", 0.0)
            return ChunkPrologue(
                init_calls=0,
                init_charged=0.0,
                init_elapsed=0.0,
                n_samples=m,
                sample_sets=[],
                sample_seconds=[],
                boxes=[],
                cache=None,
                cache_share=0.0,
            )
        init_calls_before = self.udf.call_count
        init_charged_before = self.udf.charged_time
        init_started = time.perf_counter()
        self._ensure_initialized(
            distributions[0], rng,
            evaluation_executor=evaluation_executor, max_inflight=max_inflight,
        )
        init_calls = self.udf.call_count - init_calls_before
        init_charged = self.udf.charged_time - init_charged_before
        init_elapsed = time.perf_counter() - init_started
        use_stacking = columnar and stacking_supported()
        sample_sets = None
        if use_stacking:
            column = attempt_encode(distributions)
            if column is not None:
                draw_started = time.perf_counter()
                block = sample_stacked(column, m, rng)
                draw_elapsed = time.perf_counter() - draw_started
                sample_sets = [block[i] for i in range(len(distributions))]
                sample_seconds = [draw_elapsed / len(distributions)] * len(distributions)
        if sample_sets is None:
            sample_sets = []
            sample_seconds = []
            for dist in distributions:
                draw_started = time.perf_counter()
                sample_sets.append(dist.sample(m, random_state=rng))
                sample_seconds.append(time.perf_counter() - draw_started)
            boxes = [BoundingBox.from_points(samples) for samples in sample_sets]
        else:
            # Column-kernel box construction: per-axis minima / maxima over
            # the stacked block's sample axis are the exact reductions
            # ``from_points`` performs per tuple (min/max is order-exact).
            lows = block.min(axis=1)
            highs = block.max(axis=1)
            boxes = [
                BoundingBox(lows[i], highs[i]) for i in range(len(sample_sets))
            ]
        if timings is not None:
            timings.add("sampling", float(sum(sample_seconds)))

        phase_started = time.perf_counter()
        cache_cls = ColumnarKernelCache if use_stacking else BatchKernelCache
        cache = cache_cls(self.emulator.gp, sample_sets, boxes)
        cache_share = (time.perf_counter() - phase_started) / len(sample_sets)
        if timings is not None:
            timings.add("inference", cache_share * len(sample_sets))
        return ChunkPrologue(
            init_calls=init_calls,
            init_charged=init_charged,
            init_elapsed=init_elapsed,
            n_samples=m,
            sample_sets=sample_sets,
            sample_seconds=sample_seconds,
            boxes=boxes,
            cache=cache,
            cache_share=cache_share,
        )

    def process_with_filter(
        self,
        input_distribution: Distribution,
        predicate: SelectionPredicate,
        pilot_fraction: float = 0.1,
        random_state: RandomState = None,
    ) -> FilteredOnlineResult:
        """Process a tuple carrying a selection predicate with online filtering (§5.5).

        A pilot batch of input samples is pushed through the emulator first;
        if even the *upper* bound ``ρ_U`` on the predicate probability (plus
        the Hoeffding slack for the pilot size) is below the threshold, the
        tuple is dropped without paying for the full sample budget or any
        further training-point additions.
        """
        started = time.perf_counter()
        rng = as_generator(random_state) if random_state is not None else self._rng
        charged_before = self.udf.charged_time

        self._ensure_initialized(input_distribution, rng)
        m = self.mc_samples()
        # The pilot must be large enough that the Hoeffding slack can actually
        # certify "below threshold": half-width at most threshold / 2.
        theta = max(predicate.threshold, 1e-3)
        required = int(np.ceil(np.log(2.0 / self.budget.delta_mc) / (2.0 * (theta / 2.0) ** 2)))
        pilot_size = max(50, int(pilot_fraction * m), required)
        pilot_size = min(pilot_size, m)
        pilot = input_distribution.sample(pilot_size, random_state=rng)
        pilot_box = BoundingBox.from_points(pilot)
        # Tune the model on the pilot first so that the upper bound ρ_U used
        # for the drop decision comes from a model that meets the GP error
        # budget in this input region; otherwise an immature emulator could
        # filter out tuples it simply has not learned yet (false negatives).
        envelope, _, _, _ = self._tune_until_bounded(pilot, pilot_box, rng)
        rho_lower, rho_hat, rho_upper = interval_probability_bounds(
            envelope, predicate.low, predicate.high
        )
        del rho_lower
        decision = upper_bound_decision(
            rho_upper, rho_hat, predicate, pilot_size, self.budget.delta_mc
        )
        if decision.action == "drop":
            elapsed = time.perf_counter() - started
            return FilteredOnlineResult(
                result=None,
                decision=decision,
                existence_probability=rho_hat,
                charged_time=self.udf.charged_time - charged_before + elapsed,
                elapsed_time=elapsed,
            )
        result = self.process(input_distribution, random_state=rng)
        existence = result.distribution.interval_probability(predicate.low, predicate.high)
        final_decision = upper_bound_decision(
            existence, existence, predicate, result.n_samples, self.budget.delta_mc
        )
        elapsed = time.perf_counter() - started
        return FilteredOnlineResult(
            result=result,
            decision=final_decision,
            existence_probability=existence,
            charged_time=self.udf.charged_time - charged_before + elapsed - result.elapsed_time
            + result.elapsed_time,
            elapsed_time=elapsed,
        )

    # -- internals ------------------------------------------------------------------------
    def _ensure_initialized(
        self,
        input_distribution: Distribution,
        rng: np.random.Generator,
        evaluation_executor=None,
        max_inflight=None,
    ) -> None:
        """Seed the model with a few training points around the first input.

        ``evaluation_executor`` / ``max_inflight`` let a concurrency-aware
        caller (the async and pipeline executors) overlap the initial
        design's UDF calls; the trained model is identical either way.
        """
        if self.emulator.n_training > 0:
            return
        if self.model_sync is not None and self.model_sync.seed_or_wait(
            self.initial_training_points
        ):
            # Warm-started from the shared store: another learner already
            # paid for (and published) an initial design, so this model
            # seeds itself for zero UDF calls.
            return
        if self.udf.domain is not None:
            domain = self.udf.domain
        else:
            domain = input_distribution.support_box(coverage=0.999)
        self.emulator.train_initial(
            self.initial_training_points,
            design="random",
            domain=domain,
            random_state=rng,
            optimize_hyperparameters=True,
            evaluation_executor=evaluation_executor,
            max_inflight=max_inflight,
        )
        if self.model_sync is not None:
            # This learner won (or defaulted to) paying for the initial
            # design — publish it, hyperparameters first so seeders skip
            # their own maximum-likelihood refit.
            self.model_sync.publish_hyperparameters()
            self.model_sync.sync()

    def _infer(self, samples: np.ndarray, box: BoundingBox):
        if self.use_local_inference and self.emulator.n_training > 3:
            engine = LocalInferenceEngine(
                gamma_threshold=self.gamma_threshold(), subdivisions=self.subdivisions
            )
            return engine.predict(self.emulator.gp, self.emulator.index, samples, sample_box=box)
        return global_inference(self.emulator.gp, samples)

    def _make_cached_infer(self, cache: BatchKernelCache, i: int):
        """Per-tuple inference closure backed by the shared batch cache.

        Mirrors the :meth:`_infer` strategy branch at every call — the
        refinement loop re-infers after each added training point, and the
        cache absorbs those additions as appended kernel columns instead of
        fresh per-tuple kernel evaluations.
        """

        def infer(samples: np.ndarray, box: BoundingBox):
            del samples, box  # identified by the tuple's slot in the cache
            return self.cached_inference_with(self.emulator.gp, cache, i)

        return infer

    def _model_fingerprint(self) -> tuple[bytes, int]:
        """Hyperparameters + training-set size: what invalidates precomputation."""
        gp = self.emulator.gp
        return (gp.kernel.theta.tobytes(), gp.n_training)

    def _columnar_first_pass(self, cache, boxes, n_points, start: int = 0):
        """Whole-column precomputation of the remaining tuples' envelope/bound.

        Runs the chunk's first inference-and-bound step for tuples
        ``start..end`` at once — grouped kernel GEMMs, hoisted band
        calibration, batched envelope sorts and the batched discrepancy
        sweep — against the current model state.  Returns ``(entries,
        fingerprint)``; an entry is only consumed while the live model
        still matches ``fingerprint``.  When mid-chunk refinement *does*
        move the model, the consumption loop calls back in with the first
        stale position as ``start``: the re-pass recomputes the tail
        against the new state through the same batched kernels, which is
        bit-identical to the per-tuple re-inference the tuple-store loop
        performs (each batched stage is gated on that identity).  Returns
        ``(None, None)`` whenever the stacked row cache is not servable
        (re-arm throttle exhausted, platform identities absent), in which
        case the caller keeps the per-tuple path.
        """
        if not isinstance(cache, ColumnarKernelCache) or not stacking_supported():
            return None, None
        gp = self.emulator.gp
        if not cache.ensure_armed(gp, start):
            return None, None
        indices = range(start, len(cache.sample_sets))
        if self.use_local_inference and gp.n_training > 3:
            engine = LocalInferenceEngine(
                gamma_threshold=self.gamma_threshold_for(gp), subdivisions=self.subdivisions
            )
            inferences = engine.predict_cached_block(gp, cache, indices)
        else:
            inferences = global_inference_cached_block(gp, cache, indices)
        bands = band_z_values(
            gp.kernel,
            boxes[start:],
            alpha=self.band_alpha,
            method=self.band_method,
            n_points=n_points,
        )
        envelopes = self._build_envelopes_block(inferences, bands)
        if self.requirement.metric == "ks":
            bounds = [gp_ks_bound(envelope) for envelope in envelopes]
        else:
            bounds = gp_discrepancy_bound_block(envelopes, self.lambda_value_for(gp))
        entries = [
            (envelope, float(bound)) for envelope, bound in zip(envelopes, bounds)
        ]
        return entries, self._model_fingerprint()

    @staticmethod
    def _build_envelopes_block(inferences, bands) -> list[EnvelopeOutputs]:
        """Batched :func:`build_envelope_outputs` over one chunk's inferences.

        The three per-tuple sample arrays are assembled as ``(B, m)``
        blocks and sorted along the sample axis in one call per variable —
        sorting a row of a block and sorting the row alone order the same
        values identically, so each ECDF's state matches the scalar
        constructor's.  Ragged or non-finite blocks (which the scalar
        constructor would filter) fall back to the scalar path wholesale.
        """
        sizes = {inference.means.size for inference in inferences}
        blocks = None
        if len(sizes) == 1 and sizes != {0}:
            means_block = np.stack([inference.means for inference in inferences])
            stds_block = np.stack([inference.stds for inference in inferences])
            z_col = np.array([band.z_value for band in bands])
            if np.all(stds_block >= 0) and np.all(z_col >= 0):
                lower_block = means_block - z_col[:, None] * stds_block
                upper_block = means_block + z_col[:, None] * stds_block
                if (
                    np.isfinite(means_block).all()
                    and np.isfinite(lower_block).all()
                    and np.isfinite(upper_block).all()
                ):
                    blocks = (
                        np.sort(means_block, axis=1),
                        np.sort(lower_block, axis=1),
                        np.sort(upper_block, axis=1),
                    )
        if blocks is None:
            return [
                build_envelope_outputs(inference.means, inference.stds, band.z_value)
                for inference, band in zip(inferences, bands)
            ]
        sorted_hat, sorted_lower, sorted_upper = blocks
        return [
            EnvelopeOutputs(
                y_hat=EmpiricalDistribution._from_sorted(sorted_hat[i]),
                y_lower=EmpiricalDistribution._from_sorted(sorted_lower[i]),
                y_upper=EmpiricalDistribution._from_sorted(sorted_upper[i]),
                z_value=bands[i].z_value,
            )
            for i in range(len(inferences))
        ]

    def cached_inference_with(self, gp, cache: BatchKernelCache, i: int):
        """Cached inference for tuple ``i`` against an explicit GP state.

        The live path (:meth:`_make_cached_infer`) passes the emulator's own
        model; the pipeline scheduler's speculative stages pass a
        snapshot-restored view, so the computation — including the local-
        versus-global strategy branch — is bitwise the one the live path
        would perform at the same model state.
        """
        if self.use_local_inference and gp.n_training > 3:
            engine = LocalInferenceEngine(
                gamma_threshold=self.gamma_threshold_for(gp), subdivisions=self.subdivisions
            )
            return engine.predict_cached(gp, cache, i)
        return global_inference_cached(gp, cache, i)

    def _infer_and_bound(
        self, samples: np.ndarray, box: BoundingBox, infer=None
    ) -> tuple[EnvelopeOutputs, float]:
        inference = (infer or self._infer)(samples, box)
        return self._bound_from_inference(inference, box, samples.shape[0])

    def _bound_from_inference(
        self, inference, box: BoundingBox, n_points: int
    ) -> tuple[EnvelopeOutputs, float]:
        """Envelope and GP error bound for one tuple's inference results."""
        return self.bound_with(self.emulator.gp, inference, box, n_points)

    def bound_with(
        self, gp, inference, box: BoundingBox, n_points: int
    ) -> tuple[EnvelopeOutputs, float]:
        """Envelope and bound derived from an explicit GP state.

        Parameterised twin of :meth:`_bound_from_inference` (the live path
        delegates here): the band uses the given model's kernel
        hyperparameters and λ derives from that model's output range, so a
        speculative stage working on a snapshot view reproduces the live
        computation bitwise when the model has not moved.
        """
        band = band_z_value(
            gp.kernel,
            box,
            alpha=self.band_alpha,
            method=self.band_method,
            n_points=n_points,
        )
        envelope = build_envelope_outputs(inference.means, inference.stds, band.z_value)
        if self.requirement.metric == "ks":
            bound = gp_ks_bound(envelope)
        else:
            bound = gp_discrepancy_bound(envelope, self.lambda_value_for(gp))
        return envelope, bound

    def _tune_until_bounded(
        self,
        samples: np.ndarray,
        box: BoundingBox,
        rng: np.random.Generator,
        initial: tuple[EnvelopeOutputs, float] | None = None,
    ) -> tuple[EnvelopeOutputs, float, int, bool]:
        """Steps 3–7 of Algorithm 5: add training points until the bound fits.

        ``initial`` lets the batched pipeline seed the loop with an envelope
        and bound it already computed from the shared batch inference.  The
        loop body itself always uses the stock per-tuple inference: the
        tuning strategy's argmax over predictive variances would amplify the
        last-ulp differences between cached and fresh kernel algebra into a
        different training-point selection, so bitwise-reproducible inference
        here is what keeps batched and per-tuple refinement trajectories
        identical.
        """
        if initial is None:
            envelope, bound = self._infer_and_bound(samples, box)
        else:
            envelope, bound = initial
        ops_before = self.emulator.gp.factorization_count
        try:
            driver = self.evaluation_driver
            if driver is not None and driver.engaged(self):
                return driver.tune(
                    self, samples, box, rng, envelope, bound,
                    bound_is_fresh=initial is None,
                )
            if self.speculative_k > 1:
                return self._tune_speculative(
                    samples, box, envelope, bound, bound_is_fresh=initial is None
                )
            return self._tune_serial(samples, box, rng, envelope, bound)
        finally:
            self.refinement_factorizations += (
                self.emulator.gp.factorization_count - ops_before
            )

    def _tune_serial(
        self,
        samples: np.ndarray,
        box: BoundingBox,
        rng: np.random.Generator,
        envelope: EnvelopeOutputs,
        bound: float,
    ) -> tuple[EnvelopeOutputs, float, int, bool]:
        """The paper's one-point-per-iteration refinement loop (Algorithm 5)."""
        points_added = 0
        while bound > self.budget.epsilon_gp:
            if points_added >= self.max_points_per_tuple:
                return envelope, bound, points_added, False
            if self.emulator.n_training >= self.max_training_points:
                return envelope, bound, points_added, False
            inference = self._infer(samples, box)
            index = self.tuning_strategy.select(
                samples,
                inference.means,
                inference.stds,
                random_state=rng,
                error_evaluator=self._make_error_evaluator(samples, box),
            )
            self._absorb_candidate(samples[index])
            points_added += 1
            envelope, bound = self._infer_and_bound(samples, box)
        return envelope, bound, points_added, True

    def _tune_speculative(
        self,
        samples: np.ndarray,
        box: BoundingBox,
        envelope: EnvelopeOutputs,
        bound: float,
        bound_is_fresh: bool = True,
    ) -> tuple[EnvelopeOutputs, float, int, bool]:
        """Speculative multi-point refinement: k candidates per iteration.

        Each iteration evaluates the UDF at the ``k`` highest-variance
        Monte-Carlo samples (stable order, so the trajectory is deterministic
        and identical between the per-tuple and batched pipelines), absorbs
        the block through one :func:`~repro.gp.linalg.block_inverse_update_multi`
        call, and re-checks the error bound *once* — versus ``k`` updates,
        ``k`` inference passes and ``k`` bound checks for the serial loop.

        Speculation can overshoot: absorbing a whole block shifts the
        predictive means as well as shrinking the variances, and on rare
        degenerate blocks the recomputed bound comes out strictly *worse*
        than before the block.  In that case the model is rolled back via
        the saved factorization snapshot
        (no refactorization — just restoring the copied state) and only the
        single best candidate is committed, reusing the UDF observation that
        was already paid for.  The loop therefore never makes less progress
        per iteration than the serial largest-variance rule.
        """
        points_added = 0
        # Selection inference, refreshed by every post-add bound re-check —
        # the model is unchanged between a re-check and the next selection,
        # so recomputing inference there would be pure redundancy.
        inference = None
        while bound > self.budget.epsilon_gp:
            capacity = self._refinement_capacity(points_added)
            if capacity <= 0:
                return envelope, bound, points_added, False
            if inference is None:
                inference, envelope, bound, realigned = self._selection_inference(
                    samples, box, envelope, bound, bound_is_fresh
                )
                if realigned:
                    bound_is_fresh = True
                    continue
            k = min(self.speculative_k, capacity, samples.shape[0])
            order = select_top_k_distinct(samples, inference.stds, k)
            k = len(order)
            if k == 1:
                self._absorb_candidate(samples[order[0]])
                points_added += 1
                inference, envelope, bound = self._recheck(samples, box)
                continue
            state = self.emulator.snapshot()
            bound_before = bound
            self.refinement_evaluations += k
            y_new = self._observe_candidates(samples[order])
            self.emulator.absorb_observations(samples[order], y_new)
            inference, envelope, bound = self._recheck(samples, box)
            if bound <= bound_before:
                points_added += k
                continue
            self._rollback_to_best(state, samples[order[:1]], y_new[:1])
            points_added += 1
            inference, envelope, bound = self._recheck(samples, box)
        return envelope, bound, points_added, True

    def _tuple_result(
        self,
        envelope: EnvelopeOutputs,
        bound: float,
        *,
        converged: bool,
        points_added: int,
        n_samples: int,
        udf_calls: int,
        charged_time: float,
        elapsed_time: float,
        retrained: bool,
        quarantined: bool = False,
    ) -> OnlineTupleResult:
        """Assemble one tuple's result record.

        Shared by :meth:`process`, :meth:`process_batch` and the pipeline
        scheduler (:mod:`repro.engine.pipeline`), so the mapping from a
        finished refinement to :class:`OnlineTupleResult` — including the
        Theorem 4.1 bound combination — lives in one place.
        """
        return OnlineTupleResult(
            distribution=envelope.y_hat,
            envelope=envelope,
            error_bound=combine_bounds(
                epsilon_gp=bound,
                epsilon_mc=self.budget.epsilon_mc,
                delta_gp=self.budget.delta_gp,
                delta_mc=self.budget.delta_mc,
            ),
            converged=converged,
            points_added=points_added,
            n_training=self.emulator.n_training,
            n_samples=n_samples,
            udf_calls=udf_calls,
            charged_time=charged_time,
            elapsed_time=elapsed_time,
            retrained=retrained,
            quarantined=quarantined,
        )

    def _quarantine_enabled(self) -> bool:
        """Whether the UDF's installed retry policy quarantines failures."""
        policy = getattr(self.udf, "_retry_policy", None)
        return policy is not None and bool(policy.quarantine)

    # -- refinement-loop steps shared with the async evaluation driver ---------------
    def _absorb_candidate(self, x: np.ndarray) -> float:
        """Evaluate-or-reuse one refinement candidate and absorb it.

        When a :attr:`value_source` is installed and knows the point, the
        already-paid-for observation is absorbed without a fresh UDF call —
        the GP mutation (:meth:`~repro.core.emulator.GPEmulator
        .absorb_observations` of a single row) is the same rank-1 update
        :meth:`~repro.core.emulator.GPEmulator.add_training_point` performs,
        so reuse versus re-evaluation is invisible to the refinement
        trajectory (the UDF is deterministic).  Returns the observed value.
        """
        self.refinement_evaluations += 1
        if self.value_source is not None:
            y = self.value_source(x)
            if y is not None:
                self.emulator.absorb_observations(x.reshape(1, -1), np.array([y]))
                return float(y)
        return self.emulator.add_training_point(x)

    def _observe_candidates(self, X: np.ndarray) -> np.ndarray:
        """UDF values for a block of candidates, reusing prefetched ones.

        The speculative block loop's counterpart of
        :meth:`_absorb_candidate`: each row already known to the installed
        :attr:`value_source` costs nothing (the pipeline scheduler's walks
        prefetched it), and only the misses pay for fresh evaluations.  The
        observed values — and therefore the refinement trajectory — are
        identical either way, because the UDF is deterministic.
        """
        if self.value_source is None:
            return self.udf.evaluate_batch(X)
        y = np.empty(X.shape[0])
        missing: list[int] = []
        for i, row in enumerate(X):
            value = self.value_source(row)
            if value is None:
                missing.append(i)
            else:
                y[i] = float(value)
        if missing:
            y[missing] = self.udf.evaluate_batch(X[missing])
        return y

    def _refinement_capacity(self, points_added: int) -> int:
        """Training points the refinement loop may still add for this tuple."""
        return min(
            self.max_points_per_tuple - points_added,
            self.max_training_points - self.emulator.n_training,
        )

    def _recheck(self, samples: np.ndarray, box: BoundingBox):
        """Fresh inference plus error bound after a model mutation."""
        fresh = self._infer(samples, box)
        envelope, bound = self._bound_from_inference(fresh, box, samples.shape[0])
        return fresh, envelope, bound

    def _selection_inference(
        self,
        samples: np.ndarray,
        box: BoundingBox,
        envelope: EnvelopeOutputs,
        bound: float,
        bound_is_fresh: bool,
    ):
        """Selection inference for a refinement round, realigning a stale bound.

        The batched pipeline seeds the refinement loop with a bound from
        cached kernel algebra, which differs from fresh inference at the
        last ulp; the overshoot comparisons in the speculative and async
        loops must be fresh-vs-fresh or the batched and per-tuple
        trajectories could diverge on a knife edge.  The selection inference
        is needed anyway, so realigning costs only the bound arithmetic.
        Returns ``(inference, envelope, bound, realigned)``; when
        ``realigned`` is true the caller must re-test the bound against the
        budget before selecting candidates.
        """
        inference = self._infer(samples, box)
        if bound_is_fresh:
            return inference, envelope, bound, False
        envelope, bound = self._bound_from_inference(inference, box, samples.shape[0])
        return inference, envelope, bound, True

    def _rollback_to_best(self, state, x_best: np.ndarray, y_best: np.ndarray) -> None:
        """Undo an overshooting speculative block, keeping its best candidate.

        The empirical bound is quantized in units of 1/n_samples and
        saturates at 1 while the model is still warming up, so callers count
        "no worse" as progress (the predictive variance at the absorbed
        samples did shrink); only a strict increase means the block overshot
        and lands here.  The rollback costs no factorization (snapshot
        restore), and the single best candidate is re-committed reusing the
        UDF observation that was already paid for — the loop therefore never
        makes less progress per iteration than the serial rule.
        """
        self.emulator.restore(state)
        self.emulator.absorb_observations(x_best, y_best)

    def _make_error_evaluator(self, samples: np.ndarray, box: BoundingBox):
        """Candidate evaluator for the optimal-greedy tuning strategy.

        Simulating a candidate uses the GP's own predicted mean as the
        hypothetical function value — the predictive variance reduction (and
        hence the error bound) does not depend on the actual observed value,
        so this avoids spending real UDF calls on the simulation.
        """

        def evaluate(candidate_index: int) -> float:
            gp_copy = self._clone_gp()
            x = samples[candidate_index]
            y_hat = float(gp_copy.predict_mean(x.reshape(1, -1))[0])
            gp_copy.add_point(x, y_hat)
            means, stds = gp_copy.predict(samples, return_std=True)
            band = band_z_value(
                gp_copy.kernel,
                box,
                alpha=self.band_alpha,
                method=self.band_method,
                n_points=samples.shape[0],
            )
            envelope = build_envelope_outputs(means, stds, band.z_value)
            if self.requirement.metric == "ks":
                return gp_ks_bound(envelope)
            return gp_discrepancy_bound(envelope, self.lambda_value())

        return evaluate

    def _clone_gp(self):
        from repro.gp.regression import GaussianProcess

        clone = GaussianProcess(
            kernel=self.emulator.gp.kernel.clone(),
            noise_variance=self.emulator.gp.noise_variance,
        )
        clone.fit(self.emulator.gp.X_train, self.emulator.gp.y_train)
        return clone

    def _maybe_retrain(self, points_added: int) -> bool:
        decision = self.retraining_policy.decide(self.emulator.gp, points_added)
        if decision.should_retrain:
            self.retraining_policy.retrain(self.emulator.gp)
            return True
        return False
